// pumpstat: live engine introspection. Spins up a server::QueryEngine,
// drives an SSB workload through it, and emits QueryEngine::Snapshot()
// — queue depth, per-query states, per-device in-flight pool bytes,
// build-cache contents and hit ratio, windowed p50/p99 latency and qps,
// per-exchange-route byte gauges, flight-recorder totals, and the SLO
// verdict — as a JSON object (default) or in the Prometheus text
// exposition format (--prom).
//
// Usage:
//   pumpstat [--queries N] [--clients C] [--workers W] [--rows N]
//            [--seed S] [--prom] [--out <path>]
//            [--slo-p99-us X] [--slo-min-qps Y] [--fail-on-slo]
//            [--incidents] [--incidents-out <path>]
//
// --incidents adds deterministic abnormal queries (a poisoned build, a
// microsecond deadline, a client cancel) so the flight recorder has
// artifacts to show; --incidents-out dumps the recorder ring as JSON.
//
// Exit codes: 0 = success, 1 = setup/IO failure, 2 = usage error,
// 3 = SLO violated (only with --fail-on-slo).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/ssb.h"
#include "obs/trace.h"
#include "server/introspect.h"
#include "server/query_engine.h"

namespace {

bool WriteFile(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t queries = 24;
  std::size_t clients = 2;
  std::size_t workers = 2;
  std::size_t rows = 20'000;
  std::uint64_t seed = 42;
  bool prom = false;
  bool fail_on_slo = false;
  bool induce_incidents = false;
  double slo_p99_us = 0.0;
  double slo_min_qps = 0.0;
  std::string out_path;
  std::string incidents_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pumpstat: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--queries") {
      queries = std::strtoull(next("--queries"), nullptr, 10);
    } else if (arg == "--clients") {
      clients = std::strtoull(next("--clients"), nullptr, 10);
    } else if (arg == "--workers") {
      workers = std::strtoull(next("--workers"), nullptr, 10);
    } else if (arg == "--rows") {
      rows = std::strtoull(next("--rows"), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--prom") {
      prom = true;
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--slo-p99-us") {
      slo_p99_us = std::strtod(next("--slo-p99-us"), nullptr);
    } else if (arg == "--slo-min-qps") {
      slo_min_qps = std::strtod(next("--slo-min-qps"), nullptr);
    } else if (arg == "--fail-on-slo") {
      fail_on_slo = true;
    } else if (arg == "--incidents") {
      induce_incidents = true;
    } else if (arg == "--incidents-out") {
      incidents_path = next("--incidents-out");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: pumpstat [--queries N] [--clients C] [--workers W] "
          "[--rows N] [--seed S] [--prom] [--out <path>] "
          "[--slo-p99-us X] [--slo-min-qps Y] [--fail-on-slo] "
          "[--incidents] [--incidents-out <path>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "pumpstat: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (clients == 0) clients = 1;

  // Tracing on: incident artifacts (--incidents) carry trace tails, and
  // the exchange-route counters of any sharded plan still flow either
  // way (counters are independent of the trace ring).
  pump::obs::TraceRecorder::Instance().Enable();

  const pump::engine::SsbDatabase db =
      pump::engine::SsbDatabase::Generate(rows, seed);
  std::vector<pump::engine::NamedQuery> mix = pump::engine::SsbSuite(db);

  pump::server::EngineOptions engine_options;
  engine_options.session_threads = 4;
  engine_options.queue_capacity = 2 * clients + 2;
  engine_options.slo_p99_us = slo_p99_us;
  engine_options.slo_min_qps = slo_min_qps;
  pump::server::QueryEngine engine(engine_options);

  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (std::size_t q = c; q < queries; q += clients) {
        const pump::engine::NamedQuery& named = mix[q % mix.size()];
        pump::server::SubmitOptions submit;
        submit.workers = workers;
        submit.tag = named.name;
        auto handle = engine.Submit(named.query, submit);
        if (handle.ok()) handle.value()->Wait();
      }
    });
  }
  for (std::thread& client : client_threads) client.join();

  if (induce_incidents) {
    // One of each abnormal resolution, deterministically. The poisoned
    // build (duplicate dimension keys) exhausts the fault ladder; the
    // microsecond deadline expires; the third is cancelled client-side.
    pump::engine::Table poison_dim;
    if (!poison_dim.AddColumn("pk", {0, 1, 2, 2}).ok()) return 1;
    pump::engine::Query poison;
    poison.fact = &db.lineorder;
    poison.measure_column = "lo_revenue";
    pump::engine::JoinClause join;
    join.fact_key_column = "lo_custkey";
    join.dimension = &poison_dim;
    join.dim_key_column = "pk";
    poison.joins.push_back(join);

    pump::server::SubmitOptions submit;
    submit.workers = workers;
    submit.tag = "poison";
    auto poisoned = engine.Submit(poison, submit);
    if (poisoned.ok()) poisoned.value()->Wait();

    submit.tag = "deadline";
    submit.deadline_s = 1e-6;
    auto late = engine.Submit(mix.front().query, submit);
    if (late.ok()) late.value()->Wait();

    submit.tag = "cancelled";
    submit.deadline_s = 0.0;
    auto cancelled = engine.Submit(mix.front().query, submit);
    if (cancelled.ok()) {
      cancelled.value()->Cancel();
      cancelled.value()->Wait();
    }
  }

  const pump::server::EngineSnapshot snapshot = engine.Snapshot();
  const std::string text = prom ? pump::server::ToPrometheus(snapshot)
                                : pump::server::ToJson(snapshot) + "\n";
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else if (!WriteFile(out_path, text)) {
    std::fprintf(stderr, "pumpstat: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  if (!incidents_path.empty() &&
      !WriteFile(incidents_path, engine.flight_recorder().ToJson() + "\n")) {
    std::fprintf(stderr, "pumpstat: cannot write '%s'\n",
                 incidents_path.c_str());
    return 1;
  }

  if (fail_on_slo && snapshot.slo_configured && !snapshot.slo_ok) {
    std::fprintf(stderr, "pumpstat: SLO violated: %s\n",
                 snapshot.slo_violation.c_str());
    return 3;
  }
  return 0;
}
