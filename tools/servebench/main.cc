// servebench: closed/open-loop driver for the serving layer
// (server::QueryEngine). Two modes:
//
//  * Throughput (default): N closed-loop clients submit the SSB mix
//    back to back; reports qps, p50/p99 latency, shed/cancel counters
//    and the build-cache hit rate, emitted as `servebench_*` records
//    (--json=<path>) which scripts/bench_trajectory.sh merges into
//    BENCH_micro.json.
//
//  * --soak: the robustness gate. Sweeps worker counts x fault
//    probabilities, submitting bursts of concurrent queries from
//    multiple threads under seeded injectors (transfer faults, group
//    stalls, pipeline faults, server.admission sheds, server.cancel
//    cancellations, tight deadlines) with a watchdog. The invariants
//    checked are the PR's acceptance bar: every Submit resolves (no
//    hung or lost query), the engine's accounting balances, and every
//    completed query's result is bit-identical to its solo run.
//
// --quick shrinks the workload for CI smoke use (check.sh runs the soak
// under TSan).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/json_writer.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "server/introspect.h"
#include "server/query_engine.h"

namespace pump {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Config {
  bool quick = false;
  bool soak = false;
  std::size_t clients = 4;
  std::size_t queries_per_client = 8;
  std::size_t workers = 2;
  std::uint64_t seed = 42;
  /// Windowed SLO targets for the throughput mode (0 = not configured):
  /// a violated target exits 3 — the watchdog half of the regression
  /// gate (scripts/bench_check.py is the trend half).
  double slo_p99_us = 0.0;
  double slo_min_qps = 0.0;
  /// --soak: collect every cell's flight-recorder artifacts into one
  /// JSON array at this path.
  std::string incidents_out;
};

struct MixCase {
  std::string name;
  engine::Query query;
  engine::QueryResult expected;
};

/// Solo reference results: the bit-identity baseline for every
/// concurrent completion.
std::vector<MixCase> BuildMix(const engine::SsbDatabase& db) {
  std::vector<MixCase> mix;
  for (const engine::NamedQuery& named : engine::SsbSuite(db)) {
    Result<engine::QueryResult> solo = engine::Executor::Run(named.query, 2);
    if (!solo.ok()) {
      std::cerr << "FATAL: solo run of " << named.name
                << " failed: " << solo.status().ToString() << "\n";
      std::exit(1);
    }
    mix.push_back({named.name, named.query, solo.value()});
  }
  return mix;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

/// Waits for every handle with a wall-clock bound; a query that fails to
/// resolve is a hung query — the exact failure mode the serving layer
/// exists to prevent — and aborts the bench.
void AwaitAll(
    const std::vector<std::shared_ptr<server::QueryHandle>>& handles,
    double timeout_s, const std::string& context) {
  const auto start = Clock::now();
  for (const auto& handle : handles) {
    while (!handle->Done()) {
      if (SecondsSince(start) > timeout_s) {
        std::cerr << "FATAL: " << context << ": query " << handle->id()
                  << " hung (> " << timeout_s << "s)\n";
        std::exit(2);
      }
      std::this_thread::yield();
    }
  }
}

int RunThroughput(bench::JsonWriter* json, const engine::SsbDatabase& db,
                  const Config& config) {
  const std::vector<MixCase> mix = BuildMix(db);

  server::EngineOptions engine_options;
  engine_options.session_threads = 4;
  engine_options.queue_capacity = 2 * config.clients;
  engine_options.slo_p99_us = config.slo_p99_us;
  engine_options.slo_min_qps = config.slo_min_qps;
  server::QueryEngine engine(engine_options);

  std::vector<std::vector<double>> latencies(config.clients);
  std::atomic<std::uint64_t> mismatches{0};
  const auto start = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(config.clients);
    for (std::size_t c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t q = 0; q < config.queries_per_client; ++q) {
          const MixCase& mix_case = mix[(c + q) % mix.size()];
          server::SubmitOptions submit;
          submit.workers = config.workers;
          const auto submit_at = Clock::now();
          Result<std::shared_ptr<server::QueryHandle>> handle =
              engine.Submit(mix_case.query, submit);
          if (!handle.ok()) continue;  // shed under burst; accounted below
          const Result<engine::ExecReport>& report = handle.value()->Wait();
          latencies[c].push_back(SecondsSince(submit_at) * 1e6);
          if (report.ok() &&
              !(report.value().result == mix_case.expected)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  const double wall_s = SecondsSince(start);

  const server::EngineStats stats = engine.stats();
  const plan::BuildCache::Stats cache = engine.build_cache().stats();
  if (mismatches.load() != 0) {
    std::cerr << "FATAL: " << mismatches.load()
              << " concurrent results diverged from solo execution\n";
    return 1;
  }

  std::vector<double> all;
  for (const auto& client : latencies) {
    all.insert(all.end(), client.begin(), client.end());
  }
  const double qps =
      wall_s > 0.0 ? static_cast<double>(stats.completed) / wall_s : 0.0;
  const double p50 = Percentile(all, 0.50);
  const double p99 = Percentile(all, 0.99);
  const std::uint64_t cache_lookups = cache.hits + cache.misses;
  const double cache_hit_pct =
      cache_lookups > 0
          ? 100.0 * static_cast<double>(cache.hits) /
                static_cast<double>(cache_lookups)
          : 0.0;

  const std::string config_str =
      "ssb clients=" + std::to_string(config.clients) +
      " workers=" + std::to_string(config.workers);
  std::cout << "  " << config_str << "\n"
            << "    completed: " << stats.completed << "/"
            << stats.submitted << " in " << wall_s << " s (" << qps
            << " qps)\n"
            << "    latency: p50 " << p50 << " us, p99 " << p99 << " us\n"
            << "    shed " << stats.shed << ", cancelled "
            << stats.cancelled << ", deadline " << stats.deadline_exceeded
            << ", failed " << stats.failed << "\n"
            << "    build cache: " << cache.hits << " hits / "
            << cache_lookups << " lookups (" << cache_hit_pct << "%)\n";

  json->Record("servebench_qps", config_str, qps, 0.0, 1);
  json->Record("servebench_p50_us", config_str, p50, 0.0,
               static_cast<int>(all.size()));
  json->Record("servebench_p99_us", config_str, p99, 0.0,
               static_cast<int>(all.size()));
  json->Record("servebench_cache_hit_pct", config_str, cache_hit_pct, 0.0,
               1);
  json->Record("servebench_shed", config_str,
               static_cast<double>(stats.shed), 0.0, 1);
  json->Record("servebench_cancelled", config_str,
               static_cast<double>(stats.cancelled), 0.0, 1);
  json->Record("servebench_deadline_exceeded", config_str,
               static_cast<double>(stats.deadline_exceeded), 0.0, 1);

  // SLO watchdog: the engine's own windowed verdict over the run. Exit 3
  // keeps the failure distinguishable from correctness failures (1).
  const server::EngineSnapshot snapshot = engine.Snapshot();
  if (snapshot.slo_configured) {
    std::cout << "    slo: windowed p99 " << snapshot.latency_us.p99
              << " us, qps " << snapshot.latency_us.rate_per_s << " -> "
              << (snapshot.slo_ok ? "ok" : snapshot.slo_violation) << "\n";
    if (!snapshot.slo_ok) {
      std::cerr << "FATAL: SLO violated: " << snapshot.slo_violation
                << "\n";
      return 3;
    }
  }
  return 0;
}

/// A query whose build must fail (duplicate dimension keys trip the
/// hash-table uniqueness check at execution time, past compilation):
/// the deterministic contained-failure probe of the soak. Its handle
/// resolves with kAlreadyExists while siblings are untouched.
struct PoisonFixture {
  engine::Table dim;
  engine::Query query;
};

std::unique_ptr<PoisonFixture> MakePoison(const engine::SsbDatabase& db) {
  auto fixture = std::make_unique<PoisonFixture>();
  if (!fixture->dim.AddColumn("pk", {0, 1, 2, 2}).ok()) std::exit(1);
  fixture->query.fact = &db.lineorder;
  fixture->query.measure_column = "lo_revenue";
  engine::JoinClause join;
  join.fact_key_column = "lo_custkey";
  join.dimension = &fixture->dim;
  join.dim_key_column = "pk";
  fixture->query.joins.push_back(join);
  return fixture;
}

/// One soak cell: a burst of concurrent queries from several submitter
/// threads under a seeded fault cocktail. Returns false on any violated
/// invariant (the caller exits nonzero).
bool SoakCell(const std::vector<MixCase>& mix,
              const PoisonFixture& poison, std::size_t workers,
              double fault_p, std::uint64_t seed, double timeout_s,
              std::string* incidents_json) {
  // Fresh rings per cell: incident trace tails stay cell-local, and the
  // rings never get close to wrapping mid-capture (a mid-run Snapshot
  // only races a writer when the ring wraps). Quiescent here — the
  // previous cell's engine is destroyed, pool threads are idle.
  obs::TraceRecorder::Instance().Clear();

  fault::FaultInjector exec_faults(seed);
  fault::FaultInjector server_faults(seed ^ 0x5eed);
  if (fault_p > 0.0) {
    exec_faults.Arm(fault::kTransferChunk,
                    {fault_p, 0, 1'000'000, StatusCode::kUnavailable});
    exec_faults.Arm(fault::kSchedWorkerStall,
                    {fault_p / 2, 0, 1'000'000, StatusCode::kUnavailable});
    exec_faults.Arm(fault::kPlanPipeline,
                    {fault_p / 2, 1, 1'000'000, StatusCode::kUnavailable});
    exec_faults.Arm(fault::kAllocDevice,
                    {fault_p, 0, 1'000'000, StatusCode::kResourceExhausted});
    server_faults.Arm(fault::kServerAdmission,
                      {fault_p / 4, 0, 1'000'000,
                       StatusCode::kResourceExhausted});
    server_faults.Arm(fault::kServerCancel,
                      {fault_p / 2, 0, 1'000'000, StatusCode::kCancelled});
  }

  server::EngineOptions engine_options;
  engine_options.session_threads = 4;
  engine_options.queue_capacity = 8;
  // A small budget so concurrent footprints saturate it and the
  // degrade-to-CPU path runs under pressure (a few in-flight queries
  // fill it even at --quick scale).
  engine_options.gpu_budget_bytes = 2ull << 20;
  engine_options.injector = &server_faults;
  server::QueryEngine engine(engine_options);

  const std::size_t kSubmitters = 4;
  const std::size_t kPerSubmitter = 4;  // >= 8 concurrent queries total
  struct Submitted {
    std::shared_ptr<server::QueryHandle> handle;
    bool poisoned = false;
  };
  std::vector<std::vector<Submitted>> per_thread(kSubmitters);
  std::atomic<std::uint64_t> sync_rejects{0};
  {
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t q = 0; q < kPerSubmitter; ++q) {
          const std::size_t n = t * kPerSubmitter + q;
          // Every seventh submission is the poison query: a contained
          // failure that must not disturb its siblings.
          const bool poisoned = n % 7 == 6;
          server::SubmitOptions submit;
          submit.workers = workers;
          submit.injector = &exec_faults;
          submit.tag = poisoned ? "poison" : mix[n % mix.size()].name;
          // A tight deadline on every fourth query exercises the
          // deadline path; the rest run to completion.
          if (n % 4 == 3) submit.deadline_s = 1e-5;
          Result<std::shared_ptr<server::QueryHandle>> handle =
              engine.Submit(
                  poisoned ? poison.query : mix[n % mix.size()].query,
                  submit);
          if (!handle.ok()) {
            sync_rejects.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // Client-side cancellation pressure on every fifth query.
          if (n % 5 == 4) handle.value()->Cancel();
          per_thread[t].push_back({handle.value(), poisoned});
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
  }

  std::vector<Submitted> handles;
  for (auto& thread_handles : per_thread) {
    handles.insert(handles.end(), thread_handles.begin(),
                   thread_handles.end());
  }
  const std::string context = "soak workers=" + std::to_string(workers) +
                              " p=" + std::to_string(fault_p);
  std::vector<std::shared_ptr<server::QueryHandle>> raw_handles;
  for (const Submitted& submitted : handles) {
    raw_handles.push_back(submitted.handle);
  }
  AwaitAll(raw_handles, timeout_s, context);

  // Invariant 1: accounting balances — nothing lost. Every submission
  // either rejected synchronously or admitted; every admitted handle
  // resolved to exactly one terminal state.
  const server::EngineStats stats = engine.stats();
  if (stats.submitted !=
      stats.admitted + stats.shed + stats.compile_rejected) {
    std::cerr << "FATAL: " << context << ": submitted " << stats.submitted
              << " != admitted " << stats.admitted << " + shed "
              << stats.shed << " + compile_rejected "
              << stats.compile_rejected << "\n";
    return false;
  }
  const std::uint64_t resolved = stats.completed + stats.cancelled +
                                 stats.deadline_exceeded + stats.failed;
  if (resolved != stats.admitted) {
    std::cerr << "FATAL: " << context << ": resolved " << resolved
              << " != admitted " << stats.admitted << " (lost queries)\n";
    return false;
  }
  if (stats.shed != sync_rejects.load()) {
    std::cerr << "FATAL: " << context << ": engine shed " << stats.shed
              << " but clients saw " << sync_rejects.load()
              << " rejections\n";
    return false;
  }

  // Invariant 2: completed results are bit-identical to solo execution,
  // whatever faults hit the siblings — and the poison query never
  // completes (its build must fail, be cancelled, or time out).
  for (const Submitted& submitted : handles) {
    const Result<engine::ExecReport>& report = submitted.handle->Wait();
    if (!report.ok()) continue;
    if (submitted.poisoned) {
      std::cerr << "FATAL: " << context << ": poison query "
                << submitted.handle->id()
                << " completed; its build must fail\n";
      return false;
    }
    bool matched = false;
    for (const MixCase& mix_case : mix) {
      if (report.value().result == mix_case.expected) matched = true;
    }
    if (!matched) {
      std::cerr << "FATAL: " << context << ": completed query "
                << submitted.handle->id() << " returned rows="
                << report.value().result.rows
                << " sum=" << report.value().result.sum
                << ", matching no solo result\n";
      return false;
    }
  }

  // Invariant 3: the flight recorder holds exactly one artifact per
  // abnormal resolution — zero failed/cancelled/expired queries without
  // an artifact, zero artifacts for successful ones. (Cell totals stay
  // below the ring capacity, so captured == retained.)
  const obs::FlightRecorder::Stats incidents =
      engine.flight_recorder().stats();
  auto kind_count = [&incidents](const char* kind) -> std::uint64_t {
    auto it = incidents.captured_by_kind.find(kind);
    return it == incidents.captured_by_kind.end() ? 0 : it->second;
  };
  const std::uint64_t abnormal =
      stats.cancelled + stats.deadline_exceeded + stats.failed;
  if (incidents.captured != abnormal ||
      kind_count("fault_ladder_exhausted") != stats.failed ||
      kind_count("cancelled") != stats.cancelled ||
      kind_count("deadline_expired") != stats.deadline_exceeded) {
    std::cerr << "FATAL: " << context << ": flight recorder captured "
              << incidents.captured << " incidents ("
              << kind_count("fault_ladder_exhausted") << " exhausted, "
              << kind_count("cancelled") << " cancelled, "
              << kind_count("deadline_expired")
              << " deadline) but the engine resolved " << stats.failed
              << " failed, " << stats.cancelled << " cancelled, "
              << stats.deadline_exceeded << " deadline\n";
    return false;
  }
  // Invariant 4: every artifact is self-contained — query id, kind, the
  // compiled plan, and the failed attempt's report rows are all present.
  for (const obs::Incident& incident : engine.flight_recorder().Incidents()) {
    if (incident.query_id == 0 || incident.kind.empty() ||
        incident.plan_json.empty() || incident.report_json.empty()) {
      std::cerr << "FATAL: " << context << ": incident for query "
                << incident.query_id << " (" << incident.kind
                << ") is missing its plan or report payload\n";
      return false;
    }
    if (incidents_json != nullptr) {
      if (!incidents_json->empty()) *incidents_json += ",\n";
      *incidents_json += obs::FlightRecorder::IncidentJson(incident);
    }
  }

  std::cout << "  " << context << ": " << stats.completed << " completed, "
            << stats.shed << " shed, " << stats.cancelled << " cancelled, "
            << stats.deadline_exceeded << " deadline, " << stats.failed
            << " failed, " << stats.degraded_to_cpu << " degraded to cpu, "
            << incidents.captured << " incidents\n";
  return true;
}

int RunSoak(const engine::SsbDatabase& db, const Config& config) {
  const std::vector<MixCase> mix = BuildMix(db);
  const std::unique_ptr<PoisonFixture> poison = MakePoison(db);
  const double timeout_s = config.quick ? 60.0 : 180.0;
  const double probabilities[] = {0.0, 0.01, 0.05};
  // Tracing on for the whole sweep so every incident artifact carries
  // its query's trace tail.
  obs::TraceRecorder::Instance().Enable();
  std::string incidents_json;
  bool ok = true;
  for (std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    for (double p : probabilities) {
      ok = SoakCell(mix, *poison, workers, p, config.seed + workers,
                    timeout_s, &incidents_json) &&
           ok;
    }
  }
  obs::TraceRecorder::Instance().Disable();
  if (!config.incidents_out.empty()) {
    std::ofstream file(config.incidents_out);
    if (!file) {
      std::cerr << "FATAL: cannot write " << config.incidents_out << "\n";
      return 1;
    }
    file << "[" << incidents_json << "]\n";
  }
  if (!ok) return 1;
  std::cout << "  soak passed: zero hung/lost queries across the sweep, "
               "every abnormal resolution left a flight-recorder "
               "artifact\n";
  return 0;
}

}  // namespace
}  // namespace pump

int main(int argc, char** argv) {
  pump::bench::JsonWriter json =
      pump::bench::JsonWriter::FromArgs(&argc, argv);
  pump::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.quick = true;
    } else if (arg == "--soak") {
      config.soak = true;
    } else if (arg.rfind("--clients=", 0) == 0) {
      config.clients = std::stoul(arg.substr(10));
    } else if (arg.rfind("--queries=", 0) == 0) {
      config.queries_per_client = std::stoul(arg.substr(10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      config.workers = std::stoul(arg.substr(10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--slo-p99-us=", 0) == 0) {
      config.slo_p99_us = std::stod(arg.substr(13));
    } else if (arg.rfind("--slo-min-qps=", 0) == 0) {
      config.slo_min_qps = std::stod(arg.substr(14));
    } else if (arg.rfind("--incidents-out=", 0) == 0) {
      config.incidents_out = arg.substr(16);
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: servebench [--quick] [--soak] [--clients=N] "
                   "[--queries=N] [--workers=N] [--seed=N] [--json=path] "
                   "[--slo-p99-us=X] [--slo-min-qps=Y] "
                   "[--incidents-out=path]\n";
      return 1;
    }
  }

  const std::size_t rows = config.quick ? 20'000 : 200'000;
  pump::bench::PrintBanner(
      std::cout, config.soak ? "servebench/soak" : "servebench/throughput",
      config.soak
          ? "Concurrent SSB queries x seeded fault sweep through "
            "server::QueryEngine; asserts zero hung/lost queries and "
            "solo-identical results"
          : "Closed-loop SSB clients against server::QueryEngine (" +
                std::to_string(rows) + " fact rows)");
  const pump::engine::SsbDatabase db =
      pump::engine::SsbDatabase::Generate(rows, /*seed=*/42);

  if (config.soak) return pump::RunSoak(db, config);

  const int rc = pump::RunThroughput(&json, db, config);
  if (rc != 0) return rc;
  if (!json.Write()) {
    std::cerr << "failed to write " << json.path() << "\n";
    return 1;
  }
  if (json.active()) {
    std::cout << "\nwrote " << json.records().size() << " records to "
              << json.path() << "\n";
  }
  return 0;
}
