// tracedump: runs one query through the plan IR with tracing enabled and
// dumps the three observability artifacts — the Chrome trace_event JSON
// (chrome://tracing / Perfetto), the process metrics snapshot, and the
// model-vs-measured residual report joining per-pipeline measured span
// times against the Advisor's cost-model predictions.
//
// Usage:
//   tracedump [--query ssb-q1|ssb-q2|ssb-q3|q6] [--rows N] [--seed S]
//             [--policy cpu|gpu|cost] [--workers W]
//             [--trace-out <path>] [--metrics-out <path>]
//             [--residuals <path>] [--query-id N] [--concurrent N]
//
// Prints a summary JSON to stdout: query, policy, workers, wall time,
// trace span coverage (duration of the root plan.execute span over wall
// time), event/thread counts, and the query result. Residual predictions
// come from the cost model, so --policy defaults to `cost` (other
// policies leave predicted_s = 0 and ratio = 0).
//
// --concurrent N runs N queries concurrently through a
// server::QueryEngine instead: every trace event is stamped with its
// query id, and the summary reports per-query coverage — the fraction of
// each query's server.query umbrella span covered by its plan.execute
// span, assembled purely from the id stamps across all worker rings.
//
// --query-id N filters the --trace-out export to one query's causal
// timeline (the no-filter export is byte-identical to the pre-filter
// format). A wrapped ring (dropped events) is surfaced as a stderr
// warning and `coverage_unreliable` in the summary.
//
// Exit codes: 0 = success, 1 = execution failed, 2 = usage error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "data/tpch.h"
#include "engine/ssb.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/residuals.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/executor.h"
#include "plan/q6_bridge.h"
#include "server/query_engine.h"

namespace {

/// Longest paired `name` span (B..E) across all threads, in seconds,
/// optionally restricted to events stamped with `query_id` (0 = any).
/// The root plan.execute span is recorded once per query, on the
/// executing scheduler thread.
double SpanSeconds(const std::vector<pump::obs::ThreadTrace>& traces,
                   const char* name, std::uint64_t query_id = 0) {
  double best = 0.0;
  for (const pump::obs::ThreadTrace& thread : traces) {
    std::vector<std::uint64_t> begins;
    for (const pump::obs::TraceEvent& event : thread.events) {
      if (std::strcmp(event.name, name) != 0) continue;
      if (query_id != 0 && event.query_id != query_id) continue;
      if (event.phase == 'B') {
        begins.push_back(event.ts_ns);
      } else if (event.phase == 'E' && !begins.empty()) {
        const double dur = static_cast<double>(event.ts_ns -
                                               begins.back()) *
                           1e-9;
        begins.pop_back();
        if (dur > best) best = dur;
      }
    }
  }
  return best;
}

/// Total dropped events across all rings; nonzero means a ring wrapped
/// and span pairing may have lost a 'B' — coverage is then unreliable.
std::uint64_t WarnIfWrapped(
    const std::vector<pump::obs::ThreadTrace>& traces) {
  std::uint64_t dropped = 0;
  for (const pump::obs::ThreadTrace& thread : traces) {
    dropped += thread.dropped;
  }
  if (dropped > 0) {
    std::fprintf(stderr,
                 "tracedump: warning: ring wrapped, %llu events dropped; "
                 "span coverage may be unreliable (raise the ring "
                 "capacity or shrink --rows)\n",
                 static_cast<unsigned long long>(dropped));
  }
  return dropped;
}

/// --concurrent N: N queries of the SSB mix race through a
/// server::QueryEngine; per-query coverage is assembled from the query-id
/// stamps alone. Exercises exactly the correlation machinery a production
/// trace of a busy engine depends on.
int RunConcurrent(const pump::engine::SsbDatabase& db,
                  std::size_t concurrent, std::size_t workers,
                  const std::string& trace_path, std::uint64_t query_filter,
                  const std::string& metrics_path) {
  const std::vector<pump::engine::NamedQuery> mix =
      pump::engine::SsbSuite(db);

  pump::obs::EnsureCoreMetrics();
  pump::obs::TraceRecorder& recorder = pump::obs::TraceRecorder::Instance();
  recorder.Enable();
  pump::obs::TraceInstant(pump::obs::TraceCategory::kTool, "warmup");
  recorder.Clear();

  std::vector<std::uint64_t> ids;
  {
    pump::server::EngineOptions engine_options;
    engine_options.session_threads = 4;
    engine_options.queue_capacity = concurrent + 2;
    pump::server::QueryEngine engine(engine_options);

    std::vector<std::shared_ptr<pump::server::QueryHandle>> handles;
    for (std::size_t n = 0; n < concurrent; ++n) {
      const pump::engine::NamedQuery& named = mix[n % mix.size()];
      pump::server::SubmitOptions submit;
      submit.workers = workers;
      submit.tag = named.name;
      auto handle = engine.Submit(named.query, submit);
      if (!handle.ok()) {
        std::fprintf(stderr, "tracedump: submit failed: %s\n",
                     handle.status().ToString().c_str());
        return 1;
      }
      handles.push_back(handle.value());
    }
    for (const auto& handle : handles) {
      if (!handle->Wait().ok()) {
        std::fprintf(stderr, "tracedump: query %llu failed: %s\n",
                     static_cast<unsigned long long>(handle->id()),
                     handle->Wait().status().ToString().c_str());
        return 1;
      }
      ids.push_back(handle->id());
    }
  }
  recorder.Disable();

  if (!trace_path.empty() &&
      !recorder.WriteChromeJson(trace_path, query_filter)) {
    std::fprintf(stderr, "tracedump: cannot write '%s'\n",
                 trace_path.c_str());
    return 1;
  }
  if (!metrics_path.empty() &&
      !pump::obs::MetricsRegistry::Instance().WriteSnapshot(metrics_path)) {
    std::fprintf(stderr, "tracedump: cannot write '%s'\n",
                 metrics_path.c_str());
    return 1;
  }

  const std::vector<pump::obs::ThreadTrace> traces = recorder.Snapshot();
  const std::uint64_t dropped = WarnIfWrapped(traces);
  std::size_t events = 0;
  for (const pump::obs::ThreadTrace& thread : traces) {
    events += thread.events.size();
  }

  std::printf("{\"concurrent\":%zu,\"workers\":%zu,\"queries\":[",
              concurrent, workers);
  double min_coverage = 1.0;
  bool first = true;
  for (const std::uint64_t id : ids) {
    const double umbrella_s = SpanSeconds(traces, "server.query", id);
    const double exec_s = SpanSeconds(traces, "plan.execute", id);
    const double coverage = umbrella_s > 0.0 ? exec_s / umbrella_s : 0.0;
    if (coverage < min_coverage) min_coverage = coverage;
    std::printf("%s{\"id\":%llu,\"umbrella_s\":%.9f,\"exec_s\":%.9f,"
                "\"coverage\":%.6f}",
                first ? "" : ",", static_cast<unsigned long long>(id),
                umbrella_s, exec_s, coverage);
    first = false;
  }
  std::printf(
      "],\"min_coverage\":%.6f,\"trace_events\":%zu,\"trace_threads\":%zu,"
      "\"dropped_events\":%llu,\"coverage_unreliable\":%s}\n",
      min_coverage, events, traces.size(),
      static_cast<unsigned long long>(dropped),
      dropped > 0 ? "true" : "false");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_name = "ssb-q3";
  std::size_t rows = 100'000;
  std::uint64_t seed = 42;
  std::string policy_name = "cost";
  // Single-core hosts report DefaultWorkerCount() == 1; keep the probe
  // pipeline parallel so the trace exercises the multi-worker rings.
  std::size_t workers =
      std::max<std::size_t>(2, pump::exec::DefaultWorkerCount());
  std::string trace_path;
  std::string metrics_path;
  std::string residuals_path;
  std::uint64_t query_filter = 0;
  std::size_t concurrent = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tracedump: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--query") {
      query_name = next("--query");
    } else if (arg == "--rows") {
      rows = static_cast<std::size_t>(
          std::strtoull(next("--rows"), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--policy") {
      policy_name = next("--policy");
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(
          std::strtoull(next("--workers"), nullptr, 10));
    } else if (arg == "--trace-out") {
      trace_path = next("--trace-out");
    } else if (arg == "--metrics-out") {
      metrics_path = next("--metrics-out");
    } else if (arg == "--residuals") {
      residuals_path = next("--residuals");
    } else if (arg == "--query-id") {
      query_filter = std::strtoull(next("--query-id"), nullptr, 10);
    } else if (arg == "--concurrent") {
      concurrent = static_cast<std::size_t>(
          std::strtoull(next("--concurrent"), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: tracedump [--query ssb-q1|ssb-q2|ssb-q3|q6] [--rows N] "
          "[--seed S] [--policy cpu|gpu|cost] [--workers W] "
          "[--trace-out <path>] [--metrics-out <path>] "
          "[--residuals <path>] [--query-id N] [--concurrent N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "tracedump: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  pump::plan::CompileOptions options;
  if (policy_name == "cpu") {
    options.policy = pump::plan::PlacementPolicy::kCpuOnly;
  } else if (policy_name == "gpu") {
    options.policy = pump::plan::PlacementPolicy::kGpuPreferred;
  } else if (policy_name == "cost") {
    options.policy = pump::plan::PlacementPolicy::kCostModel;
  } else {
    std::fprintf(stderr,
                 "tracedump: unknown policy '%s' (want cpu|gpu|cost)\n",
                 policy_name.c_str());
    return 2;
  }

  // The query sources must outlive compilation and execution.
  const pump::engine::SsbDatabase db =
      pump::engine::SsbDatabase::Generate(rows, seed);
  if (concurrent > 0) {
    return RunConcurrent(db, concurrent, workers, trace_path, query_filter,
                         metrics_path);
  }
  pump::plan::Q6PlanInput q6_input;
  pump::engine::Query query;
  bool matched = false;
  for (const pump::engine::NamedQuery& named : pump::engine::SsbSuite(db)) {
    if (query_name == named.name) {
      query = named.query;
      matched = true;
    }
  }
  if (query_name == "q6") {
    q6_input = pump::plan::Q6PlanInput::From(
        pump::data::GenerateLineitemQ6(rows, seed));
    query = q6_input.MakeQuery();
    matched = true;
  }
  if (!matched) {
    std::fprintf(stderr,
                 "tracedump: unknown query '%s' (want ssb-q1|ssb-q2|"
                 "ssb-q3|q6)\n",
                 query_name.c_str());
    return 2;
  }

  pump::Result<pump::plan::PhysicalPlan> plan =
      pump::plan::Compile(query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "tracedump: compile failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  pump::obs::EnsureCoreMetrics();
  pump::obs::TraceRecorder& recorder = pump::obs::TraceRecorder::Instance();
  recorder.Enable();
  // Warm the driving thread's ring (first Record allocates the slot
  // vector) so the root span's 'B' timestamp isn't charged for it.
  pump::obs::TraceInstant(pump::obs::TraceCategory::kTool, "warmup");
  recorder.Clear();

  pump::engine::ExecOptions exec_options;
  exec_options.workers = workers;
  const auto start = std::chrono::steady_clock::now();
  pump::Result<pump::engine::ExecReport> report =
      pump::plan::ExecutePlan(plan.value(), exec_options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  recorder.Disable();

  if (!report.ok()) {
    std::fprintf(stderr, "tracedump: execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  if (!trace_path.empty() &&
      !recorder.WriteChromeJson(trace_path, query_filter)) {
    std::fprintf(stderr, "tracedump: cannot write '%s'\n",
                 trace_path.c_str());
    return 1;
  }
  if (!metrics_path.empty() &&
      !pump::obs::MetricsRegistry::Instance().WriteSnapshot(metrics_path)) {
    std::fprintf(stderr, "tracedump: cannot write '%s'\n",
                 metrics_path.c_str());
    return 1;
  }

  pump::obs::ResidualReport residuals;
  residuals.query = query_name;
  residuals.policy = policy_name;
  residuals.wall_s = wall_s;
  for (const pump::engine::PipelineOutcome& pipeline :
       report.value().pipelines) {
    pump::obs::ResidualRow row;
    row.pipeline = pipeline.name;
    row.pipeline_class = pipeline.kind;
    // A CPU probe executed under AVX2 dispatch ran the vectorized
    // kernel, not the interleaved one — classify it separately so
    // modelcheck --residuals bands the two calibrations independently.
    if (pipeline.kind == "probe" && pipeline.placement_used == "cpu" &&
        pump::common::ActiveSimdDispatch() ==
            pump::common::SimdDispatch::kAvx2) {
      row.pipeline_class = "probe_simd";
    }
    row.placement_planned = pipeline.placement_planned;
    row.placement_used = pipeline.placement_used;
    row.predicted_s = pipeline.predicted_s;
    row.measured_s = pipeline.measured_s;
    row.ratio = pump::obs::ResidualRatio(pipeline.predicted_s,
                                         pipeline.measured_s);
    residuals.rows.push_back(std::move(row));
  }
  if (!residuals_path.empty()) {
    std::FILE* file = std::fopen(residuals_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "tracedump: cannot write '%s'\n",
                   residuals_path.c_str());
      return 1;
    }
    const std::string json = pump::obs::ToJson(residuals);
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
  }

  const std::vector<pump::obs::ThreadTrace> traces = recorder.Snapshot();
  const std::uint64_t dropped = WarnIfWrapped(traces);
  std::size_t events = 0;
  for (const pump::obs::ThreadTrace& thread : traces) {
    events += thread.events.size();
  }
  const double covered_s = SpanSeconds(traces, "plan.execute");
  const double coverage = wall_s > 0.0 ? covered_s / wall_s : 0.0;

  std::printf(
      "{\"query\":\"%s\",\"policy\":\"%s\",\"workers\":%zu,"
      "\"wall_s\":%.9f,\"root_span_s\":%.9f,\"span_coverage\":%.6f,"
      "\"trace_events\":%zu,\"trace_threads\":%zu,\"dropped_events\":%llu,"
      "\"coverage_unreliable\":%s,"
      "\"used_gpu\":%s,\"degraded\":%s,\"pipelines\":%zu,"
      "\"result_rows\":%llu,\"result_sum\":%lld}\n",
      query_name.c_str(), policy_name.c_str(), workers, wall_s, covered_s,
      coverage, events, traces.size(),
      static_cast<unsigned long long>(dropped),
      dropped > 0 ? "true" : "false",
      report.value().used_gpu ? "true" : "false",
      report.value().degraded ? "true" : "false",
      report.value().pipelines.size(),
      static_cast<unsigned long long>(report.value().result.rows),
      static_cast<long long>(report.value().result.sum));
  return 0;
}
