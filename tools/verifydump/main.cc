// verifydump: runs the deterministic concurrency verifier's model suite
// (src/verify/models.cc) — schedule exploration over the real migrated
// structures, the seeded mutant-kill harness, and the lock-order graph —
// and prints one JSON report to stdout.
//
// Usage:
//   verifydump [--quick] [--scale X] [--seed S] [--no-mutants]
//              [--replay MODEL SCHEDULE] [--list]
//
//   --quick       The check.sh lane budget (scale 1.0, the default).
//   --scale X     Multiplies every model's schedule budgets by X.
//   --seed S      Base seed of the PCT sampler (default 1).
//   --no-mutants  Skip the mutant-kill harness.
//   --replay M S [--mutate NAME]
//                 Re-executes model M under the exact schedule string S
//                 (as printed in failing_schedule) and reports the
//                 outcome instead of running the suite. Schedules
//                 printed by the mutant harness need the same mutation
//                 armed via --mutate to replay faithfully.
//   --list        Prints the registered models and mutants.
//
// Exit codes: 0 = clean pass (all models pass, all mutants killed, lock
// order acyclic), 1 = verification failure, 2 = this binary was built
// without -DPUMP_VERIFY=ON (the verifier is compiled out).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/json_writer.h"
#include "verify/explore.h"
#include "verify/lock_order.h"
#include "verify/models.h"
#include "verify/mutation.h"

#if defined(PUMP_VERIFY) && PUMP_VERIFY

namespace {

using pump::bench::JsonEscape;

void PrintModel(const pump::verify::ModelRunReport& run, bool first) {
  std::printf("%s\n    {\"name\":\"%s\",\"schedules\":%llu,\"pruned\":%llu,"
              "\"sampled_runs\":%llu,\"exhausted\":%s,\"failed\":%s,"
              "\"deadlocked\":%s,\"failure\":\"%s\","
              "\"failing_schedule\":\"%s\",\"max_lock_depth\":%d,"
              "\"max_threads\":%d,\"steps\":%llu}",
              first ? "" : ",",
              JsonEscape(run.model).c_str(),
              static_cast<unsigned long long>(run.result.schedules_explored),
              static_cast<unsigned long long>(run.result.schedules_pruned),
              static_cast<unsigned long long>(run.result.sampled_runs),
              run.result.exhausted ? "true" : "false",
              run.result.failed ? "true" : "false",
              run.result.deadlocked ? "true" : "false",
              JsonEscape(run.result.failure).c_str(),
              JsonEscape(run.result.failing_schedule).c_str(),
              run.result.max_lock_depth, run.result.max_threads,
              static_cast<unsigned long long>(run.result.total_steps));
}

void PrintMutant(const pump::verify::MutantRunReport& run, bool first) {
  std::printf("%s\n    {\"mutation\":\"%s\",\"model\":\"%s\","
              "\"killed\":%s,\"failure\":\"%s\",\"failing_schedule\":\"%s\"}",
              first ? "" : ",",
              JsonEscape(run.mutation).c_str(),
              JsonEscape(run.model).c_str(),
              run.killed ? "true" : "false",
              JsonEscape(run.failure).c_str(),
              JsonEscape(run.failing_schedule).c_str());
}

int RunReplay(const std::string& model_name, const std::string& schedule,
              const std::string& mutation) {
  const pump::verify::Model* model = nullptr;
  for (const pump::verify::Model& candidate : pump::verify::Models()) {
    if (candidate.name == model_name) model = &candidate;
  }
  if (model == nullptr) {
    std::fprintf(stderr, "verifydump: unknown model '%s'\n",
                 model_name.c_str());
    return 2;
  }
  // A failing schedule printed by the mutant harness was recorded with
  // that mutation armed; it only replays faithfully under the same arm.
  std::unique_ptr<pump::verify::ScopedMutation> armed;
  if (!mutation.empty()) {
    armed = std::make_unique<pump::verify::ScopedMutation>(mutation.c_str());
  }
  pump::verify::LockOrderGraph lock_order;
  pump::verify::RunOutcome outcome =
      pump::verify::Replay(model->body, schedule, 50'000, &lock_order);
  armed.reset();
  std::printf("{\"model\":\"%s\",\"schedule\":\"%s\",\"failed\":%s,"
              "\"deadlocked\":%s,\"failure\":\"%s\",\"steps\":%llu}\n",
              JsonEscape(model_name).c_str(),
              JsonEscape(pump::verify::ScheduleToString(outcome.choices))
                  .c_str(),
              outcome.failed ? "true" : "false",
              outcome.deadlocked ? "true" : "false",
              JsonEscape(outcome.failure).c_str(),
              static_cast<unsigned long long>(outcome.steps));
  return outcome.failed ? 1 : 0;
}

int RunSuiteMain(double scale, std::uint64_t seed, bool run_mutants) {
  pump::verify::SuiteOptions options;
  options.budget_scale = scale;
  options.seed = seed;
  options.run_mutants = run_mutants;
  pump::verify::LockOrderGraph lock_order;
  const pump::verify::SuiteReport report =
      pump::verify::RunSuite(options, &lock_order);

  std::vector<std::string> cycle;
  const bool acyclic = !lock_order.HasCycle(&cycle);

  std::size_t killed = 0;
  for (const pump::verify::MutantRunReport& run : report.mutants) {
    if (run.killed) ++killed;
  }

  std::printf("{\n  \"verify\": true,\n");
  std::printf("  \"schedules_explored\": %llu,\n",
              static_cast<unsigned long long>(report.schedules_explored));
  std::printf("  \"schedules_pruned\": %llu,\n",
              static_cast<unsigned long long>(report.schedules_pruned));
  std::printf("  \"total_steps\": %llu,\n",
              static_cast<unsigned long long>(report.total_steps));
  std::printf("  \"max_lock_depth\": %d,\n", report.max_lock_depth);
  std::printf("  \"clean_pass\": %s,\n",
              report.clean_pass ? "true" : "false");
  std::printf("  \"models\": [");
  for (std::size_t i = 0; i < report.models.size(); ++i) {
    PrintModel(report.models[i], i == 0);
  }
  std::printf("\n  ],\n");
  std::printf("  \"mutants_total\": %zu,\n", report.mutants.size());
  std::printf("  \"mutants_killed\": %zu,\n", killed);
  std::printf("  \"mutant_kill_rate\": %s,\n",
              report.mutants.empty()
                  ? "null"
                  : (killed == report.mutants.size() ? "1.0" : "0.0"));
  std::printf("  \"mutants\": [");
  for (std::size_t i = 0; i < report.mutants.size(); ++i) {
    PrintMutant(report.mutants[i], i == 0);
  }
  std::printf("\n  ],\n");
  std::printf("  \"lock_order\": %s\n}\n", lock_order.ToJson().c_str());

  if (!report.clean_pass) return 1;
  if (run_mutants && !report.mutants_all_killed) return 1;
  if (!acyclic) {
    std::fprintf(stderr, "verifydump: lock-order cycle:");
    for (const std::string& node : cycle) {
      std::fprintf(stderr, " %s", node.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool run_mutants = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      scale = 1.0;
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-mutants") {
      run_mutants = false;
    } else if (arg == "--list") {
      for (const pump::verify::Model& model : pump::verify::Models()) {
        std::printf("model  %s\n", model.name.c_str());
      }
      for (const pump::verify::Mutant& mutant : pump::verify::Mutants()) {
        std::printf("mutant %s -> %s\n", mutant.mutation.c_str(),
                    mutant.model.c_str());
      }
      return 0;
    } else if (arg == "--replay" && i + 2 < argc) {
      const std::string model = argv[i + 1];
      const std::string schedule = argv[i + 2];
      std::string mutation;
      if (i + 4 < argc && std::string(argv[i + 3]) == "--mutate") {
        mutation = argv[i + 4];
      }
      return RunReplay(model, schedule, mutation);
    } else {
      std::fprintf(stderr,
                   "usage: verifydump [--quick] [--scale X] [--seed S] "
                   "[--no-mutants] [--replay MODEL SCHEDULE "
                   "[--mutate NAME]] [--list]\n");
      return 2;
    }
  }
  if (scale <= 0.0) {
    std::fprintf(stderr, "verifydump: --scale must be positive\n");
    return 2;
  }
  return RunSuiteMain(scale, seed, run_mutants);
}

#else  // !PUMP_VERIFY

int main() {
  std::printf("{\"verify\": false, "
              "\"note\": \"built without -DPUMP_VERIFY=ON; the "
              "concurrency verifier is compiled out\"}\n");
  return 2;
}

#endif  // PUMP_VERIFY
