// modelcheck: static linter for the hardware/cost model.
//
// Loads system profiles (by default both of the paper's testbeds), runs
// every model invariant check — topology connectivity and route symmetry,
// link/memory sanity, calibration against the paper's Figs. 1-3,
// Little's-law consistency, cost-model sanity — and emits a JSON report.
// Exits nonzero iff any check found a violation.
//
// Usage:
//   modelcheck [--profile ac922|xeon|broken-fixture]... [--json <path>]
//
// Without --profile, both testbed profiles are checked. --broken-fixture is
// a deliberately corrupted profile used to demonstrate failure output.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/model_check.h"
#include "hw/system_profile.h"

namespace {

bool LoadProfile(const std::string& name, pump::hw::SystemProfile* out) {
  if (name == "ac922") {
    *out = pump::hw::Ac922Profile();
    return true;
  }
  if (name == "xeon") {
    *out = pump::hw::XeonProfile();
    return true;
  }
  if (name == "broken-fixture") {
    *out = pump::check::BrokenFixtureProfile();
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> profile_names;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile" && i + 1 < argc) {
      profile_names.emplace_back(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: modelcheck [--profile ac922|xeon|broken-fixture]... "
          "[--json <path>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "modelcheck: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (profile_names.empty()) profile_names = {"ac922", "xeon"};

  std::vector<pump::check::ProfileReport> reports;
  for (const std::string& name : profile_names) {
    pump::hw::SystemProfile profile;
    if (!LoadProfile(name, &profile)) {
      std::fprintf(stderr,
                   "modelcheck: unknown profile '%s' (want ac922, xeon or "
                   "broken-fixture)\n",
                   name.c_str());
      return 2;
    }
    reports.push_back(pump::check::CheckProfile(profile));
  }

  const std::string json = pump::check::ReportsToJson(reports);
  if (json_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(json_path);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "modelcheck: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
  }

  bool ok = true;
  for (const pump::check::ProfileReport& report : reports) {
    std::fprintf(stderr, "%s: %zu checks, %zu violations\n",
                 report.profile.c_str(), report.checks_run.size(),
                 report.violations.size());
    for (const pump::check::Violation& v : report.violations) {
      std::fprintf(stderr, "  [%s] %s: %s\n", v.check.c_str(),
                   v.subject.c_str(), v.message.c_str());
    }
    ok = ok && report.ok();
  }
  return ok ? 0 : 1;
}
