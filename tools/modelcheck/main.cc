// modelcheck: static linter for the hardware/cost model.
//
// Loads system profiles (by default both of the paper's testbeds), runs
// every model invariant check — topology connectivity and route symmetry,
// link/memory sanity, calibration against the paper's Figs. 1-3,
// Little's-law consistency, cost-model sanity — and emits a JSON report.
// Exits nonzero iff any check found a violation.
//
// Usage:
//   modelcheck [--profile ac922|xeon|broken-fixture]... [--json <path>]
//   modelcheck --mesh [--profile ring-4|crossbar-8|sli-2|p2p-2|
//              host-bounce-4|broken-mesh-fixture]... [--json <path>]
//   modelcheck --residuals <file> [--residual-band [class=]min:max]...
//              [--json <path>]
//
// Without --profile, both testbed profiles are checked. --broken-fixture is
// a deliberately corrupted profile used to demonstrate failure output.
//
// With --mesh, the tool lints N-GPU mesh profiles instead (the topologies
// the sharded-join exchange planner routes over): structural checks plus
// the mesh peering lint, with paper-figure calibration skipped — the mesh
// link constants come from "Evaluating Modern GPU Interconnect" (Li et
// al.), not this paper's testbeds. Without --profile, all five good mesh
// topologies are checked; broken-mesh-fixture must fail.
//
// With --residuals, the tool instead lints a model-vs-measured residual
// report written by `tracedump --residuals`: every pipeline's
// measured/predicted ratio must sit inside its class band.
// --residual-band takes `min:max` (default band for all classes) or
// `class=min:max` (band for one pipeline class, repeatable); without any
// band flag the check only validates report shape and ratio consistency.
// Pipeline classes are build, probe, and probe_simd — the latter is a
// CPU probe that ran the vectorized kernel (hash/simd_probe.h), split
// out so calibration drift of the SIMD path is caught independently,
// e.g. --residual-band probe_simd=0.2:5.
// The JSON report and nonzero-exit conventions are shared with the
// profile mode.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/model_check.h"
#include "hw/system_profile.h"
#include "obs/residuals.h"

namespace {

/// Parses `[class=]min:max` into `bands`; false on malformed input.
bool ParseBand(const std::string& spec, pump::check::ResidualBands* bands) {
  std::string cls;
  std::string range = spec;
  const std::size_t eq = spec.find('=');
  if (eq != std::string::npos) {
    cls = spec.substr(0, eq);
    range = spec.substr(eq + 1);
  }
  const std::size_t colon = range.find(':');
  if (colon == std::string::npos || cls == "=") return false;
  char* end = nullptr;
  pump::check::ResidualBand band;
  band.min_ratio = std::strtod(range.c_str(), &end);
  if (end != range.c_str() + colon) return false;
  const char* max_begin = range.c_str() + colon + 1;
  band.max_ratio = std::strtod(max_begin, &end);
  if (end == max_begin || *end != '\0') return false;
  if (band.min_ratio < 0.0 || band.max_ratio < band.min_ratio) return false;
  (*bands)[cls] = band;
  return true;
}

bool LoadProfile(const std::string& name, pump::hw::SystemProfile* out) {
  if (name == "ac922") {
    *out = pump::hw::Ac922Profile();
    return true;
  }
  if (name == "xeon") {
    *out = pump::hw::XeonProfile();
    return true;
  }
  if (name == "broken-fixture") {
    *out = pump::check::BrokenFixtureProfile();
    return true;
  }
  return false;
}

bool LoadMeshProfile(const std::string& name, pump::hw::SystemProfile* out) {
  if (name == "ring-4") {
    *out = pump::hw::NvlinkRingProfile(4);
    return true;
  }
  if (name == "crossbar-8") {
    *out = pump::hw::NvSwitchCrossbarProfile(8);
    return true;
  }
  if (name == "sli-2") {
    *out = pump::hw::NvSliPairProfile();
    return true;
  }
  if (name == "p2p-2") {
    *out = pump::hw::GpuDirectPairProfile();
    return true;
  }
  if (name == "host-bounce-4") {
    *out = pump::hw::HostBounceMeshProfile(4);
    return true;
  }
  if (name == "broken-mesh-fixture") {
    *out = pump::check::BrokenMeshFixtureProfile();
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> profile_names;
  std::string json_path;
  std::string residuals_path;
  bool mesh_mode = false;
  pump::check::ResidualBands bands;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile" && i + 1 < argc) {
      profile_names.emplace_back(argv[++i]);
    } else if (arg == "--mesh") {
      mesh_mode = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--residuals" && i + 1 < argc) {
      residuals_path = argv[++i];
    } else if (arg == "--residual-band" && i + 1 < argc) {
      if (!ParseBand(argv[++i], &bands)) {
        std::fprintf(stderr,
                     "modelcheck: malformed --residual-band '%s' (want "
                     "[class=]min:max)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: modelcheck [--profile ac922|xeon|broken-fixture]... "
          "[--json <path>]\n"
          "       modelcheck --mesh [--profile ring-4|crossbar-8|sli-2|"
          "p2p-2|host-bounce-4|broken-mesh-fixture]... [--json <path>]\n"
          "       modelcheck --residuals <file> "
          "[--residual-band [class=]min:max]... [--json <path>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "modelcheck: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  std::vector<pump::check::ProfileReport> reports;
  if (!residuals_path.empty()) {
    if (!profile_names.empty() || mesh_mode) {
      std::fprintf(stderr,
                   "modelcheck: --residuals is exclusive with --profile "
                   "and --mesh\n");
      return 2;
    }
    pump::Result<pump::obs::ResidualReport> residuals =
        pump::obs::ReadResidualReport(residuals_path);
    if (!residuals.ok()) {
      std::fprintf(stderr, "modelcheck: %s\n",
                   residuals.status().ToString().c_str());
      return 2;
    }
    reports.push_back(
        pump::check::CheckResiduals(residuals.value(), bands));
  } else {
    if (!bands.empty()) {
      std::fprintf(stderr,
                   "modelcheck: --residual-band requires --residuals\n");
      return 2;
    }
    if (mesh_mode) {
      if (profile_names.empty()) {
        profile_names = {"ring-4", "crossbar-8", "sli-2", "p2p-2",
                         "host-bounce-4"};
      }
      for (const std::string& name : profile_names) {
        pump::hw::SystemProfile profile;
        if (!LoadMeshProfile(name, &profile)) {
          std::fprintf(stderr,
                       "modelcheck: unknown mesh profile '%s' (want ring-4, "
                       "crossbar-8, sli-2, p2p-2, host-bounce-4 or "
                       "broken-mesh-fixture)\n",
                       name.c_str());
          return 2;
        }
        reports.push_back(pump::check::CheckMeshProfile(profile));
      }
    } else {
      if (profile_names.empty()) profile_names = {"ac922", "xeon"};
      for (const std::string& name : profile_names) {
        pump::hw::SystemProfile profile;
        if (!LoadProfile(name, &profile)) {
          std::fprintf(stderr,
                       "modelcheck: unknown profile '%s' (want ac922, xeon "
                       "or broken-fixture)\n",
                       name.c_str());
          return 2;
        }
        reports.push_back(pump::check::CheckProfile(profile));
      }
    }
  }

  const std::string json = pump::check::ReportsToJson(reports);
  if (json_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(json_path);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "modelcheck: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
  }

  bool ok = true;
  for (const pump::check::ProfileReport& report : reports) {
    std::fprintf(stderr, "%s: %zu checks, %zu violations\n",
                 report.profile.c_str(), report.checks_run.size(),
                 report.violations.size());
    for (const pump::check::Violation& v : report.violations) {
      std::fprintf(stderr, "  [%s] %s: %s\n", v.check.c_str(),
                   v.subject.c_str(), v.message.c_str());
    }
    ok = ok && report.ok();
  }
  return ok ? 0 : 1;
}
