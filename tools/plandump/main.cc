// plandump: compiles queries to the physical-plan IR and prints the
// plans as JSON — pipelines, operators, placements, hash-table choices,
// and modelled costs. Used by scripts/check.sh as a plan-validity gate
// (every emitted plan is re-checked with plan::ValidatePlan) and by
// humans to answer "where would this query run?".
//
// Usage:
//   plandump [--query ssb-q1|ssb-q2|ssb-q3|q6|all] [--rows N] [--seed S]
//            [--policy cpu|gpu|cost] [--gpu-budget BYTES] [--scale X]
//            [--mesh ring-4|crossbar-8|sli-2|p2p-2|host-bounce-4]
//            [--json <path>]
//
// --mesh compiles against the named N-GPU mesh profile with the plan
// sharded across all of its GPUs: the dump then carries device-set
// placements, the shard descriptor and the exchange routes.
//
// Exit codes: 0 = all plans compiled and validated, 1 = a plan failed
// compilation or validation, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/tpch.h"
#include "engine/ssb.h"
#include "hw/system_profile.h"
#include "hw/topology.h"
#include "plan/compiler.h"
#include "plan/dump.h"
#include "plan/q6_bridge.h"

namespace {

struct DumpedPlan {
  std::string name;
  std::string json;
};

bool CompileAndDump(const std::string& name, const pump::engine::Query& query,
                    const pump::plan::CompileOptions& options,
                    std::vector<DumpedPlan>* out) {
  pump::Result<pump::plan::PhysicalPlan> plan =
      pump::plan::Compile(query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "plandump: %s: compile failed: %s\n", name.c_str(),
                 plan.status().ToString().c_str());
    return false;
  }
  const pump::Status valid = pump::plan::ValidatePlan(plan.value());
  if (!valid.ok()) {
    std::fprintf(stderr, "plandump: %s: malformed plan: %s\n", name.c_str(),
                 valid.ToString().c_str());
    return false;
  }
  out->push_back({name, pump::plan::ToJson(plan.value(), name)});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_name = "all";
  std::size_t rows = 100'000;
  std::uint64_t seed = 42;
  std::string policy_name = "gpu";
  std::uint64_t gpu_budget = 0;
  double scale = 1.0;
  std::string mesh_name;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plandump: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--query") {
      query_name = next("--query");
    } else if (arg == "--rows") {
      rows = static_cast<std::size_t>(std::strtoull(next("--rows"), nullptr,
                                                    10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--policy") {
      policy_name = next("--policy");
    } else if (arg == "--gpu-budget") {
      gpu_budget = std::strtoull(next("--gpu-budget"), nullptr, 10);
    } else if (arg == "--scale") {
      scale = std::strtod(next("--scale"), nullptr);
    } else if (arg == "--mesh") {
      mesh_name = next("--mesh");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: plandump [--query ssb-q1|ssb-q2|ssb-q3|q6|all] [--rows N] "
          "[--seed S] [--policy cpu|gpu|cost] [--gpu-budget BYTES] "
          "[--scale X] [--mesh ring-4|crossbar-8|sli-2|p2p-2|host-bounce-4] "
          "[--json <path>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "plandump: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  pump::plan::CompileOptions options;
  if (policy_name == "cpu") {
    options.policy = pump::plan::PlacementPolicy::kCpuOnly;
  } else if (policy_name == "gpu") {
    options.policy = pump::plan::PlacementPolicy::kGpuPreferred;
  } else if (policy_name == "cost") {
    options.policy = pump::plan::PlacementPolicy::kCostModel;
  } else {
    std::fprintf(stderr, "plandump: unknown policy '%s' (want cpu|gpu|cost)\n",
                 policy_name.c_str());
    return 2;
  }
  options.gpu_budget_bytes = gpu_budget;
  options.scale = scale;

  // The mesh profile must outlive every compiled plan.
  pump::hw::SystemProfile mesh_profile;
  if (!mesh_name.empty()) {
    if (mesh_name == "ring-4") {
      mesh_profile = pump::hw::NvlinkRingProfile(4);
    } else if (mesh_name == "crossbar-8") {
      mesh_profile = pump::hw::NvSwitchCrossbarProfile(8);
    } else if (mesh_name == "sli-2") {
      mesh_profile = pump::hw::NvSliPairProfile();
    } else if (mesh_name == "p2p-2") {
      mesh_profile = pump::hw::GpuDirectPairProfile();
    } else if (mesh_name == "host-bounce-4") {
      mesh_profile = pump::hw::HostBounceMeshProfile(4);
    } else {
      std::fprintf(stderr,
                   "plandump: unknown mesh '%s' (want ring-4|crossbar-8|"
                   "sli-2|p2p-2|host-bounce-4)\n",
                   mesh_name.c_str());
      return 2;
    }
    options.profile = &mesh_profile;
    options.shard_devices =
        mesh_profile.topology.DevicesOfKind(pump::hw::DeviceKind::kGpu);
  }

  const bool all = query_name == "all";
  std::vector<DumpedPlan> plans;
  bool ok = true;

  // The query sources must outlive compilation and dumping.
  const pump::engine::SsbDatabase db =
      pump::engine::SsbDatabase::Generate(rows, seed);
  pump::plan::Q6PlanInput q6_input;
  if (all || query_name == "q6") {
    q6_input =
        pump::plan::Q6PlanInput::From(pump::data::GenerateLineitemQ6(rows,
                                                                     seed));
  }

  bool matched = false;
  for (const pump::engine::NamedQuery& named :
       pump::engine::SsbSuite(db)) {
    if (!all && query_name != named.name) continue;
    matched = true;
    ok = CompileAndDump(named.name, named.query, options, &plans) && ok;
  }
  if (all || query_name == "q6") {
    matched = true;
    const pump::engine::Query q6 = q6_input.MakeQuery();
    ok = CompileAndDump("q6", q6, options, &plans) && ok;
  }
  if (!matched) {
    std::fprintf(stderr,
                 "plandump: unknown query '%s' (want ssb-q1|ssb-q2|ssb-q3|"
                 "q6|all)\n",
                 query_name.c_str());
    return 2;
  }

  std::string json = "[";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (i > 0) json += ",\n ";
    json += plans[i].json;
  }
  json += "]";

  if (json_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(json_path);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "plandump: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
  }
  return ok ? 0 : 1;
}
