# Empty dependencies file for scan_aggregate_test.
# This may be replaced when dependencies are built.
