file(REMOVE_RECURSE
  "CMakeFiles/scan_aggregate_test.dir/scan_aggregate_test.cc.o"
  "CMakeFiles/scan_aggregate_test.dir/scan_aggregate_test.cc.o.d"
  "scan_aggregate_test"
  "scan_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
