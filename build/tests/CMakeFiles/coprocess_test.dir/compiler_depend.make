# Empty compiler generated dependencies file for coprocess_test.
# This may be replaced when dependencies are built.
