file(REMOVE_RECURSE
  "CMakeFiles/coprocess_test.dir/coprocess_test.cc.o"
  "CMakeFiles/coprocess_test.dir/coprocess_test.cc.o.d"
  "coprocess_test"
  "coprocess_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
