file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_join.dir/out_of_core_join.cpp.o"
  "CMakeFiles/out_of_core_join.dir/out_of_core_join.cpp.o.d"
  "out_of_core_join"
  "out_of_core_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
