# Empty compiler generated dependencies file for transfer_explorer.
# This may be replaced when dependencies are built.
