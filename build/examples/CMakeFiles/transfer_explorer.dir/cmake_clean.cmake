file(REMOVE_RECURSE
  "CMakeFiles/transfer_explorer.dir/transfer_explorer.cpp.o"
  "CMakeFiles/transfer_explorer.dir/transfer_explorer.cpp.o.d"
  "transfer_explorer"
  "transfer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
