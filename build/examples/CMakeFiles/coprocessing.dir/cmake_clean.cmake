file(REMOVE_RECURSE
  "CMakeFiles/coprocessing.dir/coprocessing.cpp.o"
  "CMakeFiles/coprocessing.dir/coprocessing.cpp.o.d"
  "coprocessing"
  "coprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
