# Empty dependencies file for coprocessing.
# This may be replaced when dependencies are built.
