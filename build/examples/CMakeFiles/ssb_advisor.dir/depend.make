# Empty dependencies file for ssb_advisor.
# This may be replaced when dependencies are built.
