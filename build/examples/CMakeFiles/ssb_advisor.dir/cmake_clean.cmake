file(REMOVE_RECURSE
  "CMakeFiles/ssb_advisor.dir/ssb_advisor.cpp.o"
  "CMakeFiles/ssb_advisor.dir/ssb_advisor.cpp.o.d"
  "ssb_advisor"
  "ssb_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssb_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
