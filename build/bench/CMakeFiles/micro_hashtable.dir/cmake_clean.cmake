file(REMOVE_RECURSE
  "CMakeFiles/micro_hashtable.dir/micro_hashtable.cc.o"
  "CMakeFiles/micro_hashtable.dir/micro_hashtable.cc.o.d"
  "micro_hashtable"
  "micro_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
