# Empty compiler generated dependencies file for micro_hashtable.
# This may be replaced when dependencies are built.
