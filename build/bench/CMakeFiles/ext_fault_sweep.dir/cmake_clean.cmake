file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_sweep.dir/ext_fault_sweep.cc.o"
  "CMakeFiles/ext_fault_sweep.dir/ext_fault_sweep.cc.o.d"
  "ext_fault_sweep"
  "ext_fault_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
