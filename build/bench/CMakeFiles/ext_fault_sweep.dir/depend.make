# Empty dependencies file for ext_fault_sweep.
# This may be replaced when dependencies are built.
