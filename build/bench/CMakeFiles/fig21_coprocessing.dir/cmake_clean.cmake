file(REMOVE_RECURSE
  "CMakeFiles/fig21_coprocessing.dir/fig21_coprocessing.cc.o"
  "CMakeFiles/fig21_coprocessing.dir/fig21_coprocessing.cc.o.d"
  "fig21_coprocessing"
  "fig21_coprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_coprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
