# Empty compiler generated dependencies file for fig21_coprocessing.
# This may be replaced when dependencies are built.
