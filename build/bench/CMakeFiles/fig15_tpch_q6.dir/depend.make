# Empty dependencies file for fig15_tpch_q6.
# This may be replaced when dependencies are built.
