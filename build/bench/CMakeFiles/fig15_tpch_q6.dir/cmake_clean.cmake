file(REMOVE_RECURSE
  "CMakeFiles/fig15_tpch_q6.dir/fig15_tpch_q6.cc.o"
  "CMakeFiles/fig15_tpch_q6.dir/fig15_tpch_q6.cc.o.d"
  "fig15_tpch_q6"
  "fig15_tpch_q6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tpch_q6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
