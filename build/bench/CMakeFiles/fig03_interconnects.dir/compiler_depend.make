# Empty compiler generated dependencies file for fig03_interconnects.
# This may be replaced when dependencies are built.
