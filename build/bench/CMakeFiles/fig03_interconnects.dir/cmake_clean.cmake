file(REMOVE_RECURSE
  "CMakeFiles/fig03_interconnects.dir/fig03_interconnects.cc.o"
  "CMakeFiles/fig03_interconnects.dir/fig03_interconnects.cc.o.d"
  "fig03_interconnects"
  "fig03_interconnects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
