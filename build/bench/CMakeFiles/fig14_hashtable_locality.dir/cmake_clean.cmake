file(REMOVE_RECURSE
  "CMakeFiles/fig14_hashtable_locality.dir/fig14_hashtable_locality.cc.o"
  "CMakeFiles/fig14_hashtable_locality.dir/fig14_hashtable_locality.cc.o.d"
  "fig14_hashtable_locality"
  "fig14_hashtable_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hashtable_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
