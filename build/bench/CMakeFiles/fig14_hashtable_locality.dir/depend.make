# Empty dependencies file for fig14_hashtable_locality.
# This may be replaced when dependencies are built.
