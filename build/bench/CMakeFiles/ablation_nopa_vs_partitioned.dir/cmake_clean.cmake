file(REMOVE_RECURSE
  "CMakeFiles/ablation_nopa_vs_partitioned.dir/ablation_nopa_vs_partitioned.cc.o"
  "CMakeFiles/ablation_nopa_vs_partitioned.dir/ablation_nopa_vs_partitioned.cc.o.d"
  "ablation_nopa_vs_partitioned"
  "ablation_nopa_vs_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nopa_vs_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
