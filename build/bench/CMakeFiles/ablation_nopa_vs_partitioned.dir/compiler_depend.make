# Empty compiler generated dependencies file for ablation_nopa_vs_partitioned.
# This may be replaced when dependencies are built.
