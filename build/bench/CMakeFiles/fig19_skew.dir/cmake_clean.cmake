file(REMOVE_RECURSE
  "CMakeFiles/fig19_skew.dir/fig19_skew.cc.o"
  "CMakeFiles/fig19_skew.dir/fig19_skew.cc.o.d"
  "fig19_skew"
  "fig19_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
