# Empty compiler generated dependencies file for ext_star_schema.
# This may be replaced when dependencies are built.
