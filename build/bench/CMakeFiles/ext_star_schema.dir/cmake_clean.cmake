file(REMOVE_RECURSE
  "CMakeFiles/ext_star_schema.dir/ext_star_schema.cc.o"
  "CMakeFiles/ext_star_schema.dir/ext_star_schema.cc.o.d"
  "ext_star_schema"
  "ext_star_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_star_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
