# Empty dependencies file for ext_btree_vs_hash.
# This may be replaced when dependencies are built.
