file(REMOVE_RECURSE
  "CMakeFiles/ext_interconnect_whatif.dir/ext_interconnect_whatif.cc.o"
  "CMakeFiles/ext_interconnect_whatif.dir/ext_interconnect_whatif.cc.o.d"
  "ext_interconnect_whatif"
  "ext_interconnect_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interconnect_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
