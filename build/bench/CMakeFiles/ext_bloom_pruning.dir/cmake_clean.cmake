file(REMOVE_RECURSE
  "CMakeFiles/ext_bloom_pruning.dir/ext_bloom_pruning.cc.o"
  "CMakeFiles/ext_bloom_pruning.dir/ext_bloom_pruning.cc.o.d"
  "ext_bloom_pruning"
  "ext_bloom_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bloom_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
