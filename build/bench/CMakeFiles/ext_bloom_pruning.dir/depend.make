# Empty dependencies file for ext_bloom_pruning.
# This may be replaced when dependencies are built.
