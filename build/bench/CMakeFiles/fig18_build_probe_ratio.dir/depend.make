# Empty dependencies file for fig18_build_probe_ratio.
# This may be replaced when dependencies are built.
