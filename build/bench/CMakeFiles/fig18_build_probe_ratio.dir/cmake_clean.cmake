file(REMOVE_RECURSE
  "CMakeFiles/fig18_build_probe_ratio.dir/fig18_build_probe_ratio.cc.o"
  "CMakeFiles/fig18_build_probe_ratio.dir/fig18_build_probe_ratio.cc.o.d"
  "fig18_build_probe_ratio"
  "fig18_build_probe_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_build_probe_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
