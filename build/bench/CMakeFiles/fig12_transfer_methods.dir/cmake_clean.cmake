file(REMOVE_RECURSE
  "CMakeFiles/fig12_transfer_methods.dir/fig12_transfer_methods.cc.o"
  "CMakeFiles/fig12_transfer_methods.dir/fig12_transfer_methods.cc.o.d"
  "fig12_transfer_methods"
  "fig12_transfer_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_transfer_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
