# Empty dependencies file for fig12_transfer_methods.
# This may be replaced when dependencies are built.
