file(REMOVE_RECURSE
  "CMakeFiles/fig20_selectivity.dir/fig20_selectivity.cc.o"
  "CMakeFiles/fig20_selectivity.dir/fig20_selectivity.cc.o.d"
  "fig20_selectivity"
  "fig20_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
