# Empty compiler generated dependencies file for fig20_selectivity.
# This may be replaced when dependencies are built.
