file(REMOVE_RECURSE
  "CMakeFiles/micro_morsel.dir/micro_morsel.cc.o"
  "CMakeFiles/micro_morsel.dir/micro_morsel.cc.o.d"
  "micro_morsel"
  "micro_morsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_morsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
