# Empty dependencies file for micro_morsel.
# This may be replaced when dependencies are built.
