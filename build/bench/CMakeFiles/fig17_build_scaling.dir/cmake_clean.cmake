file(REMOVE_RECURSE
  "CMakeFiles/fig17_build_scaling.dir/fig17_build_scaling.cc.o"
  "CMakeFiles/fig17_build_scaling.dir/fig17_build_scaling.cc.o.d"
  "fig17_build_scaling"
  "fig17_build_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_build_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
