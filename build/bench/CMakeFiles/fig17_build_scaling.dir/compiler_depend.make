# Empty compiler generated dependencies file for fig17_build_scaling.
# This may be replaced when dependencies are built.
