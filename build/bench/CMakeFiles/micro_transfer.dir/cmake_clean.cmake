file(REMOVE_RECURSE
  "CMakeFiles/micro_transfer.dir/micro_transfer.cc.o"
  "CMakeFiles/micro_transfer.dir/micro_transfer.cc.o.d"
  "micro_transfer"
  "micro_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
