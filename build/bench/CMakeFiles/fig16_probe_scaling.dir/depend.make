# Empty dependencies file for fig16_probe_scaling.
# This may be replaced when dependencies are built.
