file(REMOVE_RECURSE
  "CMakeFiles/fig16_probe_scaling.dir/fig16_probe_scaling.cc.o"
  "CMakeFiles/fig16_probe_scaling.dir/fig16_probe_scaling.cc.o.d"
  "fig16_probe_scaling"
  "fig16_probe_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_probe_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
