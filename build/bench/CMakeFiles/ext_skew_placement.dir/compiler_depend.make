# Empty compiler generated dependencies file for ext_skew_placement.
# This may be replaced when dependencies are built.
