file(REMOVE_RECURSE
  "CMakeFiles/ext_skew_placement.dir/ext_skew_placement.cc.o"
  "CMakeFiles/ext_skew_placement.dir/ext_skew_placement.cc.o.d"
  "ext_skew_placement"
  "ext_skew_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_skew_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
