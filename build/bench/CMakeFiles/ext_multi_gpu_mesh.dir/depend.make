# Empty dependencies file for ext_multi_gpu_mesh.
# This may be replaced when dependencies are built.
