file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_gpu_mesh.dir/ext_multi_gpu_mesh.cc.o"
  "CMakeFiles/ext_multi_gpu_mesh.dir/ext_multi_gpu_mesh.cc.o.d"
  "ext_multi_gpu_mesh"
  "ext_multi_gpu_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_gpu_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
