# Empty dependencies file for ext_ssb_queries.
# This may be replaced when dependencies are built.
