file(REMOVE_RECURSE
  "CMakeFiles/ext_ssb_queries.dir/ext_ssb_queries.cc.o"
  "CMakeFiles/ext_ssb_queries.dir/ext_ssb_queries.cc.o.d"
  "ext_ssb_queries"
  "ext_ssb_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ssb_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
