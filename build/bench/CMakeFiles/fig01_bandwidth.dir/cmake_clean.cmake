file(REMOVE_RECURSE
  "CMakeFiles/fig01_bandwidth.dir/fig01_bandwidth.cc.o"
  "CMakeFiles/fig01_bandwidth.dir/fig01_bandwidth.cc.o.d"
  "fig01_bandwidth"
  "fig01_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
