file(REMOVE_RECURSE
  "libpump_gpusim.a"
)
