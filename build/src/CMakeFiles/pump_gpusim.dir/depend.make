# Empty dependencies file for pump_gpusim.
# This may be replaced when dependencies are built.
