file(REMOVE_RECURSE
  "CMakeFiles/pump_gpusim.dir/gpusim/occupancy.cc.o"
  "CMakeFiles/pump_gpusim.dir/gpusim/occupancy.cc.o.d"
  "libpump_gpusim.a"
  "libpump_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
