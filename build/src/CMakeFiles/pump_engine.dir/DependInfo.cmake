
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/advisor.cc" "src/CMakeFiles/pump_engine.dir/engine/advisor.cc.o" "gcc" "src/CMakeFiles/pump_engine.dir/engine/advisor.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/pump_engine.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/pump_engine.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/ssb.cc" "src/CMakeFiles/pump_engine.dir/engine/ssb.cc.o" "gcc" "src/CMakeFiles/pump_engine.dir/engine/ssb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_join.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
