# Empty compiler generated dependencies file for pump_engine.
# This may be replaced when dependencies are built.
