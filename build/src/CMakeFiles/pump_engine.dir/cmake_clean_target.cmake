file(REMOVE_RECURSE
  "libpump_engine.a"
)
