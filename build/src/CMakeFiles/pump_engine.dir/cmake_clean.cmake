file(REMOVE_RECURSE
  "CMakeFiles/pump_engine.dir/engine/advisor.cc.o"
  "CMakeFiles/pump_engine.dir/engine/advisor.cc.o.d"
  "CMakeFiles/pump_engine.dir/engine/executor.cc.o"
  "CMakeFiles/pump_engine.dir/engine/executor.cc.o.d"
  "CMakeFiles/pump_engine.dir/engine/ssb.cc.o"
  "CMakeFiles/pump_engine.dir/engine/ssb.cc.o.d"
  "libpump_engine.a"
  "libpump_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
