file(REMOVE_RECURSE
  "libpump_ops.a"
)
