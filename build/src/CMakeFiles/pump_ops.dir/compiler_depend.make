# Empty compiler generated dependencies file for pump_ops.
# This may be replaced when dependencies are built.
