file(REMOVE_RECURSE
  "CMakeFiles/pump_ops.dir/ops/q6.cc.o"
  "CMakeFiles/pump_ops.dir/ops/q6.cc.o.d"
  "CMakeFiles/pump_ops.dir/ops/q6_model.cc.o"
  "CMakeFiles/pump_ops.dir/ops/q6_model.cc.o.d"
  "libpump_ops.a"
  "libpump_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
