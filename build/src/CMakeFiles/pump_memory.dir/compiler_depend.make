# Empty compiler generated dependencies file for pump_memory.
# This may be replaced when dependencies are built.
