file(REMOVE_RECURSE
  "CMakeFiles/pump_memory.dir/memory/allocator.cc.o"
  "CMakeFiles/pump_memory.dir/memory/allocator.cc.o.d"
  "CMakeFiles/pump_memory.dir/memory/buffer.cc.o"
  "CMakeFiles/pump_memory.dir/memory/buffer.cc.o.d"
  "CMakeFiles/pump_memory.dir/memory/unified.cc.o"
  "CMakeFiles/pump_memory.dir/memory/unified.cc.o.d"
  "libpump_memory.a"
  "libpump_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
