file(REMOVE_RECURSE
  "libpump_memory.a"
)
