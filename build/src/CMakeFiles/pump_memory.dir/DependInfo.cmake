
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/allocator.cc" "src/CMakeFiles/pump_memory.dir/memory/allocator.cc.o" "gcc" "src/CMakeFiles/pump_memory.dir/memory/allocator.cc.o.d"
  "/root/repo/src/memory/buffer.cc" "src/CMakeFiles/pump_memory.dir/memory/buffer.cc.o" "gcc" "src/CMakeFiles/pump_memory.dir/memory/buffer.cc.o.d"
  "/root/repo/src/memory/unified.cc" "src/CMakeFiles/pump_memory.dir/memory/unified.cc.o" "gcc" "src/CMakeFiles/pump_memory.dir/memory/unified.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
