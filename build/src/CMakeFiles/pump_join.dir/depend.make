# Empty dependencies file for pump_join.
# This may be replaced when dependencies are built.
