file(REMOVE_RECURSE
  "CMakeFiles/pump_join.dir/join/coprocess.cc.o"
  "CMakeFiles/pump_join.dir/join/coprocess.cc.o.d"
  "CMakeFiles/pump_join.dir/join/cost_model.cc.o"
  "CMakeFiles/pump_join.dir/join/cost_model.cc.o.d"
  "CMakeFiles/pump_join.dir/join/partitioned_gpu.cc.o"
  "CMakeFiles/pump_join.dir/join/partitioned_gpu.cc.o.d"
  "CMakeFiles/pump_join.dir/join/star_model.cc.o"
  "CMakeFiles/pump_join.dir/join/star_model.cc.o.d"
  "libpump_join.a"
  "libpump_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
