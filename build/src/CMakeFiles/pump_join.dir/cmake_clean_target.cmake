file(REMOVE_RECURSE
  "libpump_join.a"
)
