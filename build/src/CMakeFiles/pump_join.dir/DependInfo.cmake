
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/coprocess.cc" "src/CMakeFiles/pump_join.dir/join/coprocess.cc.o" "gcc" "src/CMakeFiles/pump_join.dir/join/coprocess.cc.o.d"
  "/root/repo/src/join/cost_model.cc" "src/CMakeFiles/pump_join.dir/join/cost_model.cc.o" "gcc" "src/CMakeFiles/pump_join.dir/join/cost_model.cc.o.d"
  "/root/repo/src/join/partitioned_gpu.cc" "src/CMakeFiles/pump_join.dir/join/partitioned_gpu.cc.o" "gcc" "src/CMakeFiles/pump_join.dir/join/partitioned_gpu.cc.o.d"
  "/root/repo/src/join/star_model.cc" "src/CMakeFiles/pump_join.dir/join/star_model.cc.o" "gcc" "src/CMakeFiles/pump_join.dir/join/star_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
