# Empty dependencies file for pump_bench_support.
# This may be replaced when dependencies are built.
