file(REMOVE_RECURSE
  "libpump_bench_support.a"
)
