file(REMOVE_RECURSE
  "CMakeFiles/pump_bench_support.dir/bench_support/harness.cc.o"
  "CMakeFiles/pump_bench_support.dir/bench_support/harness.cc.o.d"
  "libpump_bench_support.a"
  "libpump_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
