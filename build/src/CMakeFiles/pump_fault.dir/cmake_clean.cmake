file(REMOVE_RECURSE
  "CMakeFiles/pump_fault.dir/fault/fault_injector.cc.o"
  "CMakeFiles/pump_fault.dir/fault/fault_injector.cc.o.d"
  "CMakeFiles/pump_fault.dir/fault/retry.cc.o"
  "CMakeFiles/pump_fault.dir/fault/retry.cc.o.d"
  "libpump_fault.a"
  "libpump_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
