
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/fault_injector.cc" "src/CMakeFiles/pump_fault.dir/fault/fault_injector.cc.o" "gcc" "src/CMakeFiles/pump_fault.dir/fault/fault_injector.cc.o.d"
  "/root/repo/src/fault/retry.cc" "src/CMakeFiles/pump_fault.dir/fault/retry.cc.o" "gcc" "src/CMakeFiles/pump_fault.dir/fault/retry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
