# Empty dependencies file for pump_fault.
# This may be replaced when dependencies are built.
