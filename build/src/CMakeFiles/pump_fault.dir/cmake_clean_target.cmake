file(REMOVE_RECURSE
  "libpump_fault.a"
)
