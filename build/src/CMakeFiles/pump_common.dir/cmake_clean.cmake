file(REMOVE_RECURSE
  "CMakeFiles/pump_common.dir/common/statistics.cc.o"
  "CMakeFiles/pump_common.dir/common/statistics.cc.o.d"
  "CMakeFiles/pump_common.dir/common/status.cc.o"
  "CMakeFiles/pump_common.dir/common/status.cc.o.d"
  "CMakeFiles/pump_common.dir/common/table_printer.cc.o"
  "CMakeFiles/pump_common.dir/common/table_printer.cc.o.d"
  "libpump_common.a"
  "libpump_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
