file(REMOVE_RECURSE
  "libpump_common.a"
)
