# Empty dependencies file for pump_common.
# This may be replaced when dependencies are built.
