file(REMOVE_RECURSE
  "CMakeFiles/pump_hw.dir/hw/device.cc.o"
  "CMakeFiles/pump_hw.dir/hw/device.cc.o.d"
  "CMakeFiles/pump_hw.dir/hw/link.cc.o"
  "CMakeFiles/pump_hw.dir/hw/link.cc.o.d"
  "CMakeFiles/pump_hw.dir/hw/memory_spec.cc.o"
  "CMakeFiles/pump_hw.dir/hw/memory_spec.cc.o.d"
  "CMakeFiles/pump_hw.dir/hw/system_profile.cc.o"
  "CMakeFiles/pump_hw.dir/hw/system_profile.cc.o.d"
  "CMakeFiles/pump_hw.dir/hw/topology.cc.o"
  "CMakeFiles/pump_hw.dir/hw/topology.cc.o.d"
  "libpump_hw.a"
  "libpump_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
