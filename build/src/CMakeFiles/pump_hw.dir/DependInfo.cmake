
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device.cc" "src/CMakeFiles/pump_hw.dir/hw/device.cc.o" "gcc" "src/CMakeFiles/pump_hw.dir/hw/device.cc.o.d"
  "/root/repo/src/hw/link.cc" "src/CMakeFiles/pump_hw.dir/hw/link.cc.o" "gcc" "src/CMakeFiles/pump_hw.dir/hw/link.cc.o.d"
  "/root/repo/src/hw/memory_spec.cc" "src/CMakeFiles/pump_hw.dir/hw/memory_spec.cc.o" "gcc" "src/CMakeFiles/pump_hw.dir/hw/memory_spec.cc.o.d"
  "/root/repo/src/hw/system_profile.cc" "src/CMakeFiles/pump_hw.dir/hw/system_profile.cc.o" "gcc" "src/CMakeFiles/pump_hw.dir/hw/system_profile.cc.o.d"
  "/root/repo/src/hw/topology.cc" "src/CMakeFiles/pump_hw.dir/hw/topology.cc.o" "gcc" "src/CMakeFiles/pump_hw.dir/hw/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
