file(REMOVE_RECURSE
  "libpump_hw.a"
)
