# Empty compiler generated dependencies file for pump_hw.
# This may be replaced when dependencies are built.
