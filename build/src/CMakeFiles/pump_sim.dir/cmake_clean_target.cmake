file(REMOVE_RECURSE
  "libpump_sim.a"
)
