# Empty dependencies file for pump_sim.
# This may be replaced when dependencies are built.
