
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/access_path.cc" "src/CMakeFiles/pump_sim.dir/sim/access_path.cc.o" "gcc" "src/CMakeFiles/pump_sim.dir/sim/access_path.cc.o.d"
  "/root/repo/src/sim/cache_model.cc" "src/CMakeFiles/pump_sim.dir/sim/cache_model.cc.o" "gcc" "src/CMakeFiles/pump_sim.dir/sim/cache_model.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/CMakeFiles/pump_sim.dir/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/pump_sim.dir/sim/event_sim.cc.o.d"
  "/root/repo/src/sim/lru.cc" "src/CMakeFiles/pump_sim.dir/sim/lru.cc.o" "gcc" "src/CMakeFiles/pump_sim.dir/sim/lru.cc.o.d"
  "/root/repo/src/sim/overlap.cc" "src/CMakeFiles/pump_sim.dir/sim/overlap.cc.o" "gcc" "src/CMakeFiles/pump_sim.dir/sim/overlap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
