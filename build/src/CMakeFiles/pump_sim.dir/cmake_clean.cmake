file(REMOVE_RECURSE
  "CMakeFiles/pump_sim.dir/sim/access_path.cc.o"
  "CMakeFiles/pump_sim.dir/sim/access_path.cc.o.d"
  "CMakeFiles/pump_sim.dir/sim/cache_model.cc.o"
  "CMakeFiles/pump_sim.dir/sim/cache_model.cc.o.d"
  "CMakeFiles/pump_sim.dir/sim/event_sim.cc.o"
  "CMakeFiles/pump_sim.dir/sim/event_sim.cc.o.d"
  "CMakeFiles/pump_sim.dir/sim/lru.cc.o"
  "CMakeFiles/pump_sim.dir/sim/lru.cc.o.d"
  "CMakeFiles/pump_sim.dir/sim/overlap.cc.o"
  "CMakeFiles/pump_sim.dir/sim/overlap.cc.o.d"
  "libpump_sim.a"
  "libpump_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
