file(REMOVE_RECURSE
  "libpump_transfer.a"
)
