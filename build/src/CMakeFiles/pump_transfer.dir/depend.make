# Empty dependencies file for pump_transfer.
# This may be replaced when dependencies are built.
