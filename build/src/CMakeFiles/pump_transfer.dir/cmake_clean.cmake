file(REMOVE_RECURSE
  "CMakeFiles/pump_transfer.dir/transfer/executor.cc.o"
  "CMakeFiles/pump_transfer.dir/transfer/executor.cc.o.d"
  "CMakeFiles/pump_transfer.dir/transfer/method.cc.o"
  "CMakeFiles/pump_transfer.dir/transfer/method.cc.o.d"
  "CMakeFiles/pump_transfer.dir/transfer/pipeline.cc.o"
  "CMakeFiles/pump_transfer.dir/transfer/pipeline.cc.o.d"
  "CMakeFiles/pump_transfer.dir/transfer/transfer_model.cc.o"
  "CMakeFiles/pump_transfer.dir/transfer/transfer_model.cc.o.d"
  "libpump_transfer.a"
  "libpump_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
