file(REMOVE_RECURSE
  "libpump_data.a"
)
