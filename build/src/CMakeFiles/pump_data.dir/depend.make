# Empty dependencies file for pump_data.
# This may be replaced when dependencies are built.
