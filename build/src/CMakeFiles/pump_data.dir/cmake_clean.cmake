file(REMOVE_RECURSE
  "CMakeFiles/pump_data.dir/data/tpch.cc.o"
  "CMakeFiles/pump_data.dir/data/tpch.cc.o.d"
  "CMakeFiles/pump_data.dir/data/workloads.cc.o"
  "CMakeFiles/pump_data.dir/data/workloads.cc.o.d"
  "CMakeFiles/pump_data.dir/data/zipf.cc.o"
  "CMakeFiles/pump_data.dir/data/zipf.cc.o.d"
  "libpump_data.a"
  "libpump_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
