
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/het_scheduler.cc" "src/CMakeFiles/pump_exec.dir/exec/het_scheduler.cc.o" "gcc" "src/CMakeFiles/pump_exec.dir/exec/het_scheduler.cc.o.d"
  "/root/repo/src/exec/parallel.cc" "src/CMakeFiles/pump_exec.dir/exec/parallel.cc.o" "gcc" "src/CMakeFiles/pump_exec.dir/exec/parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pump_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pump_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
