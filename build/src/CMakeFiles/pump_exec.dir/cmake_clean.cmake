file(REMOVE_RECURSE
  "CMakeFiles/pump_exec.dir/exec/het_scheduler.cc.o"
  "CMakeFiles/pump_exec.dir/exec/het_scheduler.cc.o.d"
  "CMakeFiles/pump_exec.dir/exec/parallel.cc.o"
  "CMakeFiles/pump_exec.dir/exec/parallel.cc.o.d"
  "libpump_exec.a"
  "libpump_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
