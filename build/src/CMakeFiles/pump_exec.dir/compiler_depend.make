# Empty compiler generated dependencies file for pump_exec.
# This may be replaced when dependencies are built.
