file(REMOVE_RECURSE
  "libpump_exec.a"
)
