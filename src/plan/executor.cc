#include "plan/executor.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "exec/het_scheduler.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "fault/fault_injector.h"
#include "hw/topology.h"
#include "memory/allocator.h"
#include "plan/operators.h"
#include "transfer/executor.h"

namespace pump::plan {

namespace {

/// Joins accumulated degradation reasons into the report.
void FinishReasons(const std::vector<std::string>& reasons,
                   engine::ExecReport* report) {
  if (reasons.empty()) return;
  report->degraded = true;
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    if (!report->degradation_reason.empty()) {
      report->degradation_reason += "; ";
    }
    report->degradation_reason += reasons[i];
  }
}

/// Build stage: every build pipeline runs exactly once and its table is
/// cached for all later rungs of the ladder. GPU-placed builds model
/// their device allocation (spilling on injected OOM); a build that
/// cannot obtain any device placement is re-placed on the CPU without
/// discarding the functional table.
Result<std::vector<DimensionTable>> RunBuildPipelines(
    const PhysicalPlan& plan, const engine::ExecOptions& options,
    engine::ExecReport* report, std::vector<std::string>* reasons) {
  std::vector<DimensionTable> tables;
  tables.reserve(plan.builds.size());
  for (const BuildPipeline& build : plan.builds) {
    PUMP_ASSIGN_OR_RETURN(DimensionTable table, DimensionTable::Build(build));
    tables.push_back(std::move(table));
    ++report->dim_tables_built;
  }

  bool any_gpu_build = false;
  for (const BuildPipeline& build : plan.builds) {
    if (build.placement != PipelinePlacement::kCpu) any_gpu_build = true;
  }
  if (!any_gpu_build) return tables;

  // Modelled placement on the AC922 topology: device allocation probes
  // the alloc.device failpoint and spills the remainder to CPU memory
  // (rung 2). The functional build stays on the host, mirroring the
  // repo-wide functional/model split.
  hw::Topology topology = hw::IbmAc922();
  memory::MemoryManager manager(&topology, /*materialize=*/false);
  std::vector<memory::Buffer> placements;
  for (const BuildPipeline& build : plan.builds) {
    if (build.placement == PipelinePlacement::kCpu) continue;
    Status admitted = Status::OK();
    if (options.injector != nullptr) {
      admitted = options.injector->Check(fault::kPlanPipeline, "build");
    }
    Result<memory::Buffer> placement =
        admitted.ok()
            ? manager.AllocateHybrid(
                  std::max<std::uint64_t>(16, build.table_bytes), hw::kGpu0,
                  0, options.injector)
            : Result<memory::Buffer>(admitted);
    if (!placement.ok()) {
      // Per-pipeline rung 3: this build loses its GPU placement but its
      // cached table survives for the CPU-side probe.
      reasons->push_back("build pipeline '" + build.key_column +
                         "' lost its GPU placement (" +
                         placement.status().ToString() +
                         "); re-placed on CPU");
      continue;
    }
    report->hybrid_gpu_fraction =
        std::min(report->hybrid_gpu_fraction,
                 placement.value().FractionOnNode(hw::kGpu0));
    placements.push_back(std::move(placement).value());
  }
  if (!plan.builds.empty() && report->hybrid_gpu_fraction < 1.0) {
    reasons->push_back(
        "hybrid hash table spilled to CPU memory (GPU fraction " +
        std::to_string(report->hybrid_gpu_fraction) + ")");
  }
  return tables;
}

/// CPU probe pipeline: morsel-parallel with hierarchical work stealing,
/// identical to the reference executor's host plan.
Result<engine::QueryResult> RunProbeCpu(const PhysicalPlan& plan,
                                        const engine::ExecOptions& options,
                                        const std::vector<DimensionTable>&
                                            tables) {
  const engine::Table& fact = *plan.query->fact;
  auto source = [&fact](const std::string& name)
      -> Result<const std::int64_t*> {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(name));
    return column->data();
  };
  PUMP_ASSIGN_OR_RETURN(BoundProbe bound, BindProbe(plan, tables, source));

  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  exec::WorkStealingDispatcher dispatcher(fact.rows(),
                                          options.morsel_tuples, workers);
  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  exec::ParallelFor(workers, [&](std::size_t w) {
    std::uint64_t rows = 0;
    std::int64_t sum = 0;
    while (auto morsel = dispatcher.Next(w)) {
      ProcessRange(bound, morsel->begin, morsel->end, &rows, &sum);
    }
    total_rows.fetch_add(rows, std::memory_order_relaxed);
    total_sum.fetch_add(sum, std::memory_order_relaxed);
  });
  return engine::QueryResult{total_rows.load(), total_sum.load()};
}

/// GPU / heterogeneous probe pipeline: fact columns staged chunk-wise
/// with per-chunk retry (rung 1), then the morsel scheduler drives a GPU
/// proxy group — plus the CPU worker group for heterogeneous placements
/// — with group failover. Any error is an unrecoverable pipeline fault
/// the caller re-places on the CPU.
Status RunProbeGpu(const PhysicalPlan& plan,
                   const engine::ExecOptions& options,
                   const std::vector<DimensionTable>& tables,
                   engine::ExecReport* report,
                   std::vector<std::string>* reasons) {
  const engine::Table& fact = *plan.query->fact;
  const std::size_t rows = fact.rows();
  if (options.injector != nullptr) {
    PUMP_RETURN_NOT_OK(options.injector->Check(fault::kPlanPipeline,
                                               "probe"));
  }

  const transfer::TransferFaultOptions fault_options{options.injector,
                                                     options.retry};
  std::vector<memory::Buffer> device_columns;
  auto source = [&](const std::string& name)
      -> Result<const std::int64_t*> {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(name));
    const std::uint64_t bytes = column->size() * sizeof(std::int64_t);
    if (bytes == 0) return static_cast<const std::int64_t*>(nullptr);
    transfer::TransferStats stats;
    PUMP_ASSIGN_OR_RETURN(
        memory::Buffer device,
        transfer::StageToDevice(column->data(), bytes, hw::kGpu0,
                                options.chunk_bytes, options.os_page_bytes,
                                fault_options, &stats));
    report->transfer_retries += stats.retries;
    report->faults_injected += stats.faults_injected;
    report->modelled_backoff_s += stats.modelled_backoff_s;
    device_columns.push_back(std::move(device));
    return device_columns.back().as<const std::int64_t>();
  };
  PUMP_ASSIGN_OR_RETURN(BoundProbe bound, BindProbe(plan, tables, source));

  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  auto work = [&](std::size_t begin, std::size_t end) {
    std::uint64_t range_rows = 0;
    std::int64_t range_sum = 0;
    ProcessRange(bound, begin, end, &range_rows, &range_sum);
    total_rows.fetch_add(range_rows, std::memory_order_relaxed);
    total_sum.fetch_add(range_sum, std::memory_order_relaxed);
  };
  std::vector<exec::ProcessorGroup> groups;
  if (plan.probe.placement == PipelinePlacement::kHeterogeneous) {
    groups.push_back(
        {"CPU", std::max<std::size_t>(1, options.workers), 1, work});
  }
  groups.push_back({"GPU", 1, exec::kDefaultGpuBatchMorsels, work});
  const std::vector<exec::GroupStats> group_stats = exec::RunHeterogeneous(
      rows, options.morsel_tuples, std::move(groups), options.injector);

  std::size_t processed = 0;
  for (const exec::GroupStats& group : group_stats) {
    processed += group.tuples;
    report->failover_tuples += group.failover_tuples;
    if (group.failed) {
      reasons->push_back("processor group '" + group.name +
                         "' stalled; its morsels failed over");
    }
  }
  if (processed != rows) {
    return Status::Unavailable(
        "all processor groups failed; " + std::to_string(rows - processed) +
        " tuples unprocessed");
  }
  report->result = engine::QueryResult{total_rows.load(), total_sum.load()};
  return Status::OK();
}

}  // namespace

Result<engine::ExecReport> ExecutePlan(const PhysicalPlan& plan,
                                       const engine::ExecOptions& options) {
  if (plan.query == nullptr || plan.query->fact == nullptr) {
    return Status::InvalidArgument("plan has no compiled query");
  }
  engine::ExecReport report;
  std::vector<std::string> reasons;

  // Build stage (cached across the whole ladder).
  PUMP_ASSIGN_OR_RETURN(
      const std::vector<DimensionTable> tables,
      RunBuildPipelines(plan, options, &report, &reasons));

  // Probe stage, per-pipeline ladder.
  if (plan.probe.placement != PipelinePlacement::kCpu) {
    const Status gpu_status =
        RunProbeGpu(plan, options, tables, &report, &reasons);
    if (gpu_status.ok()) {
      report.used_gpu = true;
      FinishReasons(reasons, &report);
      return report;
    }
    // Rung 3, scoped to this pipeline: re-place the probe on the CPU,
    // reusing every cached build instead of rebuilding (the old fused
    // path rebuilt all dimension tables here).
    const std::size_t built = report.dim_tables_built;
    report = engine::ExecReport{};
    report.dim_tables_built = built;
    report.dim_tables_reused = tables.size();
    report.degraded = true;
    report.degradation_reason =
        "probe pipeline failed on GPU (" + gpu_status.ToString() +
        "); fell back to CPU plan, reusing " +
        std::to_string(tables.size()) + " cached build pipelines";
    PUMP_ASSIGN_OR_RETURN(report.result,
                          RunProbeCpu(plan, options, tables));
    report.used_gpu = false;
    return report;
  }

  PUMP_ASSIGN_OR_RETURN(report.result, RunProbeCpu(plan, options, tables));
  report.used_gpu = false;
  FinishReasons(reasons, &report);
  return report;
}

}  // namespace pump::plan
