#include "plan/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "common/cancel.h"
#include "exec/het_scheduler.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "fault/fault_injector.h"
#include "hw/system_profile.h"
#include "hw/topology.h"
#include "memory/allocator.h"
#include "obs/metrics.h"
#include "obs/query_context.h"
#include "obs/trace.h"
#include "plan/build_cache.h"
#include "plan/operators.h"
#include "transfer/executor.h"

namespace pump::plan {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PlanCounters {
  obs::Counter& queries;
  obs::Counter& build_pipelines;
  obs::Counter& probe_pipelines;
  obs::Counter& dim_tables_built;
  obs::Counter& dim_tables_reused;
  obs::Counter& replacements;
  obs::Counter& morsels;
  obs::Histogram& pipeline_us;
  obs::Histogram& morsel_tuples;
};

PlanCounters& Counters() {
  static PlanCounters counters{
      obs::MetricsRegistry::Instance().GetCounter("plan.queries"),
      obs::MetricsRegistry::Instance().GetCounter("plan.pipelines.build"),
      obs::MetricsRegistry::Instance().GetCounter("plan.pipelines.probe"),
      obs::MetricsRegistry::Instance().GetCounter("plan.dim_tables_built"),
      obs::MetricsRegistry::Instance().GetCounter("plan.dim_tables_reused"),
      obs::MetricsRegistry::Instance().GetCounter("plan.replacements"),
      obs::MetricsRegistry::Instance().GetCounter("plan.morsels"),
      obs::MetricsRegistry::Instance().GetHistogram("plan.pipeline_us"),
      obs::MetricsRegistry::Instance().GetHistogram("plan.morsel_tuples")};
  return counters;
}

void ChargePipelineTime(engine::PipelineOutcome* row, double seconds) {
  row->measured_s += seconds;
  Counters().pipeline_us.Record(
      static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e6));
}

/// Initializes the per-pipeline outcome rows from the compiled plan:
/// builds in plan order, then the probe. Placements start as planned;
/// the ladder updates `placement_used` when it re-places a pipeline.
void InitPipelineRows(const PhysicalPlan& plan,
                      engine::ExecReport* report) {
  report->pipelines.reserve(plan.builds.size() + 1);
  for (std::size_t i = 0; i < plan.builds.size(); ++i) {
    engine::PipelineOutcome row;
    row.name = "build[" + std::to_string(i) + "]";
    row.kind = "build";
    row.placement_planned = ToString(plan.builds[i].placement);
    row.placement_used = row.placement_planned;
    row.predicted_s = plan.builds[i].modelled_cost_s;
    report->pipelines.push_back(std::move(row));
  }
  engine::PipelineOutcome probe;
  probe.name = "probe";
  probe.kind = "probe";
  probe.placement_planned = ToString(plan.probe.placement);
  probe.placement_used = probe.placement_planned;
  probe.predicted_s = plan.probe.modelled_cost_s;
  report->pipelines.push_back(std::move(probe));
}

/// Joins accumulated degradation reasons into the report.
void FinishReasons(const std::vector<std::string>& reasons,
                   engine::ExecReport* report) {
  if (reasons.empty()) return;
  report->degraded = true;
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    if (!report->degradation_reason.empty()) {
      report->degradation_reason += "; ";
    }
    report->degradation_reason += reasons[i];
  }
}

using TableHandles = std::vector<std::shared_ptr<const DimensionTable>>;

/// Build stage: every build pipeline runs exactly once per query and its
/// table is cached for all later rungs of the ladder. With a process-wide
/// BuildCache in the options, builds are further deduplicated *across*
/// queries: a cache hit reuses a sibling query's table (reported as
/// dim_tables_reused), a miss builds through the cache's single-flight
/// slot. GPU-placed builds model their device allocation (spilling on
/// injected OOM); a build that cannot obtain any device placement is
/// re-placed on the CPU without discarding the functional table.
Result<TableHandles> RunBuildPipelines(
    const PhysicalPlan& plan, const engine::ExecOptions& options,
    engine::ExecReport* report, std::vector<std::string>* reasons) {
  TableHandles tables;
  tables.reserve(plan.builds.size());
  for (std::size_t i = 0; i < plan.builds.size(); ++i) {
    const BuildPipeline& build = plan.builds[i];
    if (options.cancel != nullptr && options.cancel->Cancelled()) {
      return options.cancel->ToStatus();
    }
    PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "pipeline.build",
                    static_cast<double>(build.join_index),
                    static_cast<double>(build.keys.rows));
    const auto start = Clock::now();
    bool cache_hit = false;
    std::shared_ptr<const DimensionTable> table;
    if (options.build_cache != nullptr) {
      PUMP_ASSIGN_OR_RETURN(
          table, options.build_cache->GetOrBuild(build, &cache_hit));
    } else {
      Result<DimensionTable> built = DimensionTable::Build(build);
      PUMP_RETURN_NOT_OK(built.status());
      table =
          std::make_shared<const DimensionTable>(std::move(built).value());
    }
    tables.push_back(std::move(table));
    if (cache_hit) {
      ++report->dim_tables_reused;
      Counters().dim_tables_reused.Add();
    } else {
      ++report->dim_tables_built;
      Counters().dim_tables_built.Add();
    }
    Counters().build_pipelines.Add();
    ChargePipelineTime(&report->pipelines[i], SecondsSince(start));
  }

  bool any_gpu_build = false;
  for (const BuildPipeline& build : plan.builds) {
    if (build.placement != PipelinePlacement::kCpu) any_gpu_build = true;
  }
  if (!any_gpu_build) return tables;

  // Modelled placement on the plan's topology (default AC922): device
  // allocation probes the alloc.device failpoint and spills the
  // remainder to CPU memory (rung 2). The functional build stays on the
  // host, mirroring the repo-wide functional/model split. A sharded
  // build hash-partitions its table across its device set, so each
  // device models an even fragment.
  hw::Topology topology =
      plan.profile != nullptr ? plan.profile->topology : hw::IbmAc922();
  memory::MemoryManager manager(&topology, /*materialize=*/false);
  std::vector<memory::Buffer> placements;
  for (std::size_t i = 0; i < plan.builds.size(); ++i) {
    const BuildPipeline& build = plan.builds[i];
    if (build.placement == PipelinePlacement::kCpu) continue;
    PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "pipeline.build.place",
                    static_cast<double>(build.join_index),
                    static_cast<double>(build.table_bytes));
    const auto start = Clock::now();
    const DeviceSet devices = build.device_set.empty()
                                  ? DeviceSet{hw::kGpu0}
                                  : build.device_set;
    const std::uint64_t fragment_bytes = std::max<std::uint64_t>(
        16, build.table_bytes / devices.size());
    Status failed = Status::OK();
    for (const hw::DeviceId device : devices) {
      Status admitted = Status::OK();
      if (options.injector != nullptr) {
        admitted = options.injector->Check(fault::kPlanPipeline, "build");
      }
      Result<memory::Buffer> placement =
          admitted.ok() ? manager.AllocateHybrid(fragment_bytes, device, 0,
                                                 options.injector)
                        : Result<memory::Buffer>(admitted);
      if (!placement.ok()) {
        failed = placement.status();
        break;
      }
      report->hybrid_gpu_fraction =
          std::min(report->hybrid_gpu_fraction,
                   placement.value().FractionOnNode(device));
      placements.push_back(std::move(placement).value());
    }
    report->pipelines[i].measured_s += SecondsSince(start);
    if (!failed.ok()) {
      // Per-pipeline rung 3: this build loses its GPU placement but its
      // cached table survives for the CPU-side probe.
      report->pipelines[i].placement_used =
          ToString(PipelinePlacement::kCpu);
      ++report->pipelines[i].attempts;
      Counters().replacements.Add();
      PUMP_TRACE_INSTANT(obs::TraceCategory::kPlan, "plan.replace",
                         static_cast<double>(build.join_index));
      reasons->push_back("build pipeline '" + build.key_column +
                         "' lost its GPU placement (" + failed.ToString() +
                         "); re-placed on CPU");
      continue;
    }
  }
  if (!plan.builds.empty() && report->hybrid_gpu_fraction < 1.0) {
    reasons->push_back(
        "hybrid hash table spilled to CPU memory (GPU fraction " +
        std::to_string(report->hybrid_gpu_fraction) + ")");
  }
  return tables;
}

/// CPU probe pipeline: morsel-parallel with hierarchical work stealing,
/// identical to the reference executor's host plan. Workers poll the
/// cancel token before every morsel claim, so a cancelled query stops
/// within one morsel per worker and the call returns the token's status.
Result<engine::QueryResult> RunProbeCpu(const PhysicalPlan& plan,
                                        const engine::ExecOptions& options,
                                        const TableHandles& tables) {
  const engine::Table& fact = *plan.query->fact;
  auto source = [&fact](const std::string& name)
      -> Result<const std::int64_t*> {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(name));
    return column->data();
  };
  PUMP_ASSIGN_OR_RETURN(BoundProbe bound, BindProbe(plan, tables, source));

  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  const CancelToken* cancel = options.cancel;
  exec::WorkStealingDispatcher dispatcher(fact.rows(),
                                          options.morsel_tuples, workers);
  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  exec::ParallelFor(workers, [&](std::size_t w) {
    PUMP_TRACE_SPAN(obs::TraceCategory::kHash, "hash.probe",
                    static_cast<double>(w),
                    static_cast<double>(bound.probes.size()));
    std::uint64_t rows = 0;
    std::int64_t sum = 0;
    std::uint64_t claimed = 0;
    // Cancel poll precedes the claim: a worker observing the token fired
    // exits without touching the dispatcher, so an already-expired query
    // claims zero morsels and a mid-flight one at most one per worker.
    while (!(cancel != nullptr && cancel->Cancelled())) {
      auto morsel = dispatcher.Next(w);
      if (!morsel) break;
      PUMP_TRACE_SPAN(obs::TraceCategory::kExec, "morsel",
                      static_cast<double>(morsel->begin),
                      static_cast<double>(morsel->size()));
      ++claimed;
      Counters().morsel_tuples.Record(morsel->size());
      ProcessRange(bound, morsel->begin, morsel->end, &rows, &sum);
    }
    Counters().morsels.Add(claimed);
    total_rows.fetch_add(rows, std::memory_order_relaxed);
    total_sum.fetch_add(sum, std::memory_order_relaxed);
  });
  if (cancel != nullptr) PUMP_RETURN_NOT_OK(cancel->ToStatus());
  return engine::QueryResult{total_rows.load(), total_sum.load()};
}

/// GPU / heterogeneous probe pipeline: fact columns staged chunk-wise
/// with per-chunk retry (rung 1), then the morsel scheduler drives a GPU
/// proxy group — plus the CPU worker group for heterogeneous placements
/// — with group failover. Any error is an unrecoverable pipeline fault
/// the caller re-places on the CPU.
Status RunProbeGpu(const PhysicalPlan& plan,
                   const engine::ExecOptions& options,
                   const TableHandles& tables,
                   engine::ExecReport* report,
                   std::vector<std::string>* reasons) {
  const engine::Table& fact = *plan.query->fact;
  const std::size_t rows = fact.rows();
  engine::PipelineOutcome& probe_row = report->pipelines.back();
  if (options.injector != nullptr) {
    PUMP_RETURN_NOT_OK(options.injector->Check(fault::kPlanPipeline,
                                               "probe"));
  }

  const transfer::TransferFaultOptions fault_options{options.injector,
                                                     options.retry};
  std::vector<memory::Buffer> device_columns;
  auto source = [&](const std::string& name)
      -> Result<const std::int64_t*> {
    if (options.cancel != nullptr && options.cancel->Cancelled()) {
      return options.cancel->ToStatus();
    }
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(name));
    const std::uint64_t bytes = column->size() * sizeof(std::int64_t);
    if (bytes == 0) return static_cast<const std::int64_t*>(nullptr);
    PUMP_TRACE_SPAN(obs::TraceCategory::kTransfer, "stage.column",
                    static_cast<double>(bytes),
                    static_cast<double>(hw::kGpu0));
    transfer::TransferStats stats;
    PUMP_ASSIGN_OR_RETURN(
        memory::Buffer device,
        transfer::StageToDevice(column->data(), bytes, hw::kGpu0,
                                options.chunk_bytes, options.os_page_bytes,
                                fault_options, &stats));
    report->transfer_retries += stats.retries;
    report->faults_injected += stats.faults_injected;
    report->modelled_backoff_s += stats.modelled_backoff_s;
    probe_row.retries += stats.retries;
    probe_row.faults_injected += stats.faults_injected;
    device_columns.push_back(std::move(device));
    return device_columns.back().as<const std::int64_t>();
  };
  PUMP_ASSIGN_OR_RETURN(BoundProbe bound, BindProbe(plan, tables, source));

  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  const std::size_t slice_tuples =
      std::max<std::size_t>(1, options.morsel_tuples);
  auto work = [&](std::size_t begin, std::size_t end) {
    PUMP_TRACE_SPAN(obs::TraceCategory::kExec, "morsel",
                    static_cast<double>(begin),
                    static_cast<double>(end - begin));
    std::uint64_t range_rows = 0;
    std::int64_t range_sum = 0;
    // A GPU batch spans many morsels; slice it so cancellation is still
    // observed at morsel granularity inside a claimed batch.
    for (std::size_t slice = begin; slice < end;) {
      if (options.cancel != nullptr && options.cancel->Cancelled()) break;
      const std::size_t slice_end = std::min(slice + slice_tuples, end);
      ProcessRange(bound, slice, slice_end, &range_rows, &range_sum);
      slice = slice_end;
    }
    total_rows.fetch_add(range_rows, std::memory_order_relaxed);
    total_sum.fetch_add(range_sum, std::memory_order_relaxed);
  };
  std::vector<exec::ProcessorGroup> groups;
  if (plan.probe.placement == PipelinePlacement::kHeterogeneous) {
    groups.push_back(
        {"CPU", std::max<std::size_t>(1, options.workers), 1, work});
  }
  groups.push_back({"GPU", 1, exec::kDefaultGpuBatchMorsels, work});
  const std::vector<exec::GroupStats> group_stats = exec::RunHeterogeneous(
      rows, options.morsel_tuples, std::move(groups), options.injector,
      options.cancel);

  std::size_t processed = 0;
  for (const exec::GroupStats& group : group_stats) {
    processed += group.tuples;
    report->failover_tuples += group.failover_tuples;
    if (group.failed) {
      reasons->push_back("processor group '" + group.name +
                         "' stalled; its morsels failed over");
    }
  }
  if (options.cancel != nullptr && options.cancel->Cancelled()) {
    return options.cancel->ToStatus();
  }
  if (processed != rows) {
    return Status::Unavailable(
        "all processor groups failed; " + std::to_string(rows - processed) +
        " tuples unprocessed");
  }
  report->result = engine::QueryResult{total_rows.load(), total_sum.load()};
  return Status::OK();
}

/// Multiplicative hash assigning a fact tuple to its owning shard — the
/// same partitioning the compiler assumed when planning the exchange.
std::size_t ShardOf(std::int64_t key, std::size_t shard_count) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) %
      shard_count);
}

/// Sharded probe pipeline of a multi-device plan: fact tuples are
/// hash-partitioned on the first probe key (row-range partitioned for
/// join-free plans), partitions are exchanged all-to-all over the
/// modelled mesh through the transfer layer, and each shard probes its
/// partition in parallel. Tuple-at-a-time semantics are ProcessRange's
/// and the aggregate is order-independent, so the result is
/// bit-identical to the single-device plan. A shard whose device fails
/// its modelled allocation degrades alone — the other shards keep their
/// placements (shard-by-shard fault ladder).
Status RunProbeSharded(const PhysicalPlan& plan,
                       const engine::ExecOptions& options,
                       const TableHandles& tables,
                       engine::ExecReport* report,
                       std::vector<std::string>* reasons) {
  const engine::Table& fact = *plan.query->fact;
  const std::size_t rows = fact.rows();
  const DeviceSet& devices = plan.shard.devices;
  const std::size_t shard_count = devices.size();
  engine::PipelineOutcome& probe_row = report->pipelines.back();
  if (options.injector != nullptr) {
    PUMP_RETURN_NOT_OK(options.injector->Check(fault::kPlanPipeline,
                                               "probe"));
  }

  // Functional execution stays on host columns; the device side of the
  // plan (allocations, exchange transfers) is modelled, as everywhere.
  auto source = [&fact](const std::string& name)
      -> Result<const std::int64_t*> {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(name));
    return column->data();
  };
  PUMP_ASSIGN_OR_RETURN(BoundProbe bound, BindProbe(plan, tables, source));

  // Partition: shard `dst` owns tuple i when its first probe key hashes
  // to dst (a join-free plan owns contiguous row ranges instead, and
  // nothing crosses shards). The *source* shard of tuple i is its row
  // range — that is where the tuple was scanned before the exchange.
  const std::int64_t* partition_keys = nullptr;
  for (const BoundProbeStep& probe : bound.probes) {
    partition_keys = probe.keys;
    break;
  }
  std::vector<std::vector<std::uint32_t>> shard_indices(shard_count);
  for (auto& indices : shard_indices) {
    indices.reserve(rows / shard_count + 1);
  }
  // moved_bytes[src][dst]: exchange payload leaving shard src for dst.
  std::vector<std::vector<std::uint64_t>> moved_tuples(
      shard_count, std::vector<std::uint64_t>(shard_count, 0));
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t src = i * shard_count / std::max<std::size_t>(1, rows);
    const std::size_t dst = partition_keys != nullptr
                                ? ShardOf(partition_keys[i], shard_count)
                                : src;
    shard_indices[dst].push_back(static_cast<std::uint32_t>(i));
    if (src != dst) ++moved_tuples[src][dst];
  }

  // Exchange stage: every non-empty (src, dst) partition is staged to
  // the destination device through the transfer layer, chunk-wise with
  // retry, payload = every probe-operator column of the moved tuples.
  const transfer::TransferFaultOptions fault_options{options.injector,
                                                     options.retry};
  engine::PipelineOutcome exchange_row;
  exchange_row.name = "exchange";
  exchange_row.kind = "exchange";
  exchange_row.placement_planned = ToString(plan.probe.placement);
  exchange_row.placement_used = exchange_row.placement_planned;
  exchange_row.predicted_s = plan.exchange.modelled_cost_s;
  const auto exchange_start = Clock::now();
  const std::uint64_t tuple_bytes =
      static_cast<std::uint64_t>(plan.probe.ops.size()) *
      sizeof(std::int64_t);
  std::vector<std::int64_t> scratch;
  std::vector<memory::Buffer> staged;
  for (std::size_t src = 0; src < shard_count; ++src) {
    for (std::size_t dst = 0; dst < shard_count; ++dst) {
      const std::uint64_t tuples = moved_tuples[src][dst];
      if (tuples == 0) continue;
      if (options.cancel != nullptr && options.cancel->Cancelled()) {
        return options.cancel->ToStatus();
      }
      const std::uint64_t bytes = tuples * tuple_bytes;
      scratch.assign(bytes / sizeof(std::int64_t), 0);
      // The exchange works on behalf of the destination shard: stamp its
      // staging spans with it so a per-query timeline shows which shard
      // each partition transfer fed.
      obs::ScopedShard shard_scope(static_cast<std::int32_t>(dst));
      PUMP_TRACE_SPAN(obs::TraceCategory::kTransfer, "exchange.partition",
                      static_cast<double>(bytes),
                      static_cast<double>(devices[dst]));
      transfer::TransferStats stats;
      PUMP_ASSIGN_OR_RETURN(
          memory::Buffer device,
          transfer::StageToDevice(scratch.data(), bytes, devices[dst],
                                  options.chunk_bytes, options.os_page_bytes,
                                  fault_options, &stats));
      staged.push_back(std::move(device));
      report->transfer_retries += stats.retries;
      report->faults_injected += stats.faults_injected;
      report->modelled_backoff_s += stats.modelled_backoff_s;
      exchange_row.retries += stats.retries;
      exchange_row.faults_injected += stats.faults_injected;
      obs::MetricsRegistry::Instance()
          .GetCounter("plan.exchange.partitions")
          .Add();
      obs::MetricsRegistry::Instance()
          .GetCounter("plan.exchange.bytes")
          .Add(bytes);
      obs::MetricsRegistry::Instance()
          .GetCounter("plan.exchange.bytes.dev" +
                      std::to_string(devices[dst]))
          .Add(bytes);
      // Per-route byte gauge (src device -> dst device): the live
      // per-link utilization view of the mesh, prefix-scanned by
      // QueryEngine::Snapshot into the introspection exposition.
      obs::MetricsRegistry::Instance()
          .GetCounter("plan.exchange.route.d" +
                      std::to_string(devices[src]) + "_d" +
                      std::to_string(devices[dst]) + ".bytes")
          .Add(bytes);
    }
  }
  exchange_row.measured_s = SecondsSince(exchange_start);
  report->shards.push_back(std::move(exchange_row));

  // Per-shard modelled device placement: each shard stages its partition
  // on its own device. A failed shard degrades to the CPU alone; the
  // remaining shards keep their devices.
  hw::Topology topology =
      plan.profile != nullptr ? plan.profile->topology : hw::IbmAc922();
  memory::MemoryManager manager(&topology, /*materialize=*/false);
  std::vector<bool> shard_degraded(shard_count, false);
  std::vector<memory::Buffer> shard_buffers;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::uint64_t shard_bytes = std::max<std::uint64_t>(
        16, shard_indices[s].size() * tuple_bytes);
    Status admitted = Status::OK();
    if (options.injector != nullptr) {
      admitted = options.injector->Check(fault::kPlanPipeline, "shard");
    }
    Result<memory::Buffer> placement =
        admitted.ok() ? manager.AllocateHybrid(shard_bytes, devices[s], 0,
                                               options.injector)
                      : Result<memory::Buffer>(admitted);
    if (!placement.ok()) {
      shard_degraded[s] = true;
      ++report->shards_replaced;
      Counters().replacements.Add();
      PUMP_TRACE_INSTANT(obs::TraceCategory::kPlan, "plan.replace",
                         static_cast<double>(devices[s]));
      reasons->push_back("shard " + std::to_string(s) + " lost device " +
                         std::to_string(devices[s]) + " (" +
                         placement.status().ToString() +
                         "); re-placed on CPU, other shards unaffected");
      continue;
    }
    report->hybrid_gpu_fraction =
        std::min(report->hybrid_gpu_fraction,
                 placement.value().FractionOnNode(devices[s]));
    shard_buffers.push_back(std::move(placement).value());
  }

  // Probe the shards: each runs morsel-parallel over its own partition
  // (a degraded shard runs the identical host loop, only its modelled
  // placement changed). Workers poll the cancel token per morsel claim.
  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  const CancelToken* cancel = options.cancel;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::vector<std::uint32_t>& indices = shard_indices[s];
    engine::PipelineOutcome shard_row;
    shard_row.name =
        "shard[" + std::to_string(s) + "]@dev" + std::to_string(devices[s]);
    shard_row.kind = "probe";
    shard_row.placement_planned = ToString(plan.probe.placement);
    shard_row.placement_used = shard_degraded[s]
                                   ? ToString(PipelinePlacement::kCpu)
                                   : shard_row.placement_planned;
    if (shard_degraded[s]) ++shard_row.attempts;
    const auto shard_start = Clock::now();
    // Shard attribution for the probe phase: the executor forwards the
    // dispatching thread's context, so every worker's hash.probe/morsel
    // spans carry (query_id, shard s).
    obs::ScopedShard shard_scope(static_cast<std::int32_t>(s));
    PUMP_TRACE_SPAN(obs::TraceCategory::kExec, "shard.probe",
                    static_cast<double>(s),
                    static_cast<double>(indices.size()));
    exec::WorkStealingDispatcher dispatcher(indices.size(),
                                            options.morsel_tuples, workers);
    exec::ParallelFor(workers, [&](std::size_t w) {
      std::uint64_t shard_rows = 0;
      std::int64_t shard_sum = 0;
      std::uint64_t claimed = 0;
      while (!(cancel != nullptr && cancel->Cancelled())) {
        auto morsel = dispatcher.Next(w);
        if (!morsel) break;
        ++claimed;
        Counters().morsel_tuples.Record(morsel->size());
        ProcessIndices(bound, indices.data() + morsel->begin,
                       morsel->size(), &shard_rows, &shard_sum);
      }
      Counters().morsels.Add(claimed);
      total_rows.fetch_add(shard_rows, std::memory_order_relaxed);
      total_sum.fetch_add(shard_sum, std::memory_order_relaxed);
    });
    shard_row.measured_s = SecondsSince(shard_start);
    report->shards.push_back(std::move(shard_row));
    if (cancel != nullptr && cancel->Cancelled()) {
      return cancel->ToStatus();
    }
  }
  probe_row.retries = report->shards.front().retries;
  probe_row.faults_injected = report->shards.front().faults_injected;
  report->result = engine::QueryResult{total_rows.load(), total_sum.load()};
  return Status::OK();
}

}  // namespace

Result<engine::ExecReport> ExecutePlan(const PhysicalPlan& plan,
                                       const engine::ExecOptions& options) {
  if (plan.query == nullptr || plan.query->fact == nullptr) {
    return Status::InvalidArgument("plan has no compiled query");
  }
  if (options.cancel != nullptr) {
    PUMP_RETURN_NOT_OK(options.cancel->ToStatus());
  }
  // Install the query's trace context for the whole execution: every
  // span/instant recorded below — on this thread and, via the executor's
  // context forwarding, on every pool worker — is stamped with the id.
  obs::ScopedQueryContext query_scope(
      options.query_id != 0
          ? obs::QueryContext{options.query_id, -1}
          : obs::CurrentQueryContext());
  PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "plan.execute",
                  static_cast<double>(plan.builds.size()),
                  static_cast<double>(plan.shape.fact_rows));
  Counters().queries.Add();
  engine::ExecReport report;
  InitPipelineRows(plan, &report);
  std::vector<std::string> reasons;
  // Mirror the in-progress report on every exit path (the PUMP_*_RETURN
  // macros included): a fault-ladder exhaustion returns a bare Status,
  // and this copy is how the flight recorder still gets the failed
  // attempt's pipeline rows.
  struct ReportMirror {
    engine::ExecReport* dst;
    const engine::ExecReport* src;
    ~ReportMirror() {
      if (dst != nullptr) *dst = *src;
    }
  } report_mirror{options.partial_report, &report};

  // Build stage (cached across the whole ladder).
  PUMP_ASSIGN_OR_RETURN(const TableHandles tables,
                        RunBuildPipelines(plan, options, &report, &reasons));

  // Probe stage, per-pipeline ladder.
  Counters().probe_pipelines.Add();
  if (plan.probe.placement != PipelinePlacement::kCpu) {
    const auto gpu_start = Clock::now();
    Status gpu_status;
    {
      PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "pipeline.probe",
                      /*arg0=*/1.0,
                      static_cast<double>(plan.shape.fact_rows));
      gpu_status =
          plan.shard.active()
              ? RunProbeSharded(plan, options, tables, &report, &reasons)
              : RunProbeGpu(plan, options, tables, &report, &reasons);
    }
    ChargePipelineTime(&report.pipelines.back(), SecondsSince(gpu_start));
    if (gpu_status.ok()) {
      // A sharded plan only counts as GPU-executed while at least one
      // shard kept its device; all-shards-degraded is a CPU result.
      report.used_gpu = !plan.shard.active() ||
                        report.shards_replaced < plan.shard.shard_count();
      if (plan.shard.active() &&
          report.shards_replaced == plan.shard.shard_count()) {
        report.pipelines.back().placement_used =
            ToString(PipelinePlacement::kCpu);
      }
      FinishReasons(reasons, &report);
      return report;
    }
    // A cancelled/deadline-expired query is not a fault: it must NOT
    // descend the ladder (the CPU re-placement would burn the very
    // workers cancellation is supposed to release).
    if (options.cancel != nullptr && options.cancel->Cancelled()) {
      return options.cancel->ToStatus();
    }
    // Rung 3, scoped to this pipeline: re-place the probe on the CPU,
    // reusing every cached build instead of rebuilding (the old fused
    // path rebuilt all dimension tables here). The summed fault totals
    // reset with the fresh report — they describe the attempt that
    // produced the result — but the per-pipeline rows carry the failed
    // attempt's history so the report still explains what was tried.
    PUMP_TRACE_INSTANT(obs::TraceCategory::kPlan, "plan.replace",
                       /*arg0=*/-1.0);
    Counters().replacements.Add();
    const std::size_t built = report.dim_tables_built;
    std::vector<engine::PipelineOutcome> rows =
        std::move(report.pipelines);
    rows.back().placement_used = ToString(PipelinePlacement::kCpu);
    ++rows.back().attempts;
    report = engine::ExecReport{};
    report.pipelines = std::move(rows);
    report.dim_tables_built = built;
    report.dim_tables_reused = tables.size();
    Counters().dim_tables_reused.Add(tables.size());
    report.degraded = true;
    report.degradation_reason =
        "probe pipeline failed on GPU (" + gpu_status.ToString() +
        "); fell back to CPU plan, reusing " +
        std::to_string(tables.size()) + " cached build pipelines";
    const auto cpu_start = Clock::now();
    {
      PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "pipeline.probe",
                      /*arg0=*/0.0,
                      static_cast<double>(plan.shape.fact_rows));
      PUMP_ASSIGN_OR_RETURN(report.result,
                            RunProbeCpu(plan, options, tables));
    }
    ChargePipelineTime(&report.pipelines.back(), SecondsSince(cpu_start));
    report.used_gpu = false;
    return report;
  }

  const auto cpu_start = Clock::now();
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "pipeline.probe",
                    /*arg0=*/0.0,
                    static_cast<double>(plan.shape.fact_rows));
    PUMP_ASSIGN_OR_RETURN(report.result,
                          RunProbeCpu(plan, options, tables));
  }
  ChargePipelineTime(&report.pipelines.back(), SecondsSince(cpu_start));
  report.used_gpu = false;
  FinishReasons(reasons, &report);
  return report;
}

}  // namespace pump::plan
