#ifndef PUMP_PLAN_OPERATORS_H_
#define PUMP_PLAN_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hash/hash_table.h"
#include "plan/plan.h"

namespace pump::plan {

/// The built semi-join table of one build pipeline: the functional host
/// table behind the plan's modelled placement, wrapping whichever table
/// kind the compiler selected. Qualifying dimension keys map to 1
/// (semi-join semantics; the measure lives in the fact table). The
/// kHybrid kind probes through the same perfect-hash layout — the hybrid
/// part is the modelled GPU/CPU split of its backing buffer, which the
/// plan executor accounts separately.
class DimensionTable {
 public:
  /// Builds the table from the pipeline's dimension column (applying the
  /// dimension filter, if any). Fails with AlreadyExists on duplicate
  /// keys, like the reference executor.
  static Result<DimensionTable> Build(const BuildPipeline& build);

  /// True when `key` was inserted — the semi-join probe.
  bool Contains(std::int64_t key) const {
    std::int64_t ignored;
    if (perfect_.has_value()) return perfect_->Lookup(key, &ignored);
    return linear_->Lookup(key, &ignored);
  }

  /// The table kind actually constructed.
  HashTableKind kind() const { return kind_; }
  /// Keys inserted (post dimension-filter).
  std::size_t entries() const { return entries_; }

 private:
  using Perfect = hash::PerfectHashTable<std::int64_t, std::int64_t>;
  using Linear = hash::LinearProbingHashTable<std::int64_t, std::int64_t>;

  DimensionTable() = default;

  HashTableKind kind_ = HashTableKind::kLinearProbing;
  std::size_t entries_ = 0;
  std::optional<Perfect> perfect_;
  std::optional<Linear> linear_;
};

/// One filter operator with its column resolved to a raw pointer.
struct BoundFilter {
  const std::int64_t* column = nullptr;
  ops::CompareOp op = ops::CompareOp::kEq;
  std::int64_t literal = 0;
};

/// One probe operator bound to its fact key column and built table.
struct BoundProbeStep {
  const std::int64_t* keys = nullptr;
  const DimensionTable* table = nullptr;
};

/// The probe pipeline with every column resolved — no name lookups in
/// the hot loop. Column pointers reference either the fact table's
/// columns (CPU placements) or transferred device buffers (GPU
/// placements); ProcessRange is identical for both, which is what makes
/// the placements bit-compatible.
struct BoundProbe {
  const std::int64_t* measure = nullptr;
  std::vector<BoundFilter> filters;
  std::vector<BoundProbeStep> probes;
};

/// Maps a fact column name to the pointer the pipeline reads. GPU
/// placements stage the column into a device buffer here; a null pointer
/// is only valid for an empty fact table.
using ColumnSource =
    std::function<Result<const std::int64_t*>(const std::string&)>;

/// Resolves `plan`'s probe pipeline against `tables` (one per build
/// pipeline, in order) and `source`. Columns are resolved in the fixed
/// order measure, filters, probe keys, so GPU staging traffic matches
/// the reference executor chunk for chunk. Tables are shared handles so
/// a probe can reference cache-resident builds owned jointly with other
/// queries (plan/build_cache.h); the bound pipeline keeps them alive.
Result<BoundProbe> BindProbe(
    const PhysicalPlan& plan,
    const std::vector<std::shared_ptr<const DimensionTable>>& tables,
    const ColumnSource& source);

/// Executes the bound pipeline over fact tuples [begin, end): filter
/// operators in order with early exit, semi-join probes in order, then
/// the aggregate — tuple-at-a-time semantics identical to the reference
/// executor, so results are bit-identical.
void ProcessRange(const BoundProbe& bound, std::size_t begin,
                  std::size_t end, std::uint64_t* rows, std::int64_t* sum);

/// Executes the bound pipeline over an explicit tuple index list — the
/// shard-local probe of a hash-partitioned plan. Per-tuple semantics are
/// exactly ProcessRange's, and the aggregate (count + 64-bit sum) is
/// order-independent, so sharded execution stays bit-identical to the
/// single-device plan.
void ProcessIndices(const BoundProbe& bound, const std::uint32_t* indices,
                    std::size_t count, std::uint64_t* rows,
                    std::int64_t* sum);

}  // namespace pump::plan

#endif  // PUMP_PLAN_OPERATORS_H_
