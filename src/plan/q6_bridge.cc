#include "plan/q6_bridge.h"

#include <vector>

#include "plan/compiler.h"
#include "plan/executor.h"

namespace pump::plan {

Q6PlanInput Q6PlanInput::From(const data::LineitemQ6& source) {
  const std::size_t rows = source.size();
  std::vector<std::int64_t> shipdate(rows), quantity(rows), discount(rows),
      revenue(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    shipdate[i] = source.shipdate[i];
    quantity[i] = source.quantity[i];
    discount[i] = source.discount[i];
    revenue[i] = source.extendedprice[i] *
                 static_cast<std::int64_t>(source.discount[i]);
  }
  Q6PlanInput input;
  (void)input.table.AddColumn("l_shipdate", std::move(shipdate));
  (void)input.table.AddColumn("l_quantity", std::move(quantity));
  (void)input.table.AddColumn("l_discount", std::move(discount));
  (void)input.table.AddColumn("l_revenue", std::move(revenue));
  return input;
}

engine::Query Q6PlanInput::MakeQuery() const {
  engine::Query query;
  query.fact = &table;
  // Predicates in the branching kernel's evaluation order.
  query.filters = {
      {"l_shipdate", ops::CompareOp::kGe, data::kQ6DateLo},
      {"l_shipdate", ops::CompareOp::kLt, data::kQ6DateHi},
      {"l_discount", ops::CompareOp::kGe, data::kQ6DiscountLo},
      {"l_discount", ops::CompareOp::kLe, data::kQ6DiscountHi},
      {"l_quantity", ops::CompareOp::kLt, data::kQ6QuantityLt},
  };
  query.measure_column = "l_revenue";
  return query;
}

Result<ops::Q6Result> RunQ6Plan(const Q6PlanInput& input,
                                std::size_t workers) {
  const engine::Query query = input.MakeQuery();
  CompileOptions compile_options;
  compile_options.policy = PlacementPolicy::kCpuOnly;
  PUMP_ASSIGN_OR_RETURN(const PhysicalPlan plan,
                        Compile(query, compile_options));
  engine::ExecOptions options;
  options.workers = workers;
  options.gpu_plan = false;
  PUMP_ASSIGN_OR_RETURN(const engine::ExecReport report,
                        ExecutePlan(plan, options));
  ops::Q6Result result;
  result.revenue = report.result.sum;
  result.qualifying_rows = report.result.rows;
  return result;
}

}  // namespace pump::plan
