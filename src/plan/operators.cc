#include "plan/operators.h"

#include <algorithm>

#include "obs/trace.h"

namespace pump::plan {

Result<DimensionTable> DimensionTable::Build(const BuildPipeline& build) {
  PUMP_ASSIGN_OR_RETURN(const auto* keys,
                        build.dimension->Column(build.key_column));
  PUMP_TRACE_SPAN(obs::TraceCategory::kHash, "hash.build",
                  static_cast<double>(keys->size()),
                  static_cast<double>(static_cast<int>(build.table_kind)));
  const std::vector<std::int64_t>* filter_column = nullptr;
  if (build.has_dim_filter) {
    PUMP_ASSIGN_OR_RETURN(filter_column,
                          build.dimension->Column(build.dim_filter.column));
  }

  DimensionTable table;
  table.kind_ = build.table_kind;
  if (build.table_kind == HashTableKind::kLinearProbing) {
    table.linear_.emplace(std::max<std::size_t>(1, keys->size()));
  } else {
    // Perfect (and hybrid, whose probe layout is the same perfect table):
    // slot = key over the dense domain [0, max_key].
    table.perfect_.emplace(static_cast<std::size_t>(build.keys.max_key + 1));
  }

  for (std::size_t i = 0; i < keys->size(); ++i) {
    if (filter_column != nullptr &&
        !ops::Compare(build.dim_filter.op, (*filter_column)[i],
                      build.dim_filter.literal)) {
      continue;
    }
    if (table.perfect_.has_value()) {
      PUMP_RETURN_NOT_OK(table.perfect_->Insert((*keys)[i], 1));
    } else {
      PUMP_RETURN_NOT_OK(table.linear_->Insert((*keys)[i], 1));
    }
    ++table.entries_;
  }
  return table;
}

Result<BoundProbe> BindProbe(
    const PhysicalPlan& plan,
    const std::vector<std::shared_ptr<const DimensionTable>>& tables,
    const ColumnSource& source) {
  BoundProbe bound;
  // Fixed binding order (measure, filters, probe keys): for GPU
  // placements the source stages columns, and this order keeps the
  // transfer-chunk fault stream aligned with the reference executor.
  for (const Operator& op : plan.probe.ops) {
    if (op.kind != OpKind::kAggregate) continue;
    PUMP_ASSIGN_OR_RETURN(bound.measure, source(op.column));
  }
  for (const Operator& op : plan.probe.ops) {
    if (op.kind != OpKind::kScanFilter) continue;
    BoundFilter filter;
    PUMP_ASSIGN_OR_RETURN(filter.column, source(op.column));
    filter.op = op.op;
    filter.literal = op.literal;
    bound.filters.push_back(filter);
  }
  for (const Operator& op : plan.probe.ops) {
    if (op.kind != OpKind::kProbe) continue;
    if (op.build_index >= tables.size()) {
      return Status::Internal("probe references missing build pipeline " +
                              std::to_string(op.build_index));
    }
    BoundProbeStep step;
    PUMP_ASSIGN_OR_RETURN(step.keys, source(op.column));
    step.table = tables[op.build_index].get();
    bound.probes.push_back(step);
  }
  return bound;
}

void ProcessRange(const BoundProbe& bound, std::size_t begin,
                  std::size_t end, std::uint64_t* rows, std::int64_t* sum) {
  for (std::size_t i = begin; i < end; ++i) {
    bool qualifies = true;
    for (const BoundFilter& filter : bound.filters) {
      if (!ops::Compare(filter.op, filter.column[i], filter.literal)) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    for (const BoundProbeStep& probe : bound.probes) {
      if (!probe.table->Contains(probe.keys[i])) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    ++*rows;
    *sum += bound.measure[i];
  }
}

void ProcessIndices(const BoundProbe& bound, const std::uint32_t* indices,
                    std::size_t count, std::uint64_t* rows,
                    std::int64_t* sum) {
  for (std::size_t n = 0; n < count; ++n) {
    const std::size_t i = indices[n];
    bool qualifies = true;
    for (const BoundFilter& filter : bound.filters) {
      if (!ops::Compare(filter.op, filter.column[i], filter.literal)) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    for (const BoundProbeStep& probe : bound.probes) {
      if (!probe.table->Contains(probe.keys[i])) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    ++*rows;
    *sum += bound.measure[i];
  }
}

}  // namespace pump::plan
