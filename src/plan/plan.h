#ifndef PUMP_PLAN_PLAN_H_
#define PUMP_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/query.h"
#include "engine/table.h"
#include "hw/device.h"
#include "ops/scan.h"

namespace pump::hw {
struct SystemProfile;
}  // namespace pump::hw

namespace pump::plan {

/// Where a pipeline executes. Placements are modelled (the GPU is
/// simulated): kGpu transfers the referenced fact columns into device
/// buffers and drives a GPU proxy scheduler group; kHeterogeneous adds
/// the CPU worker group next to the GPU proxy (the paper's Sec. 6.1
/// scheme); kCpu runs the plain host morsel loop.
enum class PipelinePlacement : std::uint8_t { kCpu, kGpu, kHeterogeneous };

/// Which hash table implements a build pipeline's dimension table.
/// Selection matrix (see DESIGN.md Sec. 10):
///   dense keys, fits GPU budget (or CPU-placed)  -> kPerfect
///   dense keys, exceeds GPU budget               -> kHybrid
///   sparse or negative keys                      -> kLinearProbing
enum class HashTableKind : std::uint8_t {
  kPerfect,
  kLinearProbing,
  kHybrid
};

/// Operator kinds of a probe pipeline. A pipeline is a short vector of
/// operators executed per tuple within a morsel: conjunctive filters,
/// semi-join probes against built dimension tables, and the aggregate.
enum class OpKind : std::uint8_t { kScanFilter, kProbe, kAggregate };

const char* ToString(PipelinePlacement placement);
const char* ToString(HashTableKind kind);
const char* ToString(OpKind kind);
const char* ToString(ops::CompareOp op);

/// Which devices carry a GPU-side pipeline: placement by device set, not
/// by side. Empty for CPU placements; one entry for classic single-GPU
/// plans; several entries when the plan is sharded across a mesh.
using DeviceSet = std::vector<hw::DeviceId>;

/// How a GPU-side plan is sharded across its device set. Shard `s` owns
/// every fact tuple whose first probe key hashes to `s` modulo
/// `devices.size()` (hash partitioning; a join-free plan partitions by
/// row range instead). The build side is hash-partitioned the same way,
/// so probes are shard-local after the all-to-all exchange.
struct ShardDescriptor {
  DeviceSet devices;

  std::size_t shard_count() const { return devices.size(); }
  /// Sharding only changes execution when more than one device shares
  /// the plan; a one-device "shard" is the classic single-GPU layout.
  bool active() const { return devices.size() > 1; }
};

/// One routed peer path of the exchange stage: partitions from the shard
/// on `src` destined for the shard on `dst`, over the minimum-hop route
/// of the modelled topology.
struct ExchangeRoute {
  hw::DeviceId src = hw::kInvalidDevice;
  hw::DeviceId dst = hw::kInvalidDevice;
  /// Interconnect hops of the route (1 = direct peer link; more means a
  /// bounce through host sockets on AC922-style meshes).
  std::size_t hops = 0;
  /// True for a single-hop NVLink/NVSwitch/P2P peer route.
  bool direct = false;
  /// Sequential bandwidth of the narrowest link on the route, GiB/s.
  double bottleneck_gib_s = 0.0;
};

/// The all-to-all partition exchange between shards: every (src, dst)
/// pair with src != dst, routed over the mesh. `modelled_cost_s` is the
/// exchange's predicted wall time — the busiest link's transfer time
/// plus the longest route's hop latency — which is what the cost-model
/// policy scores candidate device sets by.
struct ExchangeStage {
  std::vector<ExchangeRoute> routes;
  double modelled_cost_s = 0.0;
};

/// One operator of a probe pipeline. Only the fields of the given kind
/// are meaningful: kScanFilter uses {column, op, literal}; kProbe uses
/// {column (the fact key), build_index}; kAggregate uses {column}.
struct Operator {
  OpKind kind = OpKind::kScanFilter;
  std::string column;
  ops::CompareOp op = ops::CompareOp::kEq;
  std::int64_t literal = 0;
  /// Index into PhysicalPlan::builds of the table this probe consumes.
  std::size_t build_index = 0;
};

/// Key-domain statistics of one dimension join key, gathered at compile
/// time; they drive the hash-table choice.
struct KeyStats {
  std::int64_t min_key = 0;
  std::int64_t max_key = -1;
  std::size_t rows = 0;
  /// rows / (max_key + 1); 1.0 means a dense [0, rows) key domain. 0 when
  /// the dimension is empty or holds negative keys.
  double density = 0.0;
};

/// A build pipeline: scan one dimension table (optionally filtered) and
/// build its semi-join hash table. One per join clause, independent of
/// the other builds — the build stage of the pipeline DAG.
struct BuildPipeline {
  /// Index of the source join clause in the query.
  std::size_t join_index = 0;
  const engine::Table* dimension = nullptr;
  std::string key_column;
  engine::Filter dim_filter;
  bool has_dim_filter = false;

  KeyStats keys;
  HashTableKind table_kind = HashTableKind::kLinearProbing;
  PipelinePlacement placement = PipelinePlacement::kCpu;
  /// Devices carrying this build's hash table: empty for CPU placements,
  /// one device for single-GPU plans, the shard set when the table is
  /// hash-partitioned across a mesh.
  DeviceSet device_set;
  /// Modelled hash-table storage footprint (total across the device set).
  std::uint64_t table_bytes = 0;
  /// Modelled build time (seconds) on the chosen placement; 0 when no
  /// cost model was consulted.
  double modelled_cost_s = 0.0;
};

/// The probe pipeline: scan the fact table morsel-wise, apply the filter
/// operators, probe every built dimension table, aggregate. Exactly one
/// per query (the paper's evaluated shapes are single-fact stars).
struct ProbePipeline {
  std::vector<Operator> ops;
  PipelinePlacement placement = PipelinePlacement::kCpu;
  /// Devices running the probe: empty for CPU placements, one device for
  /// single-GPU plans, the shard set for sharded plans.
  DeviceSet device_set;
  /// Modelled probe-pipeline time (seconds); 0 when no cost model ran.
  double modelled_cost_s = 0.0;
};

/// The query shape attached to every compile-time diagnostic, so a
/// validation error identifies the offending query without a debugger.
struct QueryShape {
  std::size_t fact_rows = 0;
  std::size_t filters = 0;
  std::size_t joins = 0;

  std::string ToString() const {
    return "fact_rows=" + std::to_string(fact_rows) +
           " filters=" + std::to_string(filters) +
           " joins=" + std::to_string(joins);
  }
};

/// A compiled physical plan: a DAG of build pipelines feeding one probe
/// pipeline. The query (and its tables) must outlive the plan. Every
/// execution path of the engine — Executor::Run, RunResilient, the SSB
/// queries, TPC-H Q6 — flows through this IR.
struct PhysicalPlan {
  const engine::Query* query = nullptr;
  QueryShape shape;
  std::vector<BuildPipeline> builds;
  ProbePipeline probe;
  /// Shard layout of a multi-device plan; inactive (<= 1 device) for
  /// CPU-only and single-GPU plans. When active, the executor hash-
  /// partitions fact rows across the shard devices, runs the exchange
  /// stage, and probes the shards in parallel — bit-identically to the
  /// single-device plan.
  ShardDescriptor shard;
  /// The exchange stage of a sharded plan (empty routes otherwise).
  ExchangeStage exchange;
  /// Profile whose topology the plan's device ids and exchange routes
  /// refer to; null means the default AC922 testbed. Must outlive the
  /// plan, like the query.
  const hw::SystemProfile* profile = nullptr;
  /// Human-readable placement rationale (cost-model policy, or the
  /// saturation note below).
  std::string rationale;
  /// True when a GPU-requesting policy was forced onto the CPU because
  /// concurrent queries saturated the effective GPU budget
  /// (CompileOptions::gpu_budget_in_use_bytes) — the serving layer's
  /// graceful-degradation signal.
  bool forced_cpu_by_pressure = false;

  /// True when any pipeline carries a GPU-side placement.
  bool UsesGpu() const {
    if (probe.placement != PipelinePlacement::kCpu) return true;
    for (const BuildPipeline& build : builds) {
      if (build.placement != PipelinePlacement::kCpu) return true;
    }
    return false;
  }
};

inline const char* ToString(PipelinePlacement placement) {
  switch (placement) {
    case PipelinePlacement::kCpu:
      return "cpu";
    case PipelinePlacement::kGpu:
      return "gpu";
    case PipelinePlacement::kHeterogeneous:
      return "heterogeneous";
  }
  return "?";
}

inline const char* ToString(HashTableKind kind) {
  switch (kind) {
    case HashTableKind::kPerfect:
      return "perfect";
    case HashTableKind::kLinearProbing:
      return "linear_probing";
    case HashTableKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

inline const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kScanFilter:
      return "scan_filter";
    case OpKind::kProbe:
      return "probe";
    case OpKind::kAggregate:
      return "aggregate";
  }
  return "?";
}

inline const char* ToString(ops::CompareOp op) {
  switch (op) {
    case ops::CompareOp::kLt:
      return "lt";
    case ops::CompareOp::kLe:
      return "le";
    case ops::CompareOp::kEq:
      return "eq";
    case ops::CompareOp::kGe:
      return "ge";
    case ops::CompareOp::kGt:
      return "gt";
    case ops::CompareOp::kNe:
      return "ne";
  }
  return "?";
}

}  // namespace pump::plan

#endif  // PUMP_PLAN_PLAN_H_
