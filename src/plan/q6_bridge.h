#ifndef PUMP_PLAN_Q6_BRIDGE_H_
#define PUMP_PLAN_Q6_BRIDGE_H_

#include <cstddef>

#include "common/status.h"
#include "data/tpch.h"
#include "engine/query.h"
#include "ops/q6.h"

namespace pump::plan {

/// TPC-H Q6 lifted into the engine's Query representation so it compiles
/// through the plan IR like every other workload: the int32 lineitem
/// columns widen to the engine's int64 columns once at load time, and
/// the measure is the precomputed per-row revenue term
/// (extendedprice * discount), so the zero-join aggregate matches the
/// ops::RunQ6* kernels bit for bit.
struct Q6PlanInput {
  engine::Table table;

  /// Converts a generated lineitem sample. Conversion cost is paid here,
  /// outside any timed execution path.
  static Q6PlanInput From(const data::LineitemQ6& source);

  /// The Q6 query over `table`: five filters, zero joins, revenue
  /// measure. The returned query references this input, which must
  /// outlive it.
  engine::Query MakeQuery() const;
};

/// Compiles and executes Q6 through the plan IR on the CPU placement
/// with `workers` threads.
Result<ops::Q6Result> RunQ6Plan(const Q6PlanInput& input,
                                std::size_t workers);

}  // namespace pump::plan

#endif  // PUMP_PLAN_Q6_BRIDGE_H_
