#ifndef PUMP_PLAN_BUILD_CACHE_H_
#define PUMP_PLAN_BUILD_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/operators.h"
#include "plan/plan.h"
#include "verify/sync.h"

namespace pump::plan {

/// Process-wide dimension-table build cache: the PR-4 per-plan cache
/// (tables reused across one query's ladder rungs) promoted to a shared
/// cache reused across *queries*, so a hot star-schema dimension is built
/// once for thousands of concurrent sessions.
///
/// Three properties matter for a serving runtime:
///  * **Keyed by build semantics.** The key covers the dimension table
///    identity (pointer + row count), the key column, the dimension
///    filter, and the hash-table kind — two plans that would build
///    byte-identical tables share an entry; anything else does not.
///  * **Bounded.** Entries charge their modelled table bytes against
///    `capacity_bytes`; insertion evicts least-recently-used entries
///    until the new entry fits. Shared_ptr handles keep evicted tables
///    alive for queries still probing them (eviction is a cache-policy
///    event, never a use-after-free).
///  * **Single-flight.** Concurrent misses on one key build exactly once:
///    the first requester builds while the rest wait on the in-flight
///    slot. A failed build propagates its error to every waiter and then
///    clears the slot so a later query may retry. One query's build
///    failure is thus visible to the queries that asked for the same
///    table, and to nobody else — crash containment at cache scope.
///
/// Thread-safe. The build itself runs outside the cache mutex, so a slow
/// build never blocks hits on other keys.
class BuildCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Requests that waited on another query's in-flight build of the
    /// same key instead of building their own copy.
    std::uint64_t single_flight_waits = 0;
    /// Bytes currently charged by resident entries.
    std::uint64_t resident_bytes = 0;
    std::size_t entries = 0;
  };

  /// `capacity_bytes` bounds resident entries; 0 disables residency (every
  /// request is a miss, single-flight still deduplicates concurrent
  /// builds).
  explicit BuildCache(std::uint64_t capacity_bytes);

  BuildCache(const BuildCache&) = delete;
  BuildCache& operator=(const BuildCache&) = delete;

  /// Returns the cached table for `build`, building it (once, whatever
  /// the concurrency) on a miss. `hit`, when non-null, reports whether
  /// the table came from cache (true) or this call built/awaited it.
  Result<std::shared_ptr<const DimensionTable>> GetOrBuild(
      const BuildPipeline& build, bool* hit = nullptr);

  /// Drops every resident entry (in-flight builds are unaffected).
  void Clear();

  /// One resident entry, as exposed by the introspection snapshot.
  struct ContentsEntry {
    /// The semantic cache key (dimension identity / key column / filter
    /// / table kind — see KeyFor).
    std::string key;
    std::uint64_t bytes = 0;
  };

  /// The resident entries in LRU order, most recently used first.
  std::vector<ContentsEntry> Contents() const;

  Stats stats() const;
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    std::shared_ptr<const DimensionTable> table;
    std::uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };
  /// One in-flight build: the first requester populates `result` and
  /// broadcasts `done`; waiters block on the condition variable.
  /// verify:: primitives = plain std:: in normal builds; under
  /// PUMP_VERIFY the model checker explores the single-flight handoff.
  struct Flight {
    verify::Mutex mutex;
    verify::CondVar cv;
    bool done = false;
    Result<std::shared_ptr<const DimensionTable>> result{
        Status::Internal("build not started")};
  };

  static std::string KeyFor(const BuildPipeline& build);
  void InsertLocked(const std::string& key,
                    std::shared_ptr<const DimensionTable> table,
                    std::uint64_t bytes);

  const std::uint64_t capacity_bytes_;
  mutable verify::Mutex mutex_;
  std::map<std::string, Entry> entries_;
  /// LRU order, most recent at the front.
  std::list<std::string> lru_;
  std::map<std::string, std::shared_ptr<Flight>> in_flight_;
  std::uint64_t resident_bytes_ = 0;
  Stats stats_;
};

}  // namespace pump::plan

#endif  // PUMP_PLAN_BUILD_CACHE_H_
