#include "plan/build_cache.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/mutation.h"

namespace pump::plan {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& single_flight_waits;
};

CacheMetrics& Metrics() {
  static CacheMetrics metrics{
      obs::MetricsRegistry::Instance().GetCounter("plan.cache.hits"),
      obs::MetricsRegistry::Instance().GetCounter("plan.cache.misses"),
      obs::MetricsRegistry::Instance().GetCounter("plan.cache.evictions"),
      obs::MetricsRegistry::Instance().GetCounter(
          "plan.cache.single_flight_waits")};
  return metrics;
}

}  // namespace

BuildCache::BuildCache(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  verify::NamedMutex(&mutex_, "plan.cache.mutex");
}

std::string BuildCache::KeyFor(const BuildPipeline& build) {
  // The dimension pointer plus its row count identifies the source data
  // (a serving catalog keeps dimension tables resident, so identity is
  // stable; the row count guards against a reused address with different
  // contents). The rest pins the build semantics: same key => the built
  // tables would be byte-identical.
  std::string key =
      std::to_string(reinterpret_cast<std::uintptr_t>(build.dimension));
  key += '/';
  key += std::to_string(build.dimension != nullptr ? build.dimension->rows()
                                                   : 0);
  key += '/';
  key += build.key_column;
  key += '/';
  key += ToString(build.table_kind);
  if (build.has_dim_filter) {
    key += '/';
    key += build.dim_filter.column;
    key += ToString(build.dim_filter.op);
    key += std::to_string(build.dim_filter.literal);
  }
  return key;
}

Result<std::shared_ptr<const DimensionTable>> BuildCache::GetOrBuild(
    const BuildPipeline& build, bool* hit) {
  if (hit != nullptr) *hit = false;
  const std::string key = KeyFor(build);
  std::shared_ptr<Flight> flight;
  bool builder = false;
  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    auto entry_it = entries_.find(key);
    if (entry_it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, entry_it->second.lru_it);
      ++stats_.hits;
      Metrics().hits.Add();
      if (hit != nullptr) *hit = true;
      return entry_it->second.table;
    }
    ++stats_.misses;
    Metrics().misses.Add();
    auto flight_it = in_flight_.find(key);
    if (flight_it != in_flight_.end()) {
      flight = flight_it->second;
      ++stats_.single_flight_waits;
      Metrics().single_flight_waits.Add();
    } else {
      flight = std::make_shared<Flight>();
      verify::NamedMutex(&flight->mutex, "plan.cache.flight");
      in_flight_.emplace(key, flight);
      builder = true;
    }
  }

  if (!builder) {
    // Another query is building this exact table; wait for its result
    // instead of duplicating the work (and the memory).
    std::unique_lock<verify::Mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    return flight->result;
  }

  PUMP_TRACE_SPAN(obs::TraceCategory::kPlan, "cache.build",
                  static_cast<double>(build.keys.rows),
                  static_cast<double>(build.table_bytes));
  Result<DimensionTable> built = DimensionTable::Build(build);
  Result<std::shared_ptr<const DimensionTable>> result =
      built.ok()
          ? Result<std::shared_ptr<const DimensionTable>>(
                std::make_shared<const DimensionTable>(
                    std::move(built).value()))
          : Result<std::shared_ptr<const DimensionTable>>(built.status());

  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    if (result.ok()) {
      InsertLocked(key, result.value(), std::max<std::uint64_t>(
                                            1, build.table_bytes));
    }
    // A failed build clears the in-flight slot either way: waiters get
    // the error, the next request retries fresh.
    in_flight_.erase(key);
  }
  if (PUMP_VERIFY_MUTATE("plan.cache.notify_before_done")) {
    // Seeded bug: broadcast before publishing the result. A waiter that
    // decided to block but has not blocked yet misses the only notify —
    // lost wakeup, reported by the checker as a deadlock.
    flight->cv.notify_all();
    std::lock_guard<verify::Mutex> lock(flight->mutex);
    flight->result = result;
    flight->done = true;
    return result;
  }
  {
    std::lock_guard<verify::Mutex> lock(flight->mutex);
    if (!PUMP_VERIFY_MUTATE("plan.cache.drop_failed_result") || result.ok()) {
      flight->result = result;
    }
    // Seeded bug (when the mutation above is armed): `done` broadcasts
    // without the error, so waiters observe the placeholder status
    // instead of the builder's failure.
    flight->done = true;
  }
  flight->cv.notify_all();
  return result;
}

void BuildCache::InsertLocked(const std::string& key,
                              std::shared_ptr<const DimensionTable> table,
                              std::uint64_t bytes) {
  if (capacity_bytes_ == 0) return;
  // Evict least-recently-used entries until the newcomer fits. An entry
  // larger than the whole capacity is not cached at all (it would only
  // flush everything and then miss next time anyway).
  if (bytes > capacity_bytes_) return;
  while (resident_bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
    const std::string& victim_key = lru_.back();
    auto victim = entries_.find(victim_key);
    resident_bytes_ -= victim->second.bytes;
    ++stats_.evictions;
    Metrics().evictions.Add();
    entries_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(key);
  Entry entry;
  entry.table = std::move(table);
  entry.bytes = bytes;
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
  resident_bytes_ += bytes;
}

void BuildCache::Clear() {
  std::lock_guard<verify::Mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

std::vector<BuildCache::ContentsEntry> BuildCache::Contents() const {
  std::lock_guard<verify::Mutex> lock(mutex_);
  std::vector<ContentsEntry> contents;
  contents.reserve(lru_.size());
  for (const std::string& key : lru_) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    contents.push_back({key, it->second.bytes});
  }
  return contents;
}

BuildCache::Stats BuildCache::stats() const {
  std::lock_guard<verify::Mutex> lock(mutex_);
  Stats stats = stats_;
  stats.resident_bytes = resident_bytes_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace pump::plan
