#ifndef PUMP_PLAN_DUMP_H_
#define PUMP_PLAN_DUMP_H_

#include <string>

#include "plan/plan.h"

namespace pump::plan {

/// Renders a compiled plan as a JSON object: the query shape, the
/// placement rationale, and one entry per pipeline (builds first, then
/// the probe) with placement, hash-table choice, key statistics, table
/// bytes, modelled cost, and the probe's operator list. `query_name`
/// labels the plan (e.g. "ssb-q1"); pass "" for unnamed queries.
/// Consumed by tools/plandump and the check.sh plan gate.
std::string ToJson(const PhysicalPlan& plan, const std::string& query_name);

}  // namespace pump::plan

#endif  // PUMP_PLAN_DUMP_H_
