#ifndef PUMP_PLAN_COMPILER_H_
#define PUMP_PLAN_COMPILER_H_

#include <cstdint>
#include <map>

#include "common/status.h"
#include "engine/query.h"
#include "hw/system_profile.h"
#include "plan/plan.h"

namespace pump::plan {

/// How the compiler assigns pipeline placements.
enum class PlacementPolicy : std::uint8_t {
  /// Every pipeline on the CPU — the reference plan.
  kCpuOnly,
  /// GPU-side placements wherever the budget allows: hash tables GPU-
  /// placed, probe heterogeneous. The degradation ladder (retry -> spill
  /// -> per-pipeline CPU re-placement) recovers from faults at runtime.
  kGpuPreferred,
  /// Per-pipeline placement chosen by engine::Advisor / join::CostModel:
  /// the probe pipeline runs where the modelled time is lowest and each
  /// hash table follows the Fig. 11 placement rules of the winning
  /// device. Decides per *step*, not per query.
  kCostModel
};

const char* ToString(PlacementPolicy policy);

/// Compile-time knobs.
struct CompileOptions {
  PlacementPolicy policy = PlacementPolicy::kCpuOnly;
  /// GPU memory available for hash tables. 0 derives it from the
  /// profile's (or the default AC922's) GPU capacity minus a 1 GiB
  /// working-space reserve. The hybrid hash-table kind is selected when a
  /// dense dimension exceeds this budget.
  std::uint64_t gpu_budget_bytes = 0;
  /// Modelled GPU bytes already committed to concurrently running
  /// queries (the server's in-flight footprint). Shrinks the effective
  /// GPU budget for this compilation; when no headroom remains, GPU
  /// placements degrade to CPU instead of queueing behind device memory
  /// — graceful degradation under pressure rather than unbounded wait.
  std::uint64_t gpu_budget_in_use_bytes = 0;
  /// System profile for the cost-model policy; null uses hw::Ac922Profile.
  const hw::SystemProfile* profile = nullptr;
  /// Cardinality scale factor fed to the cost model (model the same query
  /// shape at paper scale without materializing the data).
  double scale = 1.0;
  /// Candidate GPU devices to shard the plan across (hash-partitioned
  /// build side, all-to-all exchange, parallel shard probes). Every id
  /// must be a GPU of `profile`'s topology. Empty keeps the classic
  /// single-device layout. Under kCpuOnly this is ignored; under
  /// kGpuPreferred every unsaturated candidate becomes a shard; under
  /// kCostModel the compiler scores candidate device sets by modelled
  /// per-shard probe time plus exchange cost and keeps the cheapest.
  DeviceSet shard_devices;
  /// Per-device in-flight bytes of concurrently running queries (the
  /// serving layer's per-device pools). A candidate shard device whose
  /// pool is saturated is dropped from the shard set — admission
  /// degrades shard-by-shard before it degrades to CPU. Null treats
  /// every candidate as idle except for `gpu_budget_in_use_bytes`,
  /// which keeps acting on the plan's primary device.
  const std::map<hw::DeviceId, std::uint64_t>* device_budget_in_use =
      nullptr;
};

/// Compiles `query` into a physical plan: validates the query exactly
/// once (errors carry the offending query shape), derives key statistics
/// per dimension, selects a hash-table kind per build pipeline, and
/// assigns placements per the policy. The query and its tables must
/// outlive the returned plan.
Result<PhysicalPlan> Compile(const engine::Query& query,
                             const CompileOptions& options = {});

/// Structural self-check of a compiled plan (used by tools/plandump and
/// the test suite): probe operators non-empty and well-ordered (filters,
/// then probes, then exactly one trailing aggregate), every probe
/// operator references an existing build pipeline, every build pipeline
/// references an existing join clause, and hash-table kinds are
/// consistent with the key statistics. Returns the first violation.
Status ValidatePlan(const PhysicalPlan& plan);

/// Modelled GPU bytes `plan` occupies while executing as placed:
/// GPU-resident hash tables plus the staged fact columns of a GPU or
/// heterogeneous probe. A CPU-only plan is 0. The server's admission
/// controller uses this as the query's resource token and feeds the
/// concurrent total back through
/// CompileOptions::gpu_budget_in_use_bytes.
std::uint64_t EstimatedGpuFootprintBytes(const PhysicalPlan& plan);

/// The same footprint split per device: a sharded plan divides its hash
/// tables and staged columns evenly across the shard devices; a
/// single-device plan charges everything to its one device. Empty for a
/// CPU-only plan. The per-device sums always add up to
/// EstimatedGpuFootprintBytes.
std::map<hw::DeviceId, std::uint64_t> EstimatedGpuFootprintPerDevice(
    const PhysicalPlan& plan);

/// Plans the all-to-all exchange of `devices` over `topology`: one route
/// per ordered pair, minimum-hop, with the modelled cost (busiest link's
/// transfer time for an evenly hash-partitioned `total_bytes`, plus the
/// longest route's hop latency). Exposed for the cost-model policy, the
/// mesh scaling bench and tests.
Result<ExchangeStage> PlanExchange(const hw::Topology& topology,
                                   const DeviceSet& devices,
                                   std::uint64_t total_bytes);

inline const char* ToString(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kCpuOnly:
      return "cpu";
    case PlacementPolicy::kGpuPreferred:
      return "gpu";
    case PlacementPolicy::kCostModel:
      return "cost";
  }
  return "?";
}

}  // namespace pump::plan

#endif  // PUMP_PLAN_COMPILER_H_
