#include "plan/dump.h"

#include <sstream>

namespace pump::plan {

namespace {

/// Minimal JSON string escaping (column names and reasons are plain
/// identifiers/prose, but quoting must still be safe).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendDeviceSet(const DeviceSet& devices, std::ostringstream* out) {
  *out << "[";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (i > 0) *out << ",";
    *out << devices[i];
  }
  *out << "]";
}

void AppendOperator(const Operator& op, std::ostringstream* out) {
  *out << "{\"op\":\"" << ToString(op.kind) << "\",\"column\":\""
       << Escape(op.column) << "\"";
  switch (op.kind) {
    case OpKind::kScanFilter:
      *out << ",\"cmp\":\"" << ToString(op.op) << "\",\"literal\":"
           << op.literal;
      break;
    case OpKind::kProbe:
      *out << ",\"build\":" << op.build_index;
      break;
    case OpKind::kAggregate:
      break;
  }
  *out << "}";
}

}  // namespace

std::string ToJson(const PhysicalPlan& plan, const std::string& query_name) {
  std::ostringstream out;
  out << "{\"query\":\"" << Escape(query_name) << "\",";
  out << "\"shape\":{\"fact_rows\":" << plan.shape.fact_rows
      << ",\"filters\":" << plan.shape.filters
      << ",\"joins\":" << plan.shape.joins << "},";
  out << "\"rationale\":\"" << Escape(plan.rationale) << "\",";
  out << "\"pipelines\":[";
  for (std::size_t i = 0; i < plan.builds.size(); ++i) {
    const BuildPipeline& build = plan.builds[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"build[" << i << "]\",\"type\":\"build\""
        << ",\"key_column\":\"" << Escape(build.key_column) << "\""
        << ",\"dimension_rows\":" << build.keys.rows
        << ",\"key_min\":" << build.keys.min_key
        << ",\"key_max\":" << build.keys.max_key
        << ",\"key_density\":" << build.keys.density
        << ",\"hash_table\":\"" << ToString(build.table_kind) << "\""
        << ",\"placement\":\"" << ToString(build.placement) << "\""
        << ",\"device_set\":";
    AppendDeviceSet(build.device_set, &out);
    out << ",\"table_bytes\":" << build.table_bytes
        << ",\"modelled_cost_s\":" << build.modelled_cost_s << "}";
  }
  if (!plan.builds.empty()) out << ",";
  out << "{\"name\":\"probe\",\"type\":\"probe\""
      << ",\"placement\":\"" << ToString(plan.probe.placement) << "\""
      << ",\"device_set\":";
  AppendDeviceSet(plan.probe.device_set, &out);
  out << ",\"modelled_cost_s\":" << plan.probe.modelled_cost_s
      << ",\"operators\":[";
  for (std::size_t i = 0; i < plan.probe.ops.size(); ++i) {
    if (i > 0) out << ",";
    AppendOperator(plan.probe.ops[i], &out);
  }
  out << "]}],";
  out << "\"shard\":{\"devices\":";
  AppendDeviceSet(plan.shard.devices, &out);
  out << ",\"partitions\":" << plan.shard.shard_count() << "},";
  out << "\"exchange\":{\"modelled_cost_s\":"
      << plan.exchange.modelled_cost_s << ",\"routes\":[";
  for (std::size_t i = 0; i < plan.exchange.routes.size(); ++i) {
    const ExchangeRoute& route = plan.exchange.routes[i];
    if (i > 0) out << ",";
    out << "{\"src\":" << route.src << ",\"dst\":" << route.dst
        << ",\"hops\":" << route.hops
        << ",\"direct\":" << (route.direct ? "true" : "false")
        << ",\"bottleneck_gib_s\":" << route.bottleneck_gib_s << "}";
  }
  out << "]}}";
  return out.str();
}

}  // namespace pump::plan
