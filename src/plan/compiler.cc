#include "plan/compiler.h"

#include <algorithm>
#include <utility>

#include "engine/advisor.h"
#include "hash/hash_table.h"
#include "hw/topology.h"
#include "join/cost_model.h"

namespace pump::plan {

namespace {

using Storage = hash::TableStorage<std::int64_t, std::int64_t>;
using LinearTable = hash::LinearProbingHashTable<std::int64_t, std::int64_t>;

/// Key domains at least this dense qualify for the perfect hash table
/// (slot = key). Below it the wasted slots outweigh the probe savings and
/// the linear-probing table wins.
constexpr double kDenseKeyDensity = 0.5;

/// GPU working-space reserve subtracted from the hash-table budget
/// (mirrors the Advisor's Fig. 11 placement math).
constexpr std::uint64_t kGpuReserveBytes = 1ull << 30;

Status Annotate(Status status, const QueryShape& shape) {
  if (status.ok()) return status;
  return Status(status.code(),
                status.message() + " (query shape: " + shape.ToString() +
                    ")");
}

/// The single validation pass of the whole engine: runs once per
/// Compile, never again per execution attempt. Every error names the
/// offending query shape.
Status Validate(const engine::Query& query, const QueryShape& shape) {
  if (query.fact == nullptr) {
    return Annotate(Status::InvalidArgument("query has no fact table"),
                    shape);
  }
  if (!query.fact->HasColumn(query.measure_column)) {
    return Annotate(
        Status::NotFound("measure column '" + query.measure_column +
                         "' missing from fact table"),
        shape);
  }
  for (const engine::Filter& filter : query.filters) {
    if (!query.fact->HasColumn(filter.column)) {
      return Annotate(Status::NotFound("filter column '" + filter.column +
                                       "' missing from fact table"),
                      shape);
    }
  }
  for (const engine::JoinClause& join : query.joins) {
    if (join.dimension == nullptr) {
      return Annotate(
          Status::InvalidArgument("join without dimension table"), shape);
    }
    if (!query.fact->HasColumn(join.fact_key_column)) {
      return Annotate(Status::NotFound("join key '" + join.fact_key_column +
                                       "' missing from fact table"),
                      shape);
    }
    if (!join.dimension->HasColumn(join.dim_key_column)) {
      return Annotate(
          Status::NotFound("dimension key '" + join.dim_key_column +
                           "' missing from dimension"),
          shape);
    }
    if (join.has_dim_filter &&
        !join.dimension->HasColumn(join.dim_filter.column)) {
      return Annotate(Status::NotFound("dimension filter column '" +
                                       join.dim_filter.column + "' missing"),
                      shape);
    }
  }
  return Status::OK();
}

KeyStats GatherKeyStats(const std::vector<std::int64_t>& keys) {
  KeyStats stats;
  stats.rows = keys.size();
  if (keys.empty()) return stats;
  stats.min_key = *std::min_element(keys.begin(), keys.end());
  stats.max_key = *std::max_element(keys.begin(), keys.end());
  if (stats.min_key >= 0) {
    stats.density = static_cast<double>(stats.rows) /
                    static_cast<double>(stats.max_key + 1);
  }
  return stats;
}

bool DenseKeys(const KeyStats& keys) {
  return keys.rows > 0 && keys.min_key >= 0 &&
         keys.density >= kDenseKeyDensity;
}

/// Storage footprint of the chosen table kind.
std::uint64_t TableBytes(const KeyStats& keys, HashTableKind kind) {
  if (kind == HashTableKind::kPerfect || kind == HashTableKind::kHybrid) {
    return Storage::BytesFor(static_cast<std::size_t>(keys.max_key + 1));
  }
  return Storage::BytesFor(
      LinearTable::CapacityFor(std::max<std::size_t>(1, keys.rows), 0.5));
}

/// Hash-table selection matrix (DESIGN.md Sec. 10): perfect for dense
/// key domains, hybrid when a dense table exceeds the GPU budget of a
/// GPU-side placement, linear probing otherwise.
HashTableKind ChooseTableKind(const KeyStats& keys, bool gpu_placed,
                              std::uint64_t budget_bytes,
                              std::uint64_t* gpu_used) {
  if (!DenseKeys(keys)) return HashTableKind::kLinearProbing;
  const std::uint64_t bytes = TableBytes(keys, HashTableKind::kPerfect);
  if (gpu_placed) {
    if (*gpu_used + bytes > budget_bytes) return HashTableKind::kHybrid;
    *gpu_used += bytes;
  }
  return HashTableKind::kPerfect;
}

std::uint64_t DefaultGpuBudget(const hw::SystemProfile* profile) {
  static const hw::SystemProfile kDefault = hw::Ac922Profile();
  const hw::Topology& topo =
      profile != nullptr ? profile->topology : kDefault.topology;
  const std::uint64_t capacity = topo.memory(hw::kGpu0).capacity.u64();
  return capacity > kGpuReserveBytes ? capacity - kGpuReserveBytes : 0;
}

/// Cost-model placement: evaluates the whole pipeline DAG on every
/// device via engine::Advisor (which wraps join::NopaJoinModel /
/// transfer::TransferModel) and adopts the winner's per-join hash-table
/// placements — placement per step, not per query.
Status PlaceByCostModel(const engine::Query& query,
                        const CompileOptions& options, PhysicalPlan* plan) {
  static const hw::SystemProfile kDefault = hw::Ac922Profile();
  const hw::SystemProfile* profile =
      options.profile != nullptr ? options.profile : &kDefault;
  const engine::Advisor advisor(profile);
  const engine::QueryStats stats =
      engine::StatsFromQuery(query, options.scale);
  PUMP_ASSIGN_OR_RETURN(engine::PlanChoice choice,
                        advisor.Recommend(stats, hw::kCpu0));
  const bool gpu_wins =
      profile->topology.device(choice.device).kind == hw::DeviceKind::kGpu;
  plan->rationale = choice.rationale;
  plan->probe.placement = gpu_wins ? PipelinePlacement::kHeterogeneous
                                   : PipelinePlacement::kCpu;
  plan->probe.modelled_cost_s = choice.predicted_seconds.seconds();

  const join::NopaJoinModel nopa(profile);
  for (std::size_t i = 0; i < plan->builds.size(); ++i) {
    BuildPipeline& build = plan->builds[i];
    const join::HashTablePlacement& placement = choice.join_placements[i];
    const bool gpu_placed =
        gpu_wins && !placement.parts.empty() &&
        placement.parts[0].node == choice.device;
    build.placement =
        gpu_placed ? PipelinePlacement::kGpu : PipelinePlacement::kCpu;
    if (gpu_placed && placement.parts.size() > 1 && DenseKeys(build.keys)) {
      build.table_kind = HashTableKind::kHybrid;
      build.table_bytes = TableBytes(build.keys, build.table_kind);
    }
    data::WorkloadSpec w;
    w.key_bytes = 8;
    w.payload_bytes = 8;
    w.r_tuples = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(build.keys.rows) * options.scale));
    w.s_tuples = 1;
    const Seconds build_s =
        static_cast<double>(w.r_tuples) /
        nopa.InsertRate(choice.device, placement, w);
    build.modelled_cost_s = build_s.seconds();
  }
  return Status::OK();
}

}  // namespace

Result<PhysicalPlan> Compile(const engine::Query& query,
                             const CompileOptions& options) {
  PhysicalPlan plan;
  plan.query = &query;
  plan.shape.fact_rows = query.fact != nullptr ? query.fact->rows() : 0;
  plan.shape.filters = query.filters.size();
  plan.shape.joins = query.joins.size();
  PUMP_RETURN_NOT_OK(Validate(query, plan.shape));

  const bool gpu_requested = options.policy != PlacementPolicy::kCpuOnly;
  const std::uint64_t budget = options.gpu_budget_bytes != 0
                                   ? options.gpu_budget_bytes
                                   : DefaultGpuBudget(options.profile);
  // Concurrency pressure: bytes already committed to in-flight queries
  // shrink this compilation's budget. A fully saturated budget forces
  // the whole plan onto the CPU — degrading placement is bounded work,
  // waiting for device memory is not.
  const std::uint64_t effective_budget =
      budget > options.gpu_budget_in_use_bytes
          ? budget - options.gpu_budget_in_use_bytes
          : 0;
  const bool saturated = gpu_requested && effective_budget == 0;
  const bool gpu_policy = gpu_requested && !saturated;
  if (saturated) {
    plan.forced_cpu_by_pressure = true;
    plan.rationale =
        "gpu budget saturated (" +
        std::to_string(options.gpu_budget_in_use_bytes) + "/" +
        std::to_string(budget) + " bytes in use); forced CPU placement";
  }
  std::uint64_t gpu_used = 0;

  // One build pipeline per join clause.
  for (std::size_t j = 0; j < query.joins.size(); ++j) {
    const engine::JoinClause& join = query.joins[j];
    BuildPipeline build;
    build.join_index = j;
    build.dimension = join.dimension;
    build.key_column = join.dim_key_column;
    build.dim_filter = join.dim_filter;
    build.has_dim_filter = join.has_dim_filter;
    PUMP_ASSIGN_OR_RETURN(const auto* keys,
                          join.dimension->Column(join.dim_key_column));
    build.keys = GatherKeyStats(*keys);
    build.placement =
        gpu_policy ? PipelinePlacement::kGpu : PipelinePlacement::kCpu;
    build.table_kind = ChooseTableKind(build.keys, gpu_policy,
                                       effective_budget, &gpu_used);
    build.table_bytes = TableBytes(build.keys, build.table_kind);
    plan.builds.push_back(std::move(build));
  }

  // The probe pipeline: filters in query order, probes in join order,
  // one trailing aggregate — the operator order fixes the evaluation
  // order, which is what makes plans bit-identical to the reference.
  for (const engine::Filter& filter : query.filters) {
    Operator op;
    op.kind = OpKind::kScanFilter;
    op.column = filter.column;
    op.op = filter.op;
    op.literal = filter.literal;
    plan.probe.ops.push_back(std::move(op));
  }
  for (std::size_t j = 0; j < query.joins.size(); ++j) {
    Operator op;
    op.kind = OpKind::kProbe;
    op.column = query.joins[j].fact_key_column;
    op.build_index = j;
    plan.probe.ops.push_back(std::move(op));
  }
  {
    Operator op;
    op.kind = OpKind::kAggregate;
    op.column = query.measure_column;
    plan.probe.ops.push_back(std::move(op));
  }
  plan.probe.placement = gpu_policy ? PipelinePlacement::kHeterogeneous
                                    : PipelinePlacement::kCpu;

  if (options.policy == PlacementPolicy::kCostModel && !saturated) {
    PUMP_RETURN_NOT_OK(PlaceByCostModel(query, options, &plan));
  }
  return plan;
}

std::uint64_t EstimatedGpuFootprintBytes(const PhysicalPlan& plan) {
  std::uint64_t bytes = 0;
  for (const BuildPipeline& build : plan.builds) {
    if (build.placement != PipelinePlacement::kCpu) {
      bytes += build.table_bytes;
    }
  }
  if (plan.probe.placement != PipelinePlacement::kCpu) {
    // GPU/heterogeneous probes stage one device buffer per probe
    // operator column (measure, filters, probe keys), each fact_rows
    // 64-bit values — the same staging the plan executor performs.
    bytes += static_cast<std::uint64_t>(plan.probe.ops.size()) *
             plan.shape.fact_rows * sizeof(std::int64_t);
  }
  return bytes;
}

Status ValidatePlan(const PhysicalPlan& plan) {
  if (plan.query == nullptr) {
    return Status::InvalidArgument("plan has no query");
  }
  if (plan.builds.size() != plan.query->joins.size()) {
    return Status::Internal("plan has " +
                            std::to_string(plan.builds.size()) +
                            " build pipelines for " +
                            std::to_string(plan.query->joins.size()) +
                            " joins");
  }
  for (const BuildPipeline& build : plan.builds) {
    if (build.join_index >= plan.query->joins.size()) {
      return Status::Internal("build pipeline references join " +
                              std::to_string(build.join_index) +
                              " of " +
                              std::to_string(plan.query->joins.size()));
    }
    if (build.dimension == nullptr) {
      return Status::Internal("build pipeline without dimension table");
    }
    const bool dense = DenseKeys(build.keys);
    if ((build.table_kind == HashTableKind::kPerfect ||
         build.table_kind == HashTableKind::kHybrid) &&
        !dense) {
      return Status::Internal(
          "perfect/hybrid hash table chosen for a sparse key domain "
          "(density " +
          std::to_string(build.keys.density) + ")");
    }
    if (build.table_bytes == 0) {
      return Status::Internal("build pipeline with zero table bytes");
    }
  }
  const std::vector<Operator>& ops = plan.probe.ops;
  if (ops.empty()) {
    return Status::Internal("probe pipeline has no operators");
  }
  if (ops.back().kind != OpKind::kAggregate) {
    return Status::Internal("probe pipeline does not end in an aggregate");
  }
  int stage = 0;  // 0 = filters, 1 = probes, 2 = aggregate.
  std::size_t aggregates = 0;
  for (const Operator& op : ops) {
    switch (op.kind) {
      case OpKind::kScanFilter:
        if (stage > 0) {
          return Status::Internal("scan_filter after a probe/aggregate");
        }
        break;
      case OpKind::kProbe:
        if (stage > 1) return Status::Internal("probe after the aggregate");
        stage = 1;
        if (op.build_index >= plan.builds.size()) {
          return Status::Internal(
              "probe references missing build pipeline " +
              std::to_string(op.build_index));
        }
        break;
      case OpKind::kAggregate:
        stage = 2;
        ++aggregates;
        break;
    }
  }
  if (aggregates != 1) {
    return Status::Internal("probe pipeline has " +
                            std::to_string(aggregates) + " aggregates");
  }
  return Status::OK();
}

}  // namespace pump::plan
