#include "plan/compiler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "engine/advisor.h"
#include "hash/hash_table.h"
#include "hw/topology.h"
#include "join/cost_model.h"

namespace pump::plan {

namespace {

using Storage = hash::TableStorage<std::int64_t, std::int64_t>;
using LinearTable = hash::LinearProbingHashTable<std::int64_t, std::int64_t>;

/// Key domains at least this dense qualify for the perfect hash table
/// (slot = key). Below it the wasted slots outweigh the probe savings and
/// the linear-probing table wins.
constexpr double kDenseKeyDensity = 0.5;

/// GPU working-space reserve subtracted from the hash-table budget
/// (mirrors the Advisor's Fig. 11 placement math).
constexpr std::uint64_t kGpuReserveBytes = 1ull << 30;

Status Annotate(Status status, const QueryShape& shape) {
  if (status.ok()) return status;
  return Status(status.code(),
                status.message() + " (query shape: " + shape.ToString() +
                    ")");
}

/// The single validation pass of the whole engine: runs once per
/// Compile, never again per execution attempt. Every error names the
/// offending query shape.
Status Validate(const engine::Query& query, const QueryShape& shape) {
  if (query.fact == nullptr) {
    return Annotate(Status::InvalidArgument("query has no fact table"),
                    shape);
  }
  if (!query.fact->HasColumn(query.measure_column)) {
    return Annotate(
        Status::NotFound("measure column '" + query.measure_column +
                         "' missing from fact table"),
        shape);
  }
  for (const engine::Filter& filter : query.filters) {
    if (!query.fact->HasColumn(filter.column)) {
      return Annotate(Status::NotFound("filter column '" + filter.column +
                                       "' missing from fact table"),
                      shape);
    }
  }
  for (const engine::JoinClause& join : query.joins) {
    if (join.dimension == nullptr) {
      return Annotate(
          Status::InvalidArgument("join without dimension table"), shape);
    }
    if (!query.fact->HasColumn(join.fact_key_column)) {
      return Annotate(Status::NotFound("join key '" + join.fact_key_column +
                                       "' missing from fact table"),
                      shape);
    }
    if (!join.dimension->HasColumn(join.dim_key_column)) {
      return Annotate(
          Status::NotFound("dimension key '" + join.dim_key_column +
                           "' missing from dimension"),
          shape);
    }
    if (join.has_dim_filter &&
        !join.dimension->HasColumn(join.dim_filter.column)) {
      return Annotate(Status::NotFound("dimension filter column '" +
                                       join.dim_filter.column + "' missing"),
                      shape);
    }
  }
  return Status::OK();
}

KeyStats GatherKeyStats(const std::vector<std::int64_t>& keys) {
  KeyStats stats;
  stats.rows = keys.size();
  if (keys.empty()) return stats;
  stats.min_key = *std::min_element(keys.begin(), keys.end());
  stats.max_key = *std::max_element(keys.begin(), keys.end());
  if (stats.min_key >= 0) {
    stats.density = static_cast<double>(stats.rows) /
                    static_cast<double>(stats.max_key + 1);
  }
  return stats;
}

bool DenseKeys(const KeyStats& keys) {
  return keys.rows > 0 && keys.min_key >= 0 &&
         keys.density >= kDenseKeyDensity;
}

/// Storage footprint of the chosen table kind.
std::uint64_t TableBytes(const KeyStats& keys, HashTableKind kind) {
  if (kind == HashTableKind::kPerfect || kind == HashTableKind::kHybrid) {
    return Storage::BytesFor(static_cast<std::size_t>(keys.max_key + 1));
  }
  return Storage::BytesFor(
      LinearTable::CapacityFor(std::max<std::size_t>(1, keys.rows), 0.5));
}

/// Hash-table selection matrix (DESIGN.md Sec. 10): perfect for dense
/// key domains, hybrid when a dense table exceeds the GPU budget of a
/// GPU-side placement, linear probing otherwise.
HashTableKind ChooseTableKind(const KeyStats& keys, bool gpu_placed,
                              std::uint64_t budget_bytes,
                              std::uint64_t* gpu_used) {
  if (!DenseKeys(keys)) return HashTableKind::kLinearProbing;
  const std::uint64_t bytes = TableBytes(keys, HashTableKind::kPerfect);
  if (gpu_placed) {
    if (*gpu_used + bytes > budget_bytes) return HashTableKind::kHybrid;
    *gpu_used += bytes;
  }
  return HashTableKind::kPerfect;
}

const hw::SystemProfile& ProfileOrDefault(const hw::SystemProfile* profile) {
  static const hw::SystemProfile kDefault = hw::Ac922Profile();
  return profile != nullptr ? *profile : kDefault;
}

/// First GPU of the topology — the primary device of single-GPU plans.
hw::DeviceId PrimaryGpu(const hw::Topology& topo) {
  const std::vector<hw::DeviceId> gpus =
      topo.DevicesOfKind(hw::DeviceKind::kGpu);
  return gpus.empty() ? hw::kInvalidDevice : gpus.front();
}

std::uint64_t DefaultGpuBudget(const hw::SystemProfile* profile) {
  const hw::Topology& topo = ProfileOrDefault(profile).topology;
  const hw::DeviceId gpu = PrimaryGpu(topo);
  if (gpu == hw::kInvalidDevice) return 0;
  const std::uint64_t capacity = topo.memory(gpu).capacity.u64();
  return capacity > kGpuReserveBytes ? capacity - kGpuReserveBytes : 0;
}

/// Cost-model placement: evaluates the whole pipeline DAG on every
/// device via engine::Advisor (which wraps join::NopaJoinModel /
/// transfer::TransferModel) and adopts the winner's per-join hash-table
/// placements — placement per step, not per query.
Status PlaceByCostModel(const engine::Query& query,
                        const CompileOptions& options, PhysicalPlan* plan) {
  static const hw::SystemProfile kDefault = hw::Ac922Profile();
  const hw::SystemProfile* profile =
      options.profile != nullptr ? options.profile : &kDefault;
  const engine::Advisor advisor(profile);
  const engine::QueryStats stats =
      engine::StatsFromQuery(query, options.scale);
  PUMP_ASSIGN_OR_RETURN(engine::PlanChoice choice,
                        advisor.Recommend(stats, hw::kCpu0));
  const bool gpu_wins =
      profile->topology.device(choice.device).kind == hw::DeviceKind::kGpu;
  plan->rationale = choice.rationale;
  plan->probe.placement = gpu_wins ? PipelinePlacement::kHeterogeneous
                                   : PipelinePlacement::kCpu;
  plan->probe.modelled_cost_s = choice.predicted_seconds.seconds();

  const join::NopaJoinModel nopa(profile);
  for (std::size_t i = 0; i < plan->builds.size(); ++i) {
    BuildPipeline& build = plan->builds[i];
    const join::HashTablePlacement& placement = choice.join_placements[i];
    const bool gpu_placed =
        gpu_wins && !placement.parts.empty() &&
        placement.parts[0].node == choice.device;
    build.placement =
        gpu_placed ? PipelinePlacement::kGpu : PipelinePlacement::kCpu;
    if (gpu_placed && placement.parts.size() > 1 && DenseKeys(build.keys)) {
      build.table_kind = HashTableKind::kHybrid;
      build.table_bytes = TableBytes(build.keys, build.table_kind);
    }
    data::WorkloadSpec w;
    w.key_bytes = 8;
    w.payload_bytes = 8;
    w.r_tuples = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(build.keys.rows) * options.scale));
    w.s_tuples = 1;
    const Seconds build_s =
        static_cast<double>(w.r_tuples) /
        nopa.InsertRate(choice.device, placement, w);
    build.modelled_cost_s = build_s.seconds();
  }
  return Status::OK();
}

/// Bytes the probe pipeline stages into device memory: one column per
/// probe operator (measure, filters, probe keys), fact_rows 64-bit values
/// each. This is also the tuple payload the exchange redistributes.
std::uint64_t StagedProbeBytes(const PhysicalPlan& plan) {
  return static_cast<std::uint64_t>(plan.probe.ops.size()) *
         plan.shape.fact_rows * sizeof(std::int64_t);
}

/// Device-set placement (the "which devices", not "which side" pass):
/// validates the shard candidates against the profile topology, drops
/// candidates whose per-device pool is saturated (admission degrades
/// shard-by-shard before it degrades to CPU), scores candidate subsets
/// under the cost-model policy by per-shard probe time plus modelled
/// exchange cost, and annotates the plan with its shard descriptor,
/// per-pipeline device sets and exchange stage.
Status PlaceShards(const CompileOptions& options, std::uint64_t budget,
                   PhysicalPlan* plan) {
  const hw::SystemProfile& profile = ProfileOrDefault(options.profile);
  const hw::Topology& topo = profile.topology;

  DeviceSet candidates = options.shard_devices;
  if (candidates.empty()) {
    const hw::DeviceId primary = PrimaryGpu(topo);
    if (primary == hw::kInvalidDevice) return Status::OK();
    candidates.push_back(primary);
  }
  for (hw::DeviceId d : candidates) {
    if (d < 0 || static_cast<std::size_t>(d) >= topo.device_count() ||
        topo.device(d).kind != hw::DeviceKind::kGpu) {
      return Status::InvalidArgument(
          "shard device " + std::to_string(d) +
          " is not a GPU of the profile topology");
    }
  }

  // Per-device admission: a candidate whose pool has no headroom left is
  // dropped; the remaining shards absorb its share.
  DeviceSet live;
  for (hw::DeviceId d : candidates) {
    std::uint64_t in_use = 0;
    if (options.device_budget_in_use != nullptr) {
      const auto it = options.device_budget_in_use->find(d);
      if (it != options.device_budget_in_use->end()) in_use = it->second;
    }
    if (in_use >= budget) {
      if (!plan->rationale.empty()) plan->rationale += "; ";
      plan->rationale += "device " + std::to_string(d) +
                         " pool saturated (" + std::to_string(in_use) + "/" +
                         std::to_string(budget) +
                         " bytes); dropped from shard set";
      continue;
    }
    live.push_back(d);
  }
  if (live.empty()) {
    plan->forced_cpu_by_pressure = true;
    if (!plan->rationale.empty()) plan->rationale += "; ";
    plan->rationale += "all shard device pools saturated; forced CPU placement";
    plan->probe.placement = PipelinePlacement::kCpu;
    plan->probe.device_set.clear();
    for (BuildPipeline& build : plan->builds) {
      build.placement = PipelinePlacement::kCpu;
      build.device_set.clear();
    }
    return Status::OK();
  }

  // The cost-model policy scores every prefix of the candidate list:
  // probe work divides across the shards, exchange cost grows with them.
  DeviceSet chosen = live;
  if (options.policy == PlacementPolicy::kCostModel && live.size() > 1 &&
      plan->probe.placement != PipelinePlacement::kCpu) {
    const std::uint64_t staged = StagedProbeBytes(*plan);
    const double probe_s = std::max(plan->probe.modelled_cost_s, 1e-9);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t n = 1; n <= live.size(); ++n) {
      DeviceSet prefix(live.begin(), live.begin() + n);
      PUMP_ASSIGN_OR_RETURN(ExchangeStage exchange,
                            PlanExchange(topo, prefix, staged));
      const double score =
          probe_s / static_cast<double>(n) + exchange.modelled_cost_s;
      if (score < best) {
        best = score;
        chosen = std::move(prefix);
      }
    }
    if (!plan->rationale.empty()) plan->rationale += "; ";
    plan->rationale += "cost model kept " + std::to_string(chosen.size()) +
                       " of " + std::to_string(live.size()) +
                       " shard candidates (modelled " +
                       std::to_string(best) + " s on " + profile.name + ")";
  }

  plan->shard.devices = chosen;
  if (plan->probe.placement != PipelinePlacement::kCpu) {
    plan->probe.device_set = chosen;
  }
  for (BuildPipeline& build : plan->builds) {
    if (build.placement != PipelinePlacement::kCpu) {
      build.device_set = chosen;
    }
  }
  if (plan->probe.placement != PipelinePlacement::kCpu) {
    PUMP_ASSIGN_OR_RETURN(
        plan->exchange, PlanExchange(topo, chosen, StagedProbeBytes(*plan)));
    if (plan->shard.active()) {
      if (!plan->rationale.empty()) plan->rationale += "; ";
      plan->rationale += "sharded across " +
                         std::to_string(chosen.size()) +
                         " devices; modelled exchange " +
                         std::to_string(plan->exchange.modelled_cost_s) +
                         " s";
    }
  }
  return Status::OK();
}

}  // namespace

Result<PhysicalPlan> Compile(const engine::Query& query,
                             const CompileOptions& options) {
  PhysicalPlan plan;
  plan.query = &query;
  plan.shape.fact_rows = query.fact != nullptr ? query.fact->rows() : 0;
  plan.shape.filters = query.filters.size();
  plan.shape.joins = query.joins.size();
  PUMP_RETURN_NOT_OK(Validate(query, plan.shape));

  const bool gpu_requested = options.policy != PlacementPolicy::kCpuOnly;
  const std::uint64_t budget = options.gpu_budget_bytes != 0
                                   ? options.gpu_budget_bytes
                                   : DefaultGpuBudget(options.profile);
  // Concurrency pressure: bytes already committed to in-flight queries
  // shrink this compilation's budget. A fully saturated budget forces
  // the whole plan onto the CPU — degrading placement is bounded work,
  // waiting for device memory is not.
  const std::uint64_t effective_budget =
      budget > options.gpu_budget_in_use_bytes
          ? budget - options.gpu_budget_in_use_bytes
          : 0;
  const bool saturated = gpu_requested && effective_budget == 0;
  const bool gpu_policy = gpu_requested && !saturated;
  if (saturated) {
    plan.forced_cpu_by_pressure = true;
    plan.rationale =
        "gpu budget saturated (" +
        std::to_string(options.gpu_budget_in_use_bytes) + "/" +
        std::to_string(budget) + " bytes in use); forced CPU placement";
  }
  std::uint64_t gpu_used = 0;

  // One build pipeline per join clause.
  for (std::size_t j = 0; j < query.joins.size(); ++j) {
    const engine::JoinClause& join = query.joins[j];
    BuildPipeline build;
    build.join_index = j;
    build.dimension = join.dimension;
    build.key_column = join.dim_key_column;
    build.dim_filter = join.dim_filter;
    build.has_dim_filter = join.has_dim_filter;
    PUMP_ASSIGN_OR_RETURN(const auto* keys,
                          join.dimension->Column(join.dim_key_column));
    build.keys = GatherKeyStats(*keys);
    build.placement =
        gpu_policy ? PipelinePlacement::kGpu : PipelinePlacement::kCpu;
    build.table_kind = ChooseTableKind(build.keys, gpu_policy,
                                       effective_budget, &gpu_used);
    build.table_bytes = TableBytes(build.keys, build.table_kind);
    plan.builds.push_back(std::move(build));
  }

  // The probe pipeline: filters in query order, probes in join order,
  // one trailing aggregate — the operator order fixes the evaluation
  // order, which is what makes plans bit-identical to the reference.
  for (const engine::Filter& filter : query.filters) {
    Operator op;
    op.kind = OpKind::kScanFilter;
    op.column = filter.column;
    op.op = filter.op;
    op.literal = filter.literal;
    plan.probe.ops.push_back(std::move(op));
  }
  for (std::size_t j = 0; j < query.joins.size(); ++j) {
    Operator op;
    op.kind = OpKind::kProbe;
    op.column = query.joins[j].fact_key_column;
    op.build_index = j;
    plan.probe.ops.push_back(std::move(op));
  }
  {
    Operator op;
    op.kind = OpKind::kAggregate;
    op.column = query.measure_column;
    plan.probe.ops.push_back(std::move(op));
  }
  plan.probe.placement = gpu_policy ? PipelinePlacement::kHeterogeneous
                                    : PipelinePlacement::kCpu;

  if (options.policy == PlacementPolicy::kCostModel && !saturated) {
    PUMP_RETURN_NOT_OK(PlaceByCostModel(query, options, &plan));
  }
  plan.profile = options.profile;
  if (gpu_policy && plan.UsesGpu()) {
    PUMP_RETURN_NOT_OK(PlaceShards(options, budget, &plan));
  }
  return plan;
}

Result<ExchangeStage> PlanExchange(const hw::Topology& topology,
                                   const DeviceSet& devices,
                                   std::uint64_t total_bytes) {
  ExchangeStage stage;
  const std::size_t n = devices.size();
  if (n <= 1) return stage;
  for (hw::DeviceId d : devices) {
    if (d < 0 || static_cast<std::size_t>(d) >= topology.device_count() ||
        topology.device(d).kind != hw::DeviceKind::kGpu) {
      return Status::InvalidArgument("exchange device " + std::to_string(d) +
                                     " is not a GPU of the topology");
    }
  }

  // Evenly hash-partitioned tuples: each ordered (src, dst) pair moves
  // total / n^2 bytes. Links are full-duplex (Sec. 2.2), so loads
  // accumulate per edge *direction*; a bounce through an intermediate
  // device is store-and-forward, charging that node's memory twice
  // (write, then read back out).
  const double pair_bytes =
      static_cast<double>(total_bytes) / static_cast<double>(n * n);
  std::map<std::pair<std::size_t, bool>, double> directed_edge_bytes;
  std::map<hw::DeviceId, double> bounce_bytes;
  double max_latency_s = 0.0;
  for (const hw::DeviceId src : devices) {
    for (const hw::DeviceId dst : devices) {
      if (src == dst) continue;
      // Prefer peer paths (NVLink/NVSwitch/P2P); bounce through the host
      // only when the GPUs are not peer-connected (AC922-style meshes).
      Result<hw::Route> routed = topology.FindPeerRoute(src, dst);
      if (!routed.ok()) routed = topology.FindRoute(src, dst);
      if (!routed.ok()) {
        return Status(routed.status().code(),
                      "no exchange route from device " +
                          std::to_string(src) + " to " + std::to_string(dst) +
                          ": " + routed.status().message());
      }
      const hw::Route& route = routed.value();
      ExchangeRoute out;
      out.src = src;
      out.dst = dst;
      out.hops = route.hops();
      out.direct = route.hops() == 1;
      double bottleneck_gib_s = std::numeric_limits<double>::infinity();
      double latency_s = 0.0;
      hw::DeviceId at = src;
      for (const std::size_t e : route.edge_indices) {
        const hw::Edge& edge = topology.edges()[e];
        const bool forward = edge.a == at;
        directed_edge_bytes[{e, forward}] += pair_bytes;
        bottleneck_gib_s =
            std::min(bottleneck_gib_s, edge.link.seq_bw.gib_per_second());
        latency_s += edge.link.hop_latency.seconds();
        at = forward ? edge.b : edge.a;
        if (at != dst) bounce_bytes[at] += 2.0 * pair_bytes;
      }
      out.bottleneck_gib_s = bottleneck_gib_s;
      max_latency_s = std::max(max_latency_s, latency_s);
      stage.routes.push_back(out);
    }
  }

  double busiest_s = 0.0;
  for (const auto& [key, bytes] : directed_edge_bytes) {
    const hw::Edge& edge = topology.edges()[key.first];
    busiest_s =
        std::max(busiest_s, bytes / edge.link.seq_bw.bytes_per_second());
  }
  for (const auto& [dev, bytes] : bounce_bytes) {
    busiest_s = std::max(
        busiest_s, bytes / topology.memory(dev).seq_bw.bytes_per_second());
  }
  stage.modelled_cost_s = busiest_s + max_latency_s;
  return stage;
}

std::uint64_t EstimatedGpuFootprintBytes(const PhysicalPlan& plan) {
  std::uint64_t bytes = 0;
  for (const BuildPipeline& build : plan.builds) {
    if (build.placement != PipelinePlacement::kCpu) {
      bytes += build.table_bytes;
    }
  }
  if (plan.probe.placement != PipelinePlacement::kCpu) {
    // GPU/heterogeneous probes stage one device buffer per probe
    // operator column (measure, filters, probe keys), each fact_rows
    // 64-bit values — the same staging the plan executor performs.
    bytes += static_cast<std::uint64_t>(plan.probe.ops.size()) *
             plan.shape.fact_rows * sizeof(std::int64_t);
  }
  return bytes;
}

std::map<hw::DeviceId, std::uint64_t> EstimatedGpuFootprintPerDevice(
    const PhysicalPlan& plan) {
  std::map<hw::DeviceId, std::uint64_t> per_device;
  // A sharded pipeline divides its bytes evenly across its device set,
  // remainder to the first device, so the per-device sums always add up
  // to the aggregate footprint. Legacy plans without device sets charge
  // the default testbed's GPU.
  const auto split = [&per_device](const DeviceSet& set,
                                   std::uint64_t bytes) {
    if (bytes == 0) return;
    if (set.empty()) {
      per_device[hw::kGpu0] += bytes;
      return;
    }
    const std::uint64_t share = bytes / set.size();
    per_device[set.front()] +=
        bytes - share * static_cast<std::uint64_t>(set.size() - 1);
    for (std::size_t i = 1; i < set.size(); ++i) per_device[set[i]] += share;
  };
  for (const BuildPipeline& build : plan.builds) {
    if (build.placement != PipelinePlacement::kCpu) {
      split(build.device_set, build.table_bytes);
    }
  }
  if (plan.probe.placement != PipelinePlacement::kCpu) {
    split(plan.probe.device_set,
          static_cast<std::uint64_t>(plan.probe.ops.size()) *
              plan.shape.fact_rows * sizeof(std::int64_t));
  }
  return per_device;
}

Status ValidatePlan(const PhysicalPlan& plan) {
  if (plan.query == nullptr) {
    return Status::InvalidArgument("plan has no query");
  }
  if (plan.builds.size() != plan.query->joins.size()) {
    return Status::Internal("plan has " +
                            std::to_string(plan.builds.size()) +
                            " build pipelines for " +
                            std::to_string(plan.query->joins.size()) +
                            " joins");
  }
  for (const BuildPipeline& build : plan.builds) {
    if (build.join_index >= plan.query->joins.size()) {
      return Status::Internal("build pipeline references join " +
                              std::to_string(build.join_index) +
                              " of " +
                              std::to_string(plan.query->joins.size()));
    }
    if (build.dimension == nullptr) {
      return Status::Internal("build pipeline without dimension table");
    }
    const bool dense = DenseKeys(build.keys);
    if ((build.table_kind == HashTableKind::kPerfect ||
         build.table_kind == HashTableKind::kHybrid) &&
        !dense) {
      return Status::Internal(
          "perfect/hybrid hash table chosen for a sparse key domain "
          "(density " +
          std::to_string(build.keys.density) + ")");
    }
    if (build.table_bytes == 0) {
      return Status::Internal("build pipeline with zero table bytes");
    }
  }
  const std::vector<Operator>& ops = plan.probe.ops;
  if (ops.empty()) {
    return Status::Internal("probe pipeline has no operators");
  }
  if (ops.back().kind != OpKind::kAggregate) {
    return Status::Internal("probe pipeline does not end in an aggregate");
  }
  int stage = 0;  // 0 = filters, 1 = probes, 2 = aggregate.
  std::size_t aggregates = 0;
  for (const Operator& op : ops) {
    switch (op.kind) {
      case OpKind::kScanFilter:
        if (stage > 0) {
          return Status::Internal("scan_filter after a probe/aggregate");
        }
        break;
      case OpKind::kProbe:
        if (stage > 1) return Status::Internal("probe after the aggregate");
        stage = 1;
        if (op.build_index >= plan.builds.size()) {
          return Status::Internal(
              "probe references missing build pipeline " +
              std::to_string(op.build_index));
        }
        break;
      case OpKind::kAggregate:
        stage = 2;
        ++aggregates;
        break;
    }
  }
  if (aggregates != 1) {
    return Status::Internal("probe pipeline has " +
                            std::to_string(aggregates) + " aggregates");
  }
  return Status::OK();
}

}  // namespace pump::plan
