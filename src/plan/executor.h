#ifndef PUMP_PLAN_EXECUTOR_H_
#define PUMP_PLAN_EXECUTOR_H_

#include "common/status.h"
#include "engine/executor.h"
#include "plan/plan.h"

namespace pump::plan {

/// Executes a compiled plan under the fault model, morsel-wise through
/// the exec layer. The degradation ladder operates per pipeline:
///
///  * Build pipelines run exactly once; their hash tables are cached and
///    reused by every later rung (a GPU-side probe failure no longer
///    discards completed builds). A GPU-placed build that loses its
///    device placement (plan.pipeline failpoint, or hybrid allocation
///    failure) is re-placed on the CPU; a partial device allocation
///    spills (rung 2) and is reported via hybrid_gpu_fraction.
///  * A GPU/heterogeneous probe pipeline stages the fact columns chunk-
///    wise with per-chunk retry (rung 1) and schedules CPU+GPU groups
///    with failover; on an unrecoverable fault it is re-placed on the
///    CPU (rung 3), probing the cached tables.
///
/// The result is bit-identical across every rung — that is the contract
/// the golden equivalence suite pins down.
Result<engine::ExecReport> ExecutePlan(const PhysicalPlan& plan,
                                       const engine::ExecOptions& options);

}  // namespace pump::plan

#endif  // PUMP_PLAN_EXECUTOR_H_
