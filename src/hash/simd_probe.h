#ifndef PUMP_HASH_SIMD_PROBE_H_
#define PUMP_HASH_SIMD_PROBE_H_

#include <cstddef>
#include <cstdint>

// 8-wide AVX2 probe kernels for the int64 key/value hash tables. The
// implementations live in simd_probe.cc, the only hash translation unit
// compiled with -mavx2 (see src/CMakeLists.txt) — keeping intrinsics
// out of the headers lets every other TU build for the baseline ISA.
//
// Callers (hash_table.h's ProbeBatch entry points) are responsible for
// checking common::ActiveSimdDispatch() == SimdDispatch::kAvx2 before
// dispatching here; on non-AVX2 hosts these symbols still link (scalar
// fallback bodies) so the dispatch check is a policy, not a safety,
// gate.
//
// All kernels are bit-identical to the scalar Lookup/ProbeBatch loops:
// same match set, same values, same found flags — including the
// empty-sentinel corner (a probe key of -1 must miss even though it
// compares equal to kEmptySlot, so the empty check wins over the key
// compare, exactly as in the scalar chain).

namespace pump::hash::simd {

/// Probes a perfect-hash table (slot == key) for `count` keys. Reads
/// the raw key/value arrays (TableStorage::raw_keys/raw_values) — valid
/// only after the build/probe barrier. Out-of-domain keys are masked
/// out of the gather. Returns the match count.
std::size_t ProbePerfectAvx2(const std::int64_t* slot_keys,
                             const std::int64_t* slot_values,
                             std::size_t capacity, const std::int64_t* keys,
                             std::size_t count, std::int64_t* values,
                             bool* found);

/// Probes a linear-probing table (capacity = mask + 1, power of two)
/// for `count` keys: vectorized Murmur3 mix + gather of each probe's
/// first bucket + compare mask; lanes that neither hit nor see an empty
/// slot fall back to the scalar chain walk. Returns the match count.
std::size_t ProbeLinearAvx2(const std::int64_t* slot_keys,
                            const std::int64_t* slot_values,
                            std::size_t mask, const std::int64_t* keys,
                            std::size_t count, std::int64_t* values,
                            bool* found);

}  // namespace pump::hash::simd

#endif  // PUMP_HASH_SIMD_PROBE_H_
