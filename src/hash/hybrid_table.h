#ifndef PUMP_HASH_HYBRID_TABLE_H_
#define PUMP_HASH_HYBRID_TABLE_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "hash/hash_table.h"
#include "memory/allocator.h"

namespace pump::hash {

// GCC 12 reports a spurious -Wmaybe-uninitialized for the std::optional
// payload when -fsanitize=undefined changes the inlining of emplace()
// (gcc.gnu.org/PR105562); it fires on the Create -> constructor chain
// below under PUMP_SANITIZE=address.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// The paper's hybrid hash table (Sec. 5.3): one virtually contiguous
/// perfect-hash table whose pages live partly in GPU memory and partly in
/// CPU memory, allocated greedily GPU-first with NUMA-ordered spill
/// (Fig. 8). The join algorithm is unchanged — it sees a single array —
/// which is the point: virtual memory abstracts the physical split.
///
/// Functionally the table is ordinary host memory; the modelled split is
/// recorded in the backing buffer's extents and consumed by the cost
/// model (the A_GPU access fraction of Sec. 5.3).
template <typename K, typename V>
class HybridHashTable {
 public:
  /// Allocates a hybrid table for the dense key domain [0, capacity).
  /// `gpu_reserve_bytes` is left free in GPU memory for other state.
  ///
  /// With a non-null `injector`, the device allocation probes the
  /// `alloc.device` failpoint: an injected GPU-OOM mid-build spills the
  /// remaining table partitions to CPU memory instead of failing — the
  /// achieved split is reported by `gpu_fraction()`. Only when the CPU
  /// nodes cannot absorb the spill either does Create return an error.
  static Result<HybridHashTable> Create(memory::MemoryManager* manager,
                                        hw::DeviceId gpu,
                                        std::size_t capacity,
                                        std::uint64_t gpu_reserve_bytes = 0,
                                        fault::FaultInjector* injector =
                                            nullptr) {
    const std::uint64_t bytes = TableStorage<K, V>::BytesFor(capacity);
    PUMP_ASSIGN_OR_RETURN(memory::Buffer buffer,
                          manager->AllocateHybrid(bytes, gpu,
                                                  gpu_reserve_bytes,
                                                  injector));
    return HybridHashTable(std::move(buffer), capacity, gpu, manager);
  }

  HybridHashTable(HybridHashTable&& other) noexcept
      : buffer_(std::move(other.buffer_)),
        capacity_(other.capacity_),
        gpu_(other.gpu_),
        manager_(std::exchange(other.manager_, nullptr)),
        table_(std::move(other.table_)) {}

  HybridHashTable& operator=(HybridHashTable&& other) noexcept {
    if (this != &other) {
      if (manager_ != nullptr) manager_->Release(buffer_);
      buffer_ = std::move(other.buffer_);
      capacity_ = other.capacity_;
      gpu_ = other.gpu_;
      manager_ = std::exchange(other.manager_, nullptr);
      table_ = std::move(other.table_);
    }
    return *this;
  }

  ~HybridHashTable() {
    if (manager_ != nullptr) manager_->Release(buffer_);
  }

  /// The table view; only valid when `materialized()`.
  PerfectHashTable<K, V>& table() { return *table_; }
  const PerfectHashTable<K, V>& table() const { return *table_; }

  /// Scalar lookup over the hybrid placement (delegates to the
  /// materialized table view).
  bool Lookup(K key, V* value) const { return table_->Lookup(key, value); }

  /// Interleaved group probe over the hybrid placement (delegates to the
  /// materialized table view; see PerfectHashTable::ProbeBatch).
  std::size_t ProbeBatch(const K* keys, std::size_t count, V* values,
                         bool* found) const {
    return table_->ProbeBatch(keys, count, values, found);
  }

  /// True when backed by host storage (functional mode).
  bool materialized() const { return table_.has_value(); }

  /// Fraction of the table resident in GPU memory: the expected fraction
  /// of accesses served by the GPU under a uniform key distribution
  /// (A_GPU, Sec. 5.3).
  double gpu_fraction() const { return buffer_.FractionOnNode(gpu_); }

  /// The backing buffer (extents describe the GPU/CPU split).
  const memory::Buffer& buffer() const { return buffer_; }
  /// Slot capacity.
  std::size_t capacity() const { return capacity_; }
  /// The GPU node the table prefers.
  hw::DeviceId gpu() const { return gpu_; }

 private:
  HybridHashTable(memory::Buffer buffer, std::size_t capacity,
                  hw::DeviceId gpu, memory::MemoryManager* manager)
      : buffer_(std::move(buffer)),
        capacity_(capacity),
        gpu_(gpu),
        manager_(manager) {
    if (buffer_.materialized()) {
      table_.emplace(buffer_.data(), capacity_);
    }
  }

  memory::Buffer buffer_;
  std::size_t capacity_ = 0;
  hw::DeviceId gpu_ = hw::kInvalidDevice;
  memory::MemoryManager* manager_ = nullptr;
  std::optional<PerfectHashTable<K, V>> table_;
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace pump::hash

#endif  // PUMP_HASH_HYBRID_TABLE_H_
