#include "hash/simd_probe.h"

#include "hash/hash_function.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PUMP_SIMD_X86 1
#endif

namespace pump::hash::simd {
namespace {

constexpr std::int64_t kEmpty = -1;  // == kEmptySlot<int64_t>

// Scalar reference paths, shared by the tail loops and the non-x86
// fallback bodies. These mirror PerfectHashTable::Lookup and
// LinearProbingHashTable::Lookup over the raw arrays.

inline bool ScalarPerfectLookup(const std::int64_t* slot_keys,
                                const std::int64_t* slot_values,
                                std::size_t capacity, std::int64_t key,
                                std::int64_t* value) {
  if (key < 0 || static_cast<std::size_t>(key) >= capacity) return false;
  const auto slot = static_cast<std::size_t>(key);
  if (slot_keys[slot] != key) return false;
  *value = slot_values[slot];
  return true;
}

// Walks a linear-probing chain starting at `slot` with `probes_done`
// buckets already inspected; identical traversal (and therefore
// identical result) to the scalar Lookup's `probes <= mask` loop.
inline bool ScalarLinearChain(const std::int64_t* slot_keys,
                              const std::int64_t* slot_values,
                              std::size_t mask, std::int64_t key,
                              std::size_t slot, std::size_t probes_done,
                              std::int64_t* value) {
  for (std::size_t probes = probes_done; probes <= mask; ++probes) {
    const std::int64_t stored = slot_keys[slot];
    if (stored == kEmpty) return false;
    if (stored == key) {
      *value = slot_values[slot];
      return true;
    }
    slot = (slot + 1) & mask;
  }
  return false;
}

inline bool ScalarLinearLookup(const std::int64_t* slot_keys,
                               const std::int64_t* slot_values,
                               std::size_t mask, std::int64_t key,
                               std::int64_t* value) {
  const std::size_t slot =
      static_cast<std::size_t>(HashKey(key)) & mask;
  return ScalarLinearChain(slot_keys, slot_values, mask, key, slot,
                           /*probes_done=*/0, value);
}

#ifdef PUMP_SIMD_X86

// 64x64 -> low-64 multiply. AVX2 has no vpmullq; compose it from
// vpmuludq (32x32 -> 64) partial products:
//   a*b mod 2^64 = lo32(a)*lo32(b) + ((hi32(a)*lo32(b) + lo32(a)*hi32(b)) << 32)
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// Vector Murmur3 64-bit finalizer; bit-identical per lane to
// hash_function.h's Murmur3Mix64 (xor-shift is exact, MulLo64 is exact
// mod 2^64).
inline __m256i Murmur3Mix64Vec(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, _mm256_set1_epi64x(
                     static_cast<long long>(0xff51afd7ed558ccdull)));
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, _mm256_set1_epi64x(
                     static_cast<long long>(0xc4ceb9fe1a85ec53ull)));
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  return k;
}

inline int MoveMask64(__m256i lanes) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(lanes));
}

// Resolves four perfect-hash lanes: `stored` is the gathered slot keys
// (empty sentinel in out-of-domain lanes), `valid` the in-domain mask.
inline std::size_t ResolvePerfect4(const std::int64_t* slot_values,
                                   __m256i k, __m256i valid, __m256i stored,
                                   std::int64_t* values, bool* found) {
  // A masked-out lane carries the -1 sentinel, which only equals an
  // out-of-domain key (-1) — and `valid` kills that lane anyway.
  const __m256i hit = _mm256_and_si256(valid, _mm256_cmpeq_epi64(stored, k));
  const int mask = MoveMask64(hit);
  if (mask != 0) {
    const __m256i vals = _mm256_mask_i64gather_epi64(
        _mm256_setzero_si256(),
        reinterpret_cast<const long long*>(slot_values), k, hit, 8);
    alignas(32) std::int64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vals);
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) values[lane] = tmp[lane];
    }
  }
  for (int lane = 0; lane < 4; ++lane) {
    found[lane] = ((mask >> lane) & 1) != 0;
  }
  return static_cast<std::size_t>(
      __builtin_popcount(static_cast<unsigned>(mask)));
}

// Resolves four linear-probing lanes against their gathered first
// buckets; collision lanes continue on the scalar chain.
inline std::size_t ResolveLinear4(const std::int64_t* slot_keys,
                                  const std::int64_t* slot_values,
                                  std::size_t table_mask, __m256i k,
                                  __m256i slot, __m256i stored,
                                  std::int64_t* values, bool* found) {
  const __m256i empty = _mm256_set1_epi64x(kEmpty);
  const __m256i is_empty = _mm256_cmpeq_epi64(stored, empty);
  // Empty beats hit: a probe key of -1 compares equal to the sentinel
  // but must miss, exactly as the scalar chain checks empty first.
  const __m256i is_hit =
      _mm256_andnot_si256(is_empty, _mm256_cmpeq_epi64(stored, k));
  const int empty_mask = MoveMask64(is_empty);
  const int hit_mask = MoveMask64(is_hit);

  alignas(32) std::int64_t hit_vals[4];
  if (hit_mask != 0) {
    const __m256i vals = _mm256_mask_i64gather_epi64(
        _mm256_setzero_si256(),
        reinterpret_cast<const long long*>(slot_values), slot, is_hit, 8);
    _mm256_store_si256(reinterpret_cast<__m256i*>(hit_vals), vals);
  }

  std::size_t matches = 0;
  alignas(32) std::int64_t keys4[4];
  alignas(32) std::int64_t slots4[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(keys4), k);
  _mm256_store_si256(reinterpret_cast<__m256i*>(slots4), slot);
  for (int lane = 0; lane < 4; ++lane) {
    if ((hit_mask >> lane) & 1) {
      values[lane] = hit_vals[lane];
      found[lane] = true;
      ++matches;
    } else if ((empty_mask >> lane) & 1) {
      found[lane] = false;
    } else {
      // Collision: keep walking from the next bucket with one probe of
      // the budget already spent on the gathered bucket.
      const std::size_t next =
          (static_cast<std::size_t>(slots4[lane]) + 1) & table_mask;
      found[lane] = ScalarLinearChain(slot_keys, slot_values, table_mask,
                                      keys4[lane], next, /*probes_done=*/1,
                                      &values[lane]);
      if (found[lane]) ++matches;
    }
  }
  return matches;
}

#endif  // PUMP_SIMD_X86

}  // namespace

std::size_t ProbePerfectAvx2(const std::int64_t* slot_keys,
                             const std::int64_t* slot_values,
                             std::size_t capacity, const std::int64_t* keys,
                             std::size_t count, std::int64_t* values,
                             bool* found) {
  std::size_t matches = 0;
  std::size_t i = 0;
#ifdef PUMP_SIMD_X86
  const __m256i cap = _mm256_set1_epi64x(static_cast<long long>(capacity));
  const __m256i minus_one = _mm256_set1_epi64x(-1);
  const auto* base = reinterpret_cast<const long long*>(slot_keys);
  // Two 4-lane halves per iteration: both gathers issue before either
  // half resolves, keeping 8 independent loads in flight (the SIMD
  // analogue of the interleaved-prefetch batch).
  for (; i + 8 <= count; i += 8) {
    const __m256i k0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i k1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i + 4));
    // In-domain: 0 <= key < capacity. Out-of-domain lanes are masked
    // out of the gather (masked lanes are fault-suppressed and read
    // nothing).
    const __m256i valid0 = _mm256_and_si256(_mm256_cmpgt_epi64(k0, minus_one),
                                            _mm256_cmpgt_epi64(cap, k0));
    const __m256i valid1 = _mm256_and_si256(_mm256_cmpgt_epi64(k1, minus_one),
                                            _mm256_cmpgt_epi64(cap, k1));
    // Perfect hash is the identity, so the key vector doubles as the
    // gather index vector.
    const __m256i stored0 =
        _mm256_mask_i64gather_epi64(minus_one, base, k0, valid0, 8);
    const __m256i stored1 =
        _mm256_mask_i64gather_epi64(minus_one, base, k1, valid1, 8);
    matches += ResolvePerfect4(slot_values, k0, valid0, stored0, values + i,
                               found + i);
    matches += ResolvePerfect4(slot_values, k1, valid1, stored1,
                               values + i + 4, found + i + 4);
  }
  for (; i + 4 <= count; i += 4) {
    const __m256i k0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i valid0 = _mm256_and_si256(_mm256_cmpgt_epi64(k0, minus_one),
                                            _mm256_cmpgt_epi64(cap, k0));
    const __m256i stored0 =
        _mm256_mask_i64gather_epi64(minus_one, base, k0, valid0, 8);
    matches += ResolvePerfect4(slot_values, k0, valid0, stored0, values + i,
                               found + i);
  }
#endif
  for (; i < count; ++i) {
    found[i] = ScalarPerfectLookup(slot_keys, slot_values, capacity, keys[i],
                                   &values[i]);
    if (found[i]) ++matches;
  }
  return matches;
}

std::size_t ProbeLinearAvx2(const std::int64_t* slot_keys,
                            const std::int64_t* slot_values, std::size_t mask,
                            const std::int64_t* keys, std::size_t count,
                            std::int64_t* values, bool* found) {
  std::size_t matches = 0;
  std::size_t i = 0;
#ifdef PUMP_SIMD_X86
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const auto* base = reinterpret_cast<const long long*>(slot_keys);
  for (; i + 8 <= count; i += 8) {
    const __m256i k0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i k1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i + 4));
    const __m256i slot0 = _mm256_and_si256(Murmur3Mix64Vec(k0), vmask);
    const __m256i slot1 = _mm256_and_si256(Murmur3Mix64Vec(k1), vmask);
    // First buckets; every slot is in [0, mask], so no gather mask.
    const __m256i stored0 = _mm256_i64gather_epi64(base, slot0, 8);
    const __m256i stored1 = _mm256_i64gather_epi64(base, slot1, 8);
    matches += ResolveLinear4(slot_keys, slot_values, mask, k0, slot0,
                              stored0, values + i, found + i);
    matches += ResolveLinear4(slot_keys, slot_values, mask, k1, slot1,
                              stored1, values + i + 4, found + i + 4);
  }
  for (; i + 4 <= count; i += 4) {
    const __m256i k0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i slot0 = _mm256_and_si256(Murmur3Mix64Vec(k0), vmask);
    const __m256i stored0 = _mm256_i64gather_epi64(base, slot0, 8);
    matches += ResolveLinear4(slot_keys, slot_values, mask, k0, slot0,
                              stored0, values + i, found + i);
  }
#endif
  for (; i < count; ++i) {
    found[i] = ScalarLinearLookup(slot_keys, slot_values, mask, keys[i],
                                  &values[i]);
    if (found[i]) ++matches;
  }
  return matches;
}

}  // namespace pump::hash::simd
