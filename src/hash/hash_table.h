#ifndef PUMP_HASH_HASH_TABLE_H_
#define PUMP_HASH_HASH_TABLE_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "common/cpu_features.h"
#include "common/status.h"
#include "hash/hash_function.h"
#include "hash/simd_probe.h"

namespace pump::hash {

/// Key sentinel marking an empty slot. Valid keys must be >= 0 (the
/// generators produce non-negative keys).
template <typename K>
inline constexpr K kEmptySlot = static_cast<K>(-1);

/// Width of the interleaved group probe (ProbeBatch): the number of
/// bucket addresses kept in flight before any is dereferenced. Sized to
/// the ~10-16 line-fill buffers of a modern core, so a batch of
/// independent probes overlaps its cache misses instead of serializing
/// them — the CPU-side analogue of the memory-level parallelism a GPU's
/// warp scheduler extracts from the same probe stream (Sec. 5.2).
inline constexpr std::size_t kProbeBatchWidth = 16;

/// Issues a read prefetch for `address` with low temporal locality (hash
/// probes touch a line once). No-op on compilers without the builtin.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/1);
#else
  (void)address;
#endif
}

/// Flat <key, value> hash-table storage: a keys array (atomic, to support
/// concurrent CPU+GPU builds on a shared table, Sec. 6) followed by a
/// values array. Storage may be owned or external (e.g. a hybrid buffer
/// spanning GPU and CPU memory, Sec. 5.3).
template <typename K, typename V>
class TableStorage {
 public:
  /// Bytes needed for `capacity` slots.
  static constexpr std::size_t BytesFor(std::size_t capacity) {
    return capacity * (sizeof(K) + sizeof(V));
  }
  /// Bytes per slot.
  static constexpr std::size_t slot_bytes() { return sizeof(K) + sizeof(V); }

  TableStorage() = default;

  /// Allocates owned storage for `capacity` slots and clears it.
  explicit TableStorage(std::size_t capacity)
      : owned_(new std::byte[BytesFor(capacity)]),
        base_(owned_.get()),
        capacity_(capacity) {
    Clear();
  }

  /// Wraps external storage of at least BytesFor(capacity) bytes. The
  /// storage must outlive the table. Clears the slots.
  TableStorage(std::byte* external, std::size_t capacity)
      : base_(external), capacity_(capacity) {
    Clear();
  }

  TableStorage(TableStorage&&) = default;
  TableStorage& operator=(TableStorage&&) = default;

  /// Number of slots.
  std::size_t capacity() const { return capacity_; }

  /// Atomic view of the key at `slot`.
  std::atomic<K>& key(std::size_t slot) {
    return reinterpret_cast<std::atomic<K>*>(base_)[slot];
  }
  const std::atomic<K>& key(std::size_t slot) const {
    return reinterpret_cast<const std::atomic<K>*>(base_)[slot];
  }
  /// The value at `slot`.
  V& value(std::size_t slot) {
    return reinterpret_cast<V*>(base_ + capacity_ * sizeof(K))[slot];
  }
  const V& value(std::size_t slot) const {
    return reinterpret_cast<const V*>(base_ + capacity_ * sizeof(K))[slot];
  }

  /// Raw (non-atomic) views of the key and value arrays for the
  /// vectorized probe kernels (hash/simd_probe.h), whose gathers cannot
  /// go through std::atomic. Valid only after the build/probe barrier:
  /// the atomic wrapper is lock-free and layout-identical to K, and the
  /// happens-before edge that already licenses the relaxed scalar reads
  /// licenses plain (and gathered) loads just the same.
  const K* raw_keys() const {
    static_assert(std::atomic<K>::is_always_lock_free);
    static_assert(sizeof(std::atomic<K>) == sizeof(K));
    return reinterpret_cast<const K*>(base_);
  }
  const V* raw_values() const {
    return reinterpret_cast<const V*>(base_ + capacity_ * sizeof(K));
  }

  /// Prefetches the key at `slot` (and nothing else: values are loaded
  /// only on a match, Sec. 7.2.9).
  void PrefetchKey(std::size_t slot) const {
    PrefetchRead(base_ + slot * sizeof(K));
  }
  /// Prefetches the value at `slot` (for tables whose lookups resolve the
  /// slot exactly, like the perfect hash, where a hit is likely).
  void PrefetchValue(std::size_t slot) const {
    PrefetchRead(base_ + capacity_ * sizeof(K) + slot * sizeof(V));
  }

  /// Marks every slot empty.
  void Clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      key(i).store(kEmptySlot<K>, std::memory_order_relaxed);
    }
  }

 private:
  std::unique_ptr<std::byte[]> owned_;
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Perfect-hash table over dense keys [0, capacity): slot = key, load
/// factor 1, no probing. This is the table of the paper's NOPA join
/// (Sec. 7.1) — a lookup touches exactly one slot, which makes the join's
/// random-access behaviour easy to reason about.
template <typename K, typename V>
class PerfectHashTable {
 public:
  /// Creates a table for the key domain [0, capacity) with owned storage.
  explicit PerfectHashTable(std::size_t capacity)
      : storage_(capacity) {}
  /// Creates a table over external storage (hybrid placement).
  PerfectHashTable(std::byte* external, std::size_t capacity)
      : storage_(external, capacity) {}

  /// Inserts a tuple. Thread-safe against concurrent inserts: the key CAS
  /// claims the slot and only the winner writes the value. Lookups must be
  /// separated from inserts by a happens-before edge — the join algorithms'
  /// build/probe barrier provides it. Fails with AlreadyExists on duplicate
  /// keys and InvalidArgument when the key is outside the domain.
  Status Insert(K key, V value) {
    if (key < 0 || static_cast<std::size_t>(key) >= storage_.capacity()) {
      return Status::InvalidArgument("key outside perfect-hash domain");
    }
    const auto slot = static_cast<std::size_t>(PerfectHash(key));
    K expected = kEmptySlot<K>;
    if (!storage_.key(slot).compare_exchange_strong(
            expected, key, std::memory_order_acq_rel)) {
      return Status::AlreadyExists("duplicate key in perfect hash table");
    }
    storage_.value(slot) = value;
    return Status::OK();
  }

  /// Looks up `key`; returns true and sets *value on a match.
  bool Lookup(K key, V* value) const {
    if (key < 0 || static_cast<std::size_t>(key) >= storage_.capacity()) {
      return false;
    }
    const auto slot = static_cast<std::size_t>(PerfectHash(key));
    if (storage_.key(slot).load(std::memory_order_acquire) != key) {
      return false;
    }
    *value = storage_.value(slot);
    return true;
  }

  /// Batched probe: resolves `count` keys, setting `found[i]` and (on a
  /// match) `values[i]`; returns the match count. Bit-identical results
  /// to calling Lookup per key. Dispatches at runtime between the
  /// 8-wide AVX2 gather kernel and the interleaved-prefetch fallback
  /// (common/cpu_features.h); every call site — ProbePhase/ProbeRange,
  /// the star probe, plan::operators, the hybrid table — picks the
  /// vectorized path up through this entry point unchanged.
  std::size_t ProbeBatch(const K* keys, std::size_t count, V* values,
                         bool* found) const {
    if constexpr (std::is_same_v<K, std::int64_t> &&
                  std::is_same_v<V, std::int64_t>) {
      if (common::ActiveSimdDispatch() == common::SimdDispatch::kAvx2) {
        return simd::ProbePerfectAvx2(storage_.raw_keys(),
                                      storage_.raw_values(),
                                      storage_.capacity(), keys, count,
                                      values, found);
      }
    }
    return ProbeBatchInterleaved(keys, count, values, found);
  }

  /// Interleaved group probe, the portable ProbeBatch path: keys are
  /// processed in groups of kProbeBatchWidth — all bucket addresses of a
  /// group are computed and prefetched before any is dereferenced, so the
  /// dependent cache misses of a scalar Lookup loop become overlapped
  /// ones.
  std::size_t ProbeBatchInterleaved(const K* keys, std::size_t count,
                                    V* values, bool* found) const {
    std::size_t matches = 0;
    const std::size_t capacity = storage_.capacity();
    std::size_t slots[kProbeBatchWidth];
    for (std::size_t base = 0; base < count; base += kProbeBatchWidth) {
      const std::size_t n = std::min(kProbeBatchWidth, count - base);
      // Stage 1: compute and prefetch every slot before touching any.
      for (std::size_t i = 0; i < n; ++i) {
        const K key = keys[base + i];
        if (key < 0 || static_cast<std::size_t>(key) >= capacity) {
          slots[i] = capacity;  // Out-of-domain sentinel.
          continue;
        }
        const auto slot = static_cast<std::size_t>(PerfectHash(key));
        slots[i] = slot;
        storage_.PrefetchKey(slot);
        storage_.PrefetchValue(slot);
      }
      // Stage 2: resolve against (hopefully) in-flight lines.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t slot = slots[i];
        if (slot >= capacity ||
            storage_.key(slot).load(std::memory_order_acquire) !=
                keys[base + i]) {
          found[base + i] = false;
          continue;
        }
        values[base + i] = storage_.value(slot);
        found[base + i] = true;
        ++matches;
      }
    }
    return matches;
  }

  /// Number of slots (== key domain size).
  std::size_t capacity() const { return storage_.capacity(); }
  /// Bytes of table storage.
  std::size_t bytes() const {
    return TableStorage<K, V>::BytesFor(storage_.capacity());
  }
  /// Occupied slot count (linear scan; for tests and diagnostics).
  std::size_t Size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < storage_.capacity(); ++i) {
      if (storage_.key(i).load(std::memory_order_relaxed) !=
          kEmptySlot<K>) {
        ++n;
      }
    }
    return n;
  }

 private:
  TableStorage<K, V> storage_;
};

/// Open-addressing hash table with linear probing and Murmur3 mixing, the
/// general-purpose variant for non-dense keys. Thread-safe inserts via CAS
/// claim-then-publish on the key slot.
template <typename K, typename V>
class LinearProbingHashTable {
 public:
  /// Rounds `min_slots / load_factor` up to a power of two.
  static std::size_t CapacityFor(std::size_t min_slots, double load_factor) {
    const auto needed = static_cast<std::size_t>(
        static_cast<double>(min_slots) / load_factor);
    return std::bit_ceil(needed < 2 ? std::size_t{2} : needed);
  }

  /// Creates a table sized for `expected_entries` at `load_factor`.
  explicit LinearProbingHashTable(std::size_t expected_entries,
                                  double load_factor = 0.5)
      : storage_(CapacityFor(expected_entries, load_factor)),
        mask_(storage_.capacity() - 1) {}

  /// Creates a table over external storage; `capacity` must be a power of
  /// two.
  LinearProbingHashTable(std::byte* external, std::size_t capacity)
      : storage_(external, capacity), mask_(capacity - 1) {}

  /// Inserts a tuple. Thread-safe against concurrent inserts (the key CAS
  /// claims the slot; only the winner writes the value). As with
  /// PerfectHashTable, lookups require a happens-before edge after the
  /// build phase. Duplicate keys are rejected; fails with OutOfMemory when
  /// the table is full.
  Status Insert(K key, V value) {
    std::size_t slot = HashKey(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      K expected = kEmptySlot<K>;
      if (storage_.key(slot).compare_exchange_strong(
              expected, key, std::memory_order_acq_rel)) {
        storage_.value(slot) = value;
        return Status::OK();
      }
      if (expected == key) {
        return Status::AlreadyExists("duplicate key");
      }
      slot = (slot + 1) & mask_;
    }
    return Status::OutOfMemory("hash table full");
  }

  /// Looks up `key`; returns true and sets *value on a match.
  bool Lookup(K key, V* value) const {
    std::size_t slot = HashKey(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      const K stored = storage_.key(slot).load(std::memory_order_acquire);
      if (stored == kEmptySlot<K>) return false;
      if (stored == key) {
        *value = storage_.value(slot);
        return true;
      }
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  /// Batched probe (see PerfectHashTable::ProbeBatch): dispatches at
  /// runtime between the 8-wide AVX2 kernel — vectorized Murmur3 mix,
  /// gather of each probe's first bucket, compare mask, scalar collision
  /// fallback — and the interleaved-prefetch path. Bit-identical results
  /// to calling Lookup per key.
  std::size_t ProbeBatch(const K* keys, std::size_t count, V* values,
                         bool* found) const {
    if constexpr (std::is_same_v<K, std::int64_t> &&
                  std::is_same_v<V, std::int64_t>) {
      if (common::ActiveSimdDispatch() == common::SimdDispatch::kAvx2) {
        return simd::ProbeLinearAvx2(storage_.raw_keys(),
                                     storage_.raw_values(), mask_, keys,
                                     count, values, found);
      }
    }
    return ProbeBatchInterleaved(keys, count, values, found);
  }

  /// Interleaved group probe, the portable ProbeBatch path: hashes and
  /// prefetches the first bucket of kProbeBatchWidth keys before
  /// resolving any, overlapping the initial — usually only — miss of each
  /// probe chain. Chain steps past the first bucket proceed scalar; at
  /// the 0.5 default load factor chains are short and mostly stay on the
  /// prefetched line (8 keys per 64-byte line for 64-bit keys).
  std::size_t ProbeBatchInterleaved(const K* keys, std::size_t count,
                                    V* values, bool* found) const {
    std::size_t matches = 0;
    std::size_t slots[kProbeBatchWidth];
    for (std::size_t base = 0; base < count; base += kProbeBatchWidth) {
      const std::size_t n = std::min(kProbeBatchWidth, count - base);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t slot = HashKey(keys[base + i]) & mask_;
        slots[i] = slot;
        storage_.PrefetchKey(slot);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const K key = keys[base + i];
        std::size_t slot = slots[i];
        found[base + i] = false;
        for (std::size_t probes = 0; probes <= mask_; ++probes) {
          const K stored =
              storage_.key(slot).load(std::memory_order_acquire);
          if (stored == kEmptySlot<K>) break;
          if (stored == key) {
            values[base + i] = storage_.value(slot);
            found[base + i] = true;
            ++matches;
            break;
          }
          slot = (slot + 1) & mask_;
        }
      }
    }
    return matches;
  }

  /// Number of slots.
  std::size_t capacity() const { return storage_.capacity(); }
  /// Bytes of table storage.
  std::size_t bytes() const {
    return TableStorage<K, V>::BytesFor(storage_.capacity());
  }

 private:
  TableStorage<K, V> storage_;
  std::size_t mask_;
};

}  // namespace pump::hash

#endif  // PUMP_HASH_HASH_TABLE_H_
