#ifndef PUMP_HASH_BLOOM_H_
#define PUMP_HASH_BLOOM_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "hash/hash_function.h"

namespace pump::hash {

/// A register-blocked Bloom filter: each key maps to one 64-bit block and
/// sets `kProbes` bits inside it, so a lookup costs a single memory access
/// — the layout used for join pruning on CPUs feeding co-processors
/// (Gubner et al. [32], discussed in Sec. 9 "Transfer Optimization").
///
/// Use case in this repo: pre-filter the probe relation on the CPU so
/// only likely-matching tuples cross a slow interconnect
/// (bench/ext_bloom_pruning).
template <typename K>
class BlockedBloomFilter {
 public:
  /// Bits set per key within its block.
  static constexpr int kProbes = 4;

  /// Sizes the filter for `expected_keys` at roughly `bits_per_key` bits
  /// (rounded up to a power-of-two block count).
  explicit BlockedBloomFilter(std::size_t expected_keys,
                              double bits_per_key = 12.0) {
    const double bits = static_cast<double>(expected_keys) * bits_per_key;
    const auto blocks_needed =
        static_cast<std::size_t>(bits / 64.0) + 1;
    blocks_.resize(std::bit_ceil(blocks_needed));
    mask_ = blocks_.size() - 1;
  }

  /// Inserts a key.
  void Insert(K key) {
    const std::uint64_t hash = HashKey(key);
    blocks_[(hash >> 32) & mask_] |= BlockMask(hash);
  }

  /// Returns false only if the key was definitely never inserted.
  bool MayContain(K key) const {
    const std::uint64_t hash = HashKey(key);
    const std::uint64_t mask = BlockMask(hash);
    return (blocks_[(hash >> 32) & mask_] & mask) == mask;
  }

  /// Filter size in bytes.
  std::size_t bytes() const { return blocks_.size() * sizeof(std::uint64_t); }

  /// Fraction of bits set (diagnostic; drives the false-positive rate).
  double FillRatio() const {
    std::uint64_t set = 0;
    for (std::uint64_t block : blocks_) set += std::popcount(block);
    return static_cast<double>(set) /
           static_cast<double>(blocks_.size() * 64);
  }

  /// Approximate false-positive probability at the current fill ratio:
  /// each of the kProbes block bits must be set.
  double EstimatedFalsePositiveRate() const {
    const double fill = FillRatio();
    double fpr = 1.0;
    for (int i = 0; i < kProbes; ++i) fpr *= fill;
    return fpr;
  }

 private:
  // kProbes bit positions derived from independent hash slices.
  static std::uint64_t BlockMask(std::uint64_t hash) {
    std::uint64_t mask = 0;
    for (int i = 0; i < kProbes; ++i) {
      mask |= std::uint64_t{1} << ((hash >> (6 * i)) & 63);
    }
    return mask;
  }

  std::vector<std::uint64_t> blocks_;
  std::size_t mask_ = 0;
};

}  // namespace pump::hash

#endif  // PUMP_HASH_BLOOM_H_
