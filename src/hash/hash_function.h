#ifndef PUMP_HASH_HASH_FUNCTION_H_
#define PUMP_HASH_HASH_FUNCTION_H_

#include <cstdint>

namespace pump::hash {

/// Murmur3 64-bit finalizer: a full-avalanche mixer, the standard choice
/// for integer join keys.
constexpr std::uint64_t Murmur3Mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Murmur3 32-bit finalizer.
constexpr std::uint32_t Murmur3Mix32(std::uint32_t k) {
  k ^= k >> 16;
  k *= 0x85ebca6bu;
  k ^= k >> 13;
  k *= 0xc2b2ae35u;
  k ^= k >> 16;
  return k;
}

/// Hashes a key of any integral width with the appropriate Murmur mixer.
template <typename K>
constexpr std::uint64_t HashKey(K key) {
  if constexpr (sizeof(K) <= 4) {
    return Murmur3Mix32(static_cast<std::uint32_t>(key));
  } else {
    return Murmur3Mix64(static_cast<std::uint64_t>(key));
  }
}

/// Perfect hash for dense primary keys [0, n): the identity (Sec. 7.1:
/// "we set up our no-partitioning hash join with perfect hashing, i.e.,
/// we assume no hash conflicts occur due to the uniqueness of primary
/// keys"). The caller guarantees key < capacity.
template <typename K>
constexpr std::uint64_t PerfectHash(K key) {
  return static_cast<std::uint64_t>(key);
}

}  // namespace pump::hash

#endif  // PUMP_HASH_HASH_FUNCTION_H_
