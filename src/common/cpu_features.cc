#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define PUMP_X86_64 1
#endif

namespace pump::common {
namespace {

#ifdef PUMP_X86_64
// XCR0 bits: SSE state (bit 1) and AVX/YMM state (bit 2) must both be
// enabled by the OS before YMM registers may be used.
constexpr unsigned kXcr0SseAvx = 0x6;

unsigned long long ReadXcr0() {
  unsigned eax = 0;
  unsigned edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}
#endif

CpuFeatures Detect() {
  CpuFeatures f;
#ifdef PUMP_X86_64
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.sse42 = (ecx & bit_SSE4_2) != 0;
    f.avx = (ecx & bit_AVX) != 0;
    f.osxsave = (ecx & bit_OSXSAVE) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & bit_AVX2) != 0;
    f.avx512f = (ebx & bit_AVX512F) != 0;
  }
  f.avx2_usable = f.avx2 && f.osxsave &&
                  (ReadXcr0() & kXcr0SseAvx) == kXcr0SseAvx;
#endif
  return f;
}

// The override is an atomic (not a plain cached bool) so tests and
// benches can flip dispatch mid-process and concurrent probe workers
// observe a coherent value.
std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{
      ParseForceScalarEnv(std::getenv("PUMP_FORCE_SCALAR"))};
  return flag;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

const char* SimdDispatchName(SimdDispatch dispatch) {
  switch (dispatch) {
    case SimdDispatch::kScalar:
      return "scalar";
    case SimdDispatch::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdDispatch ActiveSimdDispatch() {
  if (ForceScalarFlag().load(std::memory_order_relaxed)) {
    return SimdDispatch::kScalar;
  }
  if (Avx2KernelsCompiledIn() && DetectCpuFeatures().avx2_usable) {
    return SimdDispatch::kAvx2;
  }
  return SimdDispatch::kScalar;
}

void SetForceScalar(bool force) {
  ForceScalarFlag().store(force, std::memory_order_relaxed);
}

bool ForceScalar() {
  return ForceScalarFlag().load(std::memory_order_relaxed);
}

bool ParseForceScalarEnv(const char* value) {
  if (value == nullptr) return false;
  if (value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

bool Avx2KernelsCompiledIn() {
#ifdef PUMP_X86_64
  return true;
#else
  return false;
#endif
}

}  // namespace pump::common
