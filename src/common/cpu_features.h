#ifndef PUMP_COMMON_CPU_FEATURES_H_
#define PUMP_COMMON_CPU_FEATURES_H_

// Runtime CPU-feature detection and the process-wide SIMD dispatch
// decision for the vectorized hot paths (hash/simd_probe.h,
// join/swwc.h).
//
// The hot-path kernels are compiled into dedicated translation units
// with -mavx2 (see src/CMakeLists.txt); everything else is built for
// the baseline ISA and selects a kernel at runtime through
// ActiveSimdDispatch(). AVX-512 is detected and reported through obs
// metrics but never dispatched to: the downclocking/licensing behaviour
// on the CPUs the paper models makes 256-bit the safe ceiling
// (DESIGN.md section 14).

namespace pump::common {

/// What cpuid says the processor supports. `avx2_usable` additionally
/// requires OS support for saving the YMM state (OSXSAVE + XCR0), which
/// is what actually gates dispatch.
struct CpuFeatures {
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool avx512f = false;   // reported only, never dispatched to
  bool osxsave = false;   // OS saves extended state (XGETBV available)
  bool avx2_usable = false;
};

/// Detects once (thread-safe) and returns the cached result. On
/// non-x86 builds every field is false.
const CpuFeatures& DetectCpuFeatures();

/// The kernel families a hot path can dispatch to. kScalar covers both
/// the plain loops and the interleaved-prefetch batch paths — anything
/// that does not require AVX2 codegen.
enum class SimdDispatch {
  kScalar,
  kAvx2,
};

const char* SimdDispatchName(SimdDispatch dispatch);

/// The process-wide dispatch decision: kAvx2 iff the CPU+OS support
/// AVX2, the kernels were compiled in, and no force-scalar override is
/// active. Cheap enough to call per batch (one relaxed atomic load).
SimdDispatch ActiveSimdDispatch();

/// Force-scalar override. Initialized at first use from the
/// PUMP_FORCE_SCALAR environment variable ("" and "0" mean off,
/// anything else on); tests and benches flip it at runtime to compare
/// the scalar and vectorized paths in one process.
void SetForceScalar(bool force);
bool ForceScalar();

/// Parses a PUMP_FORCE_SCALAR value; exposed for tests (the env var
/// itself is read once at static init).
bool ParseForceScalarEnv(const char* value);

/// True when the AVX2 kernels were compiled into this binary (x86-64
/// build with the dedicated -mavx2 translation units present).
bool Avx2KernelsCompiledIn();

/// RAII helper for tests/benches: forces scalar dispatch for the
/// scope's lifetime, then restores the previous override.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force = true)
      : previous_(ForceScalar()) {
    SetForceScalar(force);
  }
  ~ScopedForceScalar() { SetForceScalar(previous_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

}  // namespace pump::common

#endif  // PUMP_COMMON_CPU_FEATURES_H_
