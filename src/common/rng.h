#ifndef PUMP_COMMON_RNG_H_
#define PUMP_COMMON_RNG_H_

#include <cstdint>

namespace pump {

/// SplitMix64: used to seed and to hash 64-bit values. Deterministic across
/// platforms, unlike std::mt19937 usage with distribution objects.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Xoshiro256** pseudo-random generator. Deterministic, fast, and decoupled
/// from libstdc++ distribution implementations so that generated workloads
/// are reproducible byte-for-byte across toolchains.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent streams.
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  /// Returns the next 64 random bits.
  std::uint64_t Next64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). Requires bound > 0. Uses
  /// Lemire's multiply-shift rejection-free mapping (slightly biased for
  /// astronomically large bounds, which is acceptable for data generation).
  std::uint64_t NextBounded(std::uint64_t bound) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(Next64()) *
        static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pump

#endif  // PUMP_COMMON_RNG_H_
