#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace pump {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

namespace {

void WriteCsvCell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void WriteCsvRow(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    WriteCsvCell(os, row[i]);
  }
  os << '\n';
}

}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  WriteCsvRow(os, headers_);
  for (const auto& row : rows_) WriteCsvRow(os, row);
}

void TablePrinter::PrintAuto(std::ostream& os) const {
  const char* format = std::getenv("PUMP_TABLE_FORMAT");
  if (format != nullptr && std::strcmp(format, "csv") == 0) {
    PrintCsv(os);
  } else {
    Print(os);
  }
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      for (std::size_t pad = row[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pump
