#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace pump {

void RunningStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::standard_error() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::relative_standard_error() const {
  if (mean_ == 0.0) return 0.0;
  return standard_error() / mean_;
}

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  double upper = samples[mid];
  if (samples.size() % 2 == 1) return upper;
  std::nth_element(samples.begin(), samples.begin() + mid - 1,
                   samples.begin() + mid);
  return 0.5 * (samples[mid - 1] + upper);
}

double MedianAbsoluteDeviation(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  const double median = Median(samples);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double sample : samples) {
    deviations.push_back(std::abs(sample - median));
  }
  return Median(std::move(deviations));
}

}  // namespace pump
