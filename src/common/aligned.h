#ifndef PUMP_COMMON_ALIGNED_H_
#define PUMP_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace pump::common {

/// Minimal over-aligned allocator. Partition outputs use it at 64-byte
/// (cache-line) alignment so the software write-combining scatter
/// (join/swwc.h) can flush whole lines with aligned non-temporal
/// stores; operator new's default 16-byte alignment would silently
/// disqualify every line.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0);

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A vector whose buffer starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace pump::common

#endif  // PUMP_COMMON_ALIGNED_H_
