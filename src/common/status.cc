#include "common/status.h"

namespace pump {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace pump
