#include "common/status.h"

namespace pump {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace pump
