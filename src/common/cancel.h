#ifndef PUMP_COMMON_CANCEL_H_
#define PUMP_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/happens_before.h"
#include "common/status.h"
#include "verify/mutation.h"
#include "verify/sync.h"

namespace pump {

/// Cooperative cancellation handle shared between a query's owner (the
/// serving layer, a client thread) and its workers (the plan executor's
/// morsel loops). Workers poll `Cancelled()` at morsel-claim granularity
/// — cheap enough for the hot loop (one relaxed load; a steady_clock read
/// only while a deadline is armed) and frequent enough that a cancelled
/// query releases its workers within one morsel.
///
/// The token latches the *first* cancellation cause: a user Cancel() and
/// a deadline expiry race benignly, and every later observer reports the
/// same terminal status. Thread-safe; tokens are shared by raw pointer
/// and must outlive every worker that polls them.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a wall-clock deadline. Workers observe the expiry on their next
  /// poll; `Cancelled()` latches it into the terminal state so the cause
  /// is stable even after the clock moves on.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  /// Arms a deadline `seconds` from now. Non-positive values expire
  /// immediately (useful for tests and queue-expiry sweeps).
  void SetDeadlineAfter(double seconds) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(
                    static_cast<std::int64_t>(seconds * 1e9)));
  }

  /// Requests cancellation. First cause wins; later calls are no-ops.
  void Cancel() { Latch(kUserCancelled); }

  /// True once the token is cancelled — by an explicit Cancel() or an
  /// expired deadline (latched on first observation). Poll this at claim
  /// granularity; it is the release valve of the serving layer.
  bool Cancelled() const {
    State state = state_.load(std::memory_order_acquire);
    if (state != kLive) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    if (deadline == kNoDeadline) return false;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now < deadline) return false;
    const_cast<CancelToken*>(this)->Latch(kDeadlineExpired);
    return true;
  }

  /// OK while live; the latched terminal status once cancelled.
  Status ToStatus() const {
    if (!Cancelled()) return Status::OK();
    // Cancel-latch -> observe edge: a terminal status can only be
    // reported after some thread's latch event (debug builds only).
    PUMP_HB_ASSERT(hb_latched_.Load() >= 1,
                   "terminal cancellation status observed before any "
                   "latch event");
    return state_.load(std::memory_order_acquire) == kDeadlineExpired
               ? Status::DeadlineExceeded("query deadline expired")
               : Status::Cancelled("query cancelled by caller");
  }

 private:
  enum State : int { kLive = 0, kUserCancelled = 1, kDeadlineExpired = 2 };
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  void Latch(State cause) {
    if (PUMP_VERIFY_MUTATE("common.cancel.latch_blind_store")) {
      // Seeded bug: a blind store instead of the latch CAS lets a
      // deadline expiry overwrite an earlier user cancel — the terminal
      // cause changes after it was observed.
      state_.store(cause, std::memory_order_release);
      hb_latched_.Bump();
      return;
    }
    State expected = kLive;
    if (state_.compare_exchange_strong(expected, cause,
                                       std::memory_order_acq_rel)) {
      hb_latched_.Bump();
    }
  }

  // verify::Atomic = std::atomic in normal builds; under PUMP_VERIFY the
  // model checker owns the interleaving of latch and observation.
  verify::Atomic<State> state_{kLive};
  verify::Atomic<std::int64_t> deadline_ns_{kNoDeadline};
  /// Happens-before ledger of the latch edge (debug builds only).
  hb::EpochCounter hb_latched_;
};

}  // namespace pump

#endif  // PUMP_COMMON_CANCEL_H_
