#ifndef PUMP_COMMON_TABLE_PRINTER_H_
#define PUMP_COMMON_TABLE_PRINTER_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pump {

/// Renders aligned, human-readable text tables for the benchmark binaries
/// that regenerate the paper's figures. Values are formatted up front so the
/// printer only deals with strings.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for callers).
  static std::string FormatDouble(double value, int precision = 2);

  /// Writes the table with a header underline and column padding.
  void Print(std::ostream& os) const;

  /// Writes the table as RFC-4180-style CSV (quoting cells that contain
  /// commas or quotes) for machine consumption; every figure bench honors
  /// the PUMP_TABLE_FORMAT=csv environment variable through PrintAuto.
  void PrintCsv(std::ostream& os) const;

  /// Dispatches to PrintCsv when the PUMP_TABLE_FORMAT environment
  /// variable equals "csv", otherwise to Print.
  void PrintAuto(std::ostream& os) const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pump

#endif  // PUMP_COMMON_TABLE_PRINTER_H_
