#ifndef PUMP_COMMON_UNITS_H_
#define PUMP_COMMON_UNITS_H_

#include <cstdint>

namespace pump {

/// Byte-size constants. The paper reports capacities in binary units (GiB)
/// and electrical link rates in decimal units (GB/s); both are provided.
inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;

/// Time constants expressed in seconds.
inline constexpr double kNanosecond = 1e-9;
inline constexpr double kMicrosecond = 1e-6;
inline constexpr double kMillisecond = 1e-3;

/// Converts a GiB/s figure to bytes per second.
constexpr double GiBPerSecond(double gib) {
  return gib * static_cast<double>(kGiB);
}

/// Converts a decimal GB/s figure (electrical link rate) to bytes per second.
constexpr double GBPerSecond(double gb) {
  return gb * static_cast<double>(kGB);
}

/// Converts bytes per second back to GiB/s for reporting.
constexpr double ToGiBPerSecond(double bytes_per_second) {
  return bytes_per_second / static_cast<double>(kGiB);
}

/// Converts a nanosecond figure to seconds.
constexpr double Nanoseconds(double ns) { return ns * kNanosecond; }

/// Converts seconds to nanoseconds for reporting.
constexpr double ToNanoseconds(double seconds) { return seconds / kNanosecond; }

/// Converts a tuple rate to the paper's reporting unit, G Tuples/s.
constexpr double ToGTuplesPerSecond(double tuples_per_second) {
  return tuples_per_second / 1e9;
}

}  // namespace pump

#endif  // PUMP_COMMON_UNITS_H_
