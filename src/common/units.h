#ifndef PUMP_COMMON_UNITS_H_
#define PUMP_COMMON_UNITS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace pump {

/// Byte-size constants. The paper reports capacities in binary units (GiB)
/// and electrical link rates in decimal units (GB/s); both are provided.
inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;

namespace units_internal {

/// Aborts on a malformed magnitude. Deliberately not constexpr: reaching it
/// in a constant expression is a compile error, which is exactly the check
/// we want for constants built at compile time.
[[noreturn]] inline void UnitViolation(const char* type) {
  std::fprintf(stderr, "pump units: negative or NaN %s magnitude\n", type);
  std::abort();
}

/// Every physical magnitude in the model (a duration, a byte count, a
/// rate) is non-negative; NaN or a negative value means a unit-mixing or
/// sign bug upstream. Checked at construction so the bug surfaces where
/// the value is made, not where it is consumed.
constexpr double CheckMagnitude(double v, const char* type) {
  return (v == v && v >= 0.0) ? v : (UnitViolation(type), 0.0);
}

}  // namespace units_internal

/// Shared surface of the strong unit types: explicit construction from a
/// raw double (checked), a raw accessor, same-unit additive arithmetic,
/// dimensionless scaling, and ordering. Cross-dimension arithmetic
/// (Bytes / Seconds -> BytesPerSecond, ...) is defined per pair below;
/// anything not defined is a compile error, which is the point.
#define PUMP_UNIT_COMMON(Type)                                              \
 public:                                                                    \
  constexpr Type() = default;                                               \
  constexpr explicit Type(double raw)                                       \
      : raw_(units_internal::CheckMagnitude(raw, #Type)) {}                 \
  /** The raw magnitude in the base unit. */                                \
  constexpr double value() const { return raw_; }                           \
  constexpr friend bool operator==(Type a, Type b) {                        \
    return a.raw_ == b.raw_;                                                \
  }                                                                         \
  constexpr friend bool operator!=(Type a, Type b) {                        \
    return a.raw_ != b.raw_;                                                \
  }                                                                         \
  constexpr friend bool operator<(Type a, Type b) { return a.raw_ < b.raw_; } \
  constexpr friend bool operator>(Type a, Type b) { return a.raw_ > b.raw_; } \
  constexpr friend bool operator<=(Type a, Type b) {                        \
    return a.raw_ <= b.raw_;                                                \
  }                                                                         \
  constexpr friend bool operator>=(Type a, Type b) {                        \
    return a.raw_ >= b.raw_;                                                \
  }                                                                         \
  constexpr friend Type operator+(Type a, Type b) {                         \
    return Type(a.raw_ + b.raw_);                                           \
  }                                                                         \
  constexpr friend Type operator-(Type a, Type b) {                         \
    return Type(a.raw_ - b.raw_);                                           \
  }                                                                         \
  constexpr friend Type operator*(Type a, double s) { return Type(a.raw_ * s); } \
  constexpr friend Type operator*(double s, Type a) { return Type(s * a.raw_); } \
  constexpr friend Type operator/(Type a, double s) { return Type(a.raw_ / s); } \
  /** Ratio of two same-unit magnitudes is dimensionless. */                \
  constexpr friend double operator/(Type a, Type b) { return a.raw_ / b.raw_; } \
  constexpr Type& operator+=(Type other) {                                  \
    raw_ = units_internal::CheckMagnitude(raw_ + other.raw_, #Type);        \
    return *this;                                                           \
  }                                                                         \
  constexpr Type& operator-=(Type other) {                                  \
    raw_ = units_internal::CheckMagnitude(raw_ - other.raw_, #Type);        \
    return *this;                                                           \
  }                                                                         \
  constexpr Type& operator*=(double s) {                                    \
    raw_ = units_internal::CheckMagnitude(raw_ * s, #Type);                 \
    return *this;                                                           \
  }                                                                         \
  constexpr Type& operator/=(double s) {                                    \
    raw_ = units_internal::CheckMagnitude(raw_ / s, #Type);                 \
    return *this;                                                           \
  }                                                                         \
                                                                            \
 private:                                                                   \
  double raw_ = 0.0

/// A byte count. Backed by a double because it lives in model arithmetic;
/// exact enough for any capacity on the modeled systems (< 2^53 B). Use
/// `u64()` when an exact integral count is needed (allocator bookkeeping,
/// page arithmetic).
class Bytes {
  PUMP_UNIT_COMMON(Bytes);

 public:
  static constexpr Bytes KiB(double v) { return Bytes(v * 1024.0); }
  static constexpr Bytes MiB(double v) { return KiB(v * 1024.0); }
  static constexpr Bytes GiB(double v) { return MiB(v * 1024.0); }
  static constexpr Bytes TiB(double v) { return GiB(v * 1024.0); }
  static constexpr Bytes KB(double v) { return Bytes(v * 1e3); }
  static constexpr Bytes MB(double v) { return Bytes(v * 1e6); }
  static constexpr Bytes GB(double v) { return Bytes(v * 1e9); }

  constexpr double bytes() const { return value(); }
  constexpr double gib() const { return value() / static_cast<double>(kGiB); }
  constexpr double mib() const { return value() / static_cast<double>(kMiB); }
  /// Rounded exact count, for integral bookkeeping at the storage layer.
  constexpr std::uint64_t u64() const {
    return static_cast<std::uint64_t>(value() + 0.5);
  }
};

/// A duration in seconds.
class Seconds {
  PUMP_UNIT_COMMON(Seconds);

 public:
  static constexpr Seconds Nanos(double ns) { return Seconds(ns * 1e-9); }
  static constexpr Seconds Micros(double us) { return Seconds(us * 1e-6); }
  static constexpr Seconds Millis(double ms) { return Seconds(ms * 1e-3); }

  constexpr double seconds() const { return value(); }
  constexpr double millis() const { return value() * 1e3; }
  constexpr double micros() const { return value() * 1e6; }
  constexpr double nanos() const { return value() * 1e9; }
};

/// A data rate in bytes per second.
class BytesPerSecond {
  PUMP_UNIT_COMMON(BytesPerSecond);

 public:
  /// Binary-unit rate, the paper's measured-bandwidth convention (GiB/s).
  static constexpr BytesPerSecond GiB(double v) {
    return BytesPerSecond(v * static_cast<double>(kGiB));
  }
  static constexpr BytesPerSecond MiB(double v) {
    return BytesPerSecond(v * static_cast<double>(kMiB));
  }
  /// Decimal-unit rate, the electrical link-rate convention (GB/s).
  static constexpr BytesPerSecond GB(double v) { return BytesPerSecond(v * 1e9); }

  constexpr double bytes_per_second() const { return value(); }
  constexpr double gib_per_second() const {
    return value() / static_cast<double>(kGiB);
  }
};

/// An event rate (accesses/s, tuples/s, pages/s) in events per second.
class PerSecond {
  PUMP_UNIT_COMMON(PerSecond);

 public:
  static constexpr PerSecond Giga(double v) { return PerSecond(v * 1e9); }
  static constexpr PerSecond Mega(double v) { return PerSecond(v * 1e6); }

  constexpr double per_second() const { return value(); }
  constexpr double giga_per_second() const { return value() / 1e9; }
};

/// A clock-cycle count. Convert to wall time only through an explicit
/// clock frequency (AtClock below) — cycles alone carry no duration.
class Cycles {
  PUMP_UNIT_COMMON(Cycles);

 public:
  constexpr double cycles() const { return value(); }
};

#undef PUMP_UNIT_COMMON

// ---- Cross-dimension arithmetic -------------------------------------------
// Only physically meaningful combinations are defined. A formula that mixes
// units any other way fails to compile.

/// bytes / duration = data rate.
constexpr BytesPerSecond operator/(Bytes b, Seconds s) {
  return BytesPerSecond(b.value() / s.value());
}
/// bytes / data rate = duration (time to stream `b`).
constexpr Seconds operator/(Bytes b, BytesPerSecond r) {
  return Seconds(b.value() / r.value());
}
/// data rate * duration = bytes moved.
constexpr Bytes operator*(BytesPerSecond r, Seconds s) {
  return Bytes(r.value() * s.value());
}
constexpr Bytes operator*(Seconds s, BytesPerSecond r) { return r * s; }

/// event count / duration = event rate.
constexpr PerSecond operator/(double count, Seconds s) {
  return PerSecond(count / s.value());
}
/// event count / event rate = duration (time to serve `count` events).
constexpr Seconds operator/(double count, PerSecond r) {
  return Seconds(count / r.value());
}
/// event rate * duration = expected event count.
constexpr double operator*(PerSecond r, Seconds s) {
  return r.value() * s.value();
}
constexpr double operator*(Seconds s, PerSecond r) { return r * s; }

/// event rate * bytes-per-event = data rate.
constexpr BytesPerSecond operator*(PerSecond r, Bytes per_event) {
  return BytesPerSecond(r.value() * per_event.value());
}
constexpr BytesPerSecond operator*(Bytes per_event, PerSecond r) {
  return r * per_event;
}
/// data rate / bytes-per-event = event rate.
constexpr PerSecond operator/(BytesPerSecond bw, Bytes per_event) {
  return PerSecond(bw.value() / per_event.value());
}
/// data rate / event rate = bytes per event.
constexpr Bytes operator/(BytesPerSecond bw, PerSecond r) {
  return Bytes(bw.value() / r.value());
}

/// Wall time of `c` cycles at a `clock_ghz` GHz clock.
constexpr Seconds AtClock(Cycles c, double clock_ghz) {
  return Seconds(c.value() / (clock_ghz * 1e9));
}
/// Cycle count covering duration `s` at a `clock_ghz` GHz clock.
constexpr Cycles CyclesAtClock(Seconds s, double clock_ghz) {
  return Cycles(s.value() * clock_ghz * 1e9);
}

// ---- Construction and reporting helpers -----------------------------------
// Typed successors of the original raw-double helpers; every bandwidth or
// latency constant in the model is built through one of these (or the
// static factories above), so the unit is always named at the value's
// definition site.

/// Converts a GiB/s figure (measured-bandwidth convention) to a typed rate.
constexpr BytesPerSecond GiBPerSecond(double gib) {
  return BytesPerSecond::GiB(gib);
}

/// Converts a decimal GB/s figure (electrical link rate) to a typed rate.
constexpr BytesPerSecond GBPerSecond(double gb) {
  return BytesPerSecond::GB(gb);
}

/// Converts a typed rate back to GiB/s for reporting.
constexpr double ToGiBPerSecond(BytesPerSecond bw) {
  return bw.gib_per_second();
}
/// Raw-double overload for rates that live outside the typed model (e.g.
/// derived tuple rates).
constexpr double ToGiBPerSecond(double bytes_per_second) {
  return bytes_per_second / static_cast<double>(kGiB);
}

/// Converts a nanosecond figure to a typed duration.
constexpr Seconds Nanoseconds(double ns) { return Seconds::Nanos(ns); }
/// Converts a microsecond figure to a typed duration.
constexpr Seconds Microseconds(double us) { return Seconds::Micros(us); }

/// Converts a typed duration to nanoseconds for reporting.
constexpr double ToNanoseconds(Seconds s) { return s.nanos(); }
/// Raw-double overload for durations kept as seconds-valued doubles.
constexpr double ToNanoseconds(double seconds) { return seconds * 1e9; }

/// Converts a tuple rate to the paper's reporting unit, G Tuples/s.
constexpr double ToGTuplesPerSecond(double tuples_per_second) {
  return tuples_per_second / 1e9;
}
constexpr double ToGTuplesPerSecond(PerSecond rate) {
  return rate.giga_per_second();
}

}  // namespace pump

#endif  // PUMP_COMMON_UNITS_H_
