#ifndef PUMP_COMMON_HAPPENS_BEFORE_H_
#define PUMP_COMMON_HAPPENS_BEFORE_H_

// Debug-only happens-before assertions for the concurrent scheduler and
// failover paths.
//
// TSan proves accesses are synchronized; it cannot prove they are
// *ordered the way the protocol requires*. These helpers check ordering
// claims directly: an EpochCounter is bumped on the publishing side of a
// synchronization edge and read on the observing side, and
// PUMP_HB_ASSERT states the protocol invariant (e.g. "no morsel claim
// succeeds after the dispatcher was observed dry", "a worker still holds
// its in-flight slot while orphaning a batch"). Violations abort with a
// message naming the broken edge.
//
// Enabled when PUMP_HB_ASSERTIONS is 1: by default in debug builds
// (!NDEBUG), and forced on by the build system for sanitizer builds
// (PUMP_SANITIZE=thread/address), so the TSan gate exercises the
// scheduler with the protocol checks live. In plain release builds the
// counters are empty structs and the assertion compiles away.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if !defined(PUMP_HB_ASSERTIONS)
#if defined(NDEBUG)
#define PUMP_HB_ASSERTIONS 0
#else
#define PUMP_HB_ASSERTIONS 1
#endif
#endif

#if PUMP_HB_ASSERTIONS
#include <atomic>
#endif

namespace pump::hb {

#if PUMP_HB_ASSERTIONS

/// A monotonically increasing event counter. Bump() releases, Load()
/// acquires, so a loaded epoch carries the happens-before edge from every
/// bump it observes.
class EpochCounter {
 public:
  /// Records one event; returns the new epoch.
  std::uint64_t Bump() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  /// Current epoch.
  std::uint64_t Load() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
};

[[noreturn]] inline void HbViolation(const char* condition, const char* file,
                                     int line, const char* message) {
  std::fprintf(stderr,
               "pump happens-before violation at %s:%d: %s\n  failed: %s\n",
               file, line, message, condition);
  std::abort();
}

#define PUMP_HB_ASSERT(condition, message)                              \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::pump::hb::HbViolation(#condition, __FILE__, __LINE__, message); \
    }                                                                   \
  } while (0)

#else  // !PUMP_HB_ASSERTIONS

/// Release-build stand-in: no storage, no synchronization, epochs read 0.
class EpochCounter {
 public:
  std::uint64_t Bump() { return 0; }
  std::uint64_t Load() const { return 0; }
};

#define PUMP_HB_ASSERT(condition, message) \
  do {                                     \
  } while (0)

#endif  // PUMP_HB_ASSERTIONS

}  // namespace pump::hb

#endif  // PUMP_COMMON_HAPPENS_BEFORE_H_
