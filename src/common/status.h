#ifndef PUMP_COMMON_STATUS_H_
#define PUMP_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pump {

/// Error categories used across the library. Mirrors the minimal set a
/// database engine needs; extend sparingly.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kUnsupported,
  kInternal,
  kOutOfRange,
  /// A transient condition (link throttled, chunk lost mid-flight): the
  /// operation may succeed if retried. The only retryable class.
  kUnavailable,
  /// A hard resource exhaustion on a modelled device (e.g. GPU memory),
  /// distinct from host kOutOfMemory: callers degrade (spill, fall back)
  /// rather than retry. Also the admission-control shed code: a full
  /// serving queue rejects with kResourceExhausted instead of growing.
  kResourceExhausted,
  /// The caller cancelled the operation (cooperative cancellation via
  /// CancelToken). Not retryable: the work is unwanted, not broken.
  kCancelled,
  /// The operation's deadline expired before it completed. Like
  /// kCancelled but distinguishes "user gave up" from "time ran out" —
  /// serving-layer SLO accounting needs the split.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// True when an operation failing with `code` may succeed on retry
/// without any intervention (the retry layer's per-class policy).
bool IsRetryable(StatusCode code);

/// A lightweight success-or-error value, used instead of exceptions on all
/// library paths (Arrow/Google style). `Status::OK()` is cheap to copy; error
/// statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }
  /// Factory for an invalid-argument error.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Factory for an out-of-memory error (e.g. GPU memory exhausted).
  static Status OutOfMemory(std::string message) {
    return Status(StatusCode::kOutOfMemory, std::move(message));
  }
  /// Factory for a lookup miss.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Factory for a uniqueness violation.
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Factory for an operation the hardware/configuration does not support
  /// (e.g. the Coherence transfer method on PCI-e 3.0).
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  /// Factory for an internal invariant violation.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Factory for an out-of-range index or parameter.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Factory for a transient, retryable failure.
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  /// Factory for a hard device-resource exhaustion.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Factory for a cooperatively cancelled operation.
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  /// Factory for an expired deadline.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK.
  const std::string& message() const { return message_; }
  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

/// A value-or-error container, analogous to arrow::Result. Holds either a T
/// or an error Status. Accessing the value of an error result aborts, so
/// callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit to allow `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs an error result (implicit to allow `return status;`).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The error status, or OK when a value is present.
  const Status& status() const { return status_; }

  /// Borrows the contained value. Requires ok().
  const T& value() const& { return value_.value(); }
  /// Mutably borrows the contained value. Requires ok().
  T& value() & { return value_.value(); }
  /// Moves the contained value out. Requires ok().
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value or the provided default when in error state.
  T value_or(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates an error status from an expression, Arrow-style.
#define PUMP_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::pump::Status _pump_status = (expr);        \
    if (!_pump_status.ok()) return _pump_status; \
  } while (false)

#define PUMP_INTERNAL_CONCAT_IMPL(a, b) a##b
#define PUMP_INTERNAL_CONCAT(a, b) PUMP_INTERNAL_CONCAT_IMPL(a, b)

#define PUMP_INTERNAL_ASSIGN_OR_RETURN(result, lhs, expr) \
  auto result = (expr);                                   \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

/// Assigns the value of a Result<T> expression or propagates its error.
#define PUMP_ASSIGN_OR_RETURN(lhs, expr)   \
  PUMP_INTERNAL_ASSIGN_OR_RETURN(          \
      PUMP_INTERNAL_CONCAT(_pump_result_, __LINE__), lhs, expr)

}  // namespace pump

#endif  // PUMP_COMMON_STATUS_H_
