#ifndef PUMP_COMMON_STATISTICS_H_
#define PUMP_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace pump {

/// Accumulates samples and reports mean and standard error, matching the
/// paper's methodology ("we report the mean and standard error over 10
/// runs", Sec. 7.1).
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one sample.
  void Add(double sample);

  /// Number of samples added so far.
  std::size_t count() const { return count_; }
  /// Arithmetic mean of the samples; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Standard error of the mean (stddev / sqrt(n)).
  double standard_error() const;
  /// Standard error as a fraction of the mean; 0 when the mean is 0.
  double relative_standard_error() const;
  /// Smallest sample seen; 0 when empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  /// Largest sample seen; 0 when empty.
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford's sum of squared deviations.
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Computes the median of a sample vector (copies; input unmodified).
double Median(std::vector<double> samples);

/// Median absolute deviation: median(|x - median(x)|). A robust spread
/// estimate for noisy bench samples — one cold-cache outlier moves the
/// standard error arbitrarily but barely moves the MAD.
double MedianAbsoluteDeviation(const std::vector<double>& samples);

}  // namespace pump

#endif  // PUMP_COMMON_STATISTICS_H_
