#ifndef PUMP_HW_DEVICE_H_
#define PUMP_HW_DEVICE_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace pump::hw {

/// Identifies a processor (CPU socket or GPU) within a Topology. Device ids
/// are dense indices assigned by the topology builder.
using DeviceId = int;

/// Sentinel for "no device".
inline constexpr DeviceId kInvalidDevice = -1;

/// Processor kind; the scheduler and the cost model treat CPUs and GPUs
/// differently (latency sensitivity, morsel batching, copy engines).
enum class DeviceKind : std::uint8_t { kCpu, kGpu };

/// Returns "CPU" or "GPU".
const char* DeviceKindToString(DeviceKind kind);

/// A processor's performance-model parameters. Bandwidth-shaped quantities
/// are aggregates over the whole socket / whole GPU, matching how the paper
/// measures them (multi-threaded bandwidth microbenchmarks, Sec. 7.1).
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;

  /// Physical parallelism: cores for a CPU socket, SMs for a GPU.
  int cores = 0;
  /// Clock in GHz (documentation; the model works in aggregate rates).
  double clock_ghz = 0.0;

  /// Maximum bytes of outstanding memory traffic the device can keep in
  /// flight (aggregate over cores/warps). Bounds achievable sequential
  /// bandwidth over high-latency paths via Little's law:
  ///   bw <= max_outstanding / path_latency.
  /// CPUs are latency-sensitive (few line-fill buffers per core); GPUs hide
  /// latency with thousands of threads (Sec. 3, "GPUs are designed to handle
  /// such high-latency memory accesses").
  Bytes max_outstanding;

  /// Maximum number of outstanding cache-line-granularity random requests.
  /// Bounds achievable random-access rates via Little's law.
  double max_outstanding_requests = 0.0;

  /// Aggregate tuple-processing rate for hash-join style work when memory
  /// is not the bottleneck: hashing, comparison, aggregation.
  PerSecond tuple_compute_rate;

  /// Dependency derating applied to random-access rates for pointer-chasing
  /// style access (hash probes). GPUs hide the dependency with warp
  /// oversubscription (factor ~1); CPUs stall (factor < 1).
  double random_dependency_factor = 1.0;

  /// Kernel-launch / task-dispatch latency. Amortized by morsel batching on
  /// GPUs (Sec. 6.1).
  Seconds dispatch_latency;

  /// Copy bandwidth of a single CPU thread for memcpy-style staging work;
  /// bounds the MMIO path of Pageable Copy and, times the staging thread
  /// count, the Staged Copy method (Sec. 4.1). Zero for GPUs.
  BytesPerSecond single_thread_copy_bw;

  /// Address-translation reach. Random accesses into working sets beyond
  /// this size incur page-walk stalls ("Big data causing big (TLB)
  /// problems" [49]); the slowdown is modelled as
  ///   rate / (1 + tlb_miss_penalty * miss_fraction).
  /// CPUs use huge pages in the paper's tuned baselines, so their reach is
  /// effectively unbounded.
  Bytes tlb_reach;
  /// Relative penalty of a fully TLB-missing access stream (see above).
  double tlb_miss_penalty = 0.0;

  /// Aggregate first-level cache capacity usable for caching *remote*
  /// (interconnect) data. On Volta the L2 is memory-side and cannot cache
  /// CPU memory, but the per-SM L1s can (Sec. 2.2.2); this is what makes
  /// skewed probes of a CPU-resident hash table fast (Fig. 19).
  Bytes remote_cache;
  /// Aggregate random access rate into that cache.
  PerSecond remote_cache_rate;
};

/// V100-class GPU (Volta, 80 SMs, 16 GiB HBM2). Matches the V100-SXM2 and
/// V100-PCIE used in the paper (Sec. 7.1); the variants differ only in their
/// interconnect, which the topology models separately.
DeviceSpec TeslaV100();

/// IBM POWER9 socket: 16 cores @ 3.3 GHz, 8 DDR4-2666 channels (Sec. 7.1).
DeviceSpec Power9();

/// Intel Xeon Gold 6126 socket: 12 cores @ 2.6 GHz, 6 DDR4-2666 channels.
DeviceSpec XeonGold6126();

}  // namespace pump::hw

#endif  // PUMP_HW_DEVICE_H_
