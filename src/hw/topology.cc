#include "hw/topology.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/units.h"

namespace pump::hw {

DeviceId Topology::AddDevice(DeviceSpec device, MemorySpec memory,
                             CacheSpec cache) {
  devices_.push_back(std::move(device));
  memories_.push_back(std::move(memory));
  caches_.push_back(std::move(cache));
  return static_cast<DeviceId>(devices_.size() - 1);
}

Status Topology::AddLink(DeviceId a, DeviceId b, LinkSpec link) {
  const auto count = static_cast<DeviceId>(devices_.size());
  if (a < 0 || a >= count || b < 0 || b >= count) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("link endpoints must differ");
  }
  edges_.push_back(Edge{a, b, std::move(link)});
  return Status::OK();
}

std::vector<DeviceId> Topology::DevicesOfKind(DeviceKind kind) const {
  std::vector<DeviceId> result;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].kind == kind) result.push_back(static_cast<DeviceId>(i));
  }
  return result;
}

Result<Route> Topology::RouteSearch(DeviceId from, MemoryNodeId to,
                                    bool peers_only) const {
  const auto count = static_cast<DeviceId>(devices_.size());
  if (from < 0 || from >= count || to < 0 || to >= count) {
    return Status::InvalidArgument("route endpoint out of range");
  }
  if (from == to) return Route{};

  // BFS over devices; predecessor edge recorded for path reconstruction.
  std::vector<std::size_t> pred_edge(devices_.size(), SIZE_MAX);
  std::vector<bool> visited(devices_.size(), false);
  std::deque<DeviceId> frontier{from};
  visited[from] = true;
  while (!frontier.empty()) {
    const DeviceId current = frontier.front();
    frontier.pop_front();
    if (current == to) break;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      const Edge& edge = edges_[e];
      if (peers_only && (devices_[edge.a].kind != DeviceKind::kGpu ||
                         devices_[edge.b].kind != DeviceKind::kGpu)) {
        continue;
      }
      DeviceId next = kInvalidDevice;
      if (edge.a == current) next = edge.b;
      if (edge.b == current) next = edge.a;
      if (next == kInvalidDevice || visited[next]) continue;
      visited[next] = true;
      pred_edge[next] = e;
      frontier.push_back(next);
    }
  }
  if (!visited[to]) {
    return Status::NotFound(peers_only
                                ? "no GPU peer path between devices"
                                : "no interconnect path between devices");
  }

  Route route;
  DeviceId current = to;
  while (current != from) {
    const std::size_t e = pred_edge[current];
    route.edge_indices.push_back(e);
    current = (edges_[e].a == current) ? edges_[e].b : edges_[e].a;
  }
  std::reverse(route.edge_indices.begin(), route.edge_indices.end());
  return route;
}

Result<Route> Topology::FindRoute(DeviceId from, MemoryNodeId to) const {
  return RouteSearch(from, to, /*peers_only=*/false);
}

Result<Route> Topology::FindPeerRoute(DeviceId from, DeviceId to) const {
  const auto count = static_cast<DeviceId>(devices_.size());
  if (from < 0 || from >= count || to < 0 || to >= count) {
    return Status::InvalidArgument("route endpoint out of range");
  }
  if (devices_[from].kind != DeviceKind::kGpu ||
      devices_[to].kind != DeviceKind::kGpu) {
    return Status::InvalidArgument("peer routes join GPU endpoints");
  }
  return RouteSearch(from, to, /*peers_only=*/true);
}

Result<bool> Topology::IsCacheCoherentPath(DeviceId from,
                                           MemoryNodeId to) const {
  PUMP_ASSIGN_OR_RETURN(Route route, FindRoute(from, to));
  for (std::size_t e : route.edge_indices) {
    if (!edges_[e].link.cache_coherent) return false;
  }
  return true;
}

std::vector<MemoryNodeId> Topology::MemoryNodesByDistance(
    DeviceId from, bool cpu_only) const {
  std::vector<std::pair<std::size_t, MemoryNodeId>> candidates;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const auto id = static_cast<MemoryNodeId>(i);
    if (cpu_only && devices_[i].kind != DeviceKind::kCpu) continue;
    Result<Route> route = FindRoute(from, id);
    if (!route.ok()) continue;
    candidates.emplace_back(route.value().hops(), id);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& lhs, const auto& rhs) {
                     return lhs.first < rhs.first;
                   });
  std::vector<MemoryNodeId> result;
  result.reserve(candidates.size());
  for (const auto& [hops, id] : candidates) result.push_back(id);
  return result;
}

std::string Topology::ToString() const {
  std::ostringstream os;
  os << "Topology with " << devices_.size() << " devices:\n";
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    os << "  [" << i << "] " << devices_[i].name << " ("
       << DeviceKindToString(devices_[i].kind) << "), memory "
       << memories_[i].name << " "
       << memories_[i].capacity.gib() << " GiB\n";
  }
  for (const Edge& edge : edges_) {
    os << "  " << edge.a << " <-> " << edge.b << " via " << edge.link.name
       << " (" << ToGiBPerSecond(edge.link.seq_bw) << " GiB/s seq)\n";
  }
  return os.str();
}

Topology IbmAc922() {
  Topology topo;
  const DeviceId cpu0 = topo.AddDevice(Power9(), Power9Memory(), Power9L3());
  const DeviceId cpu1 = topo.AddDevice(Power9(), Power9Memory(), Power9L3());
  const DeviceId gpu0 = topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2());
  const DeviceId gpu1 = topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2());
  // Fig. 4a: each GPU is attached to its socket with 3 bundled NVLink 2.0
  // links; the sockets are joined by X-Bus.
  (void)topo.AddLink(cpu0, gpu0, Nvlink2x3());
  (void)topo.AddLink(cpu1, gpu1, Nvlink2x3());
  (void)topo.AddLink(cpu0, cpu1, Xbus());
  return topo;
}

Topology IntelXeonV100() {
  Topology topo;
  const DeviceId cpu0 =
      topo.AddDevice(XeonGold6126(), XeonMemory(), XeonL3());
  const DeviceId cpu1 =
      topo.AddDevice(XeonGold6126(), XeonMemory(), XeonL3());
  const DeviceId gpu0 = topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2());
  // Fig. 4b: the V100-PCIE hangs off socket 0; sockets joined by UPI.
  (void)topo.AddLink(cpu0, gpu0, Pcie3x16());
  (void)topo.AddLink(cpu0, cpu1, Upi());
  return topo;
}

Topology DirectGpuMesh(int gpu_count) {
  Topology topo;
  const DeviceId cpu = topo.AddDevice(Power9(), Power9Memory(), Power9L3());
  std::vector<DeviceId> gpus;
  for (int g = 0; g < gpu_count; ++g) {
    gpus.push_back(topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2()));
  }
  for (DeviceId gpu : gpus) {
    (void)topo.AddLink(cpu, gpu, Nvlink2Bundle(2));
  }
  for (std::size_t a = 0; a < gpus.size(); ++a) {
    for (std::size_t b = a + 1; b < gpus.size(); ++b) {
      (void)topo.AddLink(gpus[a], gpus[b], Nvlink2Bundle(1));
    }
  }
  return topo;
}

namespace {

/// Xeon host with `gpu_count` PCI-e-attached V100s; the shared skeleton of
/// the x86-hosted meshes below. GPU peer links are added by the caller.
Topology X86GpuHost(int gpu_count, std::vector<DeviceId>* gpus) {
  Topology topo;
  const DeviceId cpu = topo.AddDevice(XeonGold6126(), XeonMemory(), XeonL3());
  for (int g = 0; g < gpu_count; ++g) {
    const DeviceId gpu = topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2());
    (void)topo.AddLink(cpu, gpu, Pcie3x16());
    gpus->push_back(gpu);
  }
  return topo;
}

}  // namespace

Topology NvlinkRing(int gpu_count) {
  std::vector<DeviceId> gpus;
  Topology topo = X86GpuHost(gpu_count, &gpus);
  // Ring neighbours get 2-link bundles; with two GPUs the "ring" collapses
  // to a single bridge, and a lone GPU has no peers at all.
  if (gpus.size() == 2) {
    (void)topo.AddLink(gpus[0], gpus[1], Nvlink2Bundle(2));
  } else if (gpus.size() > 2) {
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      (void)topo.AddLink(gpus[g], gpus[(g + 1) % gpus.size()],
                         Nvlink2Bundle(2));
    }
  }
  return topo;
}

Topology NvSliPair() {
  std::vector<DeviceId> gpus;
  Topology topo = X86GpuHost(2, &gpus);
  (void)topo.AddLink(gpus[0], gpus[1], NvSliBridge());
  return topo;
}

Topology NvSwitchCrossbar(int gpu_count) {
  std::vector<DeviceId> gpus;
  Topology topo = X86GpuHost(gpu_count, &gpus);
  // The non-blocking fabric gives every pair the full port bandwidth, so
  // a direct edge per pair is an exact model of the crossbar.
  for (std::size_t a = 0; a < gpus.size(); ++a) {
    for (std::size_t b = a + 1; b < gpus.size(); ++b) {
      (void)topo.AddLink(gpus[a], gpus[b], NvSwitchLink());
    }
  }
  return topo;
}

Topology GpuDirectPair() {
  std::vector<DeviceId> gpus;
  Topology topo = X86GpuHost(2, &gpus);
  (void)topo.AddLink(gpus[0], gpus[1], GpuDirectP2p());
  return topo;
}

Topology HostBounceMesh(int gpu_count) {
  Topology topo;
  const DeviceId cpu = topo.AddDevice(Power9(), Power9Memory(), Power9L3());
  for (int g = 0; g < gpu_count; ++g) {
    const DeviceId gpu = topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2());
    (void)topo.AddLink(cpu, gpu, Nvlink2x3());
  }
  return topo;
}

}  // namespace pump::hw
