#include "hw/system_profile.h"

#include "common/units.h"

namespace pump::hw {

SystemProfile Ac922Profile() {
  SystemProfile profile;
  profile.name = "IBM AC922 (POWER9 + V100-SXM2, NVLink 2.0)";
  profile.topology = IbmAc922();
  profile.os_page = Bytes::KiB(64);
  profile.pin_page_latency = Seconds::Micros(1.7);
  // Fig. 12 NVLink column: UM Prefetch 0.17 G Tuples/s on workload A
  // implies ~2.4 GiB/s of prefetch bandwidth (footnote 1: POWER9 driver
  // path is less optimized than on x86-64).
  profile.um_prefetch_bw = GiBPerSecond(2.4);
  // Fig. 12 NVLink column: UM Migration 0.16 G Tuples/s implies ~2.3 GiB/s
  // with 64 KiB pages => ~27 us per fault.
  profile.um_page_fault = Seconds::Micros(27);
  profile.staging_threads = 4;
  return profile;
}

SystemProfile XeonProfile() {
  SystemProfile profile;
  profile.name = "Intel Xeon Gold 6126 + V100-PCIE (PCI-e 3.0)";
  profile.topology = IntelXeonV100();
  profile.os_page = Bytes::KiB(4);
  profile.pin_page_latency = Seconds::Micros(1.0);
  // Fig. 12 PCI-e column: UM Prefetch is 30% slower than Zero Copy
  // (0.54 vs 0.77), i.e. ~8.4 GiB/s.
  profile.um_prefetch_bw = GiBPerSecond(8.4);
  // Fig. 12 PCI-e column: UM Migration is 68% slower than Zero Copy
  // (0.25 G Tuples/s) => ~3.7 GiB/s with 4 KiB pages => ~0.75 us per
  // fault (the driver batches faults and prefetches page groups [102]).
  profile.um_page_fault = Seconds::Micros(0.75);
  profile.staging_threads = 4;
  return profile;
}

}  // namespace pump::hw
