#include "hw/system_profile.h"

#include "common/units.h"

namespace pump::hw {

SystemProfile Ac922Profile() {
  SystemProfile profile;
  profile.name = "IBM AC922 (POWER9 + V100-SXM2, NVLink 2.0)";
  profile.topology = IbmAc922();
  profile.os_page = Bytes::KiB(64);
  profile.pin_page_latency = Seconds::Micros(1.7);
  // Fig. 12 NVLink column: UM Prefetch 0.17 G Tuples/s on workload A
  // implies ~2.4 GiB/s of prefetch bandwidth (footnote 1: POWER9 driver
  // path is less optimized than on x86-64).
  profile.um_prefetch_bw = GiBPerSecond(2.4);
  // Fig. 12 NVLink column: UM Migration 0.16 G Tuples/s implies ~2.3 GiB/s
  // with 64 KiB pages => ~27 us per fault.
  profile.um_page_fault = Seconds::Micros(27);
  profile.staging_threads = 4;
  return profile;
}

SystemProfile XeonProfile() {
  SystemProfile profile;
  profile.name = "Intel Xeon Gold 6126 + V100-PCIE (PCI-e 3.0)";
  profile.topology = IntelXeonV100();
  profile.os_page = Bytes::KiB(4);
  profile.pin_page_latency = Seconds::Micros(1.0);
  // Fig. 12 PCI-e column: UM Prefetch is 30% slower than Zero Copy
  // (0.54 vs 0.77), i.e. ~8.4 GiB/s.
  profile.um_prefetch_bw = GiBPerSecond(8.4);
  // Fig. 12 PCI-e column: UM Migration is 68% slower than Zero Copy
  // (0.25 G Tuples/s) => ~3.7 GiB/s with 4 KiB pages => ~0.75 us per
  // fault (the driver batches faults and prefetches page groups [102]).
  profile.um_page_fault = Seconds::Micros(0.75);
  profile.staging_threads = 4;
  return profile;
}

namespace {

/// OS/driver parameters shared by the x86-hosted mesh profiles (same host
/// stack as the Xeon testbed).
SystemProfile X86MeshBase(std::string name, Topology topology) {
  SystemProfile profile = XeonProfile();
  profile.name = std::move(name);
  profile.topology = std::move(topology);
  return profile;
}

}  // namespace

SystemProfile NvlinkRingProfile(int gpu_count) {
  return X86MeshBase(
      "NVLink ring (" + std::to_string(gpu_count) + "x V100, DGX-1-style)",
      NvlinkRing(gpu_count));
}

SystemProfile NvSliPairProfile() {
  return X86MeshBase("NV-SLI pair (2x V100)", NvSliPair());
}

SystemProfile NvSwitchCrossbarProfile(int gpu_count) {
  return X86MeshBase("NVSwitch crossbar (" + std::to_string(gpu_count) +
                         "x V100, DGX-2-style)",
                     NvSwitchCrossbar(gpu_count));
}

SystemProfile GpuDirectPairProfile() {
  return X86MeshBase("GPUDirect P2P pair (2x V100)", GpuDirectPair());
}

SystemProfile HostBounceMeshProfile(int gpu_count) {
  SystemProfile profile = Ac922Profile();
  profile.name = "Host-bounce mesh (" + std::to_string(gpu_count) +
                 "x V100, AC922-style)";
  profile.topology = HostBounceMesh(gpu_count);
  return profile;
}

}  // namespace pump::hw
