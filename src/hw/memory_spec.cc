#include "hw/memory_spec.h"

#include "common/units.h"

namespace pump::hw {

MemorySpec Power9Memory() {
  MemorySpec mem;
  mem.name = "POWER9 DDR4-2666 (8ch)";
  mem.capacity = Bytes::GiB(128);
  mem.electrical_bw = GBPerSecond(8 * 21.33);  // Fig. 1: 158.9 GiB/s.
  mem.seq_bw = GiBPerSecond(117.0);           // Fig. 3b.
  mem.duplex_bw = GiBPerSecond(102.6);        // Fig. 1, measured.
  mem.random_access_rate = PerSecond(3.6 * kGiB / 4.0);  // Fig. 3b.
  mem.latency = Nanoseconds(68.0);          // Fig. 3b.
  mem.line_bytes = Bytes(128.0);                     // POWER9 cache line.
  return mem;
}

MemorySpec XeonMemory() {
  MemorySpec mem;
  mem.name = "Xeon DDR4-2666 (6ch)";
  mem.capacity = Bytes::GiB(768);
  mem.electrical_bw = GBPerSecond(6 * 21.33);
  mem.seq_bw = GiBPerSecond(81.0);            // Fig. 3b.
  mem.duplex_bw = GiBPerSecond(72.0);
  mem.random_access_rate = PerSecond(2.7 * kGiB / 4.0);  // Fig. 3b.
  mem.latency = Nanoseconds(70.0);          // Fig. 3b.
  mem.line_bytes = Bytes(64.0);
  return mem;
}

MemorySpec V100Hbm2() {
  MemorySpec mem;
  mem.name = "V100 HBM2";
  mem.capacity = Bytes::GiB(16);
  mem.electrical_bw = GBPerSecond(900.0);      // HBM2 vendor figure.
  mem.seq_bw = GiBPerSecond(729.0);            // Fig. 3c.
  mem.duplex_bw = GiBPerSecond(790.0);
  mem.random_access_rate = PerSecond(22.3 * kGiB / 4.0);  // Fig. 3c.
  mem.latency = Nanoseconds(282.0);          // Fig. 3c.
  mem.line_bytes = Bytes(128.0);
  return mem;
}

CacheSpec V100L2() {
  CacheSpec cache;
  cache.name = "V100 L2";
  cache.capacity = Bytes::MiB(6);
  cache.line_bytes = Bytes(128.0);
  // Calibrated: workload B probes hit L2 at ~20 G accesses/s so that the
  // measured 19.08 G Tuples/s of Fig. 13 is reproduced.
  cache.random_access_rate = PerSecond::Giga(40);
  cache.latency = Nanoseconds(193.0);  // Volta L2 hit latency [45].
  cache.memory_side = true;
  return cache;
}

CacheSpec Power9L3() {
  CacheSpec cache;
  cache.name = "POWER9 L3";
  cache.capacity = Bytes::MiB(120);
  cache.line_bytes = Bytes(128.0);
  // High enough that the CPU compute term binds for in-cache hash tables.
  cache.random_access_rate = PerSecond::Giga(6);
  cache.latency = Nanoseconds(25.0);
  cache.memory_side = false;
  return cache;
}

CacheSpec XeonL3() {
  CacheSpec cache;
  cache.name = "Xeon L3";
  cache.capacity = Bytes::MiB(19.25);
  cache.line_bytes = Bytes(64.0);
  cache.random_access_rate = PerSecond::Giga(5);
  cache.latency = Nanoseconds(18.0);
  cache.memory_side = false;
  return cache;
}

}  // namespace pump::hw
