#ifndef PUMP_HW_SYSTEM_PROFILE_H_
#define PUMP_HW_SYSTEM_PROFILE_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "hw/topology.h"

namespace pump::hw {

/// A topology plus the OS- and driver-level parameters the transfer-method
/// models need. Two profiles mirror the paper's testbeds (Sec. 7.1).
struct SystemProfile {
  std::string name;
  Topology topology;

  /// OS page size: 4 KiB on the Intel system, 64 KiB on the IBM system
  /// (Sec. 4.2, [69]). Governs Unified Memory migration granularity and
  /// Dynamic Pinning throughput.
  Bytes os_page = Bytes::KiB(4);

  /// Time to page-lock (pin) one OS page ad hoc. Roughly constant per page
  /// across systems, so the 16x larger POWER9 pages make Dynamic Pinning
  /// far faster there (Fig. 12: 2.36 vs 0.26 G Tuples/s).
  Seconds pin_page_latency = Seconds::Micros(1.0);

  /// Achievable Unified Memory prefetch bandwidth. Calibrated from Fig. 12;
  /// the POWER9 driver path is noted by the paper as less optimized than
  /// x86-64 (Sec. 7.2.1, footnote 1).
  BytesPerSecond um_prefetch_bw;

  /// Effective per-page cost of a demand-paging fault, including driver
  /// batching (UM Migration method).
  Seconds um_page_fault;

  /// Number of CPU threads the Staged Copy method dedicates to staging
  /// ("we fully utilize 4 CPU cores to stage the data", Sec. 7.2.1).
  int staging_threads = 4;
};

/// IBM AC922 profile (Fig. 4a): POWER9 + V100-SXM2 over NVLink 2.0.
SystemProfile Ac922Profile();

/// Intel profile (Fig. 4b): Xeon Gold 6126 + V100-PCIE over PCI-e 3.0.
SystemProfile XeonProfile();

/// N-GPU mesh profiles for the sharded-join planner. Topologies follow the
/// systems catalogued in "Evaluating Modern GPU Interconnect" (Li et al.);
/// the x86-hosted meshes reuse the Xeon testbed's OS/driver parameters and
/// the host-bounce mesh reuses the AC922's.

/// DGX-1-style NVLink ring of `gpu_count` V100s on a Xeon host.
SystemProfile NvlinkRingProfile(int gpu_count);

/// NV-SLI workstation: two bridged V100s on a Xeon host.
SystemProfile NvSliPairProfile();

/// DGX-2-style NVSwitch crossbar of `gpu_count` V100s on a Xeon host.
SystemProfile NvSwitchCrossbarProfile(int gpu_count);

/// GPUDirect P2P pair: two V100s peered through the PCI-e root complex.
SystemProfile GpuDirectPairProfile();

/// AC922-style mesh with no GPU peer links; exchanges bounce through host.
SystemProfile HostBounceMeshProfile(int gpu_count);

}  // namespace pump::hw

#endif  // PUMP_HW_SYSTEM_PROFILE_H_
