#ifndef PUMP_HW_LINK_H_
#define PUMP_HW_LINK_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace pump::hw {

/// Interconnect families modeled after the paper (Sec. 2.2 and Fig. 2).
/// The last three families extend the model to N-GPU meshes with specs
/// from "Evaluating Modern GPU Interconnect" (Li et al.); they are not
/// calibrated against this paper's Figs. 1-3, so modelcheck skips the
/// paper-calibration lint for them.
enum class LinkFamily : std::uint8_t {
  kPcie3,      ///< PCI Express 3.0 x16 (tree topology, non-coherent).
  kNvlink2,    ///< NVLink 2.0, 3 bundled links (mesh, cache-coherent).
  kUpi,        ///< Intel Ultra Path Interconnect (CPU-CPU).
  kXbus,       ///< IBM POWER9 X-Bus (CPU-CPU, coherent).
  kNvswitch,   ///< NVSwitch fabric port (DGX-2-style non-blocking crossbar).
  kNvlinkSli,  ///< NV-SLI bridge (two NVLink 2.0 links between a GPU pair).
  kPcie3P2p,   ///< GPUDirect P2P through the PCI-e 3.0 root complex.
};

/// Returns the family name used in reports ("NVLink 2.0", "PCI-e 3.0", ...).
const char* LinkFamilyToString(LinkFamily family);

/// Performance and protocol properties of one interconnect link. Bandwidth
/// figures are per direction; all links modeled here are full-duplex
/// (Sec. 2.2.1/2.2.2).
struct LinkSpec {
  std::string name;
  LinkFamily family = LinkFamily::kPcie3;

  /// Electrical per-direction bandwidth (Fig. 2 annotations).
  BytesPerSecond electrical_bw;

  /// Achievable sequential-read bandwidth, as measured by the paper with
  /// 4-byte reads over 1 GiB (Fig. 3a).
  BytesPerSecond seq_bw;

  /// Achievable bidirectional (read+write concurrently) bandwidth,
  /// exercising both duplex directions (Fig. 1 "Measured").
  BytesPerSecond duplex_bw;

  /// Achievable random 4-byte access rate (derived from the paper's
  /// random-access bandwidth in Fig. 3a: bytes/s divided by 4).
  PerSecond random_access_rate;

  /// Latency this hop adds on top of the destination memory's latency.
  /// Calibrated so end-to-end path latency matches Fig. 3.
  Seconds hop_latency;

  /// Protocol packet header bytes (PCI-e: 20-26 B; NVLink: 16 B, Sec. 2.2).
  Bytes header_bytes;
  /// Maximum packet payload bytes (PCI-e: 512; NVLink: 256).
  Bytes max_payload_bytes;

  /// Whether the link provides system-wide cache-coherence and pageable
  /// memory access (NVLink 2.0, X-Bus: yes; PCI-e 3.0: no).
  bool cache_coherent = false;

  /// Granularity of a remote random access (coherence traffic moves whole
  /// cache lines; 128 B on the NVLink/POWER9 system, Sec. 2.2.2).
  Bytes access_granularity = Bytes(128.0);

  /// Fraction of the electrical bandwidth usable for payload in a bulk
  /// transfer, given the header overhead: payload / (payload + header).
  double BulkEfficiency() const {
    return max_payload_bytes / (max_payload_bytes + header_bytes);
  }
};

/// PCI-e 3.0 x16: 16 GB/s electrical, 12 GiB/s measured sequential,
/// 0.2 GiB/s random (4 B), adds ~720 ns (790 ns end-to-end minus 70 ns Xeon
/// memory latency). Non-coherent; pull-based access requires pinned memory.
LinkSpec Pcie3x16();

/// NVLink 2.0, 3 bundled links: 75 GB/s electrical per direction, 63 GiB/s
/// measured sequential, 0.7 G random accesses/s, adds ~366 ns (434 ns minus
/// 68 ns POWER9 memory latency). Cache-coherent with pageable access.
LinkSpec Nvlink2x3();

/// NVLink 2.0 with a custom number of bundled links (1-3): DGX-style
/// direct GPU-GPU meshes spend their six links across several peers, so
/// each pairwise bundle is narrower than the CPU attachment.
LinkSpec Nvlink2Bundle(int links);

/// Intel UPI between Xeon sockets: 31 GiB/s sequential, 0.5 G accesses/s,
/// adds ~51 ns (121 ns minus 70 ns local latency).
LinkSpec Upi();

/// IBM X-Bus between POWER9 sockets: 64 GB/s electrical, 32 GiB/s measured
/// sequential, 0.275 G accesses/s, adds ~143 ns (211 ns minus 68 ns).
LinkSpec Xbus();

/// NVSwitch crossbar port: every GPU spends all six NVLink 2.0 links on the
/// switch plane, and the fabric is non-blocking, so each GPU pair talks at
/// the full 150 GB/s electrical (~125 GiB/s measured sequential) regardless
/// of how many pairs are active (Li et al., DGX-2).
LinkSpec NvSwitchLink();

/// NV-SLI bridge: two NVLink 2.0 links joining a GPU pair on an x86
/// workstation (Li et al., Sec. NV-SLI). 50 GB/s electrical, ~41 GiB/s
/// measured sequential; no system-wide cache coherence on x86 hosts.
LinkSpec NvSliBridge();

/// GPUDirect P2P between two PCI-e 3.0 x16 GPUs under one root complex:
/// peer DMA skips the host-memory staging copy but still crosses the PCI-e
/// tree, ~10 GiB/s measured with higher latency than a host DMA
/// (Li et al., GPUDirect).
LinkSpec GpuDirectP2p();

}  // namespace pump::hw

#endif  // PUMP_HW_LINK_H_
