#include "hw/device.h"

#include "common/units.h"

namespace pump::hw {

const char* DeviceKindToString(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu:
      return "CPU";
    case DeviceKind::kGpu:
      return "GPU";
  }
  return "Unknown";
}

DeviceSpec TeslaV100() {
  DeviceSpec spec;
  spec.name = "Nvidia Tesla V100";
  spec.kind = DeviceKind::kGpu;
  spec.cores = 80;  // SMs.
  spec.clock_ghz = 1.53;
  // Large enough never to bind on local HBM2 (729 GiB/s * 282 ns ~ 220 KB
  // outstanding) nor on NVLink (63 GiB/s * 434 ns ~ 29 KB).
  spec.max_outstanding = Bytes::KiB(384);
  // Warp oversubscription keeps thousands of requests in flight; link-side
  // limits (NPU, PCI-e protocol) bind first on remote paths.
  spec.max_outstanding_requests = 4096.0;
  // Aggregate hash-join tuple rate when compute-bound (hash + compare);
  // calibrated so the in-cache workload B reaches ~19 G Tuples/s (Fig. 13).
  spec.tuple_compute_rate = PerSecond::Giga(40);
  spec.random_dependency_factor = 1.0;
  // Kernel launch latency; amortized via morsel batching (Sec. 6.1).
  spec.dispatch_latency = Seconds::Micros(10);
  // Calibrated against Fig. 13/17: random lookups into multi-GiB GPU-memory
  // hash tables run well below the 1-GiB microbenchmark rate because the
  // GPU MMU's reach is exceeded (cf. [49]).
  spec.tlb_reach = Bytes::GiB(2);
  spec.tlb_miss_penalty = 2.0;
  // Remote (CPU-memory) lines are cached in the per-SM L1 (Sec. 2.2.2).
  // A random probe can only hit its own SM's 128 KiB L1, so the effective
  // capacity is one SM's L1, not the aggregate; hot entries under skew fit
  // (Fig. 19) while uniformly accessed tables do not (Fig. 21, Het-B).
  spec.remote_cache = Bytes::KiB(128);
  spec.remote_cache_rate = PerSecond::Giga(30);
  return spec;
}

DeviceSpec Power9() {
  DeviceSpec spec;
  spec.name = "IBM POWER9";
  spec.kind = DeviceKind::kCpu;
  spec.cores = 16;
  spec.clock_ghz = 3.3;
  // 117 GiB/s at 68 ns local latency (Fig. 3b) requires ~8.5 KB in flight.
  spec.max_outstanding = Bytes::KiB(9);
  // 3.6 GiB/s of 4-byte random reads = 0.97 G requests/s at 68 ns, and
  // the X-Bus measurement (1.1 GiB/s at 211 ns) needs ~62 in flight =>
  // ~68 outstanding line requests across the socket.
  spec.max_outstanding_requests = 68.0;
  // Aggregate hash+compare rate of the socket when memory is not the
  // bottleneck; calibrated against the CPU NOPA numbers in Figs. 19/21.
  spec.tuple_compute_rate = PerSecond::Giga(2.2);
  // Dependent loads (hash probe chains) stall CPU cores; calibrated against
  // the CPU NOPA numbers in Fig. 21.
  spec.random_dependency_factor = 0.45;
  spec.dispatch_latency = Seconds::Micros(0.5);
  // Calibrated from Fig. 12: Pageable Copy over NVLink ingests ~10 GiB/s,
  // the rate of one POWER9 thread staging chunks via MMIO.
  spec.single_thread_copy_bw = GiBPerSecond(10.0);
  return spec;
}

DeviceSpec XeonGold6126() {
  DeviceSpec spec;
  spec.name = "Intel Xeon Gold 6126";
  spec.kind = DeviceKind::kCpu;
  spec.cores = 12;
  spec.clock_ghz = 2.6;
  // 81 GiB/s at 70 ns (Fig. 3b) => ~6.1 KB outstanding.
  spec.max_outstanding = Bytes::KiB(6.5);
  // 2.7 GiB/s of 4-byte random reads = 0.72 G requests/s at 70 ns, and
  // the UPI measurement (2 GiB/s at 121 ns) needs ~65 in flight => ~68.
  spec.max_outstanding_requests = 68.0;
  spec.tuple_compute_rate = PerSecond::Giga(1.8);
  spec.random_dependency_factor = 0.45;
  spec.dispatch_latency = Seconds::Micros(0.5);
  // Calibrated from Fig. 12: Pageable Copy over PCI-e ingests ~3.7 GiB/s.
  spec.single_thread_copy_bw = GiBPerSecond(3.7);
  return spec;
}

}  // namespace pump::hw
