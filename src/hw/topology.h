#ifndef PUMP_HW_TOPOLOGY_H_
#define PUMP_HW_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "hw/device.h"
#include "hw/link.h"
#include "hw/memory_spec.h"

namespace pump::hw {

/// One endpoint-to-endpoint interconnect edge in the topology.
struct Edge {
  DeviceId a = kInvalidDevice;
  DeviceId b = kInvalidDevice;
  LinkSpec link;
};

/// A routed path from a device to a memory node: the sequence of edges
/// traversed. Empty for local memory.
struct Route {
  std::vector<std::size_t> edge_indices;
  /// Number of interconnect hops (paper Figs. 13/14 sweep 0-3 hops).
  std::size_t hops() const { return edge_indices.size(); }
};

/// The processor/memory/interconnect graph of one evaluation system
/// (paper Fig. 4). Devices are nodes; every device owns one local memory
/// node with the same id; edges are interconnect links.
class Topology {
 public:
  Topology() = default;

  /// Adds a device together with its local memory node and last-level
  /// cache. Returns the new device id (== its memory node id).
  DeviceId AddDevice(DeviceSpec device, MemorySpec memory, CacheSpec cache);

  /// Connects two devices with a link. Links are full-duplex and symmetric.
  Status AddLink(DeviceId a, DeviceId b, LinkSpec link);

  /// Number of devices.
  std::size_t device_count() const { return devices_.size(); }
  /// Device spec by id.
  const DeviceSpec& device(DeviceId id) const { return devices_[id]; }
  /// Local memory node of a device.
  const MemorySpec& memory(MemoryNodeId id) const { return memories_[id]; }
  /// Last-level cache of a device.
  const CacheSpec& cache(DeviceId id) const { return caches_[id]; }
  /// All edges.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Ids of all devices of the given kind, in insertion order.
  std::vector<DeviceId> DevicesOfKind(DeviceKind kind) const;

  /// Computes the minimum-hop route from `from` to the memory node `to`
  /// (BFS; deterministic tie-break by edge insertion order). Returns an
  /// error when no path exists.
  Result<Route> FindRoute(DeviceId from, MemoryNodeId to) const;

  /// Minimum-hop route from GPU `from` to GPU `to` using only GPU-GPU
  /// peer edges (NVLink/NVSwitch/P2P). The sharded-join exchange stage
  /// prefers these paths and only bounces through host memory when no
  /// peer path exists (AC922-style meshes). NotFound when the endpoints
  /// are not GPUs or not peer-connected.
  Result<Route> FindPeerRoute(DeviceId from, DeviceId to) const;

  /// True iff every link on the route from `from` to `to` is
  /// cache-coherent, i.e. the device can directly access pageable memory at
  /// `to` (required by the Coherence transfer method, Sec. 4.2).
  Result<bool> IsCacheCoherentPath(DeviceId from, MemoryNodeId to) const;

  /// Memory nodes ordered by hop distance from `from` (nearest first),
  /// restricted to CPU-owned nodes when `cpu_only` is set. This is the
  /// spill order of the hybrid hash table allocator (Sec. 5.3, Fig. 8).
  std::vector<MemoryNodeId> MemoryNodesByDistance(DeviceId from,
                                                  bool cpu_only) const;

  /// Human-readable dump of devices and links (used by examples).
  std::string ToString() const;

 private:
  Result<Route> RouteSearch(DeviceId from, MemoryNodeId to,
                            bool peers_only) const;

  std::vector<DeviceSpec> devices_;
  std::vector<MemorySpec> memories_;
  std::vector<CacheSpec> caches_;
  std::vector<Edge> edges_;
};

/// Builds the IBM AC922 system of Fig. 4a: two POWER9 sockets joined by
/// X-Bus, each with one V100-SXM2 attached by 3 bundled NVLink 2.0 links.
/// Device ids: 0 = CPU0, 1 = CPU1, 2 = GPU0, 3 = GPU1.
Topology IbmAc922();

/// Builds the Intel system of Fig. 4b: two Xeon Gold 6126 sockets joined by
/// UPI, with one V100-PCIE attached to socket 0 by PCI-e 3.0 x16.
/// Device ids: 0 = CPU0, 1 = CPU1, 2 = GPU0.
Topology IntelXeonV100();

/// Builds a DGX-style topology (what the multi-GPU strategy of Sec. 6.3
/// assumes): one POWER9 host socket and `gpu_count` V100s, the GPUs fully
/// meshed with direct 1-link NVLink bundles and each attached to the host
/// by a 2-link bundle. Device 0 = CPU, devices 1..gpu_count = GPUs.
Topology DirectGpuMesh(int gpu_count);

/// Builds a DGX-1-style NVLink ring: one Xeon host socket and `gpu_count`
/// V100s attached to it by PCI-e 3.0 x16; ring neighbours are joined by
/// 2-link NVLink bundles, so non-neighbour exchanges route multiple NVLink
/// hops around the ring (Li et al., DGX-1). Device 0 = CPU,
/// devices 1..gpu_count = GPUs.
Topology NvlinkRing(int gpu_count);

/// Builds an NV-SLI workstation: one Xeon host socket and two V100s on
/// PCI-e 3.0 x16, the GPU pair bridged by NV-SLI (two NVLink 2.0 links,
/// no system-wide coherence; Li et al., NV-SLI). Device 0 = CPU,
/// devices 1 and 2 = GPUs.
Topology NvSliPair();

/// Builds a DGX-2-style NVSwitch crossbar: one Xeon host socket and
/// `gpu_count` V100s on PCI-e 3.0 x16; the non-blocking switch plane is
/// modelled as a direct full-bandwidth NVSwitch edge between every GPU
/// pair (Li et al., DGX-2). Device 0 = CPU, devices 1..gpu_count = GPUs.
Topology NvSwitchCrossbar(int gpu_count);

/// Builds a GPUDirect pair: one Xeon host socket and two V100s on PCI-e
/// 3.0 x16 plus a GPUDirect P2P peer link through the root complex
/// (Li et al., GPUDirect). Device 0 = CPU, devices 1 and 2 = GPUs.
Topology GpuDirectPair();

/// Builds an AC922-style host-bounce mesh: one POWER9 host socket and
/// `gpu_count` V100s each attached by 3-link NVLink bundles, with NO
/// GPU-GPU peer links — every peer exchange bounces through host memory.
/// This is the baseline the ring and crossbar meshes are scored against.
/// Device 0 = CPU, devices 1..gpu_count = GPUs.
Topology HostBounceMesh(int gpu_count);

/// Well-known device ids in the canned systems above.
inline constexpr DeviceId kCpu0 = 0;
inline constexpr DeviceId kCpu1 = 1;
inline constexpr DeviceId kGpu0 = 2;
inline constexpr DeviceId kGpu1 = 3;

}  // namespace pump::hw

#endif  // PUMP_HW_TOPOLOGY_H_
