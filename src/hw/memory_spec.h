#ifndef PUMP_HW_MEMORY_SPEC_H_
#define PUMP_HW_MEMORY_SPEC_H_

#include <cstdint>
#include <string>

namespace pump::hw {

/// Identifies a memory node. Every device owns exactly one local memory
/// node, so memory node ids equal the owning device's id.
using MemoryNodeId = int;

/// Sentinel for "no memory node".
inline constexpr MemoryNodeId kInvalidMemoryNode = -1;

/// Performance properties of one memory node (a CPU socket's DRAM or a
/// GPU's HBM2). Rates are aggregates, as measured by the paper's
/// microbenchmarks (Fig. 3).
struct MemorySpec {
  std::string name;
  /// Capacity in bytes.
  std::uint64_t capacity_bytes = 0;
  /// Electrical (theoretical) bandwidth in bytes/s: channels x channel
  /// rate for DRAM, vendor figure for HBM2 (Fig. 1 "Theoretical").
  double electrical_bw = 0.0;
  /// Sequential read bandwidth in bytes/s (Fig. 3b/3c).
  double seq_bw = 0.0;
  /// Concurrent read+write bandwidth in bytes/s (Fig. 1 "Measured").
  double duplex_bw = 0.0;
  /// Random 4-byte access rate in accesses/s (random bandwidth / 4 B).
  double random_access_rate = 0.0;
  /// Access latency in seconds (Fig. 3b/3c).
  double latency_s = 0.0;
  /// Cache line / transaction granularity in bytes.
  double line_bytes = 128.0;
};

/// Last-level cache properties. The GPU L2 is memory-side: it caches only
/// local GPU memory and cannot cache remote data (Sec. 7.2.3, [101]).
struct CacheSpec {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double line_bytes = 128.0;
  /// Random access rate into the cache on a hit, accesses/s.
  double random_access_rate = 0.0;
  /// Hit latency in seconds.
  double latency_s = 0.0;
  /// True if the cache sits on the memory side (GPU L2) and therefore only
  /// caches the local memory node; false for CPU L3, which caches any
  /// coherent address.
  bool memory_side = false;
};

/// One POWER9 socket's DRAM: 8 channels DDR4-2666, 128 GiB (half of the
/// AC922's 256 GB), 117 GiB/s sequential, 3.6 GiB/s random, 68 ns.
MemorySpec Power9Memory();

/// One Xeon socket's DRAM: 6 channels DDR4-2666, 768 GiB (half of 1.5 TB),
/// 81 GiB/s sequential, 2.7 GiB/s random, 70 ns.
MemorySpec XeonMemory();

/// V100 HBM2: 16 GiB, 729 GiB/s sequential, 22.3 GiB/s random, 282 ns.
MemorySpec V100Hbm2();

/// V100 memory-side L2: 6 MiB, 128 B lines; random-access rate calibrated to
/// the in-cache join throughput of workload B (Fig. 13: 19.08 G Tuples/s).
CacheSpec V100L2();

/// POWER9 socket L3: 120 MiB (10 MiB per core pair region).
CacheSpec Power9L3();

/// Xeon Gold 6126 L3: 19.25 MiB.
CacheSpec XeonL3();

}  // namespace pump::hw

#endif  // PUMP_HW_MEMORY_SPEC_H_
