#ifndef PUMP_HW_MEMORY_SPEC_H_
#define PUMP_HW_MEMORY_SPEC_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace pump::hw {

/// Identifies a memory node. Every device owns exactly one local memory
/// node, so memory node ids equal the owning device's id.
using MemoryNodeId = int;

/// Sentinel for "no memory node".
inline constexpr MemoryNodeId kInvalidMemoryNode = -1;

/// Performance properties of one memory node (a CPU socket's DRAM or a
/// GPU's HBM2). Rates are aggregates, as measured by the paper's
/// microbenchmarks (Fig. 3).
struct MemorySpec {
  std::string name;
  /// Capacity.
  Bytes capacity;
  /// Electrical (theoretical) bandwidth: channels x channel rate for DRAM,
  /// vendor figure for HBM2 (Fig. 1 "Theoretical").
  BytesPerSecond electrical_bw;
  /// Sequential read bandwidth (Fig. 3b/3c).
  BytesPerSecond seq_bw;
  /// Concurrent read+write bandwidth (Fig. 1 "Measured").
  BytesPerSecond duplex_bw;
  /// Random 4-byte access rate (random bandwidth / 4 B).
  PerSecond random_access_rate;
  /// Access latency (Fig. 3b/3c).
  Seconds latency;
  /// Cache line / transaction granularity.
  Bytes line_bytes = Bytes(128.0);
};

/// Last-level cache properties. The GPU L2 is memory-side: it caches only
/// local GPU memory and cannot cache remote data (Sec. 7.2.3, [101]).
struct CacheSpec {
  std::string name;
  Bytes capacity;
  Bytes line_bytes = Bytes(128.0);
  /// Random access rate into the cache on a hit.
  PerSecond random_access_rate;
  /// Hit latency.
  Seconds latency;
  /// True if the cache sits on the memory side (GPU L2) and therefore only
  /// caches the local memory node; false for CPU L3, which caches any
  /// coherent address.
  bool memory_side = false;
};

/// One POWER9 socket's DRAM: 8 channels DDR4-2666, 128 GiB (half of the
/// AC922's 256 GB), 117 GiB/s sequential, 3.6 GiB/s random, 68 ns.
MemorySpec Power9Memory();

/// One Xeon socket's DRAM: 6 channels DDR4-2666, 768 GiB (half of 1.5 TB),
/// 81 GiB/s sequential, 2.7 GiB/s random, 70 ns.
MemorySpec XeonMemory();

/// V100 HBM2: 16 GiB, 729 GiB/s sequential, 22.3 GiB/s random, 282 ns.
MemorySpec V100Hbm2();

/// V100 memory-side L2: 6 MiB, 128 B lines; random-access rate calibrated to
/// the in-cache join throughput of workload B (Fig. 13: 19.08 G Tuples/s).
CacheSpec V100L2();

/// POWER9 socket L3: 120 MiB (10 MiB per core pair region).
CacheSpec Power9L3();

/// Xeon Gold 6126 L3: 19.25 MiB.
CacheSpec XeonL3();

}  // namespace pump::hw

#endif  // PUMP_HW_MEMORY_SPEC_H_
