#include "hw/link.h"

#include <string>

#include "common/units.h"

namespace pump::hw {

const char* LinkFamilyToString(LinkFamily family) {
  switch (family) {
    case LinkFamily::kPcie3:
      return "PCI-e 3.0";
    case LinkFamily::kNvlink2:
      return "NVLink 2.0";
    case LinkFamily::kUpi:
      return "UPI";
    case LinkFamily::kXbus:
      return "X-Bus";
    case LinkFamily::kNvswitch:
      return "NVSwitch";
    case LinkFamily::kNvlinkSli:
      return "NV-SLI";
    case LinkFamily::kPcie3P2p:
      return "PCI-e 3.0 P2P";
  }
  return "Unknown";
}

LinkSpec Pcie3x16() {
  LinkSpec link;
  link.name = "PCI-e 3.0 x16";
  link.family = LinkFamily::kPcie3;
  link.electrical_bw = GBPerSecond(16.0);      // Fig. 2.
  link.seq_bw = GiBPerSecond(12.0);            // Fig. 3a, sequential.
  link.duplex_bw = GiBPerSecond(20.5);         // Fig. 1, measured.
  link.random_access_rate = PerSecond(0.2 * kGiB / 4.0);  // Fig. 3a, random / 4 B.
  link.hop_latency = Nanoseconds(720.0);     // 790 ns - 70 ns Xeon memory.
  link.header_bytes = Bytes(24.0);                    // Sec. 2.2.1: 20-26 B header.
  link.max_payload_bytes = Bytes(512.0);
  link.cache_coherent = false;
  link.access_granularity = Bytes(128.0);
  return link;
}

LinkSpec Nvlink2x3() {
  LinkSpec link;
  link.name = "NVLink 2.0 (3 links)";
  link.family = LinkFamily::kNvlink2;
  link.electrical_bw = GBPerSecond(75.0);      // Fig. 2: 3 x 25 GB/s.
  link.seq_bw = GiBPerSecond(63.0);            // Fig. 3a.
  link.duplex_bw = GiBPerSecond(120.7);        // Fig. 1, measured.
  link.random_access_rate = PerSecond(2.8 * kGiB / 4.0);  // Fig. 3a.
  link.hop_latency = Nanoseconds(366.0);     // 434 ns - 68 ns POWER9 mem.
  link.header_bytes = Bytes(16.0);                    // Sec. 2.2.2.
  link.max_payload_bytes = Bytes(256.0);
  link.cache_coherent = true;
  // Random reads move 32 B sectors over the link (coherence is maintained
  // at 128 B granularity, but Volta fetches 32 B sectors); this keeps the
  // measured 0.75 G accesses/s within the link's bandwidth.
  link.access_granularity = Bytes(32.0);
  return link;
}

LinkSpec Nvlink2Bundle(int links) {
  LinkSpec link = Nvlink2x3();
  const double scale = static_cast<double>(links) / 3.0;
  link.name = "NVLink 2.0 (" + std::to_string(links) +
              (links == 1 ? " link)" : " links)");
  link.electrical_bw *= scale;
  link.seq_bw *= scale;
  link.duplex_bw *= scale;
  // GPU-GPU peer accesses skip the NVLink Processing Unit (the NPU only
  // translates accesses into *CPU* memory, Sec. 2.2.2), so peer random
  // reads are sector-bandwidth-bound rather than NPU-bound: one 32 B
  // sector per access at the bundle's sequential rate.
  link.random_access_rate = link.seq_bw / link.access_granularity;
  return link;
}

LinkSpec Upi() {
  LinkSpec link;
  link.name = "UPI";
  link.family = LinkFamily::kUpi;
  link.electrical_bw = GBPerSecond(41.6);
  link.seq_bw = GiBPerSecond(31.0);            // Fig. 3a.
  link.duplex_bw = GiBPerSecond(52.0);
  link.random_access_rate = PerSecond(2.0 * kGiB / 4.0);  // Fig. 3a.
  link.hop_latency = Nanoseconds(51.0);      // 121 ns - 70 ns local.
  link.header_bytes = Bytes(8.0);
  link.max_payload_bytes = Bytes(64.0);
  link.cache_coherent = true;
  link.access_granularity = Bytes(64.0);
  return link;
}

LinkSpec Xbus() {
  LinkSpec link;
  link.name = "X-Bus";
  link.family = LinkFamily::kXbus;
  link.electrical_bw = GBPerSecond(64.0);      // Fig. 2.
  link.seq_bw = GiBPerSecond(32.0);            // Fig. 3a.
  link.duplex_bw = GiBPerSecond(56.0);
  link.random_access_rate = PerSecond(1.1 * kGiB / 4.0);  // Fig. 3a.
  link.hop_latency = Nanoseconds(143.0);     // 211 ns - 68 ns local.
  link.header_bytes = Bytes(16.0);
  link.max_payload_bytes = Bytes(128.0);
  link.cache_coherent = true;
  link.access_granularity = Bytes(128.0);
  return link;
}

LinkSpec NvSwitchLink() {
  LinkSpec link;
  link.name = "NVSwitch (6 links)";
  link.family = LinkFamily::kNvswitch;
  link.electrical_bw = GBPerSecond(150.0);  // 6 x 25 GB/s into the fabric.
  link.seq_bw = GiBPerSecond(125.0);        // Li et al.: ~130 GB/s P2P.
  link.duplex_bw = GiBPerSecond(240.0);
  // Peer random reads move 32 B sectors at the port's sequential rate, as
  // on direct NVLink bundles (no NPU on the GPU-GPU path).
  link.access_granularity = Bytes(32.0);
  link.random_access_rate = link.seq_bw / link.access_granularity;
  // The switch hop adds ~1.3x the direct NVLink latency (Li et al.).
  link.hop_latency = Nanoseconds(480.0);
  link.header_bytes = Bytes(16.0);
  link.max_payload_bytes = Bytes(256.0);
  link.cache_coherent = true;  // Carries the NVLink coherence protocol.
  return link;
}

LinkSpec NvSliBridge() {
  LinkSpec link;
  link.name = "NV-SLI bridge (2 links)";
  link.family = LinkFamily::kNvlinkSli;
  link.electrical_bw = GBPerSecond(50.0);  // 2 x 25 GB/s.
  link.seq_bw = GiBPerSecond(41.0);        // Li et al.: ~44 GB/s peak.
  link.duplex_bw = GiBPerSecond(78.0);
  link.access_granularity = Bytes(32.0);
  link.random_access_rate = link.seq_bw / link.access_granularity;
  link.hop_latency = Nanoseconds(400.0);
  link.header_bytes = Bytes(16.0);
  link.max_payload_bytes = Bytes(256.0);
  // x86 hosts expose no system-wide coherence over the bridge; peers use
  // explicit DMA, not pageable access.
  link.cache_coherent = false;
  return link;
}

LinkSpec GpuDirectP2p() {
  LinkSpec link;
  link.name = "GPUDirect P2P (PCI-e 3.0)";
  link.family = LinkFamily::kPcie3P2p;
  link.electrical_bw = GBPerSecond(16.0);
  link.seq_bw = GiBPerSecond(10.0);  // Li et al.: ~9-10 GB/s peer DMA.
  link.duplex_bw = GiBPerSecond(17.0);
  link.random_access_rate = PerSecond(0.15 * kGiB / 4.0);
  // Peer transactions traverse the root complex both ways.
  link.hop_latency = Nanoseconds(900.0);
  link.header_bytes = Bytes(24.0);
  link.max_payload_bytes = Bytes(512.0);
  link.cache_coherent = false;
  link.access_granularity = Bytes(128.0);
  return link;
}

}  // namespace pump::hw
