#ifndef PUMP_CHECK_MODEL_CHECK_H_
#define PUMP_CHECK_MODEL_CHECK_H_

#include <map>
#include <string>
#include <vector>

#include "hw/system_profile.h"
#include "obs/residuals.h"

namespace pump::check {

/// One invariant violation found by the model linter. `check` is a stable
/// machine-readable id (e.g. "topology.connectivity"); `subject` names the
/// offending entity; `message` explains the expectation that failed.
struct Violation {
  std::string check;
  std::string subject;
  std::string message;
};

/// The result of linting one system profile: every check that ran and
/// every violation found. A profile is clean iff `violations` is empty.
struct ProfileReport {
  std::string profile;
  std::vector<std::string> checks_run;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

// Individual invariant checks. Each appends its id to `report->checks_run`
// and any violations to `report->violations`. Exposed so tests can
// exercise them one at a time against broken fixtures.

/// Every device must reach every memory node (the paper's systems are
/// connected graphs, Fig. 4); unreachable pairs break the allocator's
/// spill order and the co-processing placement search.
void CheckConnectivity(const hw::SystemProfile& profile,
                       ProfileReport* report);

/// Routing must be symmetric: the minimum-hop count from device A to B's
/// memory equals the count from B to A's memory. All modeled interconnects
/// are full-duplex point-to-point links (Sec. 2.2), so an asymmetric route
/// means the topology was mis-declared.
void CheckRouteSymmetry(const hw::SystemProfile& profile,
                        ProfileReport* report);

/// Per-link sanity: bandwidths positive, measured sequential bandwidth not
/// above the electrical limit, duplex bandwidth between the one-direction
/// figure and twice the electrical rate, packet geometry positive, and a
/// bulk efficiency in (0, 1].
void CheckLinkSanity(const hw::SystemProfile& profile, ProfileReport* report);

/// Per-memory-node sanity: positive capacity/latency, measured bandwidths
/// not above electrical, positive random-access rate and line size.
void CheckMemorySanity(const hw::SystemProfile& profile,
                       ProfileReport* report);

/// Calibration against the paper's published measurements: link and memory
/// constants (Figs. 1/3) and end-to-end GPU->CPU path figures (434 ns /
/// 63 GiB/s on NVLink 2.0, 790 ns / 12 GiB/s on PCI-e 3.0) must stay
/// within `kCalibrationTolerance` of the printed numbers.
void CheckCalibration(const hw::SystemProfile& profile,
                      ProfileReport* report);

/// Little's-law consistency: a spec table must not advertise a local
/// random-access rate (or sequential bandwidth) the owning device cannot
/// sustain given its outstanding-request budget and the memory's latency;
/// resolved paths must respect the same bound end to end.
void CheckLittlesLaw(const hw::SystemProfile& profile, ProfileReport* report);

/// Cost-model sanity on this profile: join estimates are finite and
/// non-negative, total time is monotone in the input size, and a CPU/GPU
/// crossover exists (small inputs favor the CPU because of dispatch
/// latency; the preferred device changes somewhere along the size sweep).
void CheckCostModel(const hw::SystemProfile& profile, ProfileReport* report);

/// Runs every check above on one profile.
ProfileReport CheckProfile(const hw::SystemProfile& profile);

/// Mesh-specific lint: an N-GPU profile must contain at least one GPU and
/// every GPU pair must have an exchange route within the mesh diameter
/// (host sockets + GPU count). These are the paths the sharded-join
/// exchange planner routes partitions over.
void CheckMeshPeering(const hw::SystemProfile& profile,
                      ProfileReport* report);

/// Runs the structural checks (connectivity, route symmetry, link/memory
/// sanity, Little's law) plus the mesh peering lint on an N-GPU mesh
/// profile. Paper-figure calibration and the CPU/GPU crossover sweep are
/// skipped: the mesh link constants come from "Evaluating Modern GPU
/// Interconnect" (Li et al.), not this paper's testbeds.
ProfileReport CheckMeshProfile(const hw::SystemProfile& profile);

/// Acceptable measured/predicted ratio band for one pipeline class of a
/// residual report (see obs/residuals.h). A ratio outside the band means
/// the cost model mis-predicts that pipeline class by more than the
/// operator is willing to tolerate.
struct ResidualBand {
  double min_ratio = 0.0;
  double max_ratio = 1e6;
};

/// Per-class ratio bands keyed by pipeline class ("build", "probe"); the
/// "" key is the default applied to classes without their own band.
using ResidualBands = std::map<std::string, ResidualBand>;

/// Lints a model-vs-measured residual report (tools/tracedump --residuals)
/// against the given ratio bands: every row needs a known pipeline class,
/// non-negative finite times, a ratio consistent with measured/predicted,
/// and — when the cost model produced a prediction — a ratio inside its
/// class band. Reuses the ProfileReport/JSON/nonzero-exit conventions of
/// the hardware-model checks ("profile" = "residuals:<query>").
ProfileReport CheckResiduals(const obs::ResidualReport& report,
                             const ResidualBands& bands);

/// Serializes reports as a machine-readable JSON document:
/// {"ok": bool, "profiles": [{"profile", "ok", "checks_run", "violations":
/// [{"check", "subject", "message"}]}]}.
std::string ReportsToJson(const std::vector<ProfileReport>& reports);

/// Relative tolerance applied when comparing calibration constants to the
/// paper's printed figures.
inline constexpr double kCalibrationTolerance = 0.10;

/// A deliberately broken AC922-like profile used by tests and the
/// `--broken-fixture` mode of the linter: GPU1 is disconnected, one link
/// claims more measured than electrical bandwidth, the CPU memory latency
/// is far off Fig. 3, and the GPU's outstanding-request budget cannot
/// sustain its advertised HBM2 random-access rate.
hw::SystemProfile BrokenFixtureProfile();

/// A deliberately broken 4-GPU host-bounce mesh used by tests and the
/// `--mesh --profile broken-mesh-fixture` mode: one GPU is left unlinked
/// (connectivity + mesh peering violations) and another's host link claims
/// more measured than electrical bandwidth.
hw::SystemProfile BrokenMeshFixtureProfile();

}  // namespace pump::check

#endif  // PUMP_CHECK_MODEL_CHECK_H_
