#include "check/model_check.h"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "data/workloads.h"
#include "hw/device.h"
#include "hw/link.h"
#include "hw/memory_spec.h"
#include "hw/topology.h"
#include "join/cost_model.h"
#include "sim/access_path.h"
#include "transfer/method.h"

namespace pump::check {
namespace {

/// Slack allowed on invariants that should hold exactly but involve
/// floating-point arithmetic.
constexpr double kEpsilonSlack = 1.0 + 1e-9;

/// Slack on Little's-law bounds: the spec tables round latencies to whole
/// nanoseconds, so a 1% margin avoids false positives without hiding a
/// genuinely over-promised rate.
constexpr double kLittleSlack = 1.01;

void Violate(ProfileReport* report, std::string check, std::string subject,
             std::string message) {
  report->violations.push_back(
      Violation{std::move(check), std::move(subject), std::move(message)});
}

std::string DeviceLabel(const hw::Topology& topo, hw::DeviceId id) {
  std::ostringstream os;
  os << topo.device(id).name << " (id " << id << ")";
  return os.str();
}

bool Within(double actual, double reference, double tolerance) {
  return std::abs(actual - reference) <= tolerance * reference;
}

std::string OffBy(double actual, double reference, const char* unit) {
  std::ostringstream os;
  os << "expected ~" << reference << " " << unit << " (paper figure), got "
     << actual << " " << unit;
  return os.str();
}

/// Paper-published per-link calibration targets (Figs. 2 and 3a).
struct LinkReference {
  double seq_gib = 0.0;        ///< Measured sequential bandwidth, GiB/s.
  double electrical_gb = 0.0;  ///< Electrical per-direction rate, GB/s.
  double hop_ns = 0.0;         ///< Added hop latency, ns.
};

bool LinkReferenceFor(hw::LinkFamily family, LinkReference* ref) {
  switch (family) {
    case hw::LinkFamily::kNvlink2:
      *ref = {63.0, 75.0, 366.0};
      return true;
    case hw::LinkFamily::kPcie3:
      *ref = {12.0, 16.0, 720.0};
      return true;
    case hw::LinkFamily::kUpi:
      *ref = {31.0, 41.6, 51.0};
      return true;
    case hw::LinkFamily::kXbus:
      *ref = {32.0, 64.0, 143.0};
      return true;
    case hw::LinkFamily::kNvswitch:
    case hw::LinkFamily::kNvlinkSli:
    case hw::LinkFamily::kPcie3P2p:
      // Mesh families come from "Evaluating Modern GPU Interconnect"
      // (Li et al.), not this paper's Figs. 1-3; calibration is skipped.
      return false;
  }
  return false;
}

/// Paper-published per-memory-node calibration targets (Figs. 1, 3b/3c),
/// matched by substring of the spec name.
struct MemoryReference {
  const char* name_contains;
  double seq_gib;
  double latency_ns;
};

constexpr MemoryReference kMemoryReferences[] = {
    {"POWER9", 117.0, 68.0},
    {"Xeon", 81.0, 70.0},
    {"HBM2", 729.0, 282.0},
};

/// End-to-end single-hop GPU->CPU figures of Fig. 3a: total latency and
/// sequential bandwidth as the GPU sees CPU memory over the interconnect.
struct PathReference {
  double latency_ns;
  double seq_gib;
};

bool PathReferenceFor(hw::LinkFamily family, PathReference* ref) {
  switch (family) {
    case hw::LinkFamily::kNvlink2:
      *ref = {434.0, 63.0};
      return true;
    case hw::LinkFamily::kPcie3:
      *ref = {790.0, 12.0};
      return true;
    default:
      return false;
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void CheckConnectivity(const hw::SystemProfile& profile,
                       ProfileReport* report) {
  report->checks_run.push_back("topology.connectivity");
  const hw::Topology& topo = profile.topology;
  for (hw::DeviceId from = 0;
       from < static_cast<hw::DeviceId>(topo.device_count()); ++from) {
    for (hw::MemoryNodeId to = 0;
         to < static_cast<hw::MemoryNodeId>(topo.device_count()); ++to) {
      if (!topo.FindRoute(from, to).ok()) {
        Violate(report, "topology.connectivity",
                DeviceLabel(topo, from) + " -> memory " + std::to_string(to),
                "no route; the paper's systems are connected graphs "
                "(Fig. 4) and the allocator spill order requires full "
                "reachability");
      }
    }
  }
}

void CheckRouteSymmetry(const hw::SystemProfile& profile,
                        ProfileReport* report) {
  report->checks_run.push_back("topology.route-symmetry");
  const hw::Topology& topo = profile.topology;
  const auto n = static_cast<hw::DeviceId>(topo.device_count());
  for (hw::DeviceId a = 0; a < n; ++a) {
    for (hw::DeviceId b = a + 1; b < n; ++b) {
      Result<hw::Route> forward = topo.FindRoute(a, b);
      Result<hw::Route> backward = topo.FindRoute(b, a);
      if (forward.ok() != backward.ok()) {
        Violate(report, "topology.route-symmetry",
                DeviceLabel(topo, a) + " <-> " + DeviceLabel(topo, b),
                "one direction routes and the other does not; all modeled "
                "links are full-duplex (Sec. 2.2)");
        continue;
      }
      if (forward.ok() &&
          forward.value().hops() != backward.value().hops()) {
        Violate(report, "topology.route-symmetry",
                DeviceLabel(topo, a) + " <-> " + DeviceLabel(topo, b),
                "asymmetric hop counts (" +
                    std::to_string(forward.value().hops()) + " vs " +
                    std::to_string(backward.value().hops()) + ")");
      }
    }
  }
}

void CheckLinkSanity(const hw::SystemProfile& profile,
                     ProfileReport* report) {
  report->checks_run.push_back("link.positive-bandwidth");
  report->checks_run.push_back("link.bandwidth-ordering");
  const hw::Topology& topo = profile.topology;
  for (const hw::Edge& edge : topo.edges()) {
    const hw::LinkSpec& link = edge.link;
    const std::string subject = link.name + " (" +
                                std::to_string(edge.a) + " <-> " +
                                std::to_string(edge.b) + ")";
    if (link.electrical_bw.bytes_per_second() <= 0.0 ||
        link.seq_bw.bytes_per_second() <= 0.0 ||
        link.duplex_bw.bytes_per_second() <= 0.0 ||
        link.random_access_rate.per_second() <= 0.0) {
      Violate(report, "link.positive-bandwidth", subject,
              "every link bandwidth and access rate must be positive");
    }
    if (link.seq_bw.bytes_per_second() >
        link.electrical_bw.bytes_per_second() * kEpsilonSlack) {
      Violate(report, "link.bandwidth-ordering", subject,
              "measured sequential bandwidth exceeds the electrical "
              "limit (" +
                  std::to_string(link.seq_bw.gib_per_second()) + " > " +
                  std::to_string(link.electrical_bw.gib_per_second()) +
                  " GiB/s)");
    }
    if (link.duplex_bw.bytes_per_second() >
        2.0 * link.electrical_bw.bytes_per_second() * kEpsilonSlack) {
      Violate(report, "link.bandwidth-ordering", subject,
              "duplex bandwidth exceeds twice the per-direction "
              "electrical rate");
    }
    if (link.header_bytes.bytes() <= 0.0 ||
        link.max_payload_bytes.bytes() <= 0.0 ||
        link.BulkEfficiency() <= 0.0 || link.BulkEfficiency() > 1.0) {
      Violate(report, "link.positive-bandwidth", subject,
              "packet geometry must be positive with bulk efficiency in "
              "(0, 1]");
    }
  }
}

void CheckMemorySanity(const hw::SystemProfile& profile,
                       ProfileReport* report) {
  report->checks_run.push_back("memory.sanity");
  const hw::Topology& topo = profile.topology;
  for (hw::MemoryNodeId id = 0;
       id < static_cast<hw::MemoryNodeId>(topo.device_count()); ++id) {
    const hw::MemorySpec& mem = topo.memory(id);
    const std::string subject = mem.name + " (node " + std::to_string(id) +
                                ")";
    if (mem.capacity.bytes() <= 0.0 || mem.latency.seconds() <= 0.0 ||
        mem.line_bytes.bytes() <= 0.0) {
      Violate(report, "memory.sanity", subject,
              "capacity, latency and line size must be positive");
    }
    if (mem.seq_bw.bytes_per_second() <= 0.0 ||
        mem.random_access_rate.per_second() <= 0.0) {
      Violate(report, "memory.sanity", subject,
              "bandwidth and random-access rate must be positive");
    }
    if (mem.seq_bw.bytes_per_second() >
        mem.electrical_bw.bytes_per_second() * kEpsilonSlack) {
      Violate(report, "memory.sanity", subject,
              "measured sequential bandwidth exceeds the electrical limit");
    }
  }
}

void CheckCalibration(const hw::SystemProfile& profile,
                      ProfileReport* report) {
  report->checks_run.push_back("link.calibration");
  report->checks_run.push_back("memory.calibration");
  report->checks_run.push_back("path.calibration");
  const hw::Topology& topo = profile.topology;

  for (const hw::Edge& edge : topo.edges()) {
    const hw::LinkSpec& link = edge.link;
    LinkReference ref;
    if (!LinkReferenceFor(link.family, &ref)) continue;
    if (!Within(link.seq_bw.gib_per_second(), ref.seq_gib,
                kCalibrationTolerance)) {
      Violate(report, "link.calibration", link.name,
              OffBy(link.seq_bw.gib_per_second(), ref.seq_gib,
                    "GiB/s sequential (Fig. 3a)"));
    }
    if (!Within(link.electrical_bw.bytes_per_second() / 1e9,
                ref.electrical_gb, kCalibrationTolerance)) {
      Violate(report, "link.calibration", link.name,
              OffBy(link.electrical_bw.bytes_per_second() / 1e9,
                    ref.electrical_gb, "GB/s electrical (Fig. 2)"));
    }
    if (!Within(link.hop_latency.nanos(), ref.hop_ns,
                kCalibrationTolerance)) {
      Violate(report, "link.calibration", link.name,
              OffBy(link.hop_latency.nanos(), ref.hop_ns,
                    "ns hop latency (Fig. 3)"));
    }
  }

  for (hw::MemoryNodeId id = 0;
       id < static_cast<hw::MemoryNodeId>(topo.device_count()); ++id) {
    const hw::MemorySpec& mem = topo.memory(id);
    for (const MemoryReference& ref : kMemoryReferences) {
      if (mem.name.find(ref.name_contains) == std::string::npos) continue;
      if (!Within(mem.seq_bw.gib_per_second(), ref.seq_gib,
                  kCalibrationTolerance)) {
        Violate(report, "memory.calibration", mem.name,
                OffBy(mem.seq_bw.gib_per_second(), ref.seq_gib,
                      "GiB/s sequential (Fig. 3b/3c)"));
      }
      if (!Within(mem.latency.nanos(), ref.latency_ns,
                  kCalibrationTolerance)) {
        Violate(report, "memory.calibration", mem.name,
                OffBy(mem.latency.nanos(), ref.latency_ns,
                      "ns latency (Fig. 3b/3c)"));
      }
      break;
    }
  }

  // End-to-end: each single-hop GPU -> CPU-memory path must reproduce the
  // paper's measured interconnect figures.
  for (hw::DeviceId gpu : topo.DevicesOfKind(hw::DeviceKind::kGpu)) {
    for (hw::DeviceId cpu : topo.DevicesOfKind(hw::DeviceKind::kCpu)) {
      Result<sim::AccessPath> path = sim::ResolveAccessPath(topo, gpu, cpu);
      if (!path.ok() || path.value().hops != 1) continue;
      Result<hw::Route> route = topo.FindRoute(gpu, cpu);
      if (!route.ok()) continue;
      const hw::LinkSpec& link =
          topo.edges()[route.value().edge_indices.front()].link;
      PathReference ref;
      if (!PathReferenceFor(link.family, &ref)) continue;
      const std::string subject =
          DeviceLabel(topo, gpu) + " -> memory " + std::to_string(cpu);
      if (!Within(path.value().latency.nanos(), ref.latency_ns,
                  kCalibrationTolerance)) {
        Violate(report, "path.calibration", subject,
                OffBy(path.value().latency.nanos(), ref.latency_ns,
                      "ns end-to-end latency (Fig. 3a)"));
      }
      if (!Within(path.value().seq_bw.gib_per_second(), ref.seq_gib,
                  kCalibrationTolerance)) {
        Violate(report, "path.calibration", subject,
                OffBy(path.value().seq_bw.gib_per_second(), ref.seq_gib,
                      "GiB/s end-to-end sequential (Fig. 3a)"));
      }
    }
  }
}

void CheckLittlesLaw(const hw::SystemProfile& profile,
                     ProfileReport* report) {
  report->checks_run.push_back("littles-law.spec");
  report->checks_run.push_back("littles-law.path");
  const hw::Topology& topo = profile.topology;
  const auto n = static_cast<hw::DeviceId>(topo.device_count());

  // Spec-level: the advertised local rates must be reachable under the
  // owning device's outstanding-traffic budget at the memory's latency
  // (bw <= outstanding / latency). An over-promise here silently inflates
  // every model built on the spec tables.
  for (hw::DeviceId id = 0; id < n; ++id) {
    const hw::DeviceSpec& dev = topo.device(id);
    const hw::MemorySpec& mem = topo.memory(id);
    const std::string subject = DeviceLabel(topo, id) + " / " + mem.name;
    const BytesPerSecond bw_bound = dev.max_outstanding / mem.latency;
    if (mem.seq_bw.bytes_per_second() >
        bw_bound.bytes_per_second() * kLittleSlack) {
      Violate(report, "littles-law.spec", subject,
              "advertised sequential bandwidth " +
                  std::to_string(mem.seq_bw.gib_per_second()) +
                  " GiB/s exceeds the Little's-law bound " +
                  std::to_string(bw_bound.gib_per_second()) +
                  " GiB/s (outstanding bytes / latency)");
    }
    const PerSecond rate_bound = dev.max_outstanding_requests / mem.latency;
    if (mem.random_access_rate.per_second() >
        rate_bound.per_second() * kLittleSlack) {
      Violate(report, "littles-law.spec", subject,
              "advertised random-access rate " +
                  std::to_string(mem.random_access_rate.giga_per_second()) +
                  " G/s exceeds the Little's-law bound " +
                  std::to_string(rate_bound.giga_per_second()) +
                  " G/s (outstanding requests / latency)");
    }
  }

  // Path-level: every resolved access path must respect the same bounds
  // end to end, and derating must never raise a rate.
  for (hw::DeviceId from = 0; from < n; ++from) {
    const hw::DeviceSpec& dev = topo.device(from);
    for (hw::MemoryNodeId to = 0; to < n; ++to) {
      Result<sim::AccessPath> resolved =
          sim::ResolveAccessPath(topo, from, to);
      if (!resolved.ok()) continue;  // Reported by the connectivity check.
      const sim::AccessPath& path = resolved.value();
      const std::string subject =
          DeviceLabel(topo, from) + " -> memory " + std::to_string(to);
      const BytesPerSecond bw_bound = dev.max_outstanding / path.latency;
      if (path.seq_bw.bytes_per_second() >
          bw_bound.bytes_per_second() * kLittleSlack) {
        Violate(report, "littles-law.path", subject,
                "resolved sequential bandwidth exceeds outstanding-bytes "
                "bound over this path's latency");
      }
      const PerSecond rate_bound =
          dev.max_outstanding_requests / path.latency;
      if (path.random_access_rate.per_second() >
          rate_bound.per_second() * kLittleSlack) {
        Violate(report, "littles-law.path", subject,
                "resolved random-access rate exceeds outstanding-requests "
                "bound over this path's latency");
      }
      if (path.dependent_access_rate.per_second() >
          path.random_access_rate.per_second() * kEpsilonSlack) {
        Violate(report, "littles-law.path", subject,
                "dependent access rate exceeds the independent rate; the "
                "dependency factor must derate, never boost");
      }
    }
  }
}

void CheckCostModel(const hw::SystemProfile& profile,
                    ProfileReport* report) {
  report->checks_run.push_back("costmodel.finite");
  report->checks_run.push_back("costmodel.monotone");
  report->checks_run.push_back("costmodel.crossover");
  const hw::Topology& topo = profile.topology;
  const std::vector<hw::DeviceId> cpus =
      topo.DevicesOfKind(hw::DeviceKind::kCpu);
  const std::vector<hw::DeviceId> gpus =
      topo.DevicesOfKind(hw::DeviceKind::kGpu);
  if (cpus.empty() || gpus.empty()) {
    Violate(report, "costmodel.crossover", profile.name,
            "profile lacks a CPU or a GPU; cannot compare devices");
    return;
  }
  const hw::DeviceId cpu = cpus.front();
  const hw::DeviceId gpu = gpus.front();

  const join::NopaJoinModel model(&profile);

  join::NopaConfig cpu_config;
  cpu_config.device = cpu;
  cpu_config.r_location = cpu;
  cpu_config.s_location = cpu;
  cpu_config.hash_table = join::HashTablePlacement::Single(cpu);

  join::NopaConfig gpu_config;
  gpu_config.device = gpu;
  gpu_config.r_location = cpu;
  gpu_config.s_location = cpu;
  gpu_config.hash_table = join::HashTablePlacement::Single(gpu);
  const bool coherent =
      topo.IsCacheCoherentPath(gpu, cpu).value_or(false);
  gpu_config.method = coherent ? transfer::TransferMethod::kCoherence
                               : transfer::TransferMethod::kZeroCopy;
  gpu_config.relation_memory = coherent ? memory::MemoryKind::kPageable
                                        : memory::MemoryKind::kPinned;

  Seconds prev_cpu;
  Seconds prev_gpu;
  bool cpu_won = false;
  bool gpu_won = false;
  // Sweep |R| from 1 Ki to 256 Mi tuples (|S| = 4|R|, 16 B tuples):
  // small joins are dominated by the GPU's dispatch latency, large ones by
  // the interconnect, so the preferred device changes along the sweep.
  for (std::uint64_t r_tuples = 1ull << 10; r_tuples <= 1ull << 28;
       r_tuples *= 2) {
    const data::WorkloadSpec w =
        data::WorkloadC16(r_tuples, 4 * r_tuples);
    const std::string subject =
        profile.name + " @ |R|=" + std::to_string(r_tuples);

    Result<join::JoinTiming> cpu_timing = model.Estimate(cpu_config, w);
    Result<join::JoinTiming> gpu_timing = model.Estimate(gpu_config, w);
    if (!cpu_timing.ok() || !gpu_timing.ok()) {
      Violate(report, "costmodel.finite", subject,
              "join estimate failed: " +
                  (cpu_timing.ok() ? gpu_timing.status().ToString()
                                   : cpu_timing.status().ToString()));
      continue;
    }
    const Seconds cpu_total = cpu_timing.value().total_s();
    const Seconds gpu_total = gpu_timing.value().total_s();
    for (const Seconds t : {cpu_total, gpu_total}) {
      if (!std::isfinite(t.seconds()) || t.seconds() <= 0.0) {
        Violate(report, "costmodel.finite", subject,
                "join estimate must be a positive finite time");
      }
    }
    if (cpu_total.seconds() < prev_cpu.seconds() / kEpsilonSlack) {
      Violate(report, "costmodel.monotone", subject,
              "CPU join time decreased when the input grew");
    }
    if (gpu_total.seconds() < prev_gpu.seconds() / kEpsilonSlack) {
      Violate(report, "costmodel.monotone", subject,
              "GPU join time decreased when the input grew");
    }
    prev_cpu = cpu_total;
    prev_gpu = gpu_total;
    if (cpu_total < gpu_total) cpu_won = true;
    if (gpu_total < cpu_total) gpu_won = true;
  }
  if (!(cpu_won && gpu_won)) {
    Violate(report, "costmodel.crossover", profile.name,
            std::string("no CPU/GPU crossover in the size sweep: ") +
                (cpu_won ? "the GPU never wins"
                         : "the CPU never wins") +
                "; dispatch latency must favor the CPU on small joins and "
                "the throughput model the other device beyond it");
  }
}

ProfileReport CheckProfile(const hw::SystemProfile& profile) {
  ProfileReport report;
  report.profile = profile.name;
  CheckConnectivity(profile, &report);
  CheckRouteSymmetry(profile, &report);
  CheckLinkSanity(profile, &report);
  CheckMemorySanity(profile, &report);
  CheckCalibration(profile, &report);
  CheckLittlesLaw(profile, &report);
  CheckCostModel(profile, &report);
  return report;
}

void CheckMeshPeering(const hw::SystemProfile& profile,
                      ProfileReport* report) {
  report->checks_run.push_back("mesh.gpu-present");
  report->checks_run.push_back("mesh.peer-path");
  const hw::Topology& topo = profile.topology;
  const std::vector<hw::DeviceId> gpus =
      topo.DevicesOfKind(hw::DeviceKind::kGpu);
  if (gpus.empty()) {
    Violate(report, "mesh.gpu-present", profile.name,
            "an N-GPU mesh profile must contain at least one GPU");
    return;
  }
  // Every GPU pair must route within the mesh diameter: at worst a bounce
  // through every CPU socket plus half the GPU ring. The exchange planner
  // routes each partition over exactly these paths, so an unroutable or
  // absurdly long pair means the mesh was mis-declared.
  const std::size_t diameter_bound =
      topo.DevicesOfKind(hw::DeviceKind::kCpu).size() + gpus.size();
  for (std::size_t a = 0; a < gpus.size(); ++a) {
    for (std::size_t b = a + 1; b < gpus.size(); ++b) {
      Result<hw::Route> route = topo.FindRoute(gpus[a], gpus[b]);
      const std::string subject = DeviceLabel(topo, gpus[a]) + " <-> " +
                                  DeviceLabel(topo, gpus[b]);
      if (!route.ok()) {
        Violate(report, "mesh.peer-path", subject,
                "no exchange path between this GPU pair");
        continue;
      }
      if (route.value().hops() > diameter_bound) {
        Violate(report, "mesh.peer-path", subject,
                "exchange path of " +
                    std::to_string(route.value().hops()) +
                    " hops exceeds the mesh diameter bound " +
                    std::to_string(diameter_bound));
      }
    }
  }
}

ProfileReport CheckMeshProfile(const hw::SystemProfile& profile) {
  ProfileReport report;
  report.profile = profile.name;
  // Mesh link constants come from Li et al., not this paper's Figs. 1-3,
  // and the cost-model crossover sweep is calibrated for the two testbeds;
  // both are skipped here. Everything structural still applies.
  CheckConnectivity(profile, &report);
  CheckRouteSymmetry(profile, &report);
  CheckLinkSanity(profile, &report);
  CheckMemorySanity(profile, &report);
  CheckLittlesLaw(profile, &report);
  CheckMeshPeering(profile, &report);
  return report;
}

std::string ReportsToJson(const std::vector<ProfileReport>& reports) {
  std::ostringstream os;
  bool all_ok = true;
  for (const ProfileReport& report : reports) all_ok &= report.ok();
  os << "{\"ok\": " << (all_ok ? "true" : "false") << ", \"profiles\": [";
  for (std::size_t p = 0; p < reports.size(); ++p) {
    const ProfileReport& report = reports[p];
    if (p > 0) os << ", ";
    os << "{\"profile\": \"" << JsonEscape(report.profile) << "\", \"ok\": "
       << (report.ok() ? "true" : "false") << ", \"checks_run\": [";
    for (std::size_t c = 0; c < report.checks_run.size(); ++c) {
      if (c > 0) os << ", ";
      os << "\"" << JsonEscape(report.checks_run[c]) << "\"";
    }
    os << "], \"violations\": [";
    for (std::size_t v = 0; v < report.violations.size(); ++v) {
      const Violation& violation = report.violations[v];
      if (v > 0) os << ", ";
      os << "{\"check\": \"" << JsonEscape(violation.check)
         << "\", \"subject\": \"" << JsonEscape(violation.subject)
         << "\", \"message\": \"" << JsonEscape(violation.message) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

ProfileReport CheckResiduals(const obs::ResidualReport& report,
                             const ResidualBands& bands) {
  ProfileReport out;
  out.profile = "residuals:" + report.query;
  out.checks_run = {"residual.rows", "residual.consistency",
                    "residual.band"};

  if (report.rows.empty()) {
    out.violations.push_back({"residual.rows", report.query,
                              "residual report has no pipeline rows"});
    return out;
  }

  auto band_for = [&bands](const std::string& cls) -> ResidualBand {
    auto it = bands.find(cls);
    if (it != bands.end()) return it->second;
    it = bands.find("");
    if (it != bands.end()) return it->second;
    return ResidualBand{};
  };

  for (const obs::ResidualRow& row : report.rows) {
    // "probe_simd" is the CPU probe executed by the vectorized kernel
    // (hash/simd_probe.h): tracedump splits it from "probe" so its
    // calibration can drift independently of the interleaved path and
    // still be caught by a per-class band. "exchange" is the all-to-all
    // partition shuffle of a sharded plan (plan::ExchangeStage), whose
    // prediction comes from the interconnect model rather than the join
    // kernels.
    if (row.pipeline_class != "build" && row.pipeline_class != "probe" &&
        row.pipeline_class != "probe_simd" &&
        row.pipeline_class != "exchange") {
      out.violations.push_back(
          {"residual.rows", row.pipeline,
           "unknown pipeline class '" + row.pipeline_class +
               "' (want build|probe|probe_simd|exchange)"});
      continue;
    }
    if (!std::isfinite(row.measured_s) || row.measured_s < 0.0 ||
        !std::isfinite(row.predicted_s) || row.predicted_s < 0.0) {
      out.violations.push_back(
          {"residual.consistency", row.pipeline,
           "measured/predicted times must be finite and non-negative"});
      continue;
    }
    const double expected =
        obs::ResidualRatio(row.predicted_s, row.measured_s);
    const double tolerance = 1e-6 + 1e-3 * expected;
    if (std::abs(row.ratio - expected) > tolerance) {
      out.violations.push_back(
          {"residual.consistency", row.pipeline,
           "ratio " + std::to_string(row.ratio) +
               " does not equal measured/predicted (" +
               std::to_string(expected) + ")"});
      continue;
    }
    if (row.predicted_s <= 0.0) continue;  // No prediction to band.
    const ResidualBand band = band_for(row.pipeline_class);
    if (row.ratio < band.min_ratio || row.ratio > band.max_ratio) {
      out.violations.push_back(
          {"residual.band", row.pipeline,
           "class '" + row.pipeline_class + "' ratio " +
               std::to_string(row.ratio) + " outside band [" +
               std::to_string(band.min_ratio) + ", " +
               std::to_string(band.max_ratio) + "]"});
    }
  }
  return out;
}

hw::SystemProfile BrokenFixtureProfile() {
  hw::SystemProfile profile = hw::Ac922Profile();
  profile.name = "broken-fixture";

  hw::Topology topo;
  // CPU0's memory is declared with a latency far off Fig. 3b, which also
  // sinks its advertised bandwidth below the Little's-law bound.
  hw::MemorySpec slow_memory = hw::Power9Memory();
  slow_memory.latency = Nanoseconds(500.0);
  topo.AddDevice(hw::Power9(), slow_memory, hw::Power9L3());
  topo.AddDevice(hw::Power9(), hw::Power9Memory(), hw::Power9L3());

  // GPU0 cannot keep enough requests in flight for its advertised HBM2
  // random-access rate.
  hw::DeviceSpec starved_gpu = hw::TeslaV100();
  starved_gpu.max_outstanding_requests = 16.0;
  topo.AddDevice(starved_gpu, hw::V100Hbm2(), hw::V100L2());

  // GPU1 exists but is never linked: a connectivity violation.
  topo.AddDevice(hw::TeslaV100(), hw::V100Hbm2(), hw::V100L2());

  // The CPU-GPU link claims more measured than electrical bandwidth, and
  // is off the paper's 63 GiB/s NVLink calibration.
  hw::LinkSpec inflated_nvlink = hw::Nvlink2x3();
  inflated_nvlink.seq_bw = GiBPerSecond(100.0);
  (void)topo.AddLink(0, 1, hw::Xbus());
  (void)topo.AddLink(0, 2, inflated_nvlink);

  profile.topology = std::move(topo);
  return profile;
}

hw::SystemProfile BrokenMeshFixtureProfile() {
  hw::SystemProfile profile = hw::HostBounceMeshProfile(4);
  profile.name = "broken-mesh-fixture";

  // Rebuild the mesh but leave the last GPU unlinked: a connectivity and
  // mesh.peer-path violation. The third GPU's host link also claims more
  // measured than electrical bandwidth.
  hw::Topology topo;
  const hw::DeviceId cpu =
      topo.AddDevice(hw::Power9(), hw::Power9Memory(), hw::Power9L3());
  hw::LinkSpec inflated = hw::Nvlink2x3();
  inflated.seq_bw = inflated.electrical_bw * 2.0;
  for (int g = 0; g < 4; ++g) {
    const hw::DeviceId gpu =
        topo.AddDevice(hw::TeslaV100(), hw::V100Hbm2(), hw::V100L2());
    if (g == 3) continue;  // Orphaned GPU.
    (void)topo.AddLink(cpu, gpu, g == 2 ? inflated : hw::Nvlink2x3());
  }
  profile.topology = std::move(topo);
  return profile;
}

}  // namespace pump::check
