#include "sim/lru.h"

namespace pump::sim {

bool LruCacheSim::Access(std::uint64_t key) {
  ++accesses_;
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (capacity_ == 0) return false;
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_[key] = order_.begin();
  return false;
}

}  // namespace pump::sim
