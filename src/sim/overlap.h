#ifndef PUMP_SIM_OVERLAP_H_
#define PUMP_SIM_OVERLAP_H_

#include <cmath>
#include <initializer_list>

#include "common/units.h"

namespace pump::sim {

/// Combines the times of concurrently progressing resource demands (e.g.
/// streaming the probe relation while performing hash-table lookups) into a
/// single phase time using a p-norm:
///   T = (sum_i t_i^p)^(1/p)
/// p = 1 means no overlap (serial), p -> infinity means perfect overlap
/// (max). Real devices land in between; the exponents below are calibrated
/// against the paper's end-to-end join numbers.
double OverlapTime(std::initializer_list<double> components, double p);

/// Typed variant for duration components.
Seconds OverlapTime(std::initializer_list<Seconds> components, double p);

/// GPUs overlap streaming, random access, and compute aggressively via warp
/// scheduling; close to max() with a small contention bump.
inline constexpr double kGpuOverlapExponent = 4.0;

/// CPU cores overlap less: out-of-order windows cover some of the probe
/// latency but stalls serialize a larger fraction.
inline constexpr double kCpuOverlapExponent = 2.0;

}  // namespace pump::sim

#endif  // PUMP_SIM_OVERLAP_H_
