#include "sim/cache_model.h"

#include <algorithm>
#include <cmath>

namespace pump::sim {
namespace {

// Threshold below which H_{n,s} is summed exactly.
constexpr std::uint64_t kExactLimit = 1u << 20;

// Integral tail: sum_{k=a..n} k^{-s} ~ integral_{a-0.5}^{n+0.5} x^{-s} dx.
double IntegralTail(double a, double n, double s) {
  const double lo = a - 0.5;
  const double hi = n + 0.5;
  if (std::abs(s - 1.0) < 1e-12) return std::log(hi / lo);
  return (std::pow(hi, 1.0 - s) - std::pow(lo, 1.0 - s)) / (1.0 - s);
}

}  // namespace

double GeneralizedHarmonic(std::uint64_t n, double s) {
  if (n == 0) return 0.0;
  const std::uint64_t exact_n = std::min(n, kExactLimit);
  double sum = 0.0;
  for (std::uint64_t k = 1; k <= exact_n; ++k) {
    sum += std::pow(static_cast<double>(k), -s);
  }
  if (n > exact_n) {
    sum += IntegralTail(static_cast<double>(exact_n + 1),
                        static_cast<double>(n), s);
  }
  return sum;
}

double UniformHitRate(std::uint64_t entries, std::uint64_t cache_entries) {
  if (entries == 0) return 1.0;
  if (cache_entries >= entries) return 1.0;
  return static_cast<double>(cache_entries) / static_cast<double>(entries);
}

double ZipfHitRate(std::uint64_t entries, std::uint64_t cache_entries,
                   double zipf_exponent) {
  if (entries == 0) return 1.0;
  if (zipf_exponent <= 0.0) return UniformHitRate(entries, cache_entries);
  if (cache_entries >= entries) return 1.0;
  const double hot = GeneralizedHarmonic(cache_entries, zipf_exponent);
  const double all = GeneralizedHarmonic(entries, zipf_exponent);
  return all <= 0.0 ? 1.0 : hot / all;
}

double BlendedAccessRate(double hit_rate, double cache_rate,
                         double miss_rate) {
  hit_rate = std::clamp(hit_rate, 0.0, 1.0);
  const double hit_cost = hit_rate / cache_rate;
  const double miss_cost = (1.0 - hit_rate) / miss_rate;
  return 1.0 / (hit_cost + miss_cost);
}

std::uint64_t CacheResidentEntries(const hw::CacheSpec& cache,
                                   std::uint64_t entry_bytes) {
  if (entry_bytes == 0) return 0;
  const double entries_per_line = std::max(
      1.0, cache.line_bytes / Bytes(static_cast<double>(entry_bytes)));
  const double lines = cache.capacity / cache.line_bytes;
  return static_cast<std::uint64_t>(lines * entries_per_line);
}

}  // namespace pump::sim
