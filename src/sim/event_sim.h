#ifndef PUMP_SIM_EVENT_SIM_H_
#define PUMP_SIM_EVENT_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "transfer/pipeline.h"

namespace pump::sim {

/// A discrete-event simulation of a chunked, in-order software pipeline:
/// chunk c may start stage s only after (a) chunk c finished stage s-1
/// and (b) chunk c-1 finished stage s. This is the exact schedule the
/// push-based transfer methods execute (Sec. 4.1); the closed-form
/// PipelineMakespan is its analytic shortcut, and the test suite checks
/// they agree.
class PipelineEventSimulator {
 public:
  /// Per-chunk completion times of the final stage.
  struct Timeline {
    std::vector<double> chunk_completion_s;
    double makespan_s = 0.0;
  };

  /// Simulates `total_bytes` flowing through `stages` in `chunk_bytes`
  /// chunks (the final chunk may be smaller).
  Timeline Simulate(const std::vector<transfer::PipelineStage>& stages,
                    double total_bytes, double chunk_bytes) const;
};

/// Event-driven simulation of one join phase with two contended
/// resources: the ingest path (streams chunk payloads) and the hash-table
/// path (serves the chunk's lookups). The device overlaps both across
/// chunks; within a chunk, lookups wait for the chunk's data. An
/// independent check of the overlap-norm approximation used by the
/// closed-form join model.
struct JoinPhaseSim {
  /// Ingest bandwidth, bytes/s.
  double ingest_bw = 0.0;
  /// Hash-table access rate, accesses/s.
  double ht_rate = 0.0;
  /// Tuples per chunk (morsel batch granularity).
  double chunk_tuples = 1 << 20;

  /// Simulates processing `tuples` of `tuple_bytes` each, with
  /// `accesses_per_tuple` hash-table accesses; returns the makespan.
  double Simulate(double tuples, double tuple_bytes,
                  double accesses_per_tuple = 1.0) const;
};

}  // namespace pump::sim

#endif  // PUMP_SIM_EVENT_SIM_H_
