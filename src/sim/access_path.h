#ifndef PUMP_SIM_ACCESS_PATH_H_
#define PUMP_SIM_ACCESS_PATH_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "hw/topology.h"

namespace pump::sim {

/// The resolved performance properties of one device reading/writing one
/// memory node over the routed interconnect path. This is the core
/// abstraction of the hardware model: every operator cost model consumes
/// AccessPaths, never raw link specs.
///
/// Derivation (Sec. 3 methodology):
///  * latency      = destination memory latency + sum of hop latencies
///  * seq_bw       = min(memory seq bw, per-link seq bw,
///                       device outstanding bytes / latency)      [Little]
///  * random rate  = min(memory rate, per-link rates,
///                       device outstanding requests / latency)   [Little]
/// The Little's-law terms make CPUs slow over high-latency paths while GPUs
/// stay link-bound, matching the paper's observation that CPUs cope worse
/// with interconnect latency than GPUs (Sec. 6.2).
struct AccessPath {
  hw::DeviceId device = hw::kInvalidDevice;
  hw::MemoryNodeId memory = hw::kInvalidMemoryNode;

  /// Interconnect hops between device and memory (0 = local).
  std::size_t hops = 0;
  /// End-to-end access latency.
  Seconds latency;
  /// Achievable sequential bandwidth.
  BytesPerSecond seq_bw;
  /// Achievable independent random access rate at line granularity
  /// (anchored to the paper's 4-byte random-read figures).
  PerSecond random_access_rate;
  /// Random access rate derated by the device's dependency factor; use for
  /// dependent (pointer-chasing / hash-probe) access chains.
  PerSecond dependent_access_rate;
  /// True iff the whole path is cache-coherent (pageable access possible).
  bool cache_coherent = false;
  /// Access granularity (line size of the widest hop).
  Bytes granularity = Bytes(128.0);

  /// Time to stream `bytes` sequentially.
  Seconds SequentialTime(Bytes bytes) const { return bytes / seq_bw; }
  /// Time to perform `accesses` independent random accesses.
  Seconds RandomTime(double accesses) const {
    return accesses / random_access_rate;
  }
  /// Time to perform `accesses` dependent random accesses.
  Seconds DependentRandomTime(double accesses) const {
    return accesses / dependent_access_rate;
  }

  /// Human-readable summary for debug output.
  std::string ToString() const;
};

/// Resolves the access path from `device` to `memory` in `topology`.
/// Returns NotFound when the devices are not connected.
Result<AccessPath> ResolveAccessPath(const hw::Topology& topology,
                                     hw::DeviceId device,
                                     hw::MemoryNodeId memory);

/// Resolves the path and aborts on error; for contexts where the topology
/// is known to be connected (canned systems).
AccessPath MustResolve(const hw::Topology& topology, hw::DeviceId device,
                       hw::MemoryNodeId memory);

}  // namespace pump::sim

#endif  // PUMP_SIM_ACCESS_PATH_H_
