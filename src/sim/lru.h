#ifndef PUMP_SIM_LRU_H_
#define PUMP_SIM_LRU_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace pump::sim {

/// A functional LRU cache simulator over integer keys, used to validate
/// the analytic cache-hit models (UniformHitRate / ZipfHitRate) against
/// an actual replacement policy: under a stationary Zipf stream, LRU's
/// steady-state hit rate converges to the hottest-k analytic rate.
class LruCacheSim {
 public:
  /// Creates a cache holding at most `capacity` distinct keys.
  explicit LruCacheSim(std::size_t capacity) : capacity_(capacity) {}

  /// Simulates one access; returns true on a hit. Misses insert the key
  /// and evict the least-recently-used one when full.
  bool Access(std::uint64_t key);

  /// Accesses seen so far.
  std::uint64_t accesses() const { return accesses_; }
  /// Hits seen so far.
  std::uint64_t hits() const { return hits_; }
  /// Hit rate over all accesses so far (0 when empty).
  double HitRate() const {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(accesses_);
  }
  /// Resets the statistics but keeps the cache contents (to measure the
  /// steady state after a warm-up phase).
  void ResetStats() {
    accesses_ = 0;
    hits_ = 0;
  }
  /// Number of resident keys.
  std::size_t Size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;  // Front = most recent.
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace pump::sim

#endif  // PUMP_SIM_LRU_H_
