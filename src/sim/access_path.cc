#include "sim/access_path.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/units.h"

namespace pump::sim {

Result<AccessPath> ResolveAccessPath(const hw::Topology& topology,
                                     hw::DeviceId device,
                                     hw::MemoryNodeId memory) {
  PUMP_ASSIGN_OR_RETURN(hw::Route route,
                        topology.FindRoute(device, memory));

  const hw::DeviceSpec& dev = topology.device(device);
  const hw::MemorySpec& mem = topology.memory(memory);

  AccessPath path;
  path.device = device;
  path.memory = memory;
  path.hops = route.hops();
  path.cache_coherent = true;
  path.granularity = mem.line_bytes;

  Seconds latency = mem.latency;
  BytesPerSecond seq_bw = mem.seq_bw;
  PerSecond random_rate = mem.random_access_rate;
  bool first_hop = true;
  for (std::size_t e : route.edge_indices) {
    const hw::LinkSpec& link = topology.edges()[e].link;
    latency += link.hop_latency;
    seq_bw = std::min(seq_bw, link.seq_bw);
    random_rate = std::min(random_rate, link.random_access_rate);
    if (!first_hop) {
      // Store-and-forward re-encapsulation: each additional hop repacks
      // the payload into the next link's packets, paying that link's
      // header overhead again. (The measured single-hop rates already
      // include their own overhead.)
      seq_bw *= link.BulkEfficiency();
      random_rate *= link.BulkEfficiency();
    }
    first_hop = false;
    path.cache_coherent = path.cache_coherent && link.cache_coherent;
    path.granularity = std::max(path.granularity, link.access_granularity);
  }

  // Little's-law device-side bounds: a latency-sensitive device cannot keep
  // enough traffic in flight to saturate a long path.
  seq_bw = std::min(seq_bw, dev.max_outstanding / latency);
  random_rate =
      std::min(random_rate, dev.max_outstanding_requests / latency);

  path.latency = latency;
  path.seq_bw = seq_bw;
  path.random_access_rate = random_rate;
  path.dependent_access_rate = random_rate * dev.random_dependency_factor;
  return path;
}

AccessPath MustResolve(const hw::Topology& topology, hw::DeviceId device,
                       hw::MemoryNodeId memory) {
  Result<AccessPath> path = ResolveAccessPath(topology, device, memory);
  if (!path.ok()) std::abort();
  return std::move(path).value();
}

std::string AccessPath::ToString() const {
  std::ostringstream os;
  os << "AccessPath(device=" << device << ", memory=" << memory
     << ", hops=" << hops << ", latency=" << latency.nanos()
     << "ns, seq=" << seq_bw.gib_per_second()
     << "GiB/s, rand=" << random_access_rate.giga_per_second()
     << "G/s, coherent=" << (cache_coherent ? "yes" : "no") << ")";
  return os.str();
}

}  // namespace pump::sim
