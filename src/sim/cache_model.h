#ifndef PUMP_SIM_CACHE_MODEL_H_
#define PUMP_SIM_CACHE_MODEL_H_

#include <cstdint>

#include "hw/memory_spec.h"

namespace pump::sim {

/// Generalized harmonic number H_{n,s} = sum_{k=1..n} k^{-s}.
/// Exact summation for small n; Euler-Maclaurin integral tail for large n,
/// accurate to well under 0.1% for the cardinalities used here (up to 2^31).
double GeneralizedHarmonic(std::uint64_t n, double s);

/// Analytic cache hit rate for a working set of `entries` fixed-size items
/// accessed uniformly at random, with a cache holding `cache_entries` items:
/// simply the resident fraction.
double UniformHitRate(std::uint64_t entries, std::uint64_t cache_entries);

/// Analytic hit rate for Zipf(s)-distributed accesses over `entries` items
/// when the cache retains the `cache_entries` hottest items:
///   hit = H_{min(n,c), s} / H_{n, s}.
/// This models the skew experiment (Fig. 19): with exponent 1.5 there is a
/// 97.5% chance of hitting one of the top-1000 tuples (Sec. 7.2.8).
double ZipfHitRate(std::uint64_t entries, std::uint64_t cache_entries,
                   double zipf_exponent);

/// Effective random-access rate when a fraction `hit_rate` of accesses hits
/// a cache with rate `cache_rate` and the rest go to memory at `miss_rate`:
/// harmonic interleaving 1 / (h/r_c + (1-h)/r_m).
double BlendedAccessRate(double hit_rate, double cache_rate,
                         double miss_rate);

/// Convenience: the number of cache-resident entries for a table of
/// `entry_bytes`-sized entries in `cache` (line-granular, conservative).
std::uint64_t CacheResidentEntries(const hw::CacheSpec& cache,
                                   std::uint64_t entry_bytes);

}  // namespace pump::sim

#endif  // PUMP_SIM_CACHE_MODEL_H_
