#include "sim/overlap.h"

#include <algorithm>

namespace pump::sim {

double OverlapTime(std::initializer_list<double> components, double p) {
  double max_t = 0.0;
  for (double t : components) max_t = std::max(max_t, t);
  if (max_t <= 0.0) return 0.0;
  // Normalize by the max for numeric stability before exponentiation.
  double sum = 0.0;
  for (double t : components) {
    if (t > 0.0) sum += std::pow(t / max_t, p);
  }
  return max_t * std::pow(sum, 1.0 / p);
}

Seconds OverlapTime(std::initializer_list<Seconds> components, double p) {
  double max_t = 0.0;
  for (Seconds t : components) max_t = std::max(max_t, t.seconds());
  if (max_t <= 0.0) return Seconds(0.0);
  double sum = 0.0;
  for (Seconds t : components) {
    if (t.seconds() > 0.0) sum += std::pow(t.seconds() / max_t, p);
  }
  return Seconds(max_t * std::pow(sum, 1.0 / p));
}

}  // namespace pump::sim
