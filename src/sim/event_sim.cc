#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>

namespace pump::sim {

PipelineEventSimulator::Timeline PipelineEventSimulator::Simulate(
    const std::vector<transfer::PipelineStage>& stages, double total_bytes,
    double chunk_bytes) const {
  Timeline timeline;
  if (total_bytes <= 0.0 || stages.empty() || chunk_bytes <= 0.0) {
    return timeline;
  }
  const auto chunks =
      static_cast<std::size_t>(std::ceil(total_bytes / chunk_bytes));
  timeline.chunk_completion_s.resize(chunks, 0.0);

  // stage_free[s]: when stage s finished its previous chunk.
  std::vector<double> stage_free(stages.size(), 0.0);
  double remaining = total_bytes;
  for (std::size_t c = 0; c < chunks; ++c) {
    const double bytes = std::min(chunk_bytes, remaining);
    remaining -= bytes;
    double ready = 0.0;  // When this chunk finished the previous stage.
    for (std::size_t s = 0; s < stages.size(); ++s) {
      const double start = std::max(ready, stage_free[s]);
      const double finish =
          start + stages[s].ChunkTime(Bytes(bytes)).seconds();
      stage_free[s] = finish;
      ready = finish;
    }
    timeline.chunk_completion_s[c] = ready;
  }
  timeline.makespan_s = timeline.chunk_completion_s.back();
  return timeline;
}

double JoinPhaseSim::Simulate(double tuples, double tuple_bytes,
                              double accesses_per_tuple) const {
  if (tuples <= 0.0 || ingest_bw <= 0.0 || ht_rate <= 0.0) return 0.0;
  const auto chunks = static_cast<std::size_t>(
      std::ceil(tuples / std::max(1.0, chunk_tuples)));
  double ingest_free = 0.0;
  double ht_free = 0.0;
  double remaining = tuples;
  double finish = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const double t = std::min(chunk_tuples, remaining);
    remaining -= t;
    // Stream this chunk's payload.
    const double data_done = ingest_free + t * tuple_bytes / ingest_bw;
    ingest_free = data_done;
    // Lookups for the chunk begin once its data landed and the table path
    // is free.
    const double lookups_start = std::max(data_done, ht_free);
    finish = lookups_start + t * accesses_per_tuple / ht_rate;
    ht_free = finish;
  }
  return finish;
}

}  // namespace pump::sim
