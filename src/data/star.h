#ifndef PUMP_DATA_STAR_H_
#define PUMP_DATA_STAR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "data/relation.h"

namespace pump::data {

/// A star schema: one fact table with a foreign-key column per dimension
/// plus a measure column, and one dimension relation per key column. This
/// is the multi-way join workload the paper sketches as the extension of
/// its co-processing strategy ("e.g., for a star schema", Sec. 6.2).
struct StarSchema {
  /// dimension[i] is a dense-key relation of size dims[i].
  std::vector<Relation64> dimensions;
  /// fact_keys[i][row] is the row's foreign key into dimension i.
  std::vector<std::vector<std::int64_t>> fact_keys;
  /// One measure value per fact row.
  std::vector<std::int64_t> measures;

  /// Number of fact rows.
  std::size_t fact_rows() const { return measures.size(); }
  /// Number of dimensions.
  std::size_t dimension_count() const { return dimensions.size(); }
};

/// Generates a star schema with the given dimension cardinalities and
/// `fact_rows` fact rows; every fact key has exactly one match in its
/// dimension (uniform distribution), measures are small integers.
inline StarSchema GenerateStarSchema(
    const std::vector<std::size_t>& dimension_sizes, std::size_t fact_rows,
    std::uint64_t seed) {
  StarSchema schema;
  Rng rng(seed);
  for (std::size_t d = 0; d < dimension_sizes.size(); ++d) {
    schema.dimensions.push_back(GenerateInner<std::int64_t, std::int64_t>(
        dimension_sizes[d], seed + 17 * (d + 1)));
    std::vector<std::int64_t> keys(fact_rows);
    for (std::size_t i = 0; i < fact_rows; ++i) {
      keys[i] =
          static_cast<std::int64_t>(rng.NextBounded(dimension_sizes[d]));
    }
    schema.fact_keys.push_back(std::move(keys));
  }
  schema.measures.resize(fact_rows);
  for (std::size_t i = 0; i < fact_rows; ++i) {
    schema.measures[i] = static_cast<std::int64_t>(rng.NextBounded(100));
  }
  return schema;
}

}  // namespace pump::data

#endif  // PUMP_DATA_STAR_H_
