#include "data/workloads.h"

#include <algorithm>
#include <cmath>

// GCC 12 emits a spurious -Wrestrict for short string-literal assignments
// inlined from libstdc++ (gcc.gnu.org/PR105329); the workload name
// assignments below trip it under -O2 -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace pump::data {

WorkloadSpec WorkloadA() {
  WorkloadSpec spec;
  spec.name = "A";
  spec.key_bytes = 8;
  spec.payload_bytes = 8;
  spec.r_tuples = 1ull << 27;
  spec.s_tuples = 1ull << 31;
  return spec;
}

WorkloadSpec WorkloadB() {
  WorkloadSpec spec = WorkloadA();
  spec.name = "B";
  spec.r_tuples = 1ull << 18;
  return spec;
}

WorkloadSpec WorkloadC() {
  WorkloadSpec spec;
  spec.name = "C";
  spec.key_bytes = 4;
  spec.payload_bytes = 4;
  spec.r_tuples = 1024ull * 1000 * 1000;
  spec.s_tuples = 1024ull * 1000 * 1000;
  return spec;
}

WorkloadSpec WorkloadC16(std::uint64_t r_tuples, std::uint64_t s_tuples) {
  WorkloadSpec spec;
  spec.name = "C16";
  spec.key_bytes = 8;
  spec.payload_bytes = 8;
  spec.r_tuples = r_tuples;
  spec.s_tuples = s_tuples;
  return spec;
}

WorkloadSpec ScaleToBytes(const WorkloadSpec& spec,
                          std::uint64_t target_total_bytes) {
  const double factor = static_cast<double>(target_total_bytes) /
                        static_cast<double>(spec.total_bytes());
  return ScaleCardinalities(spec, factor);
}

WorkloadSpec ScaleCardinalities(const WorkloadSpec& spec, double factor) {
  WorkloadSpec scaled = spec;
  scaled.name = spec.name + " (scaled)";
  scaled.r_tuples = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(static_cast<double>(spec.r_tuples) * factor)));
  scaled.s_tuples = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(static_cast<double>(spec.s_tuples) * factor)));
  return scaled;
}

}  // namespace pump::data
