#ifndef PUMP_DATA_WORKLOADS_H_
#define PUMP_DATA_WORKLOADS_H_

#include <cstdint>
#include <string>

namespace pump::data {

/// A join workload description (paper Table 2): cardinalities and tuple
/// widths of the inner relation R and outer relation S, plus the skew and
/// selectivity knobs of Sec. 7.2.8/7.2.9. The spec drives both the cost
/// models (at paper scale) and the functional generators (at host scale).
struct WorkloadSpec {
  std::string name;
  std::uint64_t key_bytes = 8;
  std::uint64_t payload_bytes = 8;
  std::uint64_t r_tuples = 0;
  std::uint64_t s_tuples = 0;
  /// Zipf exponent of the probe-key distribution; 0 = uniform.
  double zipf_exponent = 0.0;
  /// Fraction of S tuples that find a match in R.
  double selectivity = 1.0;

  /// Bytes per tuple (both columns).
  std::uint64_t tuple_bytes() const { return key_bytes + payload_bytes; }
  /// Total bytes of R.
  std::uint64_t r_bytes() const { return r_tuples * tuple_bytes(); }
  /// Total bytes of S.
  std::uint64_t s_bytes() const { return s_tuples * tuple_bytes(); }
  /// Total input bytes.
  std::uint64_t total_bytes() const { return r_bytes() + s_bytes(); }
  /// Bytes of the perfect-hash table over R: one <key, payload> entry per
  /// R tuple at load factor 1 (Sec. 7.1; Fig. 17 reaches 2x GPU memory
  /// with 2048 M tuples x 16 B).
  std::uint64_t hash_table_bytes() const { return r_tuples * tuple_bytes(); }
  /// Total tuples processed; the numerator of the paper's throughput
  /// metric |R|+|S| / runtime (Sec. 7.1).
  std::uint64_t total_tuples() const { return r_tuples + s_tuples; }
};

/// Workload A (Table 2, from Blanas et al. [10], scaled 8x): 2^27 x 2^31
/// tuples of 8/8 bytes — 2 GiB joined with 32 GiB.
WorkloadSpec WorkloadA();

/// Workload B (Table 2): workload A with R shrunk to 2^18 tuples (4 MiB)
/// so the hash table fits the CPU L3 and GPU L2 caches.
WorkloadSpec WorkloadB();

/// Workload C (Table 2, from Kim et al. [54], scaled 8x): 1024 x 10^6
/// tuples on both sides, 4/4-byte tuples — 7.6 GiB each.
WorkloadSpec WorkloadC();

/// Workload C with 16-byte tuples, as used by the probe/build scaling and
/// ratio experiments (Sec. 7.2.5-7.2.7).
WorkloadSpec WorkloadC16(std::uint64_t r_tuples, std::uint64_t s_tuples);

/// Proportionally rescales both relations so the total input size becomes
/// `target_total_bytes` (Fig. 13 scales A/B/C down to 13/12/10 GiB to fit
/// GPU memory).
WorkloadSpec ScaleToBytes(const WorkloadSpec& spec,
                          std::uint64_t target_total_bytes);

/// Rescales cardinalities by `factor` (functional host-scale runs).
WorkloadSpec ScaleCardinalities(const WorkloadSpec& spec, double factor);

}  // namespace pump::data

#endif  // PUMP_DATA_WORKLOADS_H_
