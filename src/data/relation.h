#ifndef PUMP_DATA_RELATION_H_
#define PUMP_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/memory_spec.h"
#include "memory/buffer.h"

namespace pump::data {

/// A column-oriented relation of narrow <key, payload> tuples, the storage
/// model of the paper's workloads (Sec. 7.1). K and V are the key and
/// payload types; the paper uses 8/8-byte tuples (workloads A, B) and
/// 4/4-byte tuples (workload C).
template <typename K, typename V>
struct Relation {
  std::vector<K> keys;
  std::vector<V> payloads;

  /// Modelled placement of the columns (which memory node holds them).
  /// Functional execution always reads the host vectors; the cost models
  /// read this node id.
  hw::MemoryNodeId location = hw::kInvalidMemoryNode;
  /// Modelled memory kind; decides which transfer methods apply (Table 1).
  memory::MemoryKind memory_kind = memory::MemoryKind::kPageable;

  /// Number of tuples.
  std::size_t size() const { return keys.size(); }
  /// True when the relation holds no tuples.
  bool empty() const { return keys.empty(); }
  /// Bytes per tuple (both columns).
  static constexpr std::size_t tuple_bytes() { return sizeof(K) + sizeof(V); }
  /// Total bytes across both columns.
  std::size_t total_bytes() const { return size() * tuple_bytes(); }

  /// Reserves storage for `n` tuples.
  void Reserve(std::size_t n) {
    keys.reserve(n);
    payloads.reserve(n);
  }
  /// Appends one tuple.
  void Append(K key, V payload) {
    keys.push_back(key);
    payloads.push_back(payload);
  }
};

/// 8-byte key / 8-byte payload relation (workloads A and B).
using Relation64 = Relation<std::int64_t, std::int64_t>;
/// 4-byte key / 4-byte payload relation (workload C).
using Relation32 = Relation<std::int32_t, std::int32_t>;

}  // namespace pump::data

#endif  // PUMP_DATA_RELATION_H_
