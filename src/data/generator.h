#ifndef PUMP_DATA_GENERATOR_H_
#define PUMP_DATA_GENERATOR_H_

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "data/relation.h"
#include "data/zipf.h"

namespace pump::data {

/// Payloads are derived from keys by this offset so that join results can
/// be validated arithmetically (payload == key + kPayloadOffset).
inline constexpr std::int64_t kPayloadOffset = 1;

/// Generates the inner (build-side) relation R: `n` tuples with unique,
/// dense keys [0, n) in shuffled order, uniform distribution (Sec. 7.1).
/// Dense primary keys are what the paper's perfect hashing relies on.
template <typename K, typename V>
Relation<K, V> GenerateInner(std::size_t n, std::uint64_t seed) {
  Relation<K, V> relation;
  relation.keys.resize(n);
  relation.payloads.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    relation.keys[i] = static_cast<K>(i);
  }
  // Fisher-Yates shuffle with the deterministic RNG.
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    std::swap(relation.keys[i - 1], relation.keys[j]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    relation.payloads[i] =
        static_cast<V>(relation.keys[i] + static_cast<K>(kPayloadOffset));
  }
  return relation;
}

/// Generates the outer (probe-side) relation S: `m` foreign keys uniform
/// over [0, n), so every S tuple has exactly one match in R (Sec. 7.1).
template <typename K, typename V>
Relation<K, V> GenerateOuterUniform(std::size_t m, std::size_t n,
                                    std::uint64_t seed) {
  Relation<K, V> relation;
  relation.keys.resize(m);
  relation.payloads.resize(m);
  Rng rng(seed);
  for (std::size_t i = 0; i < m; ++i) {
    const K key = static_cast<K>(rng.NextBounded(n));
    relation.keys[i] = key;
    relation.payloads[i] = static_cast<V>(i);
  }
  return relation;
}

/// Generates a Zipf-skewed outer relation (Fig. 19): foreign keys follow
/// Zipf(`exponent`) over the key domain [0, n); rank 1 maps to key 0.
template <typename K, typename V>
Relation<K, V> GenerateOuterZipf(std::size_t m, std::size_t n,
                                 double exponent, std::uint64_t seed) {
  Relation<K, V> relation;
  relation.keys.resize(m);
  relation.payloads.resize(m);
  Rng rng(seed);
  ZipfGenerator zipf(n, exponent);
  for (std::size_t i = 0; i < m; ++i) {
    relation.keys[i] = static_cast<K>(zipf.Next(rng) - 1);
    relation.payloads[i] = static_cast<V>(i);
  }
  return relation;
}

/// Generates an outer relation where only a `selectivity` fraction of
/// tuples match R (Fig. 20): matching tuples draw keys from [0, n),
/// non-matching ones from [n, 2n), which R never contains.
template <typename K, typename V>
Relation<K, V> GenerateOuterSelective(std::size_t m, std::size_t n,
                                      double selectivity,
                                      std::uint64_t seed) {
  Relation<K, V> relation;
  relation.keys.resize(m);
  relation.payloads.resize(m);
  Rng rng(seed);
  for (std::size_t i = 0; i < m; ++i) {
    const bool match = rng.NextDouble() < selectivity;
    const std::uint64_t base = match ? 0 : n;
    relation.keys[i] = static_cast<K>(base + rng.NextBounded(n));
    relation.payloads[i] = static_cast<V>(i);
  }
  return relation;
}

}  // namespace pump::data

#endif  // PUMP_DATA_GENERATOR_H_
