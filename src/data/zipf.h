#ifndef PUMP_DATA_ZIPF_H_
#define PUMP_DATA_ZIPF_H_

#include <cstdint>

#include "common/rng.h"

namespace pump::data {

/// Samples ranks in [1, n] from a Zipf distribution with exponent s using
/// rejection-inversion (Hörmann & Derflinger). O(1) per sample without
/// precomputed tables, so it scales to the paper's 2^31-tuple relations.
/// s = 0 degenerates to the uniform distribution. Used for the skew
/// experiment (Fig. 19, exponents 0 to 1.75).
class ZipfGenerator {
 public:
  /// Creates a generator over [1, n] with exponent `s` (>= 0).
  ZipfGenerator(std::uint64_t n, double s);

  /// Draws one rank in [1, n]; rank 1 is the hottest item.
  std::uint64_t Next(Rng& rng) const;

  /// Number of distinct items.
  std::uint64_t n() const { return n_; }
  /// Zipf exponent.
  double exponent() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace pump::data

#endif  // PUMP_DATA_ZIPF_H_
