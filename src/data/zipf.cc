#include "data/zipf.h"

#include <algorithm>
#include <cmath>

namespace pump::data {

namespace {
constexpr double kOneEps = 1e-9;  // |s - 1| below this uses the log branch.
}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double s)
    : n_(n == 0 ? 1 : n), s_(std::max(0.0, s)) {
  h_x1_ = H(0.5);
  h_n_ = H(static_cast<double>(n_) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfGenerator::H(double x) const {
  // Antiderivative of x^{-s}.
  if (std::abs(s_ - 1.0) < kOneEps) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfGenerator::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < kOneEps) return std::exp(x);
  return std::pow(x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfGenerator::Next(Rng& rng) const {
  // Rejection-inversion (Hörmann & Derflinger 1996): invert the integral
  // of the density hull, then accept/reject against the true pmf.
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(
        std::clamp(std::round(x), 1.0, static_cast<double>(n_)));
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_) return k;
    if (u >= H(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

}  // namespace pump::data
