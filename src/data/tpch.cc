#include "data/tpch.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace pump::data {

namespace {
// dbgen ships lineitems over 1992-01-02 .. 1998-12-01: ~2526 days.
constexpr std::int32_t kShipdateDays = 2526;
}  // namespace

LineitemQ6 GenerateLineitemQ6(std::size_t rows, std::uint64_t seed) {
  LineitemQ6 table;
  table.shipdate.resize(rows);
  table.quantity.resize(rows);
  table.discount.resize(rows);
  table.extendedprice.resize(rows);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    table.shipdate[i] = static_cast<std::int32_t>(
        rng.NextBounded(kShipdateDays));
    const auto quantity =
        static_cast<std::int32_t>(1 + rng.NextBounded(50));
    table.quantity[i] = quantity;
    table.discount[i] = static_cast<std::int32_t>(rng.NextBounded(11));
    // dbgen: extendedprice = quantity * part retail price; retail prices
    // land in roughly [90100, 210000) cents.
    const auto price_cents =
        static_cast<std::int64_t>(90100 + rng.NextBounded(119900));
    table.extendedprice[i] = quantity * price_cents;
  }
  return table;
}

void ClusterByShipdate(LineitemQ6* table) {
  std::vector<std::uint32_t> order(table->size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [table](std::uint32_t a, std::uint32_t b) {
              return table->shipdate[a] < table->shipdate[b];
            });
  LineitemQ6 sorted;
  sorted.shipdate.reserve(table->size());
  sorted.quantity.reserve(table->size());
  sorted.discount.reserve(table->size());
  sorted.extendedprice.reserve(table->size());
  for (std::uint32_t i : order) {
    sorted.shipdate.push_back(table->shipdate[i]);
    sorted.quantity.push_back(table->quantity[i]);
    sorted.discount.push_back(table->discount[i]);
    sorted.extendedprice.push_back(table->extendedprice[i]);
  }
  *table = std::move(sorted);
}

double Q6DateSelectivity() {
  return static_cast<double>(kQ6DateHi - kQ6DateLo) / kShipdateDays;
}

double Q6Selectivity() {
  const double date_sel = Q6DateSelectivity();
  const double discount_sel =
      static_cast<double>(kQ6DiscountHi - kQ6DiscountLo + 1) / 11.0;
  const double quantity_sel = static_cast<double>(kQ6QuantityLt - 1) / 50.0;
  return date_sel * discount_sel * quantity_sel;
}

}  // namespace pump::data
