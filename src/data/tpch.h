#ifndef PUMP_DATA_TPCH_H_
#define PUMP_DATA_TPCH_H_

#include <cstdint>
#include <vector>

namespace pump::data {

/// The lineitem columns TPC-H query 6 reads, column-oriented. Monetary
/// values are fixed-point cents, discounts are integer percent, dates are
/// days since 1992-01-01 — integer arithmetic end to end, the layout a
/// column store would use on a GPU.
struct LineitemQ6 {
  std::vector<std::int32_t> shipdate;       ///< Days since 1992-01-01.
  std::vector<std::int32_t> quantity;       ///< 1..50.
  std::vector<std::int32_t> discount;       ///< Percent, 0..10.
  std::vector<std::int64_t> extendedprice;  ///< Cents.

  /// Number of rows.
  std::size_t size() const { return shipdate.size(); }
  /// Bytes per row across the four columns.
  static constexpr std::size_t row_bytes() { return 4 + 4 + 4 + 8; }
};

/// TPC-H lineitem row count at scale factor 1.
inline constexpr std::uint64_t kLineitemRowsPerSf = 6'001'215;

/// Q6 date predicate bounds: l_shipdate >= 1994-01-01 and < 1995-01-01,
/// in days since 1992-01-01.
inline constexpr std::int32_t kQ6DateLo = 730;
inline constexpr std::int32_t kQ6DateHi = 1095;
/// Q6 discount predicate: between 0.05 and 0.07 (integer percent).
inline constexpr std::int32_t kQ6DiscountLo = 5;
inline constexpr std::int32_t kQ6DiscountHi = 7;
/// Q6 quantity predicate: < 24.
inline constexpr std::int32_t kQ6QuantityLt = 24;

/// Generates `rows` lineitem rows with TPC-H dbgen's marginal
/// distributions: shipdate uniform over ~7 years, quantity uniform 1..50,
/// discount uniform 0..10 %, extendedprice derived from quantity.
LineitemQ6 GenerateLineitemQ6(std::size_t rows, std::uint64_t seed);

/// Reorders all columns so rows are sorted by shipdate, the clustered
/// layout of a date-partitioned fact table. The branching Q6 variant
/// exploits this to skip contiguous column ranges (Sec. 7.2.4).
void ClusterByShipdate(LineitemQ6* table);

/// The combined selectivity of the Q6 predicate under the distributions
/// above (~1.9%; the paper quotes 1.3% for its generator, Sec. 7.2.4 —
/// both are "low selectivity" in the sense that branching can skip most
/// payload column reads).
double Q6Selectivity();

/// Selectivity of the first (shipdate) predicate alone; the branching
/// variant evaluates it before touching the other columns.
double Q6DateSelectivity();

}  // namespace pump::data

#endif  // PUMP_DATA_TPCH_H_
