#ifndef PUMP_GPUSIM_OCCUPANCY_H_
#define PUMP_GPUSIM_OCCUPANCY_H_

#include <cstdint>

#include "common/units.h"

namespace pump::gpusim {

/// Microarchitectural parameters of a GPU for the latency-hiding model.
/// Defaults describe the Tesla V100 ("Volta", Sec. 7.1, [73]).
struct GpuArch {
  int sm_count = 80;
  /// Resident warps per SM at full occupancy (2048 threads / 32).
  int max_warps_per_sm = 64;
  /// Threads per warp.
  int warp_size = 32;
  /// Outstanding global loads one warp can keep in flight before it
  /// stalls (limited by the LSU queue / scoreboard; ~2 dependent-free
  /// loads per thread slot group on Volta-class parts).
  double inflight_loads_per_warp = 2.0;
  /// Bytes fetched per global load transaction (one 32 B sector).
  double bytes_per_load = 32.0;
  /// Base kernel-launch latency.
  Seconds launch_latency = Seconds::Micros(10);
  /// SM clock in GHz.
  double clock_ghz = 1.53;
};

/// Resource demand of one kernel; occupancy = how many warps fit per SM.
struct KernelConfig {
  int threads_per_block = 256;
  int registers_per_thread = 32;
  std::uint64_t shared_memory_per_block = 0;
};

/// Volta-class per-SM resource limits.
struct SmLimits {
  int max_threads = 2048;
  int max_blocks = 32;
  std::uint64_t register_file = 65536;
  std::uint64_t shared_memory = 96 * 1024;
};

/// The occupancy and latency-hiding calculator: derives how much memory
/// traffic a kernel can keep in flight, which is what decides whether the
/// GPU saturates a high-latency interconnect (Sec. 3: "GPUs are designed
/// to handle such high-latency memory accesses").
class OccupancyModel {
 public:
  explicit OccupancyModel(const GpuArch& arch = GpuArch(),
                          const SmLimits& limits = SmLimits());

  /// Resident warps per SM for a kernel (min over thread / block /
  /// register / shared-memory limits), in [0, max_warps_per_sm].
  int WarpsPerSm(const KernelConfig& kernel) const;

  /// Aggregate outstanding load transactions across the whole device at
  /// the given occupancy.
  double OutstandingRequests(const KernelConfig& kernel) const;

  /// Aggregate outstanding bytes (requests x bytes per load).
  Bytes OutstandingBytes(const KernelConfig& kernel) const;

  /// Little's law: the bandwidth the device can sustain against a memory
  /// path with the given latency, at the given occupancy.
  BytesPerSecond AchievableBandwidth(const KernelConfig& kernel,
                                     Seconds latency) const;

  /// Little's law for line-granular random accesses: achievable access
  /// rate against a path with the given latency.
  PerSecond AchievableAccessRate(const KernelConfig& kernel,
                                 Seconds latency) const;

  /// Minimum occupancy (warps/SM) needed to saturate `bandwidth` at
  /// `latency` — the "how many warps does NVLink need" question.
  double WarpsNeededFor(BytesPerSecond bandwidth, Seconds latency) const;

  const GpuArch& arch() const { return arch_; }

 private:
  GpuArch arch_;
  SmLimits limits_;
};

/// Launch-overhead model: time to dispatch `batches` kernel launches of
/// work, amortized the way morsel batching does (Sec. 6.1).
Seconds LaunchOverhead(const GpuArch& arch, std::uint64_t launches);

}  // namespace pump::gpusim

#endif  // PUMP_GPUSIM_OCCUPANCY_H_
