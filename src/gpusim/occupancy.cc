#include "gpusim/occupancy.h"

#include <algorithm>
#include <cmath>

namespace pump::gpusim {

OccupancyModel::OccupancyModel(const GpuArch& arch, const SmLimits& limits)
    : arch_(arch), limits_(limits) {}

int OccupancyModel::WarpsPerSm(const KernelConfig& kernel) const {
  const int warps_per_block =
      (kernel.threads_per_block + arch_.warp_size - 1) / arch_.warp_size;
  if (warps_per_block == 0) return 0;

  // Thread limit.
  int blocks_by_threads = limits_.max_threads / kernel.threads_per_block;
  // Block slot limit.
  int blocks = std::min(blocks_by_threads, limits_.max_blocks);
  // Register file limit.
  const std::uint64_t regs_per_block =
      static_cast<std::uint64_t>(kernel.registers_per_thread) *
      kernel.threads_per_block;
  if (regs_per_block > 0) {
    blocks = std::min(
        blocks, static_cast<int>(limits_.register_file / regs_per_block));
  }
  // Shared memory limit.
  if (kernel.shared_memory_per_block > 0) {
    blocks = std::min(
        blocks, static_cast<int>(limits_.shared_memory /
                                 kernel.shared_memory_per_block));
  }
  blocks = std::max(blocks, 0);
  return std::min(blocks * warps_per_block, arch_.max_warps_per_sm);
}

double OccupancyModel::OutstandingRequests(const KernelConfig& kernel) const {
  const double warps = WarpsPerSm(kernel);
  // Each warp keeps inflight_loads_per_warp coalesced transactions per
  // thread group in flight; one warp-wide load issues warp_size/`threads
  // per transaction` transactions — conservatively one transaction per
  // thread quad (32 B sector / 8 B value = 4 threads).
  const double transactions_per_load = arch_.warp_size / 4.0;
  return warps * arch_.sm_count * arch_.inflight_loads_per_warp *
         transactions_per_load / 2.0;
}

Bytes OccupancyModel::OutstandingBytes(const KernelConfig& kernel) const {
  return Bytes(OutstandingRequests(kernel) * arch_.bytes_per_load);
}

BytesPerSecond OccupancyModel::AchievableBandwidth(const KernelConfig& kernel,
                                                   Seconds latency) const {
  if (latency <= Seconds(0.0)) return BytesPerSecond(0.0);
  return OutstandingBytes(kernel) / latency;
}

PerSecond OccupancyModel::AchievableAccessRate(const KernelConfig& kernel,
                                               Seconds latency) const {
  if (latency <= Seconds(0.0)) return PerSecond(0.0);
  return OutstandingRequests(kernel) / latency;
}

double OccupancyModel::WarpsNeededFor(BytesPerSecond bandwidth,
                                      Seconds latency) const {
  const Bytes bytes_needed = bandwidth * latency;
  const double transactions_per_load = arch_.warp_size / 4.0;
  const Bytes bytes_per_warp = Bytes(arch_.inflight_loads_per_warp *
                                     transactions_per_load / 2.0 *
                                     arch_.bytes_per_load * arch_.sm_count);
  if (bytes_per_warp <= Bytes(0.0)) return 0.0;
  return bytes_needed / bytes_per_warp;
}

Seconds LaunchOverhead(const GpuArch& arch, std::uint64_t launches) {
  return arch.launch_latency * static_cast<double>(launches);
}

}  // namespace pump::gpusim
