#ifndef PUMP_FAULT_FAULT_INJECTOR_H_
#define PUMP_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace pump::fault {

/// Canonical failpoint names. Library code queries these sites; tests and
/// benches arm them. Naming convention: `<layer>.<event>`.
inline constexpr const char kTransferChunk[] = "transfer.chunk";
inline constexpr const char kAllocDevice[] = "alloc.device";
inline constexpr const char kUmMigrate[] = "um.migrate";
inline constexpr const char kSchedWorkerStall[] = "sched.worker_stall";
inline constexpr const char kLinkDegrade[] = "link.degrade";
/// Fired per plan pipeline before its GPU-side stage launches. Scopes:
/// "build" for the build pipelines, "probe" for the probe pipeline. Lets
/// tests fail one pipeline of a plan and assert the others' results are
/// reused instead of recomputed.
inline constexpr const char kPlanPipeline[] = "plan.pipeline";
/// Fired by the server when a query is admitted into the session queue
/// (scope: the query's SQL-ish tag, empty by default). Lets soak tests
/// shed a deterministic subset of admissions without filling the queue.
inline constexpr const char kServerAdmission[] = "server.admission";
/// Fired by the server's scheduler right before a query starts
/// executing. A fired check cancels the query as if the client had
/// called QueryHandle::Cancel — deterministic cancellation pressure for
/// the soak suite.
inline constexpr const char kServerCancel[] = "server.cancel";

/// Configuration of one armed failpoint. The fault schedule is a pure
/// function of (injector seed, site, scope, hit index): replaying a run
/// with the same seed reproduces the identical schedule, which is what
/// makes injected-fault tests deterministic.
struct FaultSpec {
  /// Chance that an eligible hit fires, in [0, 1].
  double probability = 1.0;
  /// The first `after_hits` hits of every (site, scope) stream never fire
  /// (deterministic targeting: "fail the Nth chunk").
  std::uint64_t after_hits = 0;
  /// Total fires allowed across all scopes of the site; further hits pass.
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
  /// Status code of the injected error. kUnavailable faults are transient
  /// (retryable); anything else is a hard fault.
  StatusCode code = StatusCode::kUnavailable;
};

/// A deterministic, seeded fault injector with named failpoints.
///
/// Library code calls `Check(site)` at well-defined sites; when the site
/// is armed the call returns an injected error according to the armed
/// `FaultSpec`, otherwise OK. Each (site, scope) pair owns an independent
/// deterministic random stream so concurrent callers (e.g. scheduler
/// groups, one scope per group) observe schedules that do not depend on
/// thread interleaving.
///
/// Thread-safe; `Check` on an unarmed site is a single map lookup under a
/// mutex, so production code may leave injector pointers threaded through
/// hot paths as long as they are null in normal operation (null checks are
/// free).
class FaultInjector {
 public:
  /// Creates an injector whose entire schedule derives from `seed`.
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms) a failpoint. Re-arming resets the site's hit and
  /// fire counters and all of its scope streams.
  void Arm(const std::string& site, FaultSpec spec);

  /// Disarms a failpoint; subsequent checks pass.
  void Disarm(const std::string& site);

  /// Queries the failpoint: OK when unarmed or when this hit does not
  /// fire, otherwise the injected error. `scope` selects the
  /// deterministic stream (empty = the site's default stream).
  Status Check(const std::string& site, const std::string& scope = "");

  /// Times the site was checked while armed (across all scopes).
  std::uint64_t hits(const std::string& site) const;
  /// Times the site actually fired (across all scopes).
  std::uint64_t fires(const std::string& site) const;

 private:
  struct Stream {
    Rng rng;
    std::uint64_t hits = 0;
  };
  struct Site {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::map<std::string, Stream> streams;
  };

  std::uint64_t StreamSeed(const std::string& site,
                           const std::string& scope) const;

  mutable std::mutex mutex_;
  std::uint64_t seed_;
  std::map<std::string, Site> sites_;
};

}  // namespace pump::fault

#endif  // PUMP_FAULT_FAULT_INJECTOR_H_
