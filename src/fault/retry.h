#ifndef PUMP_FAULT_RETRY_H_
#define PUMP_FAULT_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/status.h"

namespace pump::fault {

/// Bounded-retry policy with deterministic exponential backoff and seeded
/// jitter. Backoff is *modelled* time (accumulated in the caller's stats),
/// never an actual sleep, matching the repo's functional/model split:
/// functional code stays fast and deterministic while the model layer can
/// charge the backoff against a simulated clock.
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Backoff before the first retry, seconds.
  double initial_backoff_s = 1e-6;
  /// Multiplier applied per retry (exponential backoff).
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff interval, seconds.
  double max_backoff_s = 1e-3;
  /// Jitter fraction in [0, 1]: the drawn backoff is uniform in
  /// [base*(1-jitter), base*(1+jitter)]. Seeded, hence reproducible.
  double jitter = 0.25;
  /// Seed of the jitter stream.
  std::uint64_t seed = 0;

  /// Modelled backoff before retry number `retry` (1-based), drawing
  /// jitter from `rng`. Deterministic given the rng state.
  double BackoffSeconds(int retry, Rng* rng) const;

  /// Returns a copy of this policy whose jitter seed is decorrelated by
  /// `salt` (SplitMix64-mixed, so nearby salts give independent
  /// streams). RunWithRetry seeds its jitter stream fresh from
  /// policy.seed on every invocation, so N concurrent queries sharing
  /// one policy would otherwise draw *identical* backoff sequences and
  /// retry in lockstep — a thundering herd against the faulted
  /// resource. The server salts with the query id: deterministic under
  /// a fixed engine seed, decorrelated across queries.
  RetryPolicy Salted(std::uint64_t salt) const;
};

/// Counters from one RunWithRetry invocation.
struct RetryStats {
  /// Attempts made (>= 1 once the op ran).
  std::uint64_t attempts = 0;
  /// Attempts after the first (== attempts - 1 when the op ran).
  std::uint64_t retries = 0;
  /// Total modelled backoff charged, seconds.
  double backoff_s = 0.0;
};

/// Runs `op` under `policy`: retries while the returned status is
/// retryable (`IsRetryable`) and attempts remain. Returns OK on success,
/// the first non-retryable error verbatim, or — when the budget is
/// exhausted on a retryable error — that last transient error (callers
/// typically wrap it with context, e.g. the failing transfer offset).
/// `stats`, when non-null, is updated (not reset) so a caller can
/// aggregate across many retried operations.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op,
                    RetryStats* stats = nullptr);

}  // namespace pump::fault

#endif  // PUMP_FAULT_RETRY_H_
