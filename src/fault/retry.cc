#include "fault/retry.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pump::fault {

double RetryPolicy::BackoffSeconds(int retry, Rng* rng) const {
  double base = initial_backoff_s;
  for (int i = 1; i < retry; ++i) base *= backoff_multiplier;
  base = std::min(base, max_backoff_s);
  if (jitter <= 0.0) return base;
  const double factor = 1.0 - jitter + 2.0 * jitter * rng->NextDouble();
  return base * factor;
}

RetryPolicy RetryPolicy::Salted(std::uint64_t salt) const {
  RetryPolicy salted = *this;
  salted.seed = SplitMix64(seed ^ SplitMix64(salt));
  return salted;
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, RetryStats* stats) {
  Rng rng(policy.seed);
  const int attempts = std::max(1, policy.max_attempts);
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (stats != nullptr) ++stats->attempts;
    last = op();
    if (last.ok() || !IsRetryable(last.code())) return last;
    if (attempt == attempts) break;
    static obs::Counter& retry_counter =
        obs::MetricsRegistry::Instance().GetCounter("fault.retries");
    retry_counter.Add();
    PUMP_TRACE_INSTANT(obs::TraceCategory::kFault, "fault.retry",
                       static_cast<double>(attempt));
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_s += policy.BackoffSeconds(attempt, &rng);
    } else {
      // Keep the jitter stream position independent of stats presence.
      (void)policy.BackoffSeconds(attempt, &rng);
    }
  }
  return last;
}

}  // namespace pump::fault
