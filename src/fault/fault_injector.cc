#include "fault/fault_injector.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pump::fault {

namespace {

struct FaultMetrics {
  obs::Counter& checks;
  obs::Counter& injections;
};

FaultMetrics& Metrics() {
  static FaultMetrics metrics{
      obs::MetricsRegistry::Instance().GetCounter("fault.checks"),
      obs::MetricsRegistry::Instance().GetCounter("fault.injections")};
  return metrics;
}

/// FNV-1a over a string, folded through SplitMix64: stable across
/// platforms so a (site, scope) stream replays identically everywhere.
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return SplitMix64(h);
}

}  // namespace

std::uint64_t FaultInjector::StreamSeed(const std::string& site,
                                        const std::string& scope) const {
  return SplitMix64(seed_ ^ HashName(site)) ^ HashName(scope);
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[site] = Site{spec, 0, 0, {}};
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
}

Status FaultInjector::Check(const std::string& site,
                            const std::string& scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  Site& armed = it->second;
  ++armed.hits;
  Metrics().checks.Add();

  auto stream_it = armed.streams.find(scope);
  if (stream_it == armed.streams.end()) {
    stream_it = armed.streams
                    .emplace(scope, Stream{Rng(StreamSeed(site, scope)), 0})
                    .first;
  }
  Stream& stream = stream_it->second;
  const std::uint64_t hit = stream.hits++;

  if (hit < armed.spec.after_hits) return Status::OK();
  if (armed.fires >= armed.spec.max_fires) return Status::OK();
  // Always draw, so the stream position depends only on the hit index —
  // not on how many faults fired before this hit.
  const double draw = stream.rng.NextDouble();
  if (draw >= armed.spec.probability) return Status::OK();
  ++armed.fires;
  Metrics().injections.Add();
  PUMP_TRACE_INSTANT(obs::TraceCategory::kFault, "fault.inject",
                     static_cast<double>(hit),
                     static_cast<double>(armed.fires));
  std::string message = "injected fault at " + site;
  if (!scope.empty()) message += " [" + scope + "]";
  message += " (hit " + std::to_string(hit) + ")";
  return Status(armed.spec.code, std::move(message));
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace pump::fault
