#ifndef PUMP_ENGINE_EXECUTOR_H_
#define PUMP_ENGINE_EXECUTOR_H_

#include "common/status.h"
#include "engine/query.h"

namespace pump::engine {

/// Functional query executor: validates the query against the tables,
/// then runs scan -> join -> aggregate on the host using the library's
/// operators (selection vectors, linear-probing hash tables). The
/// reference semantics every plan the Advisor produces must match.
class Executor {
 public:
  /// Runs `query` with `workers` threads for the probe pipeline.
  static Result<QueryResult> Run(const Query& query,
                                 std::size_t workers = 1);
};

}  // namespace pump::engine

#endif  // PUMP_ENGINE_EXECUTOR_H_
