#ifndef PUMP_ENGINE_EXECUTOR_H_
#define PUMP_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/query.h"
#include "exec/morsel.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"

namespace pump::plan {
class BuildCache;
}  // namespace pump::plan

namespace pump::engine {

struct ExecReport;

/// Options for a fault-aware execution (Executor::RunResilient).
struct ExecOptions {
  /// Worker threads of the CPU probe pipeline (and the CPU fallback plan).
  std::size_t workers = 1;
  /// Attempt the GPU-placed plan first; fall back to the CPU plan on an
  /// unrecoverable fault. When false, only the CPU plan runs.
  bool gpu_plan = true;
  /// Fault injector threaded through every layer of the GPU plan
  /// (transfer chunks, device allocation, scheduler groups). Null = no
  /// faults.
  fault::FaultInjector* injector = nullptr;
  /// Retry policy for transient transfer-chunk faults.
  fault::RetryPolicy retry;
  /// Chunk size of the fact-column transfers.
  std::uint64_t chunk_bytes = 64 * 1024;
  /// Modelled OS page size of the transfers.
  std::uint64_t os_page_bytes = 4 * 1024;
  /// Morsel granularity of the heterogeneous probe.
  std::size_t morsel_tuples = exec::kDefaultMorselTuples;
  /// Cooperative cancellation/deadline token, polled at morsel-claim
  /// granularity by every pipeline loop: a cancelled or deadline-expired
  /// query stops claiming work and releases its workers within one
  /// morsel. Null = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Process-wide dimension-table build cache (plan/build_cache.h).
  /// Null = per-query builds only (tables are still reused across the
  /// ladder rungs of the one query, as before).
  plan::BuildCache* build_cache = nullptr;
  /// Query id for trace attribution: plan::ExecutePlan installs it as
  /// the thread's obs::QueryContext so every span/instant the execution
  /// records — across all pool workers — is stamped with it. 0 = untagged
  /// (solo runs, tests).
  std::uint64_t query_id = 0;
  /// When non-null, receives a copy of the in-progress ExecReport on
  /// *every* exit from plan::ExecutePlan, including error returns — the
  /// flight recorder's source for the failed attempt's pipeline rows,
  /// which the Result-based return drops on the floor.
  ExecReport* partial_report = nullptr;
  /// Test-only escape hatch: route RunResilient through the preserved
  /// pre-plan-IR fused path (engine::legacy) instead of compiling to the
  /// plan IR. Exists solely for the golden equivalence suite and will be
  /// removed with the legacy path.
  bool legacy_fused_for_test = false;
};

/// Per-pipeline outcome row of an executed plan. The degradation ladder
/// operates per pipeline, so a query-level summary cannot say *which*
/// pipeline was re-placed or retried — these rows can. They survive a
/// mid-query CPU re-placement intact (the summed totals below are reset
/// by the ladder, the rows are not), so traces and reports agree.
struct PipelineOutcome {
  /// "build[i]" for build pipelines, "probe" for the probe pipeline.
  std::string name;
  /// "build" | "probe" — the pipeline class the residual linter bands by.
  std::string kind;
  /// Placement the compiler assigned.
  std::string placement_planned;
  /// Placement that finally produced the pipeline's result (differs from
  /// planned when the ladder re-placed the pipeline on the CPU).
  std::string placement_used;
  /// Execution attempts (1 clean; 2 when a GPU-side attempt failed and
  /// the pipeline re-ran on the CPU).
  std::size_t attempts = 1;
  /// Transfer chunk retries charged to this pipeline (all attempts).
  std::uint64_t retries = 0;
  /// Faults injected into this pipeline (all attempts).
  std::uint64_t faults_injected = 0;
  /// Measured wall time of the pipeline, seconds (every attempt,
  /// including a failed GPU attempt before a CPU re-placement).
  double measured_s = 0.0;
  /// The cost model's predicted time, seconds; 0 when the plan was
  /// compiled without the cost-model policy.
  double predicted_s = 0.0;
};

/// Outcome of a fault-aware execution: the query result plus how the
/// degradation ladder (retry -> spill -> CPU fallback) was exercised.
struct ExecReport {
  QueryResult result;
  /// True when the GPU-placed plan produced the result; false when the
  /// engine fell back to the CPU plan.
  bool used_gpu = false;
  /// True when any degradation occurred (spill, group failover, or CPU
  /// fallback). Pure transparent retries do not set this.
  bool degraded = false;
  /// Human-readable reason for the degradation; empty when clean.
  std::string degradation_reason;
  /// Smallest GPU-resident fraction achieved across the joins' modelled
  /// hash-table allocations (1.0 when fully GPU-resident or no joins).
  double hybrid_gpu_fraction = 1.0;
  /// Transfer chunk retries performed (transient faults survived).
  std::uint64_t transfer_retries = 0;
  /// Faults injected across the transfer layer.
  std::uint64_t faults_injected = 0;
  /// Total modelled retry backoff charged by the policy, seconds.
  double modelled_backoff_s = 0.0;
  /// Tuples re-processed by surviving scheduler groups after a group died.
  std::size_t failover_tuples = 0;
  /// Build pipelines executed (dimension hash tables actually built).
  /// With the plan IR each build runs exactly once per query, whatever
  /// the degradation ladder does afterwards.
  std::size_t dim_tables_built = 0;
  /// Cached build results reused by a later ladder rung (e.g. a CPU
  /// re-placement of the probe pipeline) instead of being rebuilt.
  std::size_t dim_tables_reused = 0;
  /// Per-pipeline outcome rows (builds in plan order, then the probe).
  /// Unlike the summed totals above they are preserved across the
  /// ladder's CPU re-placement, recording placement tried vs. used,
  /// attempts and retries per pipeline. Empty on the legacy fused path.
  std::vector<PipelineOutcome> pipelines;
  /// Per-shard outcome rows of a sharded (multi-device) plan: the
  /// exchange stage first (kind "exchange"), then one "shard[i]@dev<d>"
  /// row per shard device (kind "probe"). Empty for single-device plans.
  std::vector<PipelineOutcome> shards;
  /// Shards the fault ladder re-placed on the CPU (a failed device
  /// degrades only its own shards; the other devices keep theirs).
  std::size_t shards_replaced = 0;
};

/// Functional query executor, now a facade over the plan IR: queries
/// compile to a physical plan (build pipelines + probe pipeline with
/// placements and hash-table choices, see src/plan/) and execute morsel-
/// wise through plan::ExecutePlan. The reference semantics every plan
/// the Advisor produces must match.
class Executor {
 public:
  /// Runs `query` with `workers` threads for the probe pipeline.
  static Result<QueryResult> Run(const Query& query,
                                 std::size_t workers = 1);

  /// Runs `query` under the fault model: the GPU-placed plan (fact
  /// columns transferred chunk-wise with retry, modelled hybrid
  /// hash-table placement with spill-on-device-OOM, heterogeneous
  /// CPU+GPU probe with group failover), falling back to the CPU plan
  /// when the GPU path hits an unrecoverable fault. The report's result
  /// is always bit-identical to `Run`'s for the same query — that is the
  /// whole point of the degradation ladder.
  static Result<ExecReport> RunResilient(const Query& query,
                                         const ExecOptions& options);
};

}  // namespace pump::engine

#endif  // PUMP_ENGINE_EXECUTOR_H_
