#include "engine/executor.h"

#include <atomic>
#include <memory>

#include "exec/morsel.h"
#include "exec/parallel.h"
#include "hash/hash_table.h"

namespace pump::engine {

namespace {

using DimTable = hash::LinearProbingHashTable<std::int64_t, std::int64_t>;

Status ValidateQuery(const Query& query) {
  if (query.fact == nullptr) {
    return Status::InvalidArgument("query has no fact table");
  }
  if (!query.fact->HasColumn(query.measure_column)) {
    return Status::NotFound("measure column '" + query.measure_column +
                            "' missing from fact table");
  }
  for (const Filter& filter : query.filters) {
    if (!query.fact->HasColumn(filter.column)) {
      return Status::NotFound("filter column '" + filter.column +
                              "' missing from fact table");
    }
  }
  for (const JoinClause& join : query.joins) {
    if (join.dimension == nullptr) {
      return Status::InvalidArgument("join without dimension table");
    }
    if (!query.fact->HasColumn(join.fact_key_column)) {
      return Status::NotFound("join key '" + join.fact_key_column +
                              "' missing from fact table");
    }
    if (!join.dimension->HasColumn(join.dim_key_column)) {
      return Status::NotFound("dimension key '" + join.dim_key_column +
                              "' missing from dimension");
    }
    if (join.has_dim_filter &&
        !join.dimension->HasColumn(join.dim_filter.column)) {
      return Status::NotFound("dimension filter column '" +
                              join.dim_filter.column + "' missing");
    }
  }
  return Status::OK();
}

// Builds the hash table for one join clause: qualifying dimension keys
// map to 1 (semi-join semantics; the measure lives in the fact table).
Result<std::unique_ptr<DimTable>> BuildDimensionTable(
    const JoinClause& join) {
  PUMP_ASSIGN_OR_RETURN(const auto* keys,
                        join.dimension->Column(join.dim_key_column));
  const std::vector<std::int64_t>* filter_column = nullptr;
  if (join.has_dim_filter) {
    PUMP_ASSIGN_OR_RETURN(filter_column,
                          join.dimension->Column(join.dim_filter.column));
  }
  auto table = std::make_unique<DimTable>(
      std::max<std::size_t>(1, keys->size()));
  for (std::size_t i = 0; i < keys->size(); ++i) {
    if (filter_column != nullptr &&
        !ops::Compare(join.dim_filter.op, (*filter_column)[i],
                      join.dim_filter.literal)) {
      continue;
    }
    PUMP_RETURN_NOT_OK(table->Insert((*keys)[i], 1));
  }
  return table;
}

}  // namespace

Result<QueryResult> Executor::Run(const Query& query, std::size_t workers) {
  PUMP_RETURN_NOT_OK(ValidateQuery(query));
  const Table& fact = *query.fact;

  // Resolve columns up front so the hot loop does no map lookups.
  PUMP_ASSIGN_OR_RETURN(const auto* measure,
                        fact.Column(query.measure_column));
  std::vector<const std::vector<std::int64_t>*> filter_columns;
  for (const Filter& filter : query.filters) {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(filter.column));
    filter_columns.push_back(column);
  }
  std::vector<const std::vector<std::int64_t>*> key_columns;
  std::vector<std::unique_ptr<DimTable>> dim_tables;
  for (const JoinClause& join : query.joins) {
    PUMP_ASSIGN_OR_RETURN(const auto* column,
                          fact.Column(join.fact_key_column));
    key_columns.push_back(column);
    PUMP_ASSIGN_OR_RETURN(auto table, BuildDimensionTable(join));
    dim_tables.push_back(std::move(table));
  }

  // Morsel-parallel scan -> semi-join probes -> aggregate.
  exec::MorselDispatcher dispatcher(fact.rows(),
                                    exec::kDefaultMorselTuples);
  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  exec::ParallelFor(std::max<std::size_t>(1, workers), [&](std::size_t) {
    std::uint64_t rows = 0;
    std::int64_t sum = 0;
    while (auto morsel = dispatcher.Next()) {
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) {
        bool qualifies = true;
        for (std::size_t f = 0; f < query.filters.size(); ++f) {
          if (!ops::Compare(query.filters[f].op, (*filter_columns[f])[i],
                            query.filters[f].literal)) {
            qualifies = false;
            break;
          }
        }
        if (!qualifies) continue;
        for (std::size_t j = 0; j < dim_tables.size(); ++j) {
          std::int64_t ignored;
          if (!dim_tables[j]->Lookup((*key_columns[j])[i], &ignored)) {
            qualifies = false;
            break;
          }
        }
        if (!qualifies) continue;
        ++rows;
        sum += (*measure)[i];
      }
    }
    total_rows.fetch_add(rows, std::memory_order_relaxed);
    total_sum.fetch_add(sum, std::memory_order_relaxed);
  });
  return QueryResult{total_rows.load(), total_sum.load()};
}

}  // namespace pump::engine
