#include "engine/executor.h"

#include "engine/legacy_fused.h"
#include "plan/compiler.h"
#include "plan/executor.h"

namespace pump::engine {

// The executor is a thin shim over the plan IR: queries compile once
// (validation with query-shape diagnostics happens there) and execute
// through plan::ExecutePlan's per-pipeline ladder. No query-shape-
// specific kernel code lives here — operators do.

Result<QueryResult> Executor::Run(const Query& query, std::size_t workers) {
  plan::CompileOptions compile_options;
  compile_options.policy = plan::PlacementPolicy::kCpuOnly;
  PUMP_ASSIGN_OR_RETURN(const plan::PhysicalPlan physical,
                        plan::Compile(query, compile_options));
  ExecOptions options;
  options.workers = workers;
  options.gpu_plan = false;
  PUMP_ASSIGN_OR_RETURN(const ExecReport report,
                        plan::ExecutePlan(physical, options));
  return report.result;
}

Result<ExecReport> Executor::RunResilient(const Query& query,
                                          const ExecOptions& options) {
  if (options.legacy_fused_for_test) {
    return legacy::RunResilientFused(query, options);
  }
  plan::CompileOptions compile_options;
  compile_options.policy = options.gpu_plan
                               ? plan::PlacementPolicy::kGpuPreferred
                               : plan::PlacementPolicy::kCpuOnly;
  PUMP_ASSIGN_OR_RETURN(const plan::PhysicalPlan physical,
                        plan::Compile(query, compile_options));
  return plan::ExecutePlan(physical, options);
}

}  // namespace pump::engine
