#ifndef PUMP_ENGINE_LEGACY_FUSED_H_
#define PUMP_ENGINE_LEGACY_FUSED_H_

#include <cstddef>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/query.h"

namespace pump::engine::legacy {

/// The pre-plan-IR fused execution path, preserved verbatim as the
/// reference the golden equivalence suite compares the plan IR against
/// (reachable via ExecOptions::legacy_fused_for_test). Scheduled for
/// removal once the equivalence suite has soaked; new code must go
/// through plan::Compile / plan::ExecutePlan.

/// The old Executor::Run: validate, bind columns, build linear-probing
/// tables, fused morsel-parallel scan-probe-aggregate on the host.
Result<QueryResult> RunFused(const Query& query, std::size_t workers = 1);

/// The old Executor::RunResilient: monolithic GPU plan first, whole-
/// query CPU fallback on any unrecoverable fault (rebuilding every
/// dimension table — the behaviour the per-pipeline ladder fixes).
Result<ExecReport> RunResilientFused(const Query& query,
                                     const ExecOptions& options);

}  // namespace pump::engine::legacy

#endif  // PUMP_ENGINE_LEGACY_FUSED_H_
