#ifndef PUMP_ENGINE_TABLE_H_
#define PUMP_ENGINE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace pump::engine {

/// A named, column-oriented table of 64-bit integer columns — the storage
/// unit of the engine layer. Narrow integer columns match the paper's
/// workloads (Sec. 7.1) and keep the executor simple; wider types would
/// dictionary-encode into this representation.
class Table {
 public:
  Table() = default;

  /// Adds a column; every column must have the same length. The first
  /// column fixes the row count.
  Status AddColumn(const std::string& name,
                   std::vector<std::int64_t> values) {
    if (columns_.count(name) > 0) {
      return Status::AlreadyExists("column '" + name + "' exists");
    }
    if (!columns_.empty() && values.size() != rows_) {
      return Status::InvalidArgument("column length mismatch");
    }
    rows_ = values.size();
    order_.push_back(name);
    columns_.emplace(name, std::move(values));
    return Status::OK();
  }

  /// Looks up a column by name.
  Result<const std::vector<std::int64_t>*> Column(
      const std::string& name) const {
    auto it = columns_.find(name);
    if (it == columns_.end()) {
      return Status::NotFound("no column '" + name + "'");
    }
    return &it->second;
  }

  /// True when the column exists.
  bool HasColumn(const std::string& name) const {
    return columns_.count(name) > 0;
  }

  /// Number of rows.
  std::size_t rows() const { return rows_; }
  /// Number of columns.
  std::size_t column_count() const { return columns_.size(); }
  /// Column names in insertion order.
  const std::vector<std::string>& column_names() const { return order_; }
  /// Total bytes across all columns (8 B per value).
  std::uint64_t bytes() const { return rows_ * column_count() * 8; }

 private:
  std::size_t rows_ = 0;
  std::vector<std::string> order_;
  std::unordered_map<std::string, std::vector<std::int64_t>> columns_;
};

}  // namespace pump::engine

#endif  // PUMP_ENGINE_TABLE_H_
