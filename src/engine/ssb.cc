#include "engine/ssb.h"

#include <vector>

#include "common/rng.h"
#include "ops/scan.h"

namespace pump::engine {

namespace {

constexpr std::int64_t kDaysPerYear = 365;
constexpr std::int64_t kDateRows = kYearCount * kDaysPerYear;

}  // namespace

SsbDatabase SsbDatabase::Generate(std::size_t lineorder_rows,
                                  std::uint64_t seed) {
  SsbDatabase db;
  Rng rng(seed);

  // Dimension cardinalities follow SSB's fact:dimension ratios.
  const std::size_t customers =
      std::max<std::size_t>(32, lineorder_rows / 200);
  const std::size_t suppliers =
      std::max<std::size_t>(8, lineorder_rows / 3000);
  const std::size_t parts = std::max<std::size_t>(64, lineorder_rows / 30);

  // date: dense datekey, derived year.
  {
    std::vector<std::int64_t> datekey(kDateRows), year(kDateRows);
    for (std::int64_t d = 0; d < kDateRows; ++d) {
      datekey[d] = d;
      year[d] = kFirstYear + d / kDaysPerYear;
    }
    (void)db.date.AddColumn("d_datekey", std::move(datekey));
    (void)db.date.AddColumn("d_year", std::move(year));
  }
  // customer / supplier: dense keys with a uniform region code.
  auto make_region_dim = [&rng](Table* table, const char* key_name,
                                const char* region_name, std::size_t rows) {
    std::vector<std::int64_t> keys(rows), regions(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      keys[i] = static_cast<std::int64_t>(i);
      regions[i] = static_cast<std::int64_t>(rng.NextBounded(kRegionCount));
    }
    (void)table->AddColumn(key_name, std::move(keys));
    (void)table->AddColumn(region_name, std::move(regions));
  };
  make_region_dim(&db.customer, "c_custkey", "c_region", customers);
  make_region_dim(&db.supplier, "s_suppkey", "s_region", suppliers);
  make_region_dim(&db.part, "p_partkey", "p_mfgr", parts);

  // lineorder fact.
  std::vector<std::int64_t> orderdate(lineorder_rows),
      custkey(lineorder_rows), suppkey(lineorder_rows),
      partkey(lineorder_rows), quantity(lineorder_rows),
      discount(lineorder_rows), extendedprice(lineorder_rows),
      revenue(lineorder_rows), revenue_disc(lineorder_rows);
  for (std::size_t i = 0; i < lineorder_rows; ++i) {
    orderdate[i] = static_cast<std::int64_t>(rng.NextBounded(kDateRows));
    custkey[i] = static_cast<std::int64_t>(rng.NextBounded(customers));
    suppkey[i] = static_cast<std::int64_t>(rng.NextBounded(suppliers));
    partkey[i] = static_cast<std::int64_t>(rng.NextBounded(parts));
    quantity[i] = static_cast<std::int64_t>(1 + rng.NextBounded(50));
    discount[i] = static_cast<std::int64_t>(rng.NextBounded(11));
    extendedprice[i] =
        static_cast<std::int64_t>(90'000 + rng.NextBounded(120'000));
    revenue[i] = extendedprice[i] * (100 - discount[i]) / 100;
    revenue_disc[i] = extendedprice[i] * discount[i];
  }
  (void)db.lineorder.AddColumn("lo_orderdate", std::move(orderdate));
  (void)db.lineorder.AddColumn("lo_custkey", std::move(custkey));
  (void)db.lineorder.AddColumn("lo_suppkey", std::move(suppkey));
  (void)db.lineorder.AddColumn("lo_partkey", std::move(partkey));
  (void)db.lineorder.AddColumn("lo_quantity", std::move(quantity));
  (void)db.lineorder.AddColumn("lo_discount", std::move(discount));
  (void)db.lineorder.AddColumn("lo_extendedprice",
                               std::move(extendedprice));
  (void)db.lineorder.AddColumn("lo_revenue", std::move(revenue));
  (void)db.lineorder.AddColumn("lo_revenue_disc", std::move(revenue_disc));
  return db;
}

Query SsbQ1(const SsbDatabase& db) {
  Query query;
  query.fact = &db.lineorder;
  query.filters = {
      {"lo_discount", ops::CompareOp::kGe, 1},
      {"lo_discount", ops::CompareOp::kLe, 3},
      {"lo_quantity", ops::CompareOp::kLt, 25},
  };
  JoinClause date_join;
  date_join.fact_key_column = "lo_orderdate";
  date_join.dimension = &db.date;
  date_join.dim_key_column = "d_datekey";
  date_join.dim_filter = {"d_year", ops::CompareOp::kEq, 1993};
  date_join.has_dim_filter = true;
  query.joins.push_back(date_join);
  query.measure_column = "lo_revenue_disc";
  return query;
}

Query SsbQ2(const SsbDatabase& db) {
  Query query;
  query.fact = &db.lineorder;
  JoinClause customer_join;
  customer_join.fact_key_column = "lo_custkey";
  customer_join.dimension = &db.customer;
  customer_join.dim_key_column = "c_custkey";
  customer_join.dim_filter = {"c_region", ops::CompareOp::kEq, kRegionAsia};
  customer_join.has_dim_filter = true;
  query.joins.push_back(customer_join);

  JoinClause supplier_join;
  supplier_join.fact_key_column = "lo_suppkey";
  supplier_join.dimension = &db.supplier;
  supplier_join.dim_key_column = "s_suppkey";
  supplier_join.dim_filter = {"s_region", ops::CompareOp::kEq, kRegionAsia};
  supplier_join.has_dim_filter = true;
  query.joins.push_back(supplier_join);

  query.measure_column = "lo_revenue";
  return query;
}

Query SsbQ3(const SsbDatabase& db) {
  Query query;
  query.fact = &db.lineorder;
  query.filters = {{"lo_quantity", ops::CompareOp::kLt, 30}};

  JoinClause date_join;
  date_join.fact_key_column = "lo_orderdate";
  date_join.dimension = &db.date;
  date_join.dim_key_column = "d_datekey";
  date_join.dim_filter = {"d_year", ops::CompareOp::kEq, 1993};
  date_join.has_dim_filter = true;
  query.joins.push_back(date_join);

  JoinClause customer_join;
  customer_join.fact_key_column = "lo_custkey";
  customer_join.dimension = &db.customer;
  customer_join.dim_key_column = "c_custkey";
  customer_join.dim_filter = {"c_region", ops::CompareOp::kEq, kRegionAsia};
  customer_join.has_dim_filter = true;
  query.joins.push_back(customer_join);

  JoinClause supplier_join;
  supplier_join.fact_key_column = "lo_suppkey";
  supplier_join.dimension = &db.supplier;
  supplier_join.dim_key_column = "s_suppkey";
  supplier_join.dim_filter = {"s_region", ops::CompareOp::kEq, kRegionAsia};
  supplier_join.has_dim_filter = true;
  query.joins.push_back(supplier_join);

  query.measure_column = "lo_revenue";
  return query;
}

std::vector<NamedQuery> SsbSuite(const SsbDatabase& db) {
  return {{"ssb-q1", SsbQ1(db)},
          {"ssb-q2", SsbQ2(db)},
          {"ssb-q3", SsbQ3(db)}};
}

}  // namespace pump::engine
