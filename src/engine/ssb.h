#ifndef PUMP_ENGINE_SSB_H_
#define PUMP_ENGINE_SSB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/query.h"
#include "engine/table.h"

namespace pump::engine {

/// A Star Schema Benchmark-style database: the lineorder fact table plus
/// date, customer, supplier and part dimensions — the canonical workload
/// for the star-query shape the paper sketches in Sec. 6.2. Cardinalities
/// follow SSB's ratios at a reduced base so functional runs stay
/// host-sized; the Advisor scales them up for paper-scale planning.
struct SsbDatabase {
  Table lineorder;
  Table date;
  Table customer;
  Table supplier;
  Table part;

  /// SSB dimension-to-fact ratios at "scale factor" sf (SSB: lineorder
  /// ~6M rows/SF, customer 30k/SF, supplier 2k/SF, part 200k log-scaled,
  /// date fixed at ~2556 days).
  static SsbDatabase Generate(std::size_t lineorder_rows,
                              std::uint64_t seed);
};

/// SSB Q1.1-style query:
///   SELECT SUM(lo_extendedprice * lo_discount) FROM lineorder, date
///   WHERE lo_orderdate = d_datekey AND d_year = 1993
///     AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;
/// The product is precomputed into the `lo_revenue_disc` column (the
/// engine aggregates one column).
Query SsbQ1(const SsbDatabase& db);

/// SSB Q2-style query: two-dimension star join with region filters:
///   SELECT SUM(lo_revenue) FROM lineorder, customer, supplier
///   WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
///     AND c_region = kAsia AND s_region = kAsia;
Query SsbQ2(const SsbDatabase& db);

/// SSB Q3/Q4-style query: a three-dimension star join (date, customer,
/// supplier) with a fact filter —
///   SELECT SUM(lo_revenue) FROM lineorder, date, customer, supplier
///   WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
///     AND lo_suppkey = s_suppkey AND d_year = 1993
///     AND c_region = kAsia AND s_region = kAsia AND lo_quantity < 30;
Query SsbQ3(const SsbDatabase& db);

/// One query of the SSB suite, labelled for tooling (plandump, benches,
/// the golden equivalence tests).
struct NamedQuery {
  const char* name;
  Query query;
};

/// The SSB workloads in canonical order: ssb-q1, ssb-q2, ssb-q3. The
/// returned queries reference `db`, which must outlive them.
std::vector<NamedQuery> SsbSuite(const SsbDatabase& db);

/// Region dictionary codes used by the generator.
inline constexpr std::int64_t kRegionAsia = 2;
inline constexpr std::int64_t kRegionCount = 5;
/// Year span of the date dimension.
inline constexpr std::int64_t kFirstYear = 1992;
inline constexpr std::int64_t kYearCount = 7;

}  // namespace pump::engine

#endif  // PUMP_ENGINE_SSB_H_
