#include "engine/legacy_fused.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "exec/het_scheduler.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "hash/hash_table.h"
#include "hw/topology.h"
#include "memory/allocator.h"
#include "transfer/executor.h"

namespace pump::engine::legacy {

namespace {

using DimTable = hash::LinearProbingHashTable<std::int64_t, std::int64_t>;

Status ValidateQuery(const Query& query) {
  if (query.fact == nullptr) {
    return Status::InvalidArgument("query has no fact table");
  }
  if (!query.fact->HasColumn(query.measure_column)) {
    return Status::NotFound("measure column '" + query.measure_column +
                            "' missing from fact table");
  }
  for (const Filter& filter : query.filters) {
    if (!query.fact->HasColumn(filter.column)) {
      return Status::NotFound("filter column '" + filter.column +
                              "' missing from fact table");
    }
  }
  for (const JoinClause& join : query.joins) {
    if (join.dimension == nullptr) {
      return Status::InvalidArgument("join without dimension table");
    }
    if (!query.fact->HasColumn(join.fact_key_column)) {
      return Status::NotFound("join key '" + join.fact_key_column +
                              "' missing from fact table");
    }
    if (!join.dimension->HasColumn(join.dim_key_column)) {
      return Status::NotFound("dimension key '" + join.dim_key_column +
                              "' missing from dimension");
    }
    if (join.has_dim_filter &&
        !join.dimension->HasColumn(join.dim_filter.column)) {
      return Status::NotFound("dimension filter column '" +
                              join.dim_filter.column + "' missing");
    }
  }
  return Status::OK();
}

// Builds the hash table for one join clause: qualifying dimension keys
// map to 1 (semi-join semantics; the measure lives in the fact table).
Result<std::unique_ptr<DimTable>> BuildDimensionTable(
    const JoinClause& join) {
  PUMP_ASSIGN_OR_RETURN(const auto* keys,
                        join.dimension->Column(join.dim_key_column));
  const std::vector<std::int64_t>* filter_column = nullptr;
  if (join.has_dim_filter) {
    PUMP_ASSIGN_OR_RETURN(filter_column,
                          join.dimension->Column(join.dim_filter.column));
  }
  auto table = std::make_unique<DimTable>(
      std::max<std::size_t>(1, keys->size()));
  for (std::size_t i = 0; i < keys->size(); ++i) {
    if (filter_column != nullptr &&
        !ops::Compare(join.dim_filter.op, (*filter_column)[i],
                      join.dim_filter.literal)) {
      continue;
    }
    PUMP_RETURN_NOT_OK(table->Insert((*keys)[i], 1));
  }
  return table;
}

// Column pointers resolved for the hot loop. The data lives either in the
// original table columns (CPU plan) or in transferred device buffers (GPU
// plan); the kernel below is identical for both, which is what makes the
// two plans bit-compatible.
struct BoundColumns {
  const std::int64_t* measure = nullptr;
  std::vector<const std::int64_t*> filter_columns;
  std::vector<const std::int64_t*> key_columns;
};

// Scan -> semi-join probes -> aggregate over tuple range [begin, end).
void ProcessRange(const Query& query, const BoundColumns& columns,
                  const std::vector<std::unique_ptr<DimTable>>& dim_tables,
                  std::size_t begin, std::size_t end, std::uint64_t* rows,
                  std::int64_t* sum) {
  for (std::size_t i = begin; i < end; ++i) {
    bool qualifies = true;
    for (std::size_t f = 0; f < query.filters.size(); ++f) {
      if (!ops::Compare(query.filters[f].op, columns.filter_columns[f][i],
                        query.filters[f].literal)) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    for (std::size_t j = 0; j < dim_tables.size(); ++j) {
      std::int64_t ignored;
      if (!dim_tables[j]->Lookup(columns.key_columns[j][i], &ignored)) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    ++*rows;
    *sum += columns.measure[i];
  }
}

/// The GPU-placed plan under the fault model. Fills `report` on success;
/// any error is an unrecoverable GPU-path fault the caller degrades from
/// (validation errors reproduce identically on the CPU fallback, so
/// nothing is masked).
Status RunGpuPlan(const Query& query, const ExecOptions& options,
                  ExecReport* report) {
  PUMP_RETURN_NOT_OK(ValidateQuery(query));
  const Table& fact = *query.fact;
  const std::size_t rows = fact.rows();

  // Transfer every referenced fact column into a device buffer, chunk by
  // chunk with per-chunk retry (degradation rung 1: retry).
  const transfer::TransferFaultOptions fault_options{options.injector,
                                                     options.retry};
  std::vector<memory::Buffer> device_columns;
  auto transfer_column =
      [&](const std::vector<std::int64_t>* column)
      -> Result<const std::int64_t*> {
    const std::uint64_t bytes = column->size() * sizeof(std::int64_t);
    if (bytes == 0) return static_cast<const std::int64_t*>(nullptr);
    transfer::TransferStats stats;
    PUMP_ASSIGN_OR_RETURN(
        memory::Buffer dst,
        transfer::StageToDevice(column->data(), bytes, hw::kGpu0,
                                options.chunk_bytes, options.os_page_bytes,
                                fault_options, &stats));
    report->transfer_retries += stats.retries;
    report->faults_injected += stats.faults_injected;
    report->modelled_backoff_s += stats.modelled_backoff_s;
    device_columns.push_back(std::move(dst));
    return device_columns.back().as<const std::int64_t>();
  };

  BoundColumns bound;
  PUMP_ASSIGN_OR_RETURN(const auto* measure,
                        fact.Column(query.measure_column));
  PUMP_ASSIGN_OR_RETURN(bound.measure, transfer_column(measure));
  for (const Filter& filter : query.filters) {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(filter.column));
    PUMP_ASSIGN_OR_RETURN(const auto* device, transfer_column(column));
    bound.filter_columns.push_back(device);
  }

  // Model the hash-table placement on the AC922 topology: device
  // allocation probes the alloc.device failpoint and spills the remainder
  // to CPU memory (degradation rung 2: spill). The functional build stays
  // on the host, mirroring the repo-wide functional/model split.
  hw::Topology topology = hw::IbmAc922();
  memory::MemoryManager manager(&topology, /*materialize=*/false);
  std::vector<memory::Buffer> placements;
  std::vector<std::unique_ptr<DimTable>> dim_tables;
  for (const JoinClause& join : query.joins) {
    PUMP_ASSIGN_OR_RETURN(const auto* column,
                          fact.Column(join.fact_key_column));
    PUMP_ASSIGN_OR_RETURN(const auto* device, transfer_column(column));
    bound.key_columns.push_back(device);

    const std::uint64_t table_bytes = std::max<std::uint64_t>(
        16, join.dimension->rows() * 2 * sizeof(std::int64_t));
    PUMP_ASSIGN_OR_RETURN(memory::Buffer placement,
                          manager.AllocateHybrid(table_bytes, hw::kGpu0, 0,
                                                 options.injector));
    report->hybrid_gpu_fraction = std::min(
        report->hybrid_gpu_fraction, placement.FractionOnNode(hw::kGpu0));
    placements.push_back(std::move(placement));

    PUMP_ASSIGN_OR_RETURN(auto table, BuildDimensionTable(join));
    dim_tables.push_back(std::move(table));
  }
  std::vector<std::string> reasons;
  if (!query.joins.empty() && report->hybrid_gpu_fraction < 1.0) {
    reasons.push_back(
        "hybrid hash table spilled to CPU memory (GPU fraction " +
        std::to_string(report->hybrid_gpu_fraction) + ")");
  }

  // Heterogeneous probe: CPU workers pull morsels, a GPU proxy pulls
  // batches; a stalled group's morsels fail over to the survivors
  // (degradation rung 3 lives in the caller: CPU fallback).
  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  auto work = [&](std::size_t begin, std::size_t end) {
    std::uint64_t range_rows = 0;
    std::int64_t range_sum = 0;
    ProcessRange(query, bound, dim_tables, begin, end, &range_rows,
                 &range_sum);
    total_rows.fetch_add(range_rows, std::memory_order_relaxed);
    total_sum.fetch_add(range_sum, std::memory_order_relaxed);
  };
  std::vector<exec::ProcessorGroup> groups;
  groups.push_back(
      {"CPU", std::max<std::size_t>(1, options.workers), 1, work});
  groups.push_back({"GPU", 1, exec::kDefaultGpuBatchMorsels, work});
  const std::vector<exec::GroupStats> group_stats = exec::RunHeterogeneous(
      rows, options.morsel_tuples, std::move(groups), options.injector);

  std::size_t processed = 0;
  for (const exec::GroupStats& group : group_stats) {
    processed += group.tuples;
    report->failover_tuples += group.failover_tuples;
    if (group.failed) {
      reasons.push_back("processor group '" + group.name +
                        "' stalled; its morsels failed over");
    }
  }
  if (processed != rows) {
    return Status::Unavailable(
        "all processor groups failed; " + std::to_string(rows - processed) +
        " tuples unprocessed");
  }

  report->result = QueryResult{total_rows.load(), total_sum.load()};
  report->used_gpu = true;
  if (!reasons.empty()) {
    report->degraded = true;
    for (std::size_t i = 0; i < reasons.size(); ++i) {
      if (i > 0) report->degradation_reason += "; ";
      report->degradation_reason += reasons[i];
    }
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> RunFused(const Query& query, std::size_t workers) {
  PUMP_RETURN_NOT_OK(ValidateQuery(query));
  const Table& fact = *query.fact;

  // Resolve columns up front so the hot loop does no map lookups.
  BoundColumns bound;
  PUMP_ASSIGN_OR_RETURN(const auto* measure,
                        fact.Column(query.measure_column));
  bound.measure = measure->data();
  for (const Filter& filter : query.filters) {
    PUMP_ASSIGN_OR_RETURN(const auto* column, fact.Column(filter.column));
    bound.filter_columns.push_back(column->data());
  }
  std::vector<std::unique_ptr<DimTable>> dim_tables;
  for (const JoinClause& join : query.joins) {
    PUMP_ASSIGN_OR_RETURN(const auto* column,
                          fact.Column(join.fact_key_column));
    bound.key_columns.push_back(column->data());
    PUMP_ASSIGN_OR_RETURN(auto table, BuildDimensionTable(join));
    dim_tables.push_back(std::move(table));
  }

  // Morsel-parallel scan -> semi-join probes -> aggregate, with
  // hierarchical claiming: workers sub-slice privately claimed chunks and
  // steal unfinished chunks at the tail.
  workers = std::max<std::size_t>(1, workers);
  exec::WorkStealingDispatcher dispatcher(
      fact.rows(), exec::kDefaultMorselTuples, workers);
  std::atomic<std::uint64_t> total_rows{0};
  std::atomic<std::int64_t> total_sum{0};
  exec::ParallelFor(workers, [&](std::size_t w) {
    std::uint64_t rows = 0;
    std::int64_t sum = 0;
    while (auto morsel = dispatcher.Next(w)) {
      ProcessRange(query, bound, dim_tables, morsel->begin, morsel->end,
                   &rows, &sum);
    }
    total_rows.fetch_add(rows, std::memory_order_relaxed);
    total_sum.fetch_add(sum, std::memory_order_relaxed);
  });
  return QueryResult{total_rows.load(), total_sum.load()};
}

Result<ExecReport> RunResilientFused(const Query& query,
                                     const ExecOptions& options) {
  ExecReport report;
  if (options.gpu_plan) {
    const Status gpu_status = RunGpuPlan(query, options, &report);
    if (gpu_status.ok()) return report;
    // Unrecoverable GPU-path fault: degrade to the CPU plan (rung 3).
    // Validation errors reproduce identically below, so they still
    // surface to the caller as errors.
    report = ExecReport{};
    report.degraded = true;
    report.degradation_reason =
        "GPU plan failed (" + gpu_status.ToString() +
        "); fell back to CPU plan";
  }
  PUMP_ASSIGN_OR_RETURN(QueryResult result,
                        RunFused(query, options.workers));
  report.result = result;
  report.used_gpu = false;
  return report;
}

}  // namespace pump::engine::legacy
