#ifndef PUMP_ENGINE_ADVISOR_H_
#define PUMP_ENGINE_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"
#include "transfer/transfer_model.h"

namespace pump::engine {

/// Size statistics of a query at target (paper) scale — the planner input
/// a catalog would provide. `FromQuery` derives them from functional
/// tables, optionally scaled up.
struct QueryStats {
  /// Fact-table cardinality.
  double fact_rows = 0;
  /// Bytes per fact row the query touches (filters + keys + measure).
  double fact_bytes_per_row = 0;
  /// Combined selectivity of the fact filters.
  double filter_selectivity = 1.0;
  /// Per-join dimension cardinalities (post dimension-filter).
  std::vector<double> dimension_rows;
};

/// Derives stats from a functional query, scaling cardinalities by
/// `scale` (e.g. model the behaviour of the same query at 1000x the
/// sample data).
QueryStats StatsFromQuery(const Query& query, double scale = 1.0);

/// The advisor's output: which processor runs the query, how data moves,
/// where each join's hash table lives, and the predicted runtime.
struct PlanChoice {
  hw::DeviceId device = hw::kInvalidDevice;
  transfer::TransferMethod method = transfer::TransferMethod::kCoherence;
  std::vector<join::HashTablePlacement> join_placements;
  Seconds predicted_seconds;
  std::string rationale;
};

/// Model-driven physical planner: evaluates the query on every processor
/// of the profile (CPU sockets and GPUs, with the appropriate transfer
/// method and the Fig. 11 placement rules per join) and returns the
/// cheapest plan. This is the piece a database optimizer would call —
/// the paper's decision tree (Fig. 11), generalized to whole queries.
class Advisor {
 public:
  explicit Advisor(const hw::SystemProfile* profile);

  /// Recommends a plan for `stats`; data is assumed to live in the CPU
  /// memory node `data_location`.
  Result<PlanChoice> Recommend(const QueryStats& stats,
                               hw::MemoryNodeId data_location) const;

  /// Predicts the runtime of `stats` on a specific device/method (used by
  /// Recommend; exposed for tests and what-if exploration).
  Result<Seconds> Predict(const QueryStats& stats, hw::DeviceId device,
                         transfer::TransferMethod method,
                         hw::MemoryNodeId data_location,
                         std::vector<join::HashTablePlacement>* placements =
                             nullptr) const;

 private:
  const hw::SystemProfile* profile_;
  join::NopaJoinModel nopa_;
  transfer::TransferModel transfer_model_;
};

}  // namespace pump::engine

#endif  // PUMP_ENGINE_ADVISOR_H_
