#ifndef PUMP_ENGINE_QUERY_H_
#define PUMP_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/table.h"
#include "ops/scan.h"

namespace pump::engine {

/// One conjunctive predicate on a fact-table column.
struct Filter {
  std::string column;
  ops::CompareOp op = ops::CompareOp::kEq;
  std::int64_t literal = 0;
};

/// One equi-join from a fact-table key column to a dimension table.
struct JoinClause {
  /// Fact column holding the foreign key.
  std::string fact_key_column;
  /// The dimension table (must outlive the query).
  const Table* dimension = nullptr;
  /// Dimension key column (unique values).
  std::string dim_key_column;
  /// Optional dimension filter applied before the build (empty column
  /// name = no filter), e.g. SSB's `d_year = 1993`.
  Filter dim_filter;
  bool has_dim_filter = false;
};

/// A star-shaped aggregate query:
///   SELECT SUM(measure) FROM fact [JOIN dims...] WHERE filters...
/// This covers the paper's evaluated shapes — selection-aggregation
/// (TPC-H Q6 is a zero-join instance) and the hash joins of Sec. 5 —
/// plus the Sec. 6.2 star extension.
struct Query {
  const Table* fact = nullptr;
  std::vector<Filter> filters;
  std::vector<JoinClause> joins;
  /// Fact column to aggregate.
  std::string measure_column;
};

/// Query output: qualifying row count and the measure sum.
struct QueryResult {
  std::uint64_t rows = 0;
  std::int64_t sum = 0;

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

}  // namespace pump::engine

#endif  // PUMP_ENGINE_QUERY_H_
