#include "engine/advisor.h"

#include <algorithm>

#include "sim/access_path.h"
#include "sim/overlap.h"

namespace pump::engine {

QueryStats StatsFromQuery(const Query& query, double scale) {
  QueryStats stats;
  if (query.fact == nullptr) return stats;
  stats.fact_rows = static_cast<double>(query.fact->rows()) * scale;
  // Touched fact columns: filters + join keys + measure, 8 B each.
  stats.fact_bytes_per_row =
      8.0 * (query.filters.size() + query.joins.size() + 1);
  // Without per-column statistics assume filters keep everything — the
  // conservative planner default.
  stats.filter_selectivity = 1.0;
  for (const JoinClause& join : query.joins) {
    stats.dimension_rows.push_back(
        static_cast<double>(join.dimension->rows()) * scale);
  }
  return stats;
}

Advisor::Advisor(const hw::SystemProfile* profile)
    : profile_(profile), nopa_(profile), transfer_model_(profile) {}

Result<Seconds> Advisor::Predict(
    const QueryStats& stats, hw::DeviceId device,
    transfer::TransferMethod method, hw::MemoryNodeId data_location,
    std::vector<join::HashTablePlacement>* placements) const {
  const hw::Topology& topo = profile_->topology;
  const hw::DeviceSpec& dev = topo.device(device);
  const bool is_gpu = dev.kind == hw::DeviceKind::kGpu;

  // Ingest bandwidth for the fact scan.
  BytesPerSecond ingest;
  if (!is_gpu || device == data_location) {
    ingest = sim::MustResolve(topo, device, data_location).seq_bw;
  } else {
    PUMP_RETURN_NOT_OK(transfer_model_.Validate(
        method, device, data_location,
        transfer::TraitsOf(method).required_memory));
    PUMP_ASSIGN_OR_RETURN(ingest, transfer_model_.IngestBandwidth(
                                      method, device, data_location));
  }
  const Seconds scan_s =
      Bytes(stats.fact_rows * stats.fact_bytes_per_row) / ingest;

  // Per-join build and probe, with Fig. 11 placement per table: GPU
  // memory while the tables fit (leaving 1 GiB working space), spilling
  // the largest tables first.
  const std::uint64_t gpu_capacity =
      is_gpu ? topo.memory(device).capacity.u64() : 0;
  std::uint64_t gpu_used = 1ull << 30;  // Reserved working space.

  Seconds build_s;
  Seconds lookups_s;
  const double surviving = stats.fact_rows * stats.filter_selectivity;
  for (double dim_rows : stats.dimension_rows) {
    data::WorkloadSpec w;
    w.key_bytes = 8;
    w.payload_bytes = 8;
    w.r_tuples = static_cast<std::uint64_t>(std::max(1.0, dim_rows));
    w.s_tuples = 1;

    join::HashTablePlacement placement;
    if (!is_gpu) {
      placement = join::HashTablePlacement::Single(device);
    } else if (gpu_used + w.hash_table_bytes() <= gpu_capacity) {
      placement = join::HashTablePlacement::Single(device);
      gpu_used += w.hash_table_bytes();
    } else {
      const double fraction =
          gpu_capacity > gpu_used
              ? static_cast<double>(gpu_capacity - gpu_used) /
                    static_cast<double>(w.hash_table_bytes())
              : 0.0;
      placement = join::HashTablePlacement::Hybrid(device, data_location,
                                                   fraction);
      gpu_used = gpu_capacity;
    }
    if (placements != nullptr) placements->push_back(placement);

    build_s += dim_rows / nopa_.InsertRate(device, placement, w);
    lookups_s +=
        surviving / nopa_.HashTableAccessRate(device, placement, w);
  }

  const Seconds compute_s = stats.fact_rows / dev.tuple_compute_rate;
  const double p =
      is_gpu ? sim::kGpuOverlapExponent : sim::kCpuOverlapExponent;
  return build_s + sim::OverlapTime({scan_s, lookups_s, compute_s}, p) +
         dev.dispatch_latency;
}

Result<PlanChoice> Advisor::Recommend(const QueryStats& stats,
                                      hw::MemoryNodeId data_location) const {
  const hw::Topology& topo = profile_->topology;
  PlanChoice best;
  bool have_best = false;

  for (std::size_t d = 0; d < topo.device_count(); ++d) {
    const auto device = static_cast<hw::DeviceId>(d);
    const bool is_gpu =
        topo.device(device).kind == hw::DeviceKind::kGpu;
    // CPUs pull directly; GPUs use Coherence on coherent paths and
    // Zero-Copy elsewhere (the paper's per-system defaults, Sec. 7.1).
    transfer::TransferMethod method = transfer::TransferMethod::kCoherence;
    if (is_gpu) {
      PUMP_ASSIGN_OR_RETURN(
          const bool coherent,
          topo.IsCacheCoherentPath(device, data_location));
      method = coherent ? transfer::TransferMethod::kCoherence
                        : transfer::TransferMethod::kZeroCopy;
    }
    std::vector<join::HashTablePlacement> placements;
    Result<Seconds> predicted =
        Predict(stats, device, method, data_location, &placements);
    if (!predicted.ok()) continue;
    if (!have_best || predicted.value() < best.predicted_seconds) {
      best.device = device;
      best.method = method;
      best.join_placements = std::move(placements);
      best.predicted_seconds = predicted.value();
      best.rationale = std::string(topo.device(device).name) + " via " +
                       transfer::TransferMethodToString(method);
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::NotFound("no device can execute this query");
  }
  return best;
}

}  // namespace pump::engine
