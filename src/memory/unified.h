#ifndef PUMP_MEMORY_UNIFIED_H_
#define PUMP_MEMORY_UNIFIED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hw/memory_spec.h"

namespace pump::memory {

/// Page-granular residency tracking for a Unified Memory region. CUDA
/// Unified Memory migrates pages between CPU and GPU memory on access
/// (Sec. 2.2.1); page size is OS-dependent: 4 KiB on Intel, 64 KiB on IBM
/// POWER9 (Sec. 4.2, [69]).
class UnifiedRegion {
 public:
  /// Creates a region of `bytes` whose pages initially reside on
  /// `home_node` with the given page size.
  UnifiedRegion(std::uint64_t bytes, std::uint64_t page_bytes,
                hw::MemoryNodeId home_node);

  /// Total bytes.
  std::uint64_t size() const { return bytes_; }
  /// Page size in bytes.
  std::uint64_t page_bytes() const { return page_bytes_; }
  /// Number of pages.
  std::uint64_t page_count() const { return residency_.size(); }

  /// Node currently holding the page containing `offset`.
  Result<hw::MemoryNodeId> ResidencyOf(std::uint64_t offset) const;

  /// Simulates a device access at `offset`: if the page is not resident on
  /// `accessor_node`, it migrates there (demand paging triggers an OS page
  /// fault). Returns true when a migration (fault) occurred.
  Result<bool> Touch(std::uint64_t offset, hw::MemoryNodeId accessor_node);

  /// Explicitly migrates the page range [offset, offset+length) to `node`
  /// (cudaMemPrefetchAsync). Returns the number of pages moved.
  Result<std::uint64_t> Prefetch(std::uint64_t offset, std::uint64_t length,
                                 hw::MemoryNodeId node);

  /// Number of pages currently resident on `node`.
  std::uint64_t PagesOn(hw::MemoryNodeId node) const;

  /// Total page faults (demand migrations) simulated so far.
  std::uint64_t fault_count() const { return faults_; }

 private:
  std::uint64_t PageOf(std::uint64_t offset) const {
    return offset / page_bytes_;
  }

  std::uint64_t bytes_;
  std::uint64_t page_bytes_;
  std::vector<hw::MemoryNodeId> residency_;
  std::uint64_t faults_ = 0;
};

/// OS page sizes of the paper's systems.
inline constexpr std::uint64_t kIntelPageBytes = 4 * 1024;
inline constexpr std::uint64_t kIbmPageBytes = 64 * 1024;

}  // namespace pump::memory

#endif  // PUMP_MEMORY_UNIFIED_H_
