#ifndef PUMP_MEMORY_ALLOCATOR_H_
#define PUMP_MEMORY_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "hw/topology.h"
#include "memory/buffer.h"

namespace pump::memory {

/// Modelled allocation costs in seconds per byte. Pinning memory is an
/// order of magnitude slower than pageable allocation because the OS must
/// lock pages (Sec. 3, "allocating pageable memory is faster than
/// allocating pinned memory" [25, 68, 93]).
struct AllocCostModel {
  double pageable_s_per_byte = 0.05e-9;
  double pinned_s_per_byte = 0.55e-9;
  double unified_s_per_byte = 0.10e-9;
  double device_s_per_byte = 0.02e-9;

  /// Cost of allocating `bytes` of `kind` memory.
  double Cost(MemoryKind kind, std::uint64_t bytes) const;
};

/// Tracks capacity of every memory node in a topology and hands out
/// buffers. This is the modelled equivalent of cudaMalloc / malloc /
/// cudaMallocManaged / cudaHostAlloc.
class MemoryManager {
 public:
  /// Creates a manager for `topology`. The topology must outlive the
  /// manager. When `materialize` is false, allocations carry no host
  /// storage (pure capacity accounting for paper-scale modelling).
  explicit MemoryManager(const hw::Topology* topology,
                         bool materialize = true);

  /// Allocates `bytes` of `kind` memory on `node`, enforcing the node's
  /// modelled capacity. Device memory may only be placed on GPU nodes,
  /// host kinds only on CPU nodes.
  Result<Buffer> Allocate(std::uint64_t bytes, MemoryKind kind,
                          hw::MemoryNodeId node);

  /// Greedy hybrid allocation (Sec. 5.3, Fig. 8): fill available GPU memory
  /// on `gpu` first (leaving `gpu_reserve_bytes` free for working state),
  /// then spill to the nearest CPU node, then recursively to next-nearest
  /// CPU nodes. The result is one virtually contiguous buffer whose extents
  /// record the physical split.
  ///
  /// When `injector` is non-null, the GPU portion is reserved in slices
  /// and the `alloc.device` failpoint is probed before each slice: an
  /// injected device-allocation failure stops GPU growth mid-build and
  /// the remaining partitions spill to the CPU nodes — the paper's
  /// graceful-degradation mechanism, triggered by faults rather than only
  /// by capacity math. The achieved split is visible in the buffer's
  /// extents (`Buffer::FractionOnNode`).
  Result<Buffer> AllocateHybrid(std::uint64_t bytes, hw::DeviceId gpu,
                                std::uint64_t gpu_reserve_bytes = 0,
                                fault::FaultInjector* injector = nullptr);

  /// Releases the capacity held by `buffer` (storage is freed by the
  /// buffer's destructor). Safe to call once per buffer.
  void Release(const Buffer& buffer);

  /// Bytes currently allocated on `node`.
  std::uint64_t used_bytes(hw::MemoryNodeId node) const;
  /// Bytes still available on `node`.
  std::uint64_t available_bytes(hw::MemoryNodeId node) const;

  /// The modelled time spent in allocations so far (seconds).
  double modelled_alloc_time() const { return modelled_alloc_time_; }

  /// The allocation cost model (mutable for ablation benches).
  AllocCostModel& cost_model() { return cost_model_; }

 private:
  Status CheckPlacement(MemoryKind kind, hw::MemoryNodeId node) const;

  const hw::Topology* topology_;
  bool materialize_;
  std::vector<std::uint64_t> used_;
  AllocCostModel cost_model_;
  double modelled_alloc_time_ = 0.0;
};

}  // namespace pump::memory

#endif  // PUMP_MEMORY_ALLOCATOR_H_
