#include "memory/allocator.h"

#include <algorithm>
#include <string>
#include <utility>

namespace pump::memory {

double AllocCostModel::Cost(MemoryKind kind, std::uint64_t bytes) const {
  const auto b = static_cast<double>(bytes);
  switch (kind) {
    case MemoryKind::kPageable:
      return pageable_s_per_byte * b;
    case MemoryKind::kPinned:
      return pinned_s_per_byte * b;
    case MemoryKind::kUnified:
      return unified_s_per_byte * b;
    case MemoryKind::kDevice:
      return device_s_per_byte * b;
  }
  return 0.0;
}

namespace {

/// Granularity of fault-aware hybrid allocation: the GPU portion is
/// reserved in this many slices so an injected device-OOM can strike
/// mid-build and leave a partial GPU extent behind.
constexpr std::uint64_t kHybridAllocSlices = 16;

}  // namespace

MemoryManager::MemoryManager(const hw::Topology* topology, bool materialize)
    : topology_(topology),
      materialize_(materialize),
      used_(topology->device_count(), 0) {}

Status MemoryManager::CheckPlacement(MemoryKind kind,
                                     hw::MemoryNodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= used_.size()) {
    return Status::InvalidArgument("memory node out of range");
  }
  const hw::DeviceKind owner = topology_->device(node).kind;
  if (kind == MemoryKind::kDevice && owner != hw::DeviceKind::kGpu) {
    return Status::InvalidArgument("device memory must live on a GPU node");
  }
  if ((kind == MemoryKind::kPageable || kind == MemoryKind::kPinned) &&
      owner != hw::DeviceKind::kCpu) {
    return Status::InvalidArgument("host memory must live on a CPU node");
  }
  return Status::OK();
}

Result<Buffer> MemoryManager::Allocate(std::uint64_t bytes, MemoryKind kind,
                                       hw::MemoryNodeId node) {
  PUMP_RETURN_NOT_OK(CheckPlacement(kind, node));
  const std::uint64_t capacity = topology_->memory(node).capacity.u64();
  if (used_[node] + bytes > capacity) {
    return Status::OutOfMemory("node " + std::to_string(node) +
                               " cannot fit " + std::to_string(bytes) +
                               " bytes");
  }
  used_[node] += bytes;
  modelled_alloc_time_ += cost_model_.Cost(kind, bytes);
  return Buffer(bytes, kind, {Extent{node, bytes}}, materialize_);
}

Result<Buffer> MemoryManager::AllocateHybrid(std::uint64_t bytes,
                                             hw::DeviceId gpu,
                                             std::uint64_t gpu_reserve_bytes,
                                             fault::FaultInjector* injector) {
  if (topology_->device(gpu).kind != hw::DeviceKind::kGpu) {
    return Status::InvalidArgument("hybrid allocation requires a GPU device");
  }
  std::vector<Extent> extents;
  std::uint64_t remaining = bytes;

  // Step 1 (Fig. 8): allocate GPU memory first.
  const std::uint64_t gpu_capacity = topology_->memory(gpu).capacity.u64();
  const std::uint64_t gpu_free =
      gpu_capacity > used_[gpu] + gpu_reserve_bytes
          ? gpu_capacity - used_[gpu] - gpu_reserve_bytes
          : 0;
  std::uint64_t on_gpu = std::min(remaining, gpu_free);
  if (on_gpu > 0 && injector != nullptr) {
    // Reserve in slices, probing the alloc.device failpoint before each:
    // a device allocation that runs dry mid-build keeps the slices already
    // placed and spills the rest to the CPU nodes below.
    const std::uint64_t target = on_gpu;
    const std::uint64_t slice =
        std::max<std::uint64_t>(1, (target + kHybridAllocSlices - 1) /
                                       kHybridAllocSlices);
    on_gpu = 0;
    while (on_gpu < target) {
      if (!injector->Check(fault::kAllocDevice).ok()) break;
      on_gpu += std::min(slice, target - on_gpu);
    }
  }
  if (on_gpu > 0) {
    used_[gpu] += on_gpu;
    modelled_alloc_time_ += cost_model_.Cost(MemoryKind::kDevice, on_gpu);
    extents.push_back(Extent{gpu, on_gpu});
    remaining -= on_gpu;
  }

  // Step 2: spill to the nearest CPU, then recursively to next-nearest
  // CPUs of the multi-socket NUMA system (Sec. 5.3).
  if (remaining > 0) {
    for (hw::MemoryNodeId node :
         topology_->MemoryNodesByDistance(gpu, /*cpu_only=*/true)) {
      const std::uint64_t capacity = topology_->memory(node).capacity.u64();
      const std::uint64_t free =
          capacity > used_[node] ? capacity - used_[node] : 0;
      const std::uint64_t here = std::min(remaining, free);
      if (here == 0) continue;
      used_[node] += here;
      modelled_alloc_time_ += cost_model_.Cost(MemoryKind::kPageable, here);
      extents.push_back(Extent{node, here});
      remaining -= here;
      if (remaining == 0) break;
    }
  }

  if (remaining > 0) {
    // Roll back partial reservations.
    for (const Extent& extent : extents) used_[extent.node] -= extent.bytes;
    return Status::OutOfMemory("hybrid allocation exceeds system capacity");
  }
  return Buffer(bytes, MemoryKind::kDevice, std::move(extents),
                materialize_);
}

void MemoryManager::Release(const Buffer& buffer) {
  for (const Extent& extent : buffer.extents()) {
    if (extent.node >= 0 &&
        static_cast<std::size_t>(extent.node) < used_.size()) {
      used_[extent.node] -= std::min(used_[extent.node], extent.bytes);
    }
  }
}

std::uint64_t MemoryManager::used_bytes(hw::MemoryNodeId node) const {
  return used_[node];
}

std::uint64_t MemoryManager::available_bytes(hw::MemoryNodeId node) const {
  const std::uint64_t capacity = topology_->memory(node).capacity.u64();
  return capacity > used_[node] ? capacity - used_[node] : 0;
}

}  // namespace pump::memory
