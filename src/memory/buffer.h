#ifndef PUMP_MEMORY_BUFFER_H_
#define PUMP_MEMORY_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/memory_spec.h"

namespace pump::memory {

/// The memory types of the paper's Table 1. They determine which transfer
/// methods can operate on a buffer and how allocation is costed:
///  * kPageable — ordinary OS memory; the Coherence method (NVLink 2.0) and
///    push-based staged methods can access it.
///  * kPinned   — page-locked; DMA copy engines and Zero-Copy require it.
///  * kUnified  — CUDA Unified Memory; migrated on access or prefetched.
///  * kDevice   — GPU on-board memory.
enum class MemoryKind : std::uint8_t { kPageable, kPinned, kUnified, kDevice };

/// Returns the Table-1 name of the memory kind.
const char* MemoryKindToString(MemoryKind kind);

/// One physical extent of a buffer: `bytes` resident on `node`. Buffers are
/// usually a single extent; the hybrid hash table spans a GPU extent
/// followed by one or more CPU extents (Sec. 5.3, Fig. 8).
struct Extent {
  hw::MemoryNodeId node = hw::kInvalidMemoryNode;
  std::uint64_t bytes = 0;
};

/// A host-backed allocation with modelled placement. The functional layer
/// always executes against `data()`; the hardware model consults
/// `extents()` to cost accesses. This mirrors the substitution documented
/// in DESIGN.md: buffers behave like CUDA allocations placed on a modelled
/// memory node, while actually living in host RAM.
class Buffer {
 public:
  Buffer() = default;
  /// Creates a buffer of `bytes`. When `materialize` is true the buffer is
  /// backed by zero-initialized host memory; otherwise it is model-only
  /// (placement metadata without storage), which lets the analytic cost
  /// models reason about paper-scale (tens of GiB) buffers that do not fit
  /// in host RAM.
  Buffer(std::uint64_t bytes, MemoryKind kind, std::vector<Extent> extents,
         bool materialize = true);

  /// True when the buffer has host storage behind data().
  bool materialized() const { return storage_ != nullptr; }

  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  /// Raw storage (valid for size() bytes); null for an empty buffer.
  std::byte* data() { return storage_.get(); }
  const std::byte* data() const { return storage_.get(); }
  /// Typed view of the storage.
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(storage_.get());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(storage_.get());
  }

  /// Total size in bytes.
  std::uint64_t size() const { return size_; }
  /// Memory kind (Table 1).
  MemoryKind kind() const { return kind_; }
  /// Physical extents, in virtual-address order.
  const std::vector<Extent>& extents() const { return extents_; }

  /// The single node a one-extent buffer resides on; for multi-extent
  /// buffers, the node of the first extent.
  hw::MemoryNodeId home_node() const;

  /// Fraction of bytes resident on `node` (used by hybrid-placement cost
  /// models: the expected GPU-access fraction A_GPU of Sec. 5.3).
  double FractionOnNode(hw::MemoryNodeId node) const;

  /// The node owning the byte at `offset` (extent lookup).
  hw::MemoryNodeId NodeOfByte(std::uint64_t offset) const;

  /// Debug string.
  std::string ToString() const;

 private:
  std::unique_ptr<std::byte[]> storage_;
  std::uint64_t size_ = 0;
  MemoryKind kind_ = MemoryKind::kPageable;
  std::vector<Extent> extents_;
};

}  // namespace pump::memory

#endif  // PUMP_MEMORY_BUFFER_H_
