#include "memory/unified.h"

#include <algorithm>

namespace pump::memory {

UnifiedRegion::UnifiedRegion(std::uint64_t bytes, std::uint64_t page_bytes,
                             hw::MemoryNodeId home_node)
    : bytes_(bytes),
      page_bytes_(page_bytes == 0 ? 1 : page_bytes),
      residency_((bytes + page_bytes_ - 1) / page_bytes_, home_node) {}

Result<hw::MemoryNodeId> UnifiedRegion::ResidencyOf(
    std::uint64_t offset) const {
  if (offset >= bytes_) return Status::OutOfRange("offset beyond region");
  return residency_[PageOf(offset)];
}

Result<bool> UnifiedRegion::Touch(std::uint64_t offset,
                                  hw::MemoryNodeId accessor_node) {
  if (offset >= bytes_) return Status::OutOfRange("offset beyond region");
  const std::uint64_t page = PageOf(offset);
  if (residency_[page] == accessor_node) return false;
  residency_[page] = accessor_node;
  ++faults_;
  return true;
}

Result<std::uint64_t> UnifiedRegion::Prefetch(std::uint64_t offset,
                                              std::uint64_t length,
                                              hw::MemoryNodeId node) {
  if (offset + length > bytes_) {
    return Status::OutOfRange("prefetch range beyond region");
  }
  if (length == 0) return std::uint64_t{0};
  const std::uint64_t first = PageOf(offset);
  const std::uint64_t last = PageOf(offset + length - 1);
  std::uint64_t moved = 0;
  for (std::uint64_t page = first; page <= last; ++page) {
    if (residency_[page] != node) {
      residency_[page] = node;
      ++moved;
    }
  }
  return moved;
}

std::uint64_t UnifiedRegion::PagesOn(hw::MemoryNodeId node) const {
  return static_cast<std::uint64_t>(
      std::count(residency_.begin(), residency_.end(), node));
}

}  // namespace pump::memory
