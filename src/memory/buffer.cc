#include "memory/buffer.h"

#include <sstream>

namespace pump::memory {

const char* MemoryKindToString(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kPageable:
      return "Pageable";
    case MemoryKind::kPinned:
      return "Pinned";
    case MemoryKind::kUnified:
      return "Unified";
    case MemoryKind::kDevice:
      return "Device";
  }
  return "Unknown";
}

Buffer::Buffer(std::uint64_t bytes, MemoryKind kind,
               std::vector<Extent> extents, bool materialize)
    : storage_(materialize && bytes > 0 ? new std::byte[bytes]() : nullptr),
      size_(bytes),
      kind_(kind),
      extents_(std::move(extents)) {}

hw::MemoryNodeId Buffer::home_node() const {
  return extents_.empty() ? hw::kInvalidMemoryNode : extents_.front().node;
}

double Buffer::FractionOnNode(hw::MemoryNodeId node) const {
  if (size_ == 0) return 0.0;
  std::uint64_t on_node = 0;
  for (const Extent& extent : extents_) {
    if (extent.node == node) on_node += extent.bytes;
  }
  return static_cast<double>(on_node) / static_cast<double>(size_);
}

hw::MemoryNodeId Buffer::NodeOfByte(std::uint64_t offset) const {
  std::uint64_t cursor = 0;
  for (const Extent& extent : extents_) {
    cursor += extent.bytes;
    if (offset < cursor) return extent.node;
  }
  return hw::kInvalidMemoryNode;
}

std::string Buffer::ToString() const {
  std::ostringstream os;
  os << "Buffer(" << size_ << " B, " << MemoryKindToString(kind_) << ",";
  for (const Extent& extent : extents_) {
    os << " node" << extent.node << ":" << extent.bytes;
  }
  os << ")";
  return os.str();
}

}  // namespace pump::memory
