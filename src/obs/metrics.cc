#include "obs/metrics.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "bench_support/json_writer.h"
#include "common/cpu_features.h"

namespace pump::obs {

MetricsRegistry& MetricsRegistry::Instance() {
  // Intentionally leaked: counters are bumped from pool threads that can
  // outlive ordinary static-destruction order (exec::Executor::Default()),
  // so the registry must never destruct.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << bench::JsonEscape(name)
        << "\": " << counter->value();
  }
  out << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << bench::JsonEscape(name)
        << "\": {\"count\": " << histogram->count()
        << ", \"sum\": " << histogram->sum() << ", \"buckets\": {";
    bool first_bucket = true;
    for (int b = 0; b <= Histogram::kBuckets; ++b) {
      const std::uint64_t count = histogram->bucket(b);
      if (count == 0) continue;
      if (!first_bucket) out << ", ";
      first_bucket = false;
      out << "\"" << b << "\": " << count;
    }
    out << "}}";
  }
  out << "\n}}\n";
  return out.str();
}

bool MetricsRegistry::WriteSnapshot(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << SnapshotJson();
  return file.good();
}

void EnsureCoreMetrics() {
  static const char* const kCoreCounters[] = {
      // exec::Executor (persistent fork-join pool).
      "exec.dispatches", "exec.tasks_run", "exec.steals", "exec.parks",
      "exec.unparks",
      // exec::WorkStealingDispatcher (hierarchical morsel claiming).
      "exec.ws.chunk_claims", "exec.ws.steals", "exec.ws.drains",
      // exec::RunHeterogeneous (CPU+GPU group scheduler).
      "exec.het.batches", "exec.het.orphaned_batches",
      "exec.het.failover_batches", "exec.het.group_stalls",
      // fault::FaultInjector / fault::RunWithRetry.
      "fault.checks", "fault.injections", "fault.retries",
      // transfer::ExecuteTransfer.
      "transfer.chunks", "transfer.bytes", "transfer.retries",
      "transfer.faults_injected", "transfer.degraded_chunks",
      // plan::ExecutePlan.
      "plan.queries", "plan.pipelines.build", "plan.pipelines.probe",
      "plan.dim_tables_built", "plan.dim_tables_reused",
      "plan.replacements", "plan.morsels",
      // plan::BuildCache (process-wide dimension-table cache).
      "plan.cache.hits", "plan.cache.misses", "plan.cache.evictions",
      "plan.cache.single_flight_waits",
      // plan exchange stage (sharded probes); the per-device and
      // per-route byte gauges (plan.exchange.bytes.dev<d>,
      // plan.exchange.route.d<s>_d<d>.bytes) register dynamically, one
      // per active mesh edge.
      "plan.exchange.partitions", "plan.exchange.bytes",
      // server::QueryEngine (admission / scheduling / cancellation).
      "server.submitted", "server.admitted", "server.shed",
      "server.cancelled", "server.deadline_exceeded",
      "server.degraded_to_cpu", "server.completed", "server.failed",
      // obs::FlightRecorder (incident ring).
      "obs.incidents.captured", "obs.incidents.evicted",
  };
  static const char* const kCoreHistograms[] = {
      "transfer.chunk_bytes",
      "plan.pipeline_us",
      "plan.morsel_tuples",
      "server.queue_depth",
      "server.queue_wait_us",
      "server.query_latency_us",
  };
  MetricsRegistry& registry = MetricsRegistry::Instance();
  for (const char* name : kCoreCounters) (void)registry.GetCounter(name);
  for (const char* name : kCoreHistograms) (void)registry.GetHistogram(name);

  // The process-wide SIMD dispatch decision (common/cpu_features.h),
  // exposed as 0/1 gauges so any metrics snapshot records which probe
  // and partition kernels produced it. cpu.simd.avx512f is report-only:
  // detection exists but nothing dispatches to it (DESIGN.md Sec. 14).
  // Latched once — a later SetForceScalar (tests, benches) is a local
  // experiment, not the process decision.
  static std::once_flag simd_once;
  std::call_once(simd_once, [&registry] {
    const common::CpuFeatures& cpu = common::DetectCpuFeatures();
    const auto set = [&registry](const char* name, bool value) {
      Counter& gauge = registry.GetCounter(name);
      if (value) gauge.Add(1);
    };
    set("cpu.simd.sse42", cpu.sse42);
    set("cpu.simd.avx2", cpu.avx2_usable);
    set("cpu.simd.avx512f", cpu.avx512f);
    set("cpu.simd.dispatch_avx2",
        common::ActiveSimdDispatch() == common::SimdDispatch::kAvx2);
  });
}

}  // namespace pump::obs
