#include "obs/residuals.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_support/json_writer.h"

namespace pump::obs {

namespace {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Extracts the value following `"key":` on `line`; false when absent.
/// Handles exactly the shapes ToJson emits: quoted strings without
/// escaped quotes, and plain numbers.
bool ExtractString(const std::string& line, const std::string& key,
                   std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return false;
  *out = line.substr(begin, end - begin);
  return true;
}

bool ExtractNumber(const std::string& line, const std::string& key,
                   double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + needle.size(), nullptr);
  return true;
}

}  // namespace

double ResidualRatio(double predicted_s, double measured_s) {
  if (!(predicted_s > 0.0) || !(measured_s >= 0.0) ||
      !std::isfinite(predicted_s) || !std::isfinite(measured_s)) {
    return 0.0;
  }
  return measured_s / predicted_s;
}

std::string ToJson(const ResidualReport& report) {
  std::ostringstream out;
  out << "{\"query\":\"" << bench::JsonEscape(report.query)
      << "\",\"policy\":\"" << bench::JsonEscape(report.policy)
      << "\",\"wall_s\":" << JsonNumber(report.wall_s)
      << ",\"model_residuals\":[";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const ResidualRow& row = report.rows[i];
    if (i > 0) out << ",";
    out << "\n {\"pipeline\":\"" << bench::JsonEscape(row.pipeline)
        << "\",\"class\":\"" << bench::JsonEscape(row.pipeline_class)
        << "\",\"placement_planned\":\""
        << bench::JsonEscape(row.placement_planned)
        << "\",\"placement_used\":\""
        << bench::JsonEscape(row.placement_used)
        << "\",\"predicted_s\":" << JsonNumber(row.predicted_s)
        << ",\"measured_s\":" << JsonNumber(row.measured_s)
        << ",\"ratio\":" << JsonNumber(row.ratio) << "}";
  }
  out << "\n]}\n";
  return out.str();
}

Result<ResidualReport> ParseResidualReport(const std::string& json_text) {
  if (json_text.find("\"model_residuals\"") == std::string::npos) {
    return Status::InvalidArgument(
        "not a residual report: no model_residuals section");
  }
  ResidualReport report;
  std::istringstream in(json_text);
  std::string line;
  while (std::getline(in, line)) {
    std::string value;
    if (ExtractString(line, "query", &value)) report.query = value;
    if (ExtractString(line, "policy", &value)) report.policy = value;
    double number = 0.0;
    if (ExtractNumber(line, "wall_s", &number)) report.wall_s = number;
    if (line.find("\"pipeline\"") == std::string::npos) continue;
    ResidualRow row;
    if (!ExtractString(line, "pipeline", &row.pipeline)) continue;
    (void)ExtractString(line, "class", &row.pipeline_class);
    (void)ExtractString(line, "placement_planned", &row.placement_planned);
    (void)ExtractString(line, "placement_used", &row.placement_used);
    (void)ExtractNumber(line, "predicted_s", &row.predicted_s);
    (void)ExtractNumber(line, "measured_s", &row.measured_s);
    (void)ExtractNumber(line, "ratio", &row.ratio);
    report.rows.push_back(std::move(row));
  }
  if (report.rows.empty()) {
    return Status::InvalidArgument(
        "residual report has no parsable pipeline rows");
  }
  return report;
}

Result<ResidualReport> ReadResidualReport(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot read residual report '" + path + "'");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseResidualReport(contents.str());
}

}  // namespace pump::obs
