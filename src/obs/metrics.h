#ifndef PUMP_OBS_METRICS_H_
#define PUMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pump::obs {

/// A process-wide monotonic counter. Additions are relaxed atomic adds —
/// instrumentation sites cache a reference once (function-local static)
/// and never pay a registry lookup on the hot path.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A fixed-bucket log2 histogram over non-negative integer samples
/// (bytes, microseconds, tuples): bucket b counts samples whose bit
/// width is b, i.e. values in [2^(b-1), 2^b). Bucket 0 counts zeros.
/// Thread-safe via relaxed per-bucket atomics; sum/count snapshots are
/// not mutually consistent under concurrent writers (observability, not
/// accounting).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t value) {
    int bucket = 0;
    for (std::uint64_t v = value; v != 0; v >>= 1) ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& bucket : buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets + 1] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide named metrics: counters and histograms registered on
/// first use, with stable addresses for the lifetime of the process. One
/// snapshot call serializes everything (JSON, bench_support conventions)
/// — this is where the formerly scattered ad-hoc stats of the executor,
/// dispatchers, fault injector and transfer engine now live.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Returns the counter/histogram registered under `name`, creating it
  /// on first use. References stay valid forever.
  Counter& GetCounter(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Resets every metric to zero (tests; metrics stay registered).
  void ResetAll();

  /// All counters as (name, value), sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> Counters() const;

  /// Serializes every metric:
  /// {"counters":{name:value,...},
  ///  "histograms":{name:{"count":..,"sum":..,
  ///                      "buckets":{"<bit-width>":count,...}},...}}
  std::string SnapshotJson() const;

  /// Writes SnapshotJson() to `path`; false when it cannot be written.
  bool WriteSnapshot(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Registers the canonical counters of every instrumented layer, so a
/// metrics snapshot always contains the executor/dispatcher/fault/
/// transfer/plan families even for code paths the current query did not
/// take (a counter that never fired reads 0 instead of being absent).
void EnsureCoreMetrics();

}  // namespace pump::obs

#endif  // PUMP_OBS_METRICS_H_
