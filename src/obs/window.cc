#include "obs/window.h"

#include <algorithm>
#include <chrono>

namespace pump::obs {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Upper bound of log2 bucket b: the largest value whose bit width is b
/// (bucket 0 holds only zeros).
std::uint64_t BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~0ull;
  return (1ull << b) - 1;
}

}  // namespace

SlidingWindow::SlidingWindow(std::uint64_t window_ns, std::size_t slots)
    : slot_ns_(std::max<std::uint64_t>(
          1, window_ns / std::max<std::size_t>(1, slots))),
      slots_(std::max<std::size_t>(1, slots)) {}

void SlidingWindow::Record(std::uint64_t value) { Record(value, NowNs()); }

void SlidingWindow::Record(std::uint64_t value, std::uint64_t now_ns) {
  const std::uint64_t epoch = now_ns / slot_ns_;
  int bucket = 0;
  for (std::uint64_t v = value; v != 0; v >>= 1) ++bucket;
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[epoch % slots_.size()];
  if (slot.epoch != epoch) {
    // The slot's previous epoch rolled out of the window; reclaim it for
    // the current one (lazy expiry).
    slot = Slot{};
    slot.epoch = epoch;
  }
  ++slot.count;
  slot.sum += value;
  ++slot.buckets[bucket];
}

SlidingWindow::Aggregate SlidingWindow::Aggregated() const {
  return Aggregated(NowNs());
}

SlidingWindow::Aggregate SlidingWindow::Aggregated(
    std::uint64_t now_ns) const {
  const std::uint64_t epoch = now_ns / slot_ns_;
  Aggregate out;
  out.window_ns = window_ns();
  std::uint64_t buckets[kBuckets + 1] = {};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Slot& slot : slots_) {
      // A slot is live when its epoch lies inside the window ending at
      // `now` (the current epoch and the slots_.size()-1 before it).
      if (slot.epoch + slots_.size() <= epoch || slot.epoch > epoch) {
        continue;
      }
      out.count += slot.count;
      out.sum += slot.sum;
      for (int b = 0; b <= kBuckets; ++b) buckets[b] += slot.buckets[b];
    }
  }
  if (out.count > 0) {
    const auto quantile = [&](double q) -> std::uint64_t {
      const std::uint64_t rank = static_cast<std::uint64_t>(
          q * static_cast<double>(out.count - 1)) + 1;
      std::uint64_t seen = 0;
      for (int b = 0; b <= kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) return BucketUpperBound(b);
      }
      return BucketUpperBound(kBuckets);
    };
    out.p50 = quantile(0.50);
    out.p99 = quantile(0.99);
  }
  out.rate_per_s = static_cast<double>(out.count) /
                   (static_cast<double>(out.window_ns) * 1e-9);
  return out;
}

}  // namespace pump::obs
