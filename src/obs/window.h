#ifndef PUMP_OBS_WINDOW_H_
#define PUMP_OBS_WINDOW_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace pump::obs {

/// A sliding-window log2 histogram: the windowed view behind the
/// engine's live p50/p99 latency and qps gauges. The window is divided
/// into fixed slots; each slot holds a log2-bucket histogram (same
/// bucketing as obs::Histogram — bucket b counts samples of bit width b,
/// bucket 0 counts zeros) tagged with the epoch it covers. Recording
/// lazily resets a slot whose epoch has rolled past, so expiry costs
/// nothing between samples and the aggregate never reads data older
/// than the window.
///
/// Mutex-protected: the recording rate is once per query resolution,
/// orders of magnitude below any contention-relevant rate. Quantiles
/// are bucket upper bounds (2^b - 1) — exact enough for SLO gating on a
/// log scale, and stable under merge.
///
/// The `now_ns` overloads exist for deterministic tests; production
/// callers use the clock-reading forms.
class SlidingWindow {
 public:
  /// `window_ns` of history split across `slots` (window_ns / slots per
  /// slot). Defaults: 60 s across 12 slots of 5 s.
  explicit SlidingWindow(std::uint64_t window_ns = 60ull * 1'000'000'000,
                         std::size_t slots = 12);

  void Record(std::uint64_t value);
  void Record(std::uint64_t value, std::uint64_t now_ns);

  struct Aggregate {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Bucket-upper-bound quantiles over the retained window; 0 when
    /// the window is empty.
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    /// count / window seconds — the windowed event rate (qps when the
    /// samples are query latencies, one per resolution).
    double rate_per_s = 0.0;
    std::uint64_t window_ns = 0;
  };

  Aggregate Aggregated() const;
  Aggregate Aggregated(std::uint64_t now_ns) const;

  std::uint64_t window_ns() const { return slot_ns_ * slots_.size(); }

 private:
  static constexpr int kBuckets = 64;

  struct Slot {
    std::uint64_t epoch = 0;  // now_ns / slot_ns of the data it holds.
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t buckets[kBuckets + 1] = {};
  };

  const std::uint64_t slot_ns_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

}  // namespace pump::obs

#endif  // PUMP_OBS_WINDOW_H_
