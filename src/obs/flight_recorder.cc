#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench_support/json_writer.h"
#include "obs/metrics.h"

namespace pump::obs {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RecorderMetrics {
  Counter& captured;
  Counter& evicted;
};

RecorderMetrics& Metrics() {
  static RecorderMetrics metrics{
      MetricsRegistry::Instance().GetCounter("obs.incidents.captured"),
      MetricsRegistry::Instance().GetCounter("obs.incidents.evicted")};
  return metrics;
}

std::string JsonNumber(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::size_t trace_tail_events)
    : capacity_(std::max<std::size_t>(1, capacity)),
      trace_tail_events_(trace_tail_events) {}

void FlightRecorder::Capture(Incident incident) {
  if (incident.captured_ts_ns == 0) incident.captured_ts_ns = NowNs();
  if (incident.trace_tail.empty() && incident.query_id != 0 &&
      trace_tail_events_ > 0) {
    // Gather the query's stamped events across every thread ring, merge
    // by timestamp, keep the newest `trace_tail_events_`. The snapshot
    // is quiescent with respect to this query — its handle has resolved,
    // so its workers recorded their last event before we got here.
    struct Tailed {
      TraceEvent event;
      std::uint32_t tid = 0;
    };
    std::vector<Tailed> tail;
    for (const ThreadTrace& thread : TraceRecorder::Instance().Snapshot()) {
      for (const TraceEvent& event : thread.events) {
        if (event.query_id == incident.query_id) {
          tail.push_back({event, thread.tid});
        }
      }
    }
    std::stable_sort(tail.begin(), tail.end(),
                     [](const Tailed& a, const Tailed& b) {
                       return a.event.ts_ns < b.event.ts_ns;
                     });
    const std::size_t keep = std::min(trace_tail_events_, tail.size());
    incident.trace_tail.reserve(keep);
    incident.trace_tail_tids.reserve(keep);
    for (std::size_t i = tail.size() - keep; i < tail.size(); ++i) {
      incident.trace_tail.push_back(tail[i].event);
      incident.trace_tail_tids.push_back(tail[i].tid);
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.captured;
  ++stats_.captured_by_kind[incident.kind];
  Metrics().captured.Add();
  while (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++stats_.evicted;
    Metrics().evicted.Add();
  }
  ring_.push_back(std::move(incident));
}

std::vector<Incident> FlightRecorder::Incidents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

FlightRecorder::Stats FlightRecorder::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string FlightRecorder::IncidentJson(const Incident& incident) {
  std::ostringstream out;
  out << "{\"query_id\":" << incident.query_id << ",\"kind\":\""
      << bench::JsonEscape(incident.kind) << "\",\"status\":\""
      << bench::JsonEscape(incident.status) << "\",\"tag\":\""
      << bench::JsonEscape(incident.tag)
      << "\",\"captured_ts_ns\":" << incident.captured_ts_ns
      << ",\"latency_us\":" << incident.latency_us
      << ",\"queue_wait_us\":" << incident.queue_wait_us;
  out << ",\"metrics_delta\":{";
  bool first = true;
  for (const auto& [name, delta] : incident.metrics_delta) {
    if (!first) out << ",";
    first = false;
    out << "\"" << bench::JsonEscape(name) << "\":" << delta;
  }
  out << "},\"trace_tail\":[";
  first = true;
  for (std::size_t i = 0; i < incident.trace_tail.size(); ++i) {
    const TraceEvent& event = incident.trace_tail[i];
    const std::uint32_t tid = i < incident.trace_tail_tids.size()
                                  ? incident.trace_tail_tids[i]
                                  : 0;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << bench::JsonEscape(event.name) << "\",\"ph\":\""
        << event.phase << "\",\"cat\":\"" << ToString(event.category)
        << "\",\"ts_ns\":" << event.ts_ns << ",\"tid\":" << tid
        << ",\"qid\":" << event.query_id;
    if (event.shard >= 0) out << ",\"shard\":" << event.shard;
    if (event.has_args) {
      out << ",\"a0\":" << JsonNumber(event.arg0)
          << ",\"a1\":" << JsonNumber(event.arg1);
    }
    out << "}";
  }
  out << "]";
  // The plan dump and report rows are pre-serialized JSON; embed them as
  // values (empty string -> null, so the artifact always parses).
  out << ",\"plan\":" << (incident.plan_json.empty() ? "null"
                                                     : incident.plan_json);
  out << ",\"report\":"
      << (incident.report_json.empty() ? "null" : incident.report_json);
  out << "}";
  return out.str();
}

std::string FlightRecorder::ToJson() const {
  const std::vector<Incident> incidents = Incidents();
  const Stats snapshot = stats();
  std::ostringstream out;
  out << "{\"captured\":" << snapshot.captured
      << ",\"evicted\":" << snapshot.evicted << ",\"incidents\":[\n";
  bool first = true;
  for (const Incident& incident : incidents) {
    if (!first) out << ",\n";
    first = false;
    out << IncidentJson(incident);
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace pump::obs
