#ifndef PUMP_OBS_QUERY_CONTEXT_H_
#define PUMP_OBS_QUERY_CONTEXT_H_

#include <cstdint>

namespace pump::obs {

/// Thread-local query attribution: which query (and, inside a sharded
/// probe, which shard) the current thread is working for. The serving
/// layer installs it at the top of a query's execution, the persistent
/// executor forwards it to every pool thread it dispatches a slot to,
/// and the trace recorder stamps it onto every event — that stamp is
/// what lets `tracedump --query-id N` reassemble one query's causal
/// timeline out of per-thread rings shared by many concurrent queries.
///
/// query_id 0 means "no query" (solo tools, tests, idle pool threads);
/// shard -1 means "not inside a sharded probe".
struct QueryContext {
  std::uint64_t query_id = 0;
  std::int32_t shard = -1;
};

/// The calling thread's current context (mutable reference; prefer the
/// RAII scopes below over writing it directly).
inline QueryContext& CurrentQueryContext() {
  thread_local QueryContext context;
  return context;
}

/// Installs `context` for the enclosing scope and restores the previous
/// context on exit. Used by the serving layer (whole-query scope), the
/// executor (per-slot scope on pool threads) and the sharded probe
/// (per-shard scope).
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext context)
      : saved_(CurrentQueryContext()) {
    CurrentQueryContext() = context;
  }
  ~ScopedQueryContext() { CurrentQueryContext() = saved_; }
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext saved_;
};

/// Sets only the shard field, keeping the query id (the sharded probe
/// runs shard s of the already-installed query).
class ScopedShard {
 public:
  explicit ScopedShard(std::int32_t shard)
      : saved_(CurrentQueryContext().shard) {
    CurrentQueryContext().shard = shard;
  }
  ~ScopedShard() { CurrentQueryContext().shard = saved_; }
  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

 private:
  std::int32_t saved_;
};

}  // namespace pump::obs

#endif  // PUMP_OBS_QUERY_CONTEXT_H_
