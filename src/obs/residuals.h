#ifndef PUMP_OBS_RESIDUALS_H_
#define PUMP_OBS_RESIDUALS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pump::obs {

/// One pipeline's model-vs-measured comparison: the Advisor/cost-model
/// prediction attached to the physical plan at compile time against the
/// span-measured execution time. `ratio` is measured/predicted (0 when no
/// prediction was recorded, i.e. the plan was compiled without the
/// cost-model policy).
struct ResidualRow {
  std::string pipeline;           // "ssb-q3/build[0]", "ssb-q3/probe", ...
  std::string pipeline_class;     // "build" | "probe" | "probe_simd"
  std::string placement_planned;  // "cpu" | "gpu" | "heterogeneous"
  std::string placement_used;
  double predicted_s = 0.0;
  double measured_s = 0.0;
  double ratio = 0.0;
};

/// A recorded residual report: cost-model drift as a first-class,
/// regression-testable artifact (emitted by tools/tracedump, linted by
/// tools/modelcheck --residuals).
struct ResidualReport {
  std::string query;   // Query name, or "all" for a suite run.
  std::string policy;  // Placement policy the plans were compiled under.
  double wall_s = 0.0;
  std::vector<ResidualRow> rows;
};

/// measured/predicted with the degenerate cases pinned: 0 when the model
/// made no prediction (predicted <= 0) or the measurement is unusable.
double ResidualRatio(double predicted_s, double measured_s);

/// Serializes the report. Rows are emitted one per line so the linter's
/// minimal parser (and grep) can consume them without a JSON library:
/// {"query":..,"policy":..,"wall_s":..,"model_residuals":[
///  {"pipeline":..,"class":..,"placement_planned":..,"placement_used":..,
///   "predicted_s":..,"measured_s":..,"ratio":..},...]}
std::string ToJson(const ResidualReport& report);

/// Parses a report previously produced by ToJson. Tolerant key-value
/// extraction (not a general JSON parser): unknown keys are ignored,
/// missing keys default. Fails when no model_residuals section or no
/// parsable rows are found.
Result<ResidualReport> ParseResidualReport(const std::string& json_text);

/// Reads and parses `path`.
Result<ResidualReport> ReadResidualReport(const std::string& path);

}  // namespace pump::obs

#endif  // PUMP_OBS_RESIDUALS_H_
