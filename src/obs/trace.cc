#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_support/json_writer.h"
#include "obs/query_context.h"
#include "verify/mutation.h"

namespace pump::obs {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Formats a double arg for JSON (finite, round-trippable).
std::string JsonNumber(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendEvent(const TraceEvent& event, std::uint32_t tid, bool first,
                 std::ostringstream* out) {
  if (!first) *out << ",\n";
  // Chrome trace timestamps are microseconds; keep sub-us resolution.
  *out << "{\"name\":\"" << bench::JsonEscape(event.name)
       << "\",\"cat\":\"" << ToString(event.category) << "\",\"ph\":\""
       << event.phase << "\",\"ts\":"
       << JsonNumber(static_cast<double>(event.ts_ns) / 1000.0)
       << ",\"pid\":1,\"tid\":" << tid;
  // Query attribution, only when present — untagged traces (solo tools,
  // tests) serialize byte-identically to the pre-context format.
  if (event.query_id != 0) *out << ",\"qid\":" << event.query_id;
  if (event.shard >= 0) *out << ",\"shard\":" << event.shard;
  if (event.phase == 'i') *out << ",\"s\":\"t\"";
  if (event.has_args) {
    *out << ",\"args\":{\"a0\":" << JsonNumber(event.arg0)
         << ",\"a1\":" << JsonNumber(event.arg1) << "}";
  }
  *out << "}";
}

}  // namespace

const char* ToString(TraceCategory category) {
  switch (category) {
    case TraceCategory::kEngine:
      return "engine";
    case TraceCategory::kPlan:
      return "plan";
    case TraceCategory::kExec:
      return "exec";
    case TraceCategory::kTransfer:
      return "transfer";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kHash:
      return "hash";
    case TraceCategory::kTool:
      return "tool";
  }
  return "?";
}

namespace {
std::uint64_t NextRecorderId() {
  // verify-exempt: process-wide id generator, shared across model and
  // non-model threads; deliberately not model state (ids never branch
  // model behaviour, so determinism and replay are unaffected).
  static std::atomic<std::uint64_t> next{1};  // verify-exempt
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TraceRecorder::TraceRecorder(std::size_t ring_capacity)
    : ring_capacity_(std::max<std::size_t>(16, ring_capacity)),
      recorder_id_(NextRecorderId()) {
  verify::NamedMutex(&mutex_, "obs.trace.registry");
}

TraceRecorder& TraceRecorder::Instance() {
  // Intentionally leaked: spans can fire from pool threads during static
  // destruction (e.g. exec::Executor::Default() tearing down), so the
  // recorder must outlive every other static.
  static TraceRecorder* recorder = new TraceRecorder(kDefaultRingCapacity);
  return *recorder;
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  // One ring per (thread, recorder): registered once, never deallocated
  // (Clear only rewinds cursors), so the cached pointer stays valid for
  // detached pool threads that outlive individual queries. The cache is
  // validated against the recorder id, not the pointer — a short-lived
  // recorder (model runs, tests) could otherwise recycle the address of
  // a destroyed one and hand this thread a dangling ring.
  struct Cache {
    std::uint64_t recorder_id = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.ring == nullptr || cache.recorder_id != recorder_id_) {
    std::lock_guard<verify::Mutex> lock(mutex_);
    rings_.push_back(std::make_unique<Ring>());
    cache.ring = rings_.back().get();
    cache.recorder_id = recorder_id_;
    cache.ring->tid = static_cast<std::uint32_t>(rings_.size());
    cache.ring->slots.resize(ring_capacity_);
  }
  return cache.ring;
}

void TraceRecorder::Record(TraceCategory category, const char* name,
                           char phase, double arg0, double arg1,
                           bool has_args) {
  Ring* ring = ThreadRing();
  const std::uint64_t count = ring->count.load(std::memory_order_relaxed);
  TraceEvent& slot = ring->slots[count % ring_capacity_];
  if (PUMP_VERIFY_MUTATE("obs.trace.count_before_slot")) {
    // Seeded bug: the count is published before the slot is written, so
    // a reader that trusts the count can observe an uninitialized slot —
    // the trace model's snapshot invariant catches the torn window.
    ring->count.store(count + 1, std::memory_order_release);
  }
  const QueryContext& context = CurrentQueryContext();
  slot.ts_ns = NowNs();
  slot.name = name;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  slot.query_id = context.query_id;
  slot.shard = context.shard;
  slot.category = category;
  slot.phase = phase;
  slot.has_args = has_args;
  if (PUMP_VERIFY_MUTATE("obs.trace.count_before_slot")) return;
  // Publish: a quiescent reader that acquires `count` sees the slot write.
  ring->count.store(count + 1, std::memory_order_release);
}

void TraceRecorder::Clear() {
  std::lock_guard<verify::Mutex> lock(mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
  }
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard<verify::Mutex> lock(mutex_);
  return rings_.size();
}

std::vector<ThreadTrace> TraceRecorder::Snapshot() const {
  std::lock_guard<verify::Mutex> lock(mutex_);
  std::vector<ThreadTrace> traces;
  traces.reserve(rings_.size());
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::uint64_t count = ring->count.load(std::memory_order_acquire);
    if (count == 0) continue;
    ThreadTrace trace;
    trace.tid = ring->tid;
    const std::uint64_t retained =
        std::min<std::uint64_t>(count, ring_capacity_);
    trace.dropped = count - retained;
    trace.events.reserve(static_cast<std::size_t>(retained));
    // Oldest retained event first: the ring slot the next write would
    // overwrite is exactly the oldest one.
    for (std::uint64_t i = count - retained; i < count; ++i) {
      trace.events.push_back(ring->slots[i % ring_capacity_]);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::string TraceRecorder::ToChromeJson(std::uint64_t query_filter) const {
  const std::vector<ThreadTrace> traces = Snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (const ThreadTrace& trace : traces) {
    // Select the thread's events for the requested query (filter 0 keeps
    // everything, byte-identical to the pre-filter export). One query's
    // events on one thread are contiguous in program order — the context
    // scope brackets the spans it stamps — so the repair below sees the
    // same well-nested structure a dedicated ring would have held.
    std::vector<const TraceEvent*> selected;
    selected.reserve(trace.events.size());
    for (const TraceEvent& event : trace.events) {
      if (query_filter == 0 || event.query_id == query_filter) {
        selected.push_back(&event);
      }
    }
    // Repair the retained window so every 'B' has a matching 'E': drop
    // 'E's whose 'B' the wrap discarded, close spans still open at the
    // end. Ring order is program order per thread, so a simple depth
    // counter suffices.
    std::uint64_t depth = 0;
    std::vector<const TraceEvent*> kept;
    kept.reserve(selected.size());
    for (const TraceEvent* event : selected) {
      if (event->phase == 'B') {
        ++depth;
      } else if (event->phase == 'E') {
        if (depth == 0) continue;  // Opener lost to the wrap.
        --depth;
      }
      kept.push_back(event);
    }
    for (const TraceEvent* event : kept) {
      AppendEvent(*event, trace.tid, first, &out);
      first = false;
    }
    if (depth > 0 && !selected.empty()) {
      // Synthetic closers for spans open at snapshot time, innermost
      // first (reverse nesting order keeps the B/E stack balanced).
      std::vector<const TraceEvent*> open;
      for (const TraceEvent* event : kept) {
        if (event->phase == 'B') {
          open.push_back(event);
        } else if (event->phase == 'E' && !open.empty()) {
          open.pop_back();
        }
      }
      const std::uint64_t last_ts = selected.back()->ts_ns;
      for (auto it = open.rbegin(); it != open.rend(); ++it) {
        TraceEvent closer = **it;
        closer.phase = 'E';
        closer.ts_ns = last_ts;
        closer.has_args = false;
        AppendEvent(closer, trace.tid, first, &out);
        first = false;
      }
    }
  }
  out << "\n]}\n";
  return out.str();
}

bool TraceRecorder::WriteChromeJson(const std::string& path,
                                    std::uint64_t query_filter) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToChromeJson(query_filter);
  return file.good();
}

}  // namespace pump::obs
