#ifndef PUMP_OBS_FLIGHT_RECORDER_H_
#define PUMP_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace pump::obs {

/// One captured incident: a self-contained post-mortem artifact for a
/// query that resolved abnormally (fault-ladder exhaustion, deadline
/// expiry, cancellation, poison containment). Everything a later reader
/// needs is copied in at capture time — the plan dump, the failed
/// attempt's pipeline rows, the query's trace tail, and the counter
/// deltas its execution charged — so the artifact stays meaningful after
/// the engine, the plan and the rings have moved on.
struct Incident {
  std::uint64_t query_id = 0;
  /// "fault_ladder_exhausted" | "cancelled" | "deadline_expired".
  std::string kind;
  /// The terminal status the handle resolved with.
  std::string status;
  /// The submit tag (workload label) of the query, when provided.
  std::string tag;
  /// plan::ToJson of the compiled plan.
  std::string plan_json;
  /// JSON array of the failed attempt's PipelineOutcome rows (composed
  /// by the serving layer — obs sits below the engine types).
  std::string report_json;
  /// Counters that moved while the query ran: (name, delta), nonzero
  /// entries only. Process-wide counters, so concurrent siblings bleed
  /// in — a bounded attribution, exact when the query ran alone.
  std::vector<std::pair<std::string, std::int64_t>> metrics_delta;
  /// The query's last trace events (its stamped events across all
  /// thread rings, merged by timestamp), newest last; empty when the
  /// recorder was disabled. tids parallel to events.
  std::vector<TraceEvent> trace_tail;
  std::vector<std::uint32_t> trace_tail_tids;
  std::uint64_t captured_ts_ns = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t queue_wait_us = 0;
};

/// Bounded in-process incident ring: keeps the most recent `capacity`
/// incidents, evicting the oldest (LRU == FIFO here — incidents are
/// never re-referenced). Capture fills the trace tail itself from the
/// process trace recorder, filtered to the incident's query id, so
/// callers only supply what the obs layer cannot see (plan dump, report
/// rows, metrics delta).
///
/// Thread-safe; capture runs outside any engine lock.
class FlightRecorder {
 public:
  struct Stats {
    /// Total incidents ever captured (retained + evicted).
    std::uint64_t captured = 0;
    /// Incidents evicted by the ring bound.
    std::uint64_t evicted = 0;
    std::map<std::string, std::uint64_t> captured_by_kind;
  };

  explicit FlightRecorder(std::size_t capacity = 32,
                          std::size_t trace_tail_events = 256);

  /// Captures `incident` into the ring. When `incident.trace_tail` is
  /// empty, fills it with the query's last `trace_tail_events` stamped
  /// events from the process trace recorder (no-op when tracing is off
  /// or the query recorded nothing).
  void Capture(Incident incident);

  /// Retained incidents, oldest first.
  std::vector<Incident> Incidents() const;

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }

  /// {"incidents":[...]} over the retained ring.
  std::string ToJson() const;
  /// One incident as a JSON object.
  static std::string IncidentJson(const Incident& incident);

 private:
  const std::size_t capacity_;
  const std::size_t trace_tail_events_;
  mutable std::mutex mutex_;
  std::deque<Incident> ring_;
  Stats stats_;
};

}  // namespace pump::obs

#endif  // PUMP_OBS_FLIGHT_RECORDER_H_
