#ifndef PUMP_OBS_TRACE_H_
#define PUMP_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "verify/sync.h"

/// Compile-time gate of the trace recorder. The build defines
/// PUMP_TRACE_ENABLED=1 by default (CMake option PUMP_TRACE); with the
/// option off the span/instant macros below expand to nothing and the
/// recorder is never referenced from instrumented code, so tracing has
/// exactly zero cost in that configuration. With tracing compiled in but
/// runtime-disabled (the default state), a span costs one relaxed atomic
/// load per macro — the ≤5% micro_engine overhead budget (DESIGN.md
/// Sec. 11) is enforced against that state.
#ifndef PUMP_TRACE_ENABLED
#define PUMP_TRACE_ENABLED 0
#endif

namespace pump::obs {

/// Event categories, one per instrumented subsystem. Exported as the
/// Chrome trace `cat` field so Perfetto can filter per layer.
enum class TraceCategory : std::uint8_t {
  kEngine,
  kPlan,
  kExec,
  kTransfer,
  kFault,
  kHash,
  kTool
};

const char* ToString(TraceCategory category);

/// One ring-buffer slot: a begin ('B'), end ('E') or instant ('i') event.
/// `name` must be a string literal (the ring stores the pointer, never the
/// characters); the two numeric args carry event-specific payload (bytes,
/// node ids, morsel bounds, ...) documented at each instrumentation site.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  // steady_clock ticks, nanoseconds.
  const char* name = nullptr;
  double arg0 = 0.0;
  double arg1 = 0.0;
  /// Query attribution, stamped by Record from the thread's
  /// obs::QueryContext: which query (0 = none) and which shard (-1 =
  /// none) this event belongs to. The stamp is what correlates one
  /// query's events across the per-thread rings of a concurrent engine.
  std::uint64_t query_id = 0;
  std::int32_t shard = -1;
  TraceCategory category = TraceCategory::kEngine;
  char phase = 'i';
  bool has_args = false;
};

/// Chronological snapshot of one worker's ring: the retained window (the
/// most recent `events.size()` records) plus how many older events the
/// wrap dropped.
struct ThreadTrace {
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// Process-wide trace recorder: per-thread single-writer ring buffers of
/// begin/end/instant events. Recording is lock-free (one relaxed counter
/// bump and a slot write; the registry mutex is only taken once per
/// thread, at first use). Snapshot/export require writer quiescence —
/// they are meant to run after a query completes, which is when the
/// executor's fork-join barrier guarantees exactly that.
///
/// The recorder is enabled at runtime via Enable(); every instrumentation
/// macro first checks the (relaxed, inline) enabled flag, so disabled
/// tracing costs a predicted branch per site.
class TraceRecorder {
 public:
  /// Events retained per thread before the ring wraps.
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 15;

  /// A private recorder with its own (small) rings — model-checker runs
  /// and tests use this instead of the process-wide instance so
  /// thousands of explored schedules do not accumulate global rings.
  /// Capacities below 16 are clamped to 16.
  explicit TraceRecorder(std::size_t ring_capacity);

  /// The process-wide recorder used by the macros.
  static TraceRecorder& Instance();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event to the calling thread's ring (regardless of the
  /// enabled flag — callers check it first via the macros).
  void Record(TraceCategory category, const char* name, char phase,
              double arg0 = 0.0, double arg1 = 0.0, bool has_args = false);

  /// Resets every ring's cursor. Buffers stay registered and alive, so
  /// thread-local pointers held by long-lived pool threads remain valid.
  void Clear();

  /// Quiescent chronological snapshot of every thread's retained window.
  std::vector<ThreadTrace> Snapshot() const;

  /// Serializes the snapshot as Chrome `trace_event` JSON (an object with
  /// a `traceEvents` array, loadable in chrome://tracing and Perfetto).
  /// Unmatched events at the retained window's edges are repaired: 'E'
  /// events whose 'B' was overwritten by the wrap are dropped, spans still
  /// open at snapshot time get a synthetic 'E' at their thread's last
  /// timestamp — every exported 'B' has a matching 'E' by construction.
  std::string ToChromeJson() const { return ToChromeJson(0); }

  /// Filtered export: keeps only events stamped with `query_filter`
  /// (0 = no filter, byte-identical to the unfiltered export). The B/E
  /// repair runs on the filtered per-thread sequence — a thread's events
  /// for one query form a balanced contiguous-in-program-order
  /// subsequence, because the context scope brackets the spans it covers.
  std::string ToChromeJson(std::uint64_t query_filter) const;

  /// Writes ToChromeJson(query_filter) to `path`; false when the file
  /// cannot be written.
  bool WriteChromeJson(const std::string& path,
                       std::uint64_t query_filter = 0) const;

  std::size_t ring_capacity() const { return ring_capacity_; }
  /// Threads that have recorded at least one event since process start.
  std::size_t thread_count() const;

 private:
  struct Ring {
    std::uint32_t tid = 0;
    /// verify::Atomic = std::atomic in normal builds; under PUMP_VERIFY
    /// the model checker explores the slot-write/count-publish window.
    verify::Atomic<std::uint64_t> count{0};
    std::vector<TraceEvent> slots;
  };

  Ring* ThreadRing();

  const std::size_t ring_capacity_;
  /// Distinguishes recorder instances in the per-thread ring cache (a
  /// new recorder at a recycled address must not inherit stale rings).
  const std::uint64_t recorder_id_;
  mutable verify::Mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;

  // Process-wide toggle shared by model and non-model threads; model
  // runs never flip it, so it stays a raw atomic on purpose.
  static inline std::atomic<bool> enabled_{false};  // verify-exempt
};

/// RAII span: records 'B' at construction and 'E' at destruction on the
/// same thread, so per-thread ring order is exactly the nesting order.
class TraceSpan {
 public:
  TraceSpan(TraceCategory category, const char* name)
      : active_(TraceRecorder::Enabled()), category_(category), name_(name) {
    if (active_) {
      TraceRecorder::Instance().Record(category_, name_, 'B');
    }
  }
  TraceSpan(TraceCategory category, const char* name, double arg0,
            double arg1)
      : active_(TraceRecorder::Enabled()), category_(category), name_(name) {
    if (active_) {
      TraceRecorder::Instance().Record(category_, name_, 'B', arg0, arg1,
                                       /*has_args=*/true);
    }
  }
  ~TraceSpan() {
    if (active_) {
      TraceRecorder::Instance().Record(category_, name_, 'E');
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  TraceCategory category_;
  const char* name_;
};

/// Records a zero-duration instant event (fault fired, retry charged,
/// pipeline re-placed, ...).
inline void TraceInstant(TraceCategory category, const char* name,
                         double arg0 = 0.0, double arg1 = 0.0) {
  if (TraceRecorder::Enabled()) {
    TraceRecorder::Instance().Record(category, name, 'i', arg0, arg1,
                                     /*has_args=*/true);
  }
}

}  // namespace pump::obs

#define PUMP_TRACE_CONCAT_INNER_(a, b) a##b
#define PUMP_TRACE_CONCAT_(a, b) PUMP_TRACE_CONCAT_INNER_(a, b)

#if PUMP_TRACE_ENABLED
/// Opens an RAII span for the rest of the enclosing scope.
#define PUMP_TRACE_SPAN(...)                                        \
  ::pump::obs::TraceSpan PUMP_TRACE_CONCAT_(pump_trace_span_,       \
                                            __COUNTER__)(__VA_ARGS__)
/// Records an instant event.
#define PUMP_TRACE_INSTANT(...) ::pump::obs::TraceInstant(__VA_ARGS__)
#else
#define PUMP_TRACE_SPAN(...) ((void)0)
#define PUMP_TRACE_INSTANT(...) ((void)0)
#endif

#endif  // PUMP_OBS_TRACE_H_
