#include "verify/models.h"

#if defined(PUMP_VERIFY) && PUMP_VERIFY

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "engine/table.h"
#include "exec/morsel.h"
#include "exec/work_stealing.h"
#include "obs/trace.h"
#include "plan/build_cache.h"
#include "plan/operators.h"
#include "plan/plan.h"
#include "server/query_engine.h"
#include "verify/mutation.h"
#include "verify/sync.h"

namespace pump::verify {

namespace {

// ---------------------------------------------------------------------
// Shared fixtures. Built once, outside any model run, and only ever read
// by model bodies — fixture state carries no verify:: primitives, so it
// adds no sequence points.

struct CacheFixture {
  engine::Table dim_a;
  engine::Table dim_b;
  engine::Table poison;
  plan::BuildPipeline good_a;
  plan::BuildPipeline good_b;
  plan::BuildPipeline bad;
};

plan::BuildPipeline PipelineFor(const engine::Table& dim,
                                std::uint64_t table_bytes) {
  plan::BuildPipeline build;
  build.dimension = &dim;
  build.key_column = "pk";
  build.table_kind = plan::HashTableKind::kLinearProbing;
  build.keys.rows = dim.rows();
  build.table_bytes = table_bytes;
  return build;
}

const CacheFixture& Cache() {
  static const CacheFixture* fixture = [] {
    auto* f = new CacheFixture();
    (void)f->dim_a.AddColumn("pk", {0, 1, 2, 3});
    (void)f->dim_b.AddColumn("pk", {10, 11, 12});
    // Duplicate key: DimensionTable::Build fails with kAlreadyExists.
    (void)f->poison.AddColumn("pk", {0, 1, 1});
    f->good_a = PipelineFor(f->dim_a, 64);
    f->good_b = PipelineFor(f->dim_b, 64);
    f->bad = PipelineFor(f->poison, 64);
    return f;
  }();
  return *fixture;
}

struct ServerFixture {
  engine::Table fact;
  engine::Table dim;
  engine::Query query;
};

const ServerFixture& Server() {
  static const ServerFixture* fixture = [] {
    auto* f = new ServerFixture();
    (void)f->fact.AddColumn("fk", {0, 1, 2, 0, 1, 2});
    (void)f->fact.AddColumn("m", {1, 2, 3, 4, 5, 6});
    (void)f->dim.AddColumn("pk", {0, 1, 2});
    f->query.fact = &f->fact;
    // Move-assign dodges a GCC 12 -Wrestrict false positive on the
    // inlined literal assign.
    f->query.measure_column = std::string("m");
    f->query.joins.push_back(
        engine::JoinClause{"fk", &f->dim, "pk", {}, false});
    return f;
  }();
  return *fixture;
}

// ---------------------------------------------------------------------
// plan::BuildCache — single-flight handoff: concurrent misses on one key
// build once and agree on the table.

void BuildCacheSingleFlightModel() {
  plan::BuildCache cache(1 << 20);
  const plan::BuildPipeline& build = Cache().good_a;
  Result<std::shared_ptr<const plan::DimensionTable>> got_a =
      Status::Internal("unset");
  Thread worker([&] { got_a = cache.GetOrBuild(build); });
  Result<std::shared_ptr<const plan::DimensionTable>> got_b =
      cache.GetOrBuild(build);
  worker.join();

  VERIFY_INVARIANT(got_a.ok() && got_b.ok(),
                   "single-flight build of a valid pipeline failed");
  VERIFY_INVARIANT(got_a.value().get() == got_b.value().get(),
                   "concurrent misses on one key produced distinct tables");
  VERIFY_INVARIANT(got_a.value()->entries() == 4,
                   "built dimension table lost keys");
  const plan::BuildCache::Stats stats = cache.stats();
  VERIFY_INVARIANT(stats.entries == 1,
                   "one key must leave exactly one resident entry");
  VERIFY_INVARIANT(stats.single_flight_waits + 1 == stats.misses,
                   "miss accounting: every miss is one builder or one "
                   "single-flight wait");
}

// plan::BuildCache — failure propagation: a failed build reports its
// error to every concurrent requester (never the placeholder status) and
// clears the in-flight slot so a retry builds fresh.

void BuildCacheFailureModel() {
  plan::BuildCache cache(1 << 20);
  const plan::BuildPipeline& build = Cache().bad;
  Result<std::shared_ptr<const plan::DimensionTable>> got_a =
      Status::Internal("unset");
  Thread worker([&] { got_a = cache.GetOrBuild(build); });
  Result<std::shared_ptr<const plan::DimensionTable>> got_b =
      cache.GetOrBuild(build);
  worker.join();

  VERIFY_INVARIANT(!got_a.ok() && !got_b.ok(),
                   "poison build reported success");
  VERIFY_INVARIANT(got_a.status().code() == StatusCode::kAlreadyExists,
                   "waiter observed a placeholder status instead of the "
                   "builder's failure");
  VERIFY_INVARIANT(got_b.status().code() == StatusCode::kAlreadyExists,
                   "waiter observed a placeholder status instead of the "
                   "builder's failure");
  // The failed slot must be cleared: a retry is a fresh miss that fails
  // the same way, not a hit on a poisoned entry.
  Result<std::shared_ptr<const plan::DimensionTable>> retry =
      cache.GetOrBuild(build);
  VERIFY_INVARIANT(!retry.ok() &&
                       retry.status().code() == StatusCode::kAlreadyExists,
                   "retry after a failed build did not rebuild");
  VERIFY_INVARIANT(cache.stats().entries == 0,
                   "failed build left a resident entry");
}

// plan::BuildCache — eviction under concurrent inserts: capacity bounds
// resident bytes; evicted tables stay alive through outstanding handles.

void BuildCacheEvictionModel() {
  // Room for exactly one 64-byte entry: the second insert evicts the
  // first, whichever order the schedules choose.
  plan::BuildCache cache(64);
  const CacheFixture& fx = Cache();
  Result<std::shared_ptr<const plan::DimensionTable>> got_a =
      Status::Internal("unset");
  Thread worker([&] { got_a = cache.GetOrBuild(fx.good_a); });
  Result<std::shared_ptr<const plan::DimensionTable>> got_b =
      cache.GetOrBuild(fx.good_b);
  worker.join();

  VERIFY_INVARIANT(got_a.ok() && got_b.ok(), "eviction-model build failed");
  // The evicted table is still usable through the handle we hold.
  VERIFY_INVARIANT(got_a.value()->Contains(0) && got_b.value()->Contains(10),
                   "evicted table became unusable while a handle exists");
  const plan::BuildCache::Stats stats = cache.stats();
  VERIFY_INVARIANT(stats.resident_bytes <= cache.capacity_bytes(),
                   "resident bytes exceeded the cache capacity");
  VERIFY_INVARIANT(stats.entries <= 1, "capacity admits one entry at most");
}

// ---------------------------------------------------------------------
// common::CancelToken — the first latched cause is terminal: once any
// thread observed a terminal status it never changes, whatever races
// between user cancellation and deadline expiry.

void CancelLatchModel() {
  CancelToken token;
  token.SetDeadlineAfter(-1.0);  // Already expired: observers latch it.
  Status first = Status::OK();
  Thread canceller([&] {
    token.Cancel();
    first = token.ToStatus();
  });
  // Deadline observer: may latch kDeadlineExpired if it wins the race.
  (void)token.Cancelled();
  canceller.join();

  VERIFY_INVARIANT(!first.ok(), "cancelled token reported OK");
  const Status final_status = token.ToStatus();
  VERIFY_INVARIANT(final_status.code() == first.code(),
                   "terminal cancellation cause changed after it was "
                   "observed (latch must be first-cause-wins)");
}

// ---------------------------------------------------------------------
// exec::MorselDispatcher — exactly-once coverage: two claimants drain
// the cursor; every tuple is handed out exactly once, never past total.

void MorselCoverageModel() {
  constexpr std::size_t kTotal = 10;
  constexpr std::size_t kMorsel = 3;
  exec::MorselDispatcher dispatcher(kTotal, kMorsel);
  std::vector<int> cover(kTotal, 0);
  auto drain = [&] {
    while (auto morsel = dispatcher.Next()) {
      VERIFY_INVARIANT(morsel->begin < morsel->end,
                       "dispatcher handed out an empty morsel");
      VERIFY_INVARIANT(morsel->end <= kTotal,
                       "morsel claim overran the input (cursor not "
                       "saturated at total)");
      // Model threads serialize, and claims are disjoint when correct,
      // so plain increments are safe here.
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) ++cover[i];
    }
  };
  Thread worker(drain);
  drain();
  worker.join();
  for (std::size_t i = 0; i < kTotal; ++i) {
    VERIFY_INVARIANT(cover[i] == 1,
                     "morsel coverage is not exactly-once");
  }
  VERIFY_INVARIANT(dispatcher.dispatched() == kTotal,
                   "dispatched count diverged from the input size");
}

// exec::WorkStealingDispatcher — hierarchical claiming with steals keeps
// the exactly-once guarantee, including the clamped tail chunk. This is
// also the regression model of the steal-scan memory-order audit in
// work_stealing.h (a thief entering via a victim's published chunk slot).

void WorkStealingCoverageModel() {
  constexpr std::size_t kTotal = 10;
  // morsel=2, chunk=2 morsels => chunks {0..3} {4..7} {8..9}: the tail
  // chunk is the clamp case the exec.ws.tail_overrun mutant breaks.
  exec::WorkStealingDispatcher dispatcher(kTotal, /*morsel_tuples=*/2,
                                          /*workers=*/2,
                                          /*chunk_morsels=*/2);
  std::vector<int> cover(kTotal, 0);
  auto drain = [&](std::size_t worker) {
    while (auto morsel = dispatcher.Next(worker)) {
      VERIFY_INVARIANT(morsel->begin < morsel->end,
                       "dispatcher handed out an empty morsel");
      VERIFY_INVARIANT(morsel->end <= kTotal,
                       "hierarchical claim overran the input (tail chunk "
                       "not clamped)");
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) ++cover[i];
    }
  };
  Thread thief([&] { drain(1); });
  drain(0);
  thief.join();
  for (std::size_t i = 0; i < kTotal; ++i) {
    VERIFY_INVARIANT(cover[i] == 1,
                     "work-stealing coverage is not exactly-once");
  }
}

// ---------------------------------------------------------------------
// server::QueryEngine — admission queue and handle resolution: every
// admitted query resolves exactly once, budget bookkeeping returns to
// zero, and the client's Wait never hangs (a lost wakeup in the
// resolve/wait handoff surfaces as a model deadlock).

void QueryEngineAdmissionModel() {
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 4;
  options.cache_capacity_bytes = 0;
  // Stub runner: models must never touch the process-wide persistent
  // executor pool (its threads are outside the schedule).
  options.runner_for_test = [](const plan::PhysicalPlan&,
                               const engine::ExecOptions&) {
    return Result<engine::ExecReport>(engine::ExecReport{});
  };
  {
    server::QueryEngine engine(options);
    Result<std::shared_ptr<server::QueryHandle>> first =
        engine.Submit(Server().query);
    Result<std::shared_ptr<server::QueryHandle>> second =
        engine.Submit(Server().query);
    VERIFY_INVARIANT(first.ok() && second.ok(),
                     "valid query rejected at admission");
    VERIFY_INVARIANT(first.value()->Wait().ok(),
                     "admitted query resolved with an error");
    VERIFY_INVARIANT(second.value()->Wait().ok(),
                     "admitted query resolved with an error");
    const server::EngineStats stats = engine.stats();
    VERIFY_INVARIANT(stats.admitted == 2 && stats.completed == 2,
                     "admitted queries did not all complete");
    VERIFY_INVARIANT(stats.gpu_inflight_bytes == 0,
                     "GPU budget not returned after completion");
    engine.Shutdown();
    VERIFY_INVARIANT(engine.stats().running == 0,
                     "scheduler still running after shutdown");
  }
}

// server::QueryEngine — per-device budget pools: every admitted query
// charges each shard device's pool exactly once at admission and
// releases it exactly once when its handle resolves (completion and
// cancellation take the same release path), so the pools always sum to
// the aggregate in-flight figure and drain to zero — no double-spend,
// no leak. The server.budget.leak_on_release mutant skips one device's
// release and must be caught here.

void QueryEngineBudgetModel() {
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 4;
  options.cache_capacity_bytes = 0;
  options.runner_for_test = [](const plan::PhysicalPlan&,
                               const engine::ExecOptions&) {
    return Result<engine::ExecReport>(engine::ExecReport{});
  };
  server::QueryEngine engine(options);
  Result<std::shared_ptr<server::QueryHandle>> first =
      engine.Submit(Server().query);
  Result<std::shared_ptr<server::QueryHandle>> second =
      engine.Submit(Server().query);
  VERIFY_INVARIANT(first.ok() && second.ok(),
                   "valid query rejected at admission");
  // The cancelled query must release its pools exactly like a completed
  // one (the release precedes resolution, whatever the outcome).
  second.value()->Cancel();
  {
    const server::EngineStats stats = engine.stats();
    std::uint64_t pool_sum = 0;
    for (const auto& [device, bytes] : stats.device_inflight_bytes) {
      pool_sum += bytes;
    }
    VERIFY_INVARIANT(pool_sum == stats.gpu_inflight_bytes,
                     "per-device pools out of sync with the aggregate "
                     "in-flight bytes (double-spend or partial charge)");
  }
  (void)first.value()->Wait();
  (void)second.value()->Wait();
  const server::EngineStats stats = engine.stats();
  VERIFY_INVARIANT(stats.gpu_inflight_bytes == 0,
                   "aggregate GPU budget not returned after resolution");
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    VERIFY_INVARIANT(bytes == 0,
                     "a device pool leaked in-flight bytes after its "
                     "queries resolved");
  }
}

// server::QueryHandle — the resolve/wait handoff in isolation: one
// query, one waiter. The smallest tree containing the lost-wakeup
// window of a notify that fires before the terminal state is published.

void QueryHandleResolveModel() {
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 2;
  options.cache_capacity_bytes = 0;
  options.runner_for_test = [](const plan::PhysicalPlan&,
                               const engine::ExecOptions&) {
    return Result<engine::ExecReport>(engine::ExecReport{});
  };
  server::QueryEngine engine(options);
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(Server().query);
  VERIFY_INVARIANT(handle.ok(), "valid query rejected at admission");
  VERIFY_INVARIANT(handle.value()->Wait().ok(),
                   "admitted query resolved with an error");
  VERIFY_INVARIANT(handle.value()->Done(),
                   "Wait returned before the terminal state");
}

// ---------------------------------------------------------------------
// obs::trace — the single-writer ring publish: a reader that trusts an
// acquired count must see fully initialized slots (slot writes happen
// strictly before the count store).

void TraceRingModel() {
  obs::TraceRecorder recorder(16);
  Thread writer([&] {
    recorder.Record(obs::TraceCategory::kExec, "model.a", 'B');
    recorder.Record(obs::TraceCategory::kExec, "model.a", 'E');
  });
  // Concurrent snapshot: may see 0, 1 or 2 events — every visible one
  // must be complete.
  for (const obs::ThreadTrace& trace : recorder.Snapshot()) {
    for (const obs::TraceEvent& event : trace.events) {
      VERIFY_INVARIANT(event.name != nullptr,
                       "ring count published before the slot write "
                       "(reader saw an uninitialized event)");
    }
  }
  writer.join();
  const std::vector<obs::ThreadTrace> final_traces = recorder.Snapshot();
  std::size_t events = 0;
  for (const obs::ThreadTrace& trace : final_traces) {
    events += trace.events.size();
    VERIFY_INVARIANT(trace.dropped == 0, "tiny trace load dropped events");
  }
  VERIFY_INVARIANT(events == 2, "quiescent snapshot lost events");
}

ExploreOptions OptionsFor(const Model& model, const SuiteOptions& suite) {
  ExploreOptions options;
  options.max_schedules = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(model.max_schedules) * suite.budget_scale));
  options.sample_schedules = static_cast<std::uint64_t>(
      static_cast<double>(model.sample_schedules) * suite.budget_scale);
  options.seed = suite.seed;
  return options;
}

}  // namespace

const std::vector<Model>& Models() {
  static const std::vector<Model> models = {
      {"plan.cache.single_flight", BuildCacheSingleFlightModel, 1'500, 200},
      {"plan.cache.failure_propagation", BuildCacheFailureModel, 1'500, 200},
      {"plan.cache.eviction", BuildCacheEvictionModel, 1'500, 200},
      {"common.cancel.latch", CancelLatchModel, 800, 100},
      {"exec.morsel.coverage", MorselCoverageModel, 1'200, 200},
      {"exec.ws.coverage", WorkStealingCoverageModel, 2'000, 300},
      {"server.engine.admission", QueryEngineAdmissionModel, 2'500, 400},
      {"server.engine.budget", QueryEngineBudgetModel, 2'000, 300},
      {"server.handle.resolve", QueryHandleResolveModel, 1'500, 300},
      {"obs.trace.ring", TraceRingModel, 1'200, 200},
  };
  return models;
}

const std::vector<Mutant>& Mutants() {
  static const std::vector<Mutant> mutants = {
      {"plan.cache.notify_before_done", "plan.cache.single_flight"},
      {"plan.cache.drop_failed_result", "plan.cache.failure_propagation"},
      {"common.cancel.latch_blind_store", "common.cancel.latch"},
      {"exec.morsel.unsaturated_claim", "exec.morsel.coverage"},
      {"exec.ws.tail_overrun", "exec.ws.coverage"},
      {"server.handle.notify_before_done", "server.handle.resolve"},
      {"server.budget.leak_on_release", "server.engine.budget"},
      {"obs.trace.count_before_slot", "obs.trace.ring"},
  };
  return mutants;
}

SuiteReport RunSuite(const SuiteOptions& options,
                     LockOrderGraph* lock_order) {
  SuiteReport report;
  report.clean_pass = true;
  for (const Model& model : Models()) {
    ExploreOptions explore = OptionsFor(model, options);
    ModelRunReport run;
    run.model = model.name;
    run.result = Explore(model.body, explore, lock_order);
    report.schedules_explored += run.result.schedules_explored;
    report.schedules_pruned += run.result.schedules_pruned;
    report.total_steps += run.result.total_steps;
    report.max_lock_depth =
        std::max(report.max_lock_depth, run.result.max_lock_depth);
    if (run.result.failed) report.clean_pass = false;
    report.models.push_back(std::move(run));
  }

  if (options.run_mutants) {
    report.mutants_all_killed = true;
    for (const Mutant& mutant : Mutants()) {
      MutantRunReport run;
      run.mutation = mutant.mutation;
      run.model = mutant.model;
      const Model* model = nullptr;
      for (const Model& candidate : Models()) {
        if (candidate.name == mutant.model) model = &candidate;
      }
      if (model == nullptr) {
        run.failure = "mutant references an unknown model";
        report.mutants_all_killed = false;
        report.mutants.push_back(std::move(run));
        continue;
      }
      ExploreOptions explore = OptionsFor(*model, options);
      // Kill hunts always sample on top of DFS: the lost-wakeup windows
      // sit mid-schedule, where PCT's priority demotions reach quickly.
      explore.sample_schedules = std::max<std::uint64_t>(
          explore.sample_schedules, explore.max_schedules / 2);
      explore.stop_on_failure = true;
      ExploreResult result;
      {
        ScopedMutation armed(mutant.mutation.c_str());
        result = Explore(model->body, explore, lock_order);
      }
      run.killed = result.failed;
      run.failure = result.failure;
      run.failing_schedule = result.failing_schedule;
      if (!run.killed) report.mutants_all_killed = false;
      report.mutants.push_back(std::move(run));
    }
  }
  return report;
}

}  // namespace pump::verify

#endif  // PUMP_VERIFY
