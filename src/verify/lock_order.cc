#include "verify/lock_order.h"

#include <sstream>

namespace pump::verify {

void LockOrderGraph::AddClass(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.try_emplace(name);
}

void LockOrderGraph::AddEdge(const std::string& held,
                             const std::string& acquired) {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_[held].insert(acquired);
  edges_.try_emplace(acquired);
}

std::size_t LockOrderGraph::node_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return edges_.size();
}

std::size_t LockOrderGraph::edge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [node, outgoing] : edges_) count += outgoing.size();
  return count;
}

bool LockOrderGraph::CycleFrom(const std::string& node,
                               std::map<std::string, int>* color,
                               std::vector<std::string>* stack,
                               std::vector<std::string>* cycle) const {
  (*color)[node] = 1;  // On the current DFS path.
  stack->push_back(node);
  auto it = edges_.find(node);
  if (it != edges_.end()) {
    for (const std::string& next : it->second) {
      const int next_color = (*color)[next];
      if (next_color == 1) {
        if (cycle != nullptr) {
          // Report the path from the first occurrence of `next`,
          // closed back on itself.
          cycle->clear();
          bool in_cycle = false;
          for (const std::string& name : *stack) {
            if (name == next) in_cycle = true;
            if (in_cycle) cycle->push_back(name);
          }
          cycle->push_back(next);
        }
        return true;
      }
      if (next_color == 0 && CycleFrom(next, color, stack, cycle)) {
        return true;
      }
    }
  }
  stack->pop_back();
  (*color)[node] = 2;  // Fully explored.
  return false;
}

bool LockOrderGraph::HasCycle(std::vector<std::string>* cycle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  for (const auto& [node, outgoing] : edges_) {
    if (color[node] == 0 && CycleFrom(node, &color, &stack, cycle)) {
      return true;
    }
  }
  return false;
}

std::string LockOrderGraph::ToJson() const {
  const bool cyclic = HasCycle();
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"nodes\":[";
  bool first = true;
  for (const auto& [node, outgoing] : edges_) {
    if (!first) out << ",";
    out << "\"" << node << "\"";
    first = false;
  }
  out << "],\"edges\":[";
  first = true;
  for (const auto& [node, outgoing] : edges_) {
    for (const std::string& next : outgoing) {
      if (!first) out << ",";
      out << "{\"from\":\"" << node << "\",\"to\":\"" << next << "\"}";
      first = false;
    }
  }
  out << "],\"acyclic\":" << (cyclic ? "false" : "true") << "}";
  return out.str();
}

}  // namespace pump::verify
