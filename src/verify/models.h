#ifndef PUMP_VERIFY_MODELS_H_
#define PUMP_VERIFY_MODELS_H_

// The verifier's model suite: small deterministic concurrency models
// that drive the repository's REAL migrated structures (plan::BuildCache,
// common::CancelToken, server::QueryEngine, the exec dispatchers, the
// obs::trace ring) under the schedule explorer, plus the seeded-mutant
// kill harness that proves the models can actually detect the bug
// classes they claim to cover.
//
// Only meaningful under PUMP_VERIFY; normal builds see an empty header
// (tools/verifydump prints a stub report instead).

#include <cstdint>
#include <string>
#include <vector>

#include "verify/explore.h"
#include "verify/lock_order.h"

#if defined(PUMP_VERIFY) && PUMP_VERIFY

#include <functional>

namespace pump::verify {

/// One model: a deterministic body (fresh state per run) exercising one
/// migrated structure, with per-model exploration budgets.
struct Model {
  std::string name;
  std::function<void()> body;
  /// DFS run budget (executed + pruned runs).
  std::uint64_t max_schedules = 2'000;
  /// PCT-sampled top-up runs when DFS does not exhaust the tree.
  std::uint64_t sample_schedules = 0;
};

/// One seeded mutant: arming `mutation` (verify/mutation.h) must make
/// `model` fail on some explored schedule.
struct Mutant {
  std::string mutation;
  std::string model;
};

/// The registered model suite, one entry per migrated structure facet.
const std::vector<Model>& Models();

/// The seeded mutants and the model expected to kill each.
const std::vector<Mutant>& Mutants();

struct ModelRunReport {
  std::string model;
  ExploreResult result;
};

struct MutantRunReport {
  std::string mutation;
  std::string model;
  bool killed = false;
  /// Failure message and replay string of the killing schedule.
  std::string failure;
  std::string failing_schedule;
};

struct SuiteReport {
  std::vector<ModelRunReport> models;
  std::vector<MutantRunReport> mutants;
  /// Every model passed with no mutation armed.
  bool clean_pass = false;
  /// Every seeded mutant was killed (vacuously false when skipped).
  bool mutants_all_killed = false;
  /// Distinct schedules executed across the clean model runs.
  std::uint64_t schedules_explored = 0;
  std::uint64_t schedules_pruned = 0;
  std::uint64_t total_steps = 0;
  int max_lock_depth = 0;
};

struct SuiteOptions {
  /// Scales every model's schedule budgets (1.0 = the quick lane).
  double budget_scale = 1.0;
  /// Base seed of the PCT sampler.
  std::uint64_t seed = 1;
  bool run_mutants = true;
};

/// Runs the clean suite and (optionally) the mutant-kill harness.
/// Lock acquisitions across all schedules feed `lock_order`.
SuiteReport RunSuite(const SuiteOptions& options,
                     LockOrderGraph* lock_order);

}  // namespace pump::verify

#endif  // PUMP_VERIFY

#endif  // PUMP_VERIFY_MODELS_H_
