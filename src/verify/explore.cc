#include "verify/explore.h"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

namespace pump::verify {

std::string ScheduleToString(const std::vector<int>& choices) {
  std::ostringstream out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out << ".";
    out << choices[i];
  }
  return out.str();
}

bool ParseSchedule(const std::string& text, std::vector<int>* choices) {
  choices->clear();
  if (text.empty()) return true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t dot = text.find('.', pos);
    const std::string token =
        text.substr(pos, dot == std::string::npos ? std::string::npos : dot - pos);
    if (token.empty()) return false;
    int value = 0;
    for (const char c : token) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
      value = value * 10 + (c - '0');
    }
    choices->push_back(value);
    if (dot == std::string::npos) break;
    pos = dot + 1;
  }
  return true;
}

}  // namespace pump::verify

#if defined(PUMP_VERIFY) && PUMP_VERIFY

#include <map>
#include <random>
#include <set>
#include <utility>

namespace pump::verify {

void InvariantFailed(const char* condition, const char* message,
                     const char* file, int line) {
  std::ostringstream out;
  out << "invariant violated: " << message << " [" << condition << " at "
      << file << ":" << line << "]";
  Scheduler::ReportInvariantFailure(out.str());
}

namespace {

bool SameCandidates(const std::vector<SchedulePolicy::Candidate>& a,
                    const std::vector<SchedulePolicy::Candidate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tid != b[i].tid || a[i].op.kind != b[i].op.kind ||
        a[i].op.object != b[i].op.object ||
        a[i].op.target_tid != b[i].op.target_tid) {
      return false;
    }
  }
  return true;
}

/// Systematic DFS over the schedule tree via stateless re-execution:
/// the stack of decision nodes persists across runs; each run replays
/// the current prefix and extends the deepest node's next untried
/// branch. Sleep sets (Godefroid-style) prune sibling branches that
/// only commute independent operations: after exploring candidate c at
/// a node, c's operation "sleeps" for the node's remaining branches and
/// for descendants until some dependent operation wakes it.
class DfsPolicy : public SchedulePolicy {
 public:
  int Choose(std::size_t decision_index,
             const std::vector<Candidate>& candidates) override {
    if (nondeterminism_) return kPrune;
    if (decision_index < stack_.size()) {
      Node& node = stack_[decision_index];
      if (!SameCandidates(node.candidates, candidates)) {
        nondeterminism_ = true;
        nondet_detail_ = "candidate set diverged at decision " +
                         std::to_string(decision_index) +
                         " (model has untracked nondeterminism)";
        return kPrune;
      }
      return node.chosen;
    }
    Node node;
    node.candidates = candidates;
    node.tried.assign(candidates.size(), false);
    if (!stack_.empty()) {
      const Node& parent = stack_.back();
      const Op& parent_op = parent.candidates[static_cast<std::size_t>(parent.chosen)].op;
      auto inherit = [&](const std::vector<std::pair<int, Op>>& sleepers) {
        for (const auto& [tid, op] : sleepers) {
          if (!Dependent(op, parent_op)) node.sleep_in.emplace_back(tid, op);
        }
      };
      inherit(parent.sleep_in);
      inherit(parent.extra_sleep);
    }
    const int pick = node.NextRunnable();
    if (pick < 0) return kPrune;  // Every enabled op sleeps: redundant state.
    node.chosen = pick;
    node.tried[static_cast<std::size_t>(pick)] = true;
    stack_.push_back(std::move(node));
    return pick;
  }

  /// Moves to the next unexplored leaf; false when the tree is done.
  bool Advance() {
    if (nondeterminism_) return false;
    while (!stack_.empty()) {
      Node& node = stack_.back();
      const Candidate& done = node.candidates[static_cast<std::size_t>(node.chosen)];
      node.extra_sleep.emplace_back(done.tid, done.op);
      const int next = node.NextRunnable();
      if (next >= 0) {
        node.chosen = next;
        node.tried[static_cast<std::size_t>(next)] = true;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  bool nondeterminism() const { return nondeterminism_; }
  const std::string& nondet_detail() const { return nondet_detail_; }

 private:
  struct Node {
    std::vector<Candidate> candidates;
    std::vector<bool> tried;
    /// Sleep set inherited from the ancestors at node entry.
    std::vector<std::pair<int, Op>> sleep_in;
    /// Operations of already-explored sibling branches at this node.
    std::vector<std::pair<int, Op>> extra_sleep;
    int chosen = -1;

    bool Asleep(const Candidate& candidate) const {
      for (const auto& [tid, op] : sleep_in) {
        if (tid == candidate.tid) return true;
      }
      return false;
    }

    int NextRunnable() const {
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!tried[i] && !Asleep(candidates[i])) return static_cast<int>(i);
      }
      return -1;
    }
  };

  std::vector<Node> stack_;
  bool nondeterminism_ = false;
  std::string nondet_detail_;
};

/// PCT-style sampler: threads get random priorities (highest runs);
/// at d-1 pre-drawn change points the current leader is demoted below
/// everyone. Fully deterministic per seed.
class PctPolicy : public SchedulePolicy {
 public:
  PctPolicy(std::uint64_t seed, int depth, int horizon) : rng_(seed) {
    if (horizon < 2) horizon = 2;
    for (int i = 0; i + 1 < depth; ++i) {
      change_points_.insert(rng_() % static_cast<std::uint64_t>(horizon));
    }
  }

  int Choose(std::size_t decision_index,
             const std::vector<Candidate>& candidates) override {
    for (const Candidate& c : candidates) {
      if (priority_.find(c.tid) == priority_.end()) {
        // Initial priorities sit above every demotion slot.
        priority_[c.tid] = (rng_() >> 16) | (std::uint64_t{1} << 48);
      }
    }
    if (change_points_.count(decision_index) != 0) {
      priority_[Leader(candidates)] = next_demotion_++;
    }
    const int leader = Leader(candidates);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].tid == leader) return static_cast<int>(i);
    }
    return 0;
  }

 private:
  int Leader(const std::vector<Candidate>& candidates) {
    int best = candidates[0].tid;
    for (const Candidate& c : candidates) {
      if (priority_[c.tid] > priority_[best]) best = c.tid;
    }
    return best;
  }

  std::mt19937_64 rng_;
  std::map<int, std::uint64_t> priority_;
  std::set<std::uint64_t> change_points_;
  std::uint64_t next_demotion_ = 0;
};

/// Follows a fixed choice list; diverging (thread not enabled, run
/// longer than the schedule) marks an error and prunes.
class ReplayPolicy : public SchedulePolicy {
 public:
  explicit ReplayPolicy(std::vector<int> choices) : choices_(std::move(choices)) {}

  int Choose(std::size_t decision_index,
             const std::vector<Candidate>& candidates) override {
    if (decision_index >= choices_.size()) {
      error_ = "schedule ended before the run did (decision " +
               std::to_string(decision_index) + ")";
      return kPrune;
    }
    const int want = choices_[decision_index];
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].tid == want) return static_cast<int>(i);
    }
    error_ = "thread " + std::to_string(want) +
             " not enabled at decision " + std::to_string(decision_index);
    return kPrune;
  }

  const std::string& error() const { return error_; }

 private:
  std::vector<int> choices_;
  std::string error_;
};

struct Accumulator {
  ExploreResult* result;
  std::set<std::string>* distinct;

  void Add(const RunOutcome& run) {
    result->total_steps += run.steps;
    if (run.max_lock_depth > result->max_lock_depth) {
      result->max_lock_depth = run.max_lock_depth;
    }
    if (run.threads > result->max_threads) result->max_threads = run.threads;
    if (run.pruned) {
      ++result->schedules_pruned;
    } else {
      distinct->insert(ScheduleToString(run.choices));
    }
  }

  /// Records the first failure (kept even if later runs also fail).
  void Fail(const RunOutcome& run) {
    if (result->failed) return;
    result->failed = true;
    result->failure = run.failure;
    result->deadlocked = run.deadlocked;
    result->failing_schedule = ScheduleToString(run.choices);
  }
};

}  // namespace

ExploreResult Explore(const std::function<void()>& body,
                      const ExploreOptions& options,
                      LockOrderGraph* lock_order) {
  ExploreResult result;
  std::set<std::string> distinct;
  Accumulator acc{&result, &distinct};
  RunLimits limits;
  limits.max_steps = options.max_steps_per_run;

  DfsPolicy dfs;
  std::uint64_t runs = 0;
  bool stopped = false;
  while (runs < options.max_schedules) {
    const RunOutcome run = Scheduler::Run(dfs, body, limits, lock_order);
    ++runs;
    acc.Add(run);
    if (dfs.nondeterminism()) {
      result.failed = true;
      result.failure = dfs.nondet_detail();
      result.failing_schedule = ScheduleToString(run.choices);
      stopped = true;
      break;
    }
    if (run.failed) {
      acc.Fail(run);
      if (options.stop_on_failure) {
        stopped = true;
        break;
      }
    }
    if (!dfs.Advance()) {
      result.exhausted = true;
      break;
    }
  }

  if (!result.exhausted && !stopped) {
    for (std::uint64_t s = 0; s < options.sample_schedules; ++s) {
      PctPolicy pct(options.seed + s, options.pct_depth, options.pct_horizon);
      const RunOutcome run = Scheduler::Run(pct, body, limits, lock_order);
      ++result.sampled_runs;
      acc.Add(run);
      if (run.failed) {
        acc.Fail(run);
        if (options.stop_on_failure) break;
      }
    }
  }

  result.schedules_explored = distinct.size();
  return result;
}

RunOutcome Replay(const std::function<void()>& body, const std::string& schedule,
                  std::uint64_t max_steps, LockOrderGraph* lock_order) {
  std::vector<int> choices;
  if (!ParseSchedule(schedule, &choices)) {
    RunOutcome outcome;
    outcome.failed = true;
    outcome.failure = "unparseable schedule string: " + schedule;
    return outcome;
  }
  ReplayPolicy policy(std::move(choices));
  RunLimits limits;
  limits.max_steps = max_steps;
  RunOutcome outcome = Scheduler::Run(policy, body, limits, lock_order);
  if (outcome.pruned) {
    outcome.pruned = false;
    outcome.failed = true;
    outcome.failure = "replay diverged: " + policy.error();
  }
  return outcome;
}

}  // namespace pump::verify

#endif  // PUMP_VERIFY
