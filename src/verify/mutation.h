#ifndef PUMP_VERIFY_MUTATION_H_
#define PUMP_VERIFY_MUTATION_H_

// Seeded-mutant instrumentation for the concurrency verifier.
//
// A mutation point marks a line of real synchronization code where a
// known protocol bug can be re-introduced on demand:
//
//   if (PUMP_VERIFY_MUTATE("plan.cache.clear_before_notify")) {
//     /* the historical/buggy ordering */
//   } else {
//     /* the correct protocol */
//   }
//
// The verifier (tools/verifydump, src/verify/models.cc) arms one
// mutation at a time and requires the schedule explorer to kill it — a
// checker is only trusted because it demonstrably catches known bugs
// (the BrokenFixtureProfile discipline of PR 2, applied to schedules).
//
// In normal builds the macro is the literal constant `false`, so the
// mutant branch is dead code the optimizer deletes; the shipped binaries
// contain only the correct protocol. Under PUMP_VERIFY it consults the
// process-wide armed-mutation slot (one relaxed pointer load plus a
// string compare — model-checker speed, not hot-path speed).

#if defined(PUMP_VERIFY) && PUMP_VERIFY

namespace pump::verify {

/// Arms exactly one mutation (nullptr disarms). The pointer must be a
/// string literal or otherwise outlive the armed window.
void ArmMutation(const char* name);

/// True when `name` is the armed mutation.
bool MutationArmed(const char* name);

/// RAII arm/disarm for one mutant-kill run.
class ScopedMutation {
 public:
  explicit ScopedMutation(const char* name) { ArmMutation(name); }
  ~ScopedMutation() { ArmMutation(nullptr); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

}  // namespace pump::verify

#define PUMP_VERIFY_MUTATE(name) (::pump::verify::MutationArmed(name))

#else  // !PUMP_VERIFY

#define PUMP_VERIFY_MUTATE(name) (false)

#endif  // PUMP_VERIFY

#endif  // PUMP_VERIFY_MUTATION_H_
