#ifndef PUMP_VERIFY_SYNC_H_
#define PUMP_VERIFY_SYNC_H_

// Synchronization shims for the deterministic concurrency verifier.
//
// Production code declares its concurrency-critical primitives as
// `verify::Mutex`, `verify::CondVar`, `verify::Atomic<T>` and
// `verify::Thread`. In normal builds (PUMP_VERIFY off, the default)
// these are plain type aliases for the `std::` primitives — zero
// overhead, bit-identical codegen, nothing to link.
//
// Under PUMP_VERIFY every primitive becomes a sequence point of the
// cooperative model scheduler (verify/scheduler.h): a thread registered
// with an active schedule run yields to the explorer at every
// acquire/release/load/store/RMW, so the explorer controls the exact
// interleaving and can enumerate or sample schedules, replay a failing
// one deterministically, and record the lock-order graph. Threads NOT
// registered with a run (the persistent executor pool, ordinary tests)
// fall through to the real `std::` primitive, so a PUMP_VERIFY build
// still behaves normally outside model runs.
//
// Model limitations (documented, deliberate):
//  * The model executes sequentially consistently; memory_order
//    arguments are accepted and forwarded but weak-memory reorderings
//    are not explored. The checker finds *schedule* bugs (lost wakeups,
//    latch races, double claims, deadlocks), not fence-strength bugs —
//    TSan and the happens-before epochs stay responsible for those.
//  * Model condition variables have no spurious wakeups; a lost-wakeup
//    bug therefore shows up as a hard deadlock, which is exactly how
//    the checker reports it.
//  * An object must not be touched by model and non-model threads
//    concurrently during a run (model runs own their objects).

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#if defined(PUMP_VERIFY) && PUMP_VERIFY
#include <cstdint>
#include <functional>
#include <utility>

#include "verify/scheduler.h"
#endif

namespace pump::verify {

#if !defined(PUMP_VERIFY) || !PUMP_VERIFY

// ---------------------------------------------------------------------
// Normal builds: transparent aliases. The migrated structures compile to
// exactly the code they had before the migration (the ≤1% overhead
// acceptance bound on micro_parallel holds by construction).

using Mutex = std::mutex;
using CondVar = std::condition_variable;
template <typename T>
using Atomic = std::atomic<T>;
using Thread = std::thread;

/// Accepts and ignores a lock-class name in normal builds.
inline Mutex* NamedMutex(Mutex* mutex, const char*) { return mutex; }

#else  // PUMP_VERIFY

// ---------------------------------------------------------------------
// Verify builds: every primitive is a scheduler sequence point when the
// calling thread belongs to an active model run.

/// Model-aware mutex. Under a run the lock state lives in the model
/// (owner thread id); blocked acquirers are descheduled, acquisition
/// order feeds the lock-order graph. Outside runs it is the wrapped
/// std::mutex.
class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      s->MutexLock(this);
    } else {
      real_.lock();
    }
  }

  void unlock() {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      s->MutexUnlock(this);
    } else {
      real_.unlock();
    }
  }

  bool try_lock() {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      return s->MutexTryLock(this);
    }
    return real_.try_lock();
  }

  /// Lock-class name for the lock-order graph (instances of one class
  /// share a node, lockdep-style).
  const char* name() const { return name_; }
  void set_name(const char* name) { name_ = name; }

 private:
  friend class Scheduler;
  std::mutex real_;
  const char* name_ = "mutex";
  /// Model state: owning model-thread id, -1 when free. Only mutated by
  /// the single running model thread (runs serialize all model threads).
  int model_owner_ = -1;
};

/// Names a mutex's lock class after construction (for members that
/// cannot use the naming constructor in an initializer list).
inline Mutex* NamedMutex(Mutex* mutex, const char* name);

/// Model-aware condition variable. Waiters are descheduled (the model
/// has no spurious wakeups); notify transfers waiters back to the ready
/// set pending reacquisition of their mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(std::unique_lock<Mutex>& lock) {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      s->CvWait(this, lock.mutex());
    } else {
      real_.wait(lock);
    }
  }

  template <typename Predicate>
  void wait(std::unique_lock<Mutex>& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }

  void notify_one() {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      s->CvNotify(this, /*all=*/false);
    } else {
      real_.notify_one();
    }
  }

  void notify_all() {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      s->CvNotify(this, /*all=*/true);
    } else {
      real_.notify_all();
    }
  }

 private:
  // condition_variable_any: outside model runs it must wait on
  // unique_lock<verify::Mutex>, which is BasicLockable but not
  // std::mutex.
  std::condition_variable_any real_;
};

/// Model-aware atomic. Loads yield before the access; stores and RMWs
/// yield before *and after*, so the window between a publish and the
/// publisher's next operation is schedulable — that window is where
/// inverted-publish bugs (count bumped before the slot write) live.
template <typename T>
class Atomic {
 public:
  Atomic() = default;
  constexpr Atomic(T value) : value_(value) {}  // NOLINT(google-explicit-constructor)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      s->AtomicPoint(OpKind::kAtomicLoad, this);
    }
    return value_.load(order);
  }

  void store(T desired,
             std::memory_order order = std::memory_order_seq_cst) {
    Scheduler* s = ActiveSchedulerForThisThread();
    if (s != nullptr) s->AtomicPoint(OpKind::kAtomicStore, this);
    value_.store(desired, order);
    if (s != nullptr) s->AtomicPoint(OpKind::kYieldAfter, this);
  }

  T exchange(T desired,
             std::memory_order order = std::memory_order_seq_cst) {
    Scheduler* s = ActiveSchedulerForThisThread();
    if (s != nullptr) s->AtomicPoint(OpKind::kAtomicRmw, this);
    T previous = value_.exchange(desired, order);
    if (s != nullptr) s->AtomicPoint(OpKind::kYieldAfter, this);
    return previous;
  }

  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst) {
    Scheduler* s = ActiveSchedulerForThisThread();
    if (s != nullptr) s->AtomicPoint(OpKind::kAtomicRmw, this);
    T previous = value_.fetch_add(arg, order);
    if (s != nullptr) s->AtomicPoint(OpKind::kYieldAfter, this);
    return previous;
  }

  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst) {
    Scheduler* s = ActiveSchedulerForThisThread();
    if (s != nullptr) s->AtomicPoint(OpKind::kAtomicRmw, this);
    T previous = value_.fetch_sub(arg, order);
    if (s != nullptr) s->AtomicPoint(OpKind::kYieldAfter, this);
    return previous;
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return CompareExchange(expected, desired, order);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order success,
                             std::memory_order failure) {
    (void)failure;
    return CompareExchange(expected, desired, success);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return CompareExchange(expected, desired, order);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    (void)failure;
    return CompareExchange(expected, desired, success);
  }

 private:
  bool CompareExchange(T& expected, T desired, std::memory_order order) {
    Scheduler* s = ActiveSchedulerForThisThread();
    if (s != nullptr) s->AtomicPoint(OpKind::kAtomicRmw, this);
    // Strong semantics in the model: the explorer owns all
    // nondeterminism, so a spurious CAS failure would be untracked
    // nondeterminism and break replay.
    bool ok = value_.compare_exchange_strong(expected, desired, order);
    if (s != nullptr) s->AtomicPoint(OpKind::kYieldAfter, this);
    return ok;
  }

  std::atomic<T> value_{};
};

/// Model-aware thread. Spawned from a model thread it joins the run
/// (the scheduler owns its lifecycle); spawned anywhere else it is a
/// plain std::thread.
class Thread {
 public:
  Thread() = default;

  template <typename Fn>
  explicit Thread(Fn fn) {
    if (Scheduler* s = ActiveSchedulerForThisThread()) {
      scheduler_ = s;
      model_tid_ = s->Spawn(std::function<void()>(std::move(fn)));
    } else {
      real_ = std::thread(std::move(fn));
    }
  }

  Thread(Thread&& other) noexcept { *this = std::move(other); }
  Thread& operator=(Thread&& other) noexcept {
    real_ = std::move(other.real_);
    scheduler_ = other.scheduler_;
    model_tid_ = other.model_tid_;
    other.scheduler_ = nullptr;
    other.model_tid_ = -1;
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const {
    if (scheduler_ != nullptr) return model_tid_ >= 0;
    return real_.joinable();
  }

  void join() {
    if (scheduler_ != nullptr) {
      scheduler_->Join(model_tid_);
      model_tid_ = -1;
      return;
    }
    real_.join();
  }

 private:
  std::thread real_;
  Scheduler* scheduler_ = nullptr;
  int model_tid_ = -1;
};

inline Mutex* NamedMutex(Mutex* mutex, const char* name) {
  mutex->set_name(name);
  return mutex;
}

#endif  // PUMP_VERIFY

}  // namespace pump::verify

#endif  // PUMP_VERIFY_SYNC_H_
