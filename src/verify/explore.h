#ifndef PUMP_VERIFY_EXPLORE_H_
#define PUMP_VERIFY_EXPLORE_H_

// Schedule exploration driver for the concurrency verifier.
//
// `Explore` runs a model body repeatedly under the cooperative
// scheduler (verify/scheduler.h), enumerating interleavings:
//  1. Systematic DFS over schedule choices, with a sleep-set filter
//     (partial-order-reduction-lite): a sibling schedule that only
//     reorders two independent operations is pruned as redundant.
//  2. If the DFS budget runs out before the tree is exhausted, seeded
//     PCT-style priority sampling covers additional schedules
//     probabilistically, still fully deterministic per seed.
//
// Every run is reproducible: the schedule IS the list of chosen thread
// ids, printed as "0.1.1.0.2"; `Replay` re-executes exactly that
// interleaving. Model bodies must therefore be deterministic apart from
// scheduling (no wall-clock branching, no rng without a fixed seed).

#include <cstdint>
#include <string>
#include <vector>

#if defined(PUMP_VERIFY) && PUMP_VERIFY
#include <functional>
#include <utility>

#include "verify/lock_order.h"
#include "verify/scheduler.h"
#endif

// Checks an invariant inside model code or an invariant hook. In a
// model run a violation fails the current schedule (which makes it
// replayable); outside any run it aborts the process. Compiles to
// nothing when PUMP_VERIFY is off.
#if defined(PUMP_VERIFY) && PUMP_VERIFY
#define VERIFY_INVARIANT(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::pump::verify::InvariantFailed(#cond, (msg), __FILE__, __LINE__); \
    }                                                                   \
  } while (0)
#else
#define VERIFY_INVARIANT(cond, msg) \
  do {                              \
    (void)sizeof((cond));           \
  } while (0)
#endif

namespace pump::verify {

#if defined(PUMP_VERIFY) && PUMP_VERIFY

[[noreturn]] void InvariantFailed(const char* condition, const char* message,
                                  const char* file, int line);

/// Registers `hook` with the calling thread's active model run; the
/// scheduler calls it at every sequence point. No-op outside a run.
inline void RegisterRunInvariant(std::function<void()> hook) {
  if (Scheduler* s = ActiveSchedulerForThisThread()) {
    s->RegisterInvariant(std::move(hook));
  }
}

struct ExploreOptions {
  /// Total run budget for the systematic DFS phase (executed + pruned).
  std::uint64_t max_schedules = 10'000;
  /// Per-run step bound (livelock guard).
  std::uint64_t max_steps_per_run = 50'000;
  /// Additional PCT-sampled runs when DFS did not exhaust the tree.
  std::uint64_t sample_schedules = 0;
  /// Seed for the PCT sampler (run s uses seed + s).
  std::uint64_t seed = 1;
  /// PCT priority change points per sampled run.
  int pct_depth = 3;
  /// Horizon (in decisions) over which change points are drawn.
  int pct_horizon = 256;
  bool stop_on_failure = true;
};

struct ExploreResult {
  /// Distinct complete (non-pruned) schedules executed.
  std::uint64_t schedules_explored = 0;
  /// Runs abandoned by the sleep-set filter as provably redundant.
  std::uint64_t schedules_pruned = 0;
  /// PCT-sampled runs executed (subset of runs, may repeat schedules —
  /// only distinct ones count toward schedules_explored).
  std::uint64_t sampled_runs = 0;
  /// DFS enumerated the entire (sleep-set-reduced) schedule tree.
  bool exhausted = false;
  bool failed = false;
  std::string failure;
  bool deadlocked = false;
  /// Replay string of the first failing schedule ("" when none).
  std::string failing_schedule;
  int max_lock_depth = 0;
  int max_threads = 0;
  std::uint64_t total_steps = 0;
};

/// Explores schedules of `body` (invoked fresh once per run; it must
/// create, exercise and destroy its own state). Lock acquisitions feed
/// `lock_order` when non-null.
ExploreResult Explore(const std::function<void()>& body,
                      const ExploreOptions& options,
                      LockOrderGraph* lock_order);

/// Re-executes `body` under the exact schedule `schedule` (a string
/// produced by ScheduleToString / ExploreResult::failing_schedule).
RunOutcome Replay(const std::function<void()>& body,
                  const std::string& schedule,
                  std::uint64_t max_steps = 50'000,
                  LockOrderGraph* lock_order = nullptr);

#endif  // PUMP_VERIFY

/// "0.1.1.2" — chosen thread id per decision. Available in all builds
/// (report plumbing).
std::string ScheduleToString(const std::vector<int>& choices);
bool ParseSchedule(const std::string& text, std::vector<int>* choices);

}  // namespace pump::verify

#endif  // PUMP_VERIFY_EXPLORE_H_
