#ifndef PUMP_VERIFY_SCHEDULER_H_
#define PUMP_VERIFY_SCHEDULER_H_

// Cooperative model scheduler of the concurrency verifier.
//
// A model run executes real repository code (the migrated structures:
// plan::BuildCache, server::QueryEngine, exec dispatchers, the
// obs::trace ring, common::CancelToken) on real OS threads, but with
// exactly ONE thread running at a time. Every verify:: shim operation
// (verify/sync.h) is a *sequence point*: the running thread parks,
// declares the operation it is about to perform, and a SchedulePolicy
// picks which thread runs next among the enabled ones. The policy is
// either the DFS explorer with sleep sets, the seeded PCT sampler, or a
// replayer for a printed schedule string (verify/explore.h).
//
// Because the policy sees every declared-but-not-yet-executed operation,
// it can
//  * enumerate interleavings systematically (and prune provably
//    redundant ones via sleep sets — two enabled operations on
//    different objects commute),
//  * detect deadlock the moment no live thread is enabled,
//  * record the lock-order graph (acquisition edges between lock
//    classes) across all explored schedules, and
//  * reproduce any failure: the choice list IS the schedule, and the
//    model has no other source of nondeterminism.
//
// The machinery only exists under PUMP_VERIFY; normal builds never
// include this header's internals (verify/sync.h aliases the shims to
// std:: primitives instead).

#if defined(PUMP_VERIFY) && PUMP_VERIFY

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "verify/lock_order.h"

namespace pump::verify {

class Mutex;
class CondVar;

/// Kinds of scheduler sequence points. kYieldAfter is the schedulable
/// instant just after a store/RMW published — where inverted-publish
/// bugs become observable.
enum class OpKind : std::uint8_t {
  kThreadStart,
  kMutexLock,
  kMutexTryLock,
  kMutexUnlock,
  kCvWait,
  kCvNotify,
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kYieldAfter,
  kSpawn,
  kJoin,
};

const char* ToString(OpKind kind);

/// One declared operation: what a parked thread will do when scheduled.
struct Op {
  OpKind kind = OpKind::kThreadStart;
  /// Model object id (stable per run: assigned in first-use order, which
  /// replay makes deterministic). -1 = thread-lifecycle operation.
  int object = -1;
  /// Target thread id for kJoin.
  int target_tid = -1;
  /// The object itself (scheduler-internal: enabledness + acquisition;
  /// policies must key on `object`, ids are replay-stable, pointers not).
  const void* raw = nullptr;
};

/// True when the two operations do NOT commute: same object with at
/// least one writer, or thread-lifecycle operations (conservatively
/// dependent with everything). Sleep sets may only prune independent
/// reorderings, so this predicate errs dependent.
bool Dependent(const Op& a, const Op& b);

/// Thrown inside model threads to unwind a run (deadlock found,
/// invariant failed, schedule pruned, budget exhausted).
struct RunAborted {};

/// Thrown by VERIFY_INVARIANT inside an invariant hook; the scheduler
/// converts it into a run failure attributed to the current schedule.
struct InvariantViolation {
  std::string message;
};

/// Schedule decision procedure. `Choose` returns an index into
/// `candidates`, or kPrune to abandon the run as covered-elsewhere
/// (sleep sets).
class SchedulePolicy {
 public:
  struct Candidate {
    int tid = -1;
    Op op;
  };
  static constexpr int kPrune = -1;

  virtual ~SchedulePolicy() = default;
  virtual int Choose(std::size_t decision_index,
                     const std::vector<Candidate>& candidates) = 0;
};

/// Per-run resource bounds.
struct RunLimits {
  /// Sequence points before the run is failed as a livelock.
  std::uint64_t max_steps = 50'000;
};

/// Outcome of one schedule.
struct RunOutcome {
  /// Chosen thread id at every decision — the replayable schedule.
  std::vector<int> choices;
  bool failed = false;
  std::string failure;
  bool deadlocked = false;
  /// Sleep-set-pruned: the run was abandoned as provably redundant.
  bool pruned = false;
  std::uint64_t steps = 0;
  int max_lock_depth = 0;
  int threads = 0;
};

class Scheduler {
 public:
  /// Runs `body` as model thread 0 under `policy`. Spawned
  /// verify::Threads join the run; the call returns when every model
  /// thread finished (or the run aborted). One run at a time per
  /// process.
  static RunOutcome Run(SchedulePolicy& policy,
                        const std::function<void()>& body,
                        const RunLimits& limits,
                        LockOrderGraph* lock_order);

  // --- Shim entry points (model threads only) ---------------------------
  void MutexLock(Mutex* mutex);
  void MutexUnlock(Mutex* mutex);
  bool MutexTryLock(Mutex* mutex);
  void CvWait(CondVar* cv, Mutex* mutex);
  void CvNotify(CondVar* cv, bool all);
  void AtomicPoint(OpKind kind, const void* object);
  int Spawn(std::function<void()> fn);
  void Join(int tid);

  /// Registers a hook run at every sequence point of every model
  /// thread. Hooks must be non-blocking (plain/atomic reads only; no
  /// mutexes) and report violations via VERIFY_INVARIANT.
  void RegisterInvariant(std::function<void()> hook);

  /// Fails the current run with `message`; unwinds all model threads.
  [[noreturn]] void Fail(const std::string& message);

  /// True once the run is unwinding; shim operations become raw.
  bool aborting() const {
    return abort_.load(std::memory_order_acquire);
  }

  /// Scheduler owning the calling thread's active model run, or null
  /// for non-model threads. Returned even while a hook or unwind is in
  /// progress — each entry point downgrades to raw behaviour itself.
  static Scheduler* ActiveForThisThread();

  /// Routes a VERIFY_INVARIANT failure: throws InvariantViolation when
  /// called from inside a hook, fails the run when called from a model
  /// thread, aborts the process otherwise.
  [[noreturn]] static void ReportInvariantFailure(const std::string& message);

 private:
  enum class WaitState : std::uint8_t {
    kRunning,
    kReady,     // Parked at a sequence point, op declared.
    kBlockedCv, // Waiting for a notify.
    kFinished,
  };

  struct ThreadRec {
    Scheduler* sched = nullptr;
    int tid = 0;
    WaitState state = WaitState::kRunning;
    Op pending;
    bool active = false;
    /// Hooks run with this set skip scheduling (raw shim access).
    bool in_hook = false;
    /// Condition variable / mutex this thread waits on (kBlockedCv).
    const CondVar* wait_cv = nullptr;
    Mutex* reacquire = nullptr;
    std::vector<Mutex*> held;
    std::condition_variable parked;
    std::thread os_thread;
  };

  Scheduler(SchedulePolicy& policy, const RunLimits& limits,
            LockOrderGraph* lock_order);
  ~Scheduler();

  RunOutcome Execute(const std::function<void()>& body);
  void ThreadMain(ThreadRec* rec, std::function<void()> fn);

  /// Parks at a sequence point: declares `op`, runs invariant hooks,
  /// lets the policy pick a successor, resumes when chosen. Throws
  /// RunAborted when the run is unwinding (unless the caller itself is
  /// already unwinding, in which case it returns raw).
  void SyncPoint(const Op& op);
  void RunHooks(ThreadRec* me);

  /// Declares + parks, then acquires `mutex`.
  void AcquireAfterSync(Mutex* mutex);
  /// Acquisition bookkeeping once the policy granted the mutex: owner,
  /// held stack, lock-order edges, depth high-water mark.
  void CompleteAcquire(Mutex* mutex);

  /// Entry-point abort gate: false = proceed with the model operation;
  /// true = the run is unwinding in this thread's destructors, perform
  /// the operation raw (or not at all). Throws RunAborted when the run
  /// aborted but this thread has not started unwinding yet.
  bool EnterRaw();

  int ObjectIdLocked(const void* object);
  bool EnabledLocked(const ThreadRec& rec) const;
  /// Picks and wakes the next thread; detects deadlock and prune.
  void ScheduleNextLocked();
  void AbortLocked(const std::string& failure, bool deadlock, bool prune);
  void FailNoThrow(const std::string& message);
  void ExitThread();
  std::string DescribeBlockedLocked() const;

  SchedulePolicy& policy_;
  const RunLimits limits_;
  LockOrderGraph* lock_order_;

  std::mutex m_;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  std::map<const void*, int> object_ids_;
  std::vector<std::function<void()>> hooks_;
  std::vector<int> choices_;
  std::uint64_t steps_ = 0;
  int live_ = 0;
  int max_lock_depth_ = 0;
  std::atomic<bool> abort_{false};
  bool deadlocked_ = false;
  bool pruned_ = false;
  bool failed_ = false;
  std::string failure_;

  static thread_local ThreadRec* tls_rec_;
};

/// The scheduler owning the calling thread's active model run, or null
/// for threads outside any run (those use the raw std:: primitives).
/// Model threads always get their scheduler back — the entry points
/// themselves downgrade to raw behaviour during hooks and unwinds.
inline Scheduler* ActiveSchedulerForThisThread() {
  return Scheduler::ActiveForThisThread();
}

}  // namespace pump::verify

#endif  // PUMP_VERIFY

#endif  // PUMP_VERIFY_SCHEDULER_H_
