#include "verify/scheduler.h"

#if defined(PUMP_VERIFY) && PUMP_VERIFY

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iterator>
#include <sstream>
#include <utility>

#include "verify/sync.h"

namespace pump::verify {

thread_local Scheduler::ThreadRec* Scheduler::tls_rec_ = nullptr;

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kThreadStart: return "start";
    case OpKind::kMutexLock: return "lock";
    case OpKind::kMutexTryLock: return "try_lock";
    case OpKind::kMutexUnlock: return "unlock";
    case OpKind::kCvWait: return "cv_wait";
    case OpKind::kCvNotify: return "cv_notify";
    case OpKind::kAtomicLoad: return "load";
    case OpKind::kAtomicStore: return "store";
    case OpKind::kAtomicRmw: return "rmw";
    case OpKind::kYieldAfter: return "after";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kJoin: return "join";
  }
  return "?";
}

bool Dependent(const Op& a, const Op& b) {
  // Thread-lifecycle operations (object -1) are conservatively
  // dependent with everything.
  if (a.object < 0 || b.object < 0) return true;
  if (a.object != b.object) return false;
  // Same object: two loads commute; anything else conflicts.
  // kYieldAfter is treated as a writer on its object — conservative,
  // and it keeps the publish window visible to the explorer.
  return !(a.kind == OpKind::kAtomicLoad && b.kind == OpKind::kAtomicLoad);
}

Scheduler::Scheduler(SchedulePolicy& policy, const RunLimits& limits,
                     LockOrderGraph* lock_order)
    : policy_(policy), limits_(limits), lock_order_(lock_order) {}

Scheduler::~Scheduler() = default;

Scheduler* Scheduler::ActiveForThisThread() {
  ThreadRec* rec = tls_rec_;
  return rec == nullptr ? nullptr : rec->sched;
}

RunOutcome Scheduler::Run(SchedulePolicy& policy,
                          const std::function<void()>& body,
                          const RunLimits& limits,
                          LockOrderGraph* lock_order) {
  if (tls_rec_ != nullptr) {
    RunOutcome outcome;
    outcome.failed = true;
    outcome.failure = "nested model runs are not supported";
    return outcome;
  }
  Scheduler scheduler(policy, limits, lock_order);
  return scheduler.Execute(body);
}

RunOutcome Scheduler::Execute(const std::function<void()>& body) {
  {
    std::lock_guard<std::mutex> lock(m_);
    auto rec = std::make_unique<ThreadRec>();
    rec->sched = this;
    rec->tid = 0;
    rec->state = WaitState::kRunning;
    rec->active = true;
    tls_rec_ = rec.get();
    threads_.push_back(std::move(rec));
    live_ = 1;
  }
  try {
    body();
  } catch (const RunAborted&) {
  } catch (const InvariantViolation& violation) {
    FailNoThrow(violation.message);
  } catch (const std::exception& e) {
    FailNoThrow(std::string("model body threw: ") + e.what());
  } catch (...) {
    FailNoThrow("model body threw a non-exception");
  }
  {
    std::lock_guard<std::mutex> lock(m_);
    if (!abort_.load(std::memory_order_relaxed)) {
      for (const auto& t : threads_) {
        if (t->tid != 0 && t->state != WaitState::kFinished) {
          AbortLocked("model body returned with unjoined model threads",
                      /*deadlock=*/false, /*prune=*/false);
          break;
        }
      }
    }
    threads_[0]->state = WaitState::kFinished;
    --live_;
  }
  for (const auto& t : threads_) {
    if (t->os_thread.joinable()) t->os_thread.join();
  }
  tls_rec_ = nullptr;
  RunOutcome outcome;
  outcome.choices = choices_;
  outcome.failed = failed_;
  outcome.failure = failure_;
  outcome.deadlocked = deadlocked_;
  outcome.pruned = pruned_;
  outcome.steps = steps_;
  outcome.max_lock_depth = max_lock_depth_;
  outcome.threads = static_cast<int>(threads_.size());
  return outcome;
}

void Scheduler::ThreadMain(ThreadRec* rec, std::function<void()> fn) {
  tls_rec_ = rec;
  bool run_body = false;
  {
    std::unique_lock<std::mutex> lock(m_);
    rec->parked.wait(lock, [&] {
      return rec->active || abort_.load(std::memory_order_relaxed);
    });
    if (rec->active && !abort_.load(std::memory_order_relaxed)) {
      rec->state = WaitState::kRunning;
      run_body = true;
    }
  }
  if (run_body) {
    try {
      fn();
    } catch (const RunAborted&) {
    } catch (const InvariantViolation& violation) {
      FailNoThrow(violation.message);
    } catch (const std::exception& e) {
      FailNoThrow(std::string("model thread threw: ") + e.what());
    } catch (...) {
      FailNoThrow("model thread threw a non-exception");
    }
  }
  ExitThread();
  tls_rec_ = nullptr;
}

bool Scheduler::EnterRaw() {
  if (!abort_.load(std::memory_order_acquire)) return false;
  // The run is unwinding. A thread already inside stack unwinding
  // (destructors) must not throw again — its shim operations degrade to
  // raw no-ops. Everyone else joins the unwind now.
  if (std::uncaught_exceptions() == 0) throw RunAborted{};
  return true;
}

void Scheduler::SyncPoint(const Op& op) {
  ThreadRec* me = tls_rec_;
  RunHooks(me);
  std::unique_lock<std::mutex> lock(m_);
  if (abort_.load(std::memory_order_relaxed)) throw RunAborted{};
  if (++steps_ > limits_.max_steps) {
    AbortLocked("step budget exhausted (livelock or runaway model)",
                /*deadlock=*/false, /*prune=*/false);
    throw RunAborted{};
  }
  me->pending = op;
  me->state = WaitState::kReady;
  me->active = false;
  ScheduleNextLocked();
  me->parked.wait(lock, [&] {
    return me->active || abort_.load(std::memory_order_relaxed);
  });
  if (abort_.load(std::memory_order_relaxed)) throw RunAborted{};
  me->state = WaitState::kRunning;
}

void Scheduler::RunHooks(ThreadRec* me) {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(m_);
    if (hooks_.empty()) return;
    hooks = hooks_;
  }
  me->in_hook = true;
  try {
    for (const auto& hook : hooks) hook();
  } catch (const InvariantViolation& violation) {
    me->in_hook = false;
    Fail(violation.message);
  } catch (...) {
    me->in_hook = false;
    Fail("invariant hook threw an unexpected exception");
  }
  me->in_hook = false;
}

void Scheduler::ScheduleNextLocked() {
  std::vector<SchedulePolicy::Candidate> candidates;
  for (const auto& t : threads_) {
    if (t->state == WaitState::kReady && EnabledLocked(*t)) {
      candidates.push_back({t->tid, t->pending});
    }
  }
  if (candidates.empty()) {
    if (live_ <= 0) return;
    AbortLocked("deadlock: " + DescribeBlockedLocked(), /*deadlock=*/true,
                /*prune=*/false);
    return;
  }
  const int index = policy_.Choose(choices_.size(), candidates);
  if (index == SchedulePolicy::kPrune) {
    AbortLocked("", /*deadlock=*/false, /*prune=*/true);
    return;
  }
  if (index < 0 || index >= static_cast<int>(candidates.size())) {
    AbortLocked("schedule policy returned an invalid candidate index",
                /*deadlock=*/false, /*prune=*/false);
    return;
  }
  ThreadRec* chosen =
      threads_[static_cast<std::size_t>(candidates[static_cast<std::size_t>(index)].tid)]
          .get();
  choices_.push_back(chosen->tid);
  chosen->active = true;
  chosen->parked.notify_one();
}

bool Scheduler::EnabledLocked(const ThreadRec& rec) const {
  switch (rec.pending.kind) {
    case OpKind::kMutexLock:
      return static_cast<const Mutex*>(rec.pending.raw)->model_owner_ < 0;
    case OpKind::kJoin:
      return threads_[static_cast<std::size_t>(rec.pending.target_tid)]
                 ->state == WaitState::kFinished;
    default:
      return true;
  }
}

void Scheduler::AbortLocked(const std::string& failure, bool deadlock,
                            bool prune) {
  if (abort_.load(std::memory_order_relaxed)) return;  // First cause wins.
  if (prune) {
    pruned_ = true;
  } else {
    failed_ = true;
    failure_ = failure;
    deadlocked_ = deadlock;
  }
  abort_.store(true, std::memory_order_release);
  for (const auto& t : threads_) t->parked.notify_all();
}

void Scheduler::Fail(const std::string& message) {
  FailNoThrow(message);
  throw RunAborted{};
}

void Scheduler::FailNoThrow(const std::string& message) {
  std::lock_guard<std::mutex> lock(m_);
  AbortLocked(message, /*deadlock=*/false, /*prune=*/false);
}

void Scheduler::ReportInvariantFailure(const std::string& message) {
  ThreadRec* rec = tls_rec_;
  if (rec != nullptr && rec->in_hook) throw InvariantViolation{message};
  if (rec != nullptr) rec->sched->Fail(message);
  std::fprintf(stderr, "VERIFY_INVARIANT failed outside a model run: %s\n",
               message.c_str());
  std::abort();
}

void Scheduler::ExitThread() {
  ThreadRec* me = tls_rec_;
  std::lock_guard<std::mutex> lock(m_);
  me->state = WaitState::kFinished;
  me->active = false;
  --live_;
  if (!abort_.load(std::memory_order_relaxed) && live_ > 0) {
    ScheduleNextLocked();
  }
}

int Scheduler::ObjectIdLocked(const void* object) {
  auto [it, inserted] =
      object_ids_.try_emplace(object, static_cast<int>(object_ids_.size()));
  return it->second;
}

std::string Scheduler::DescribeBlockedLocked() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& t : threads_) {
    if (t->state == WaitState::kFinished) continue;
    if (!first) out << ", ";
    first = false;
    out << "t" << t->tid << ":";
    if (t->state == WaitState::kBlockedCv) {
      out << "cv-wait";
    } else {
      out << ToString(t->pending.kind);
      if (t->pending.kind == OpKind::kMutexLock) {
        out << "(" << static_cast<const Mutex*>(t->pending.raw)->name() << ")";
      } else if (t->pending.kind == OpKind::kJoin) {
        out << "(t" << t->pending.target_tid << ")";
      } else if (t->pending.object >= 0) {
        out << "(obj" << t->pending.object << ")";
      }
    }
  }
  return out.str();
}

// --- Shim entry points --------------------------------------------------

void Scheduler::MutexLock(Mutex* mutex) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) {
    throw InvariantViolation{std::string("invariant hook acquired model mutex ") +
                             mutex->name()};
  }
  if (EnterRaw()) return;
  AcquireAfterSync(mutex);
}

void Scheduler::AcquireAfterSync(Mutex* mutex) {
  Op op;
  op.kind = OpKind::kMutexLock;
  op.raw = mutex;
  {
    std::lock_guard<std::mutex> lock(m_);
    op.object = ObjectIdLocked(mutex);
  }
  SyncPoint(op);
  CompleteAcquire(mutex);
}

void Scheduler::CompleteAcquire(Mutex* mutex) {
  ThreadRec* me = tls_rec_;
  std::lock_guard<std::mutex> lock(m_);
  mutex->model_owner_ = me->tid;
  if (lock_order_ != nullptr) {
    lock_order_->AddClass(mutex->name());
    for (Mutex* held : me->held) {
      lock_order_->AddEdge(held->name(), mutex->name());
    }
  }
  me->held.push_back(mutex);
  if (static_cast<int>(me->held.size()) > max_lock_depth_) {
    max_lock_depth_ = static_cast<int>(me->held.size());
  }
}

void Scheduler::MutexUnlock(Mutex* mutex) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) {
    throw InvariantViolation{std::string("invariant hook released model mutex ") +
                             mutex->name()};
  }
  // Unlock is reached from noexcept contexts — ~std::lock_guard and
  // ~std::unique_lock on normal scope exit — so it must NEVER let
  // RunAborted escape: an exception crossing a noexcept destructor is
  // std::terminate. On abort (set before entry, or delivered while this
  // thread is parked at the unlock sequence point) the unlock degrades
  // to a no-op; the run is dead, its model state is discarded, and the
  // thread will unwind at its next throwing sequence point (lock, wait,
  // atomic, spawn, join — none of which appear in destructors here).
  if (abort_.load(std::memory_order_acquire)) return;
  Op op;
  op.kind = OpKind::kMutexUnlock;
  op.raw = mutex;
  {
    std::lock_guard<std::mutex> lock(m_);
    op.object = ObjectIdLocked(mutex);
  }
  try {
    SyncPoint(op);
  } catch (const RunAborted&) {
    return;
  }
  std::unique_lock<std::mutex> lock(m_);
  if (mutex->model_owner_ != me->tid) {
    AbortLocked(std::string("unlock of model mutex not held by this thread: ") +
                    mutex->name(),
                /*deadlock=*/false, /*prune=*/false);
    return;
  }
  mutex->model_owner_ = -1;
  for (auto it = me->held.rbegin(); it != me->held.rend(); ++it) {
    if (*it == mutex) {
      me->held.erase(std::next(it).base());
      break;
    }
  }
}

bool Scheduler::MutexTryLock(Mutex* mutex) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) {
    throw InvariantViolation{std::string("invariant hook acquired model mutex ") +
                             mutex->name()};
  }
  if (EnterRaw()) return true;
  Op op;
  op.kind = OpKind::kMutexTryLock;
  op.raw = mutex;
  {
    std::lock_guard<std::mutex> lock(m_);
    op.object = ObjectIdLocked(mutex);
  }
  SyncPoint(op);
  {
    std::lock_guard<std::mutex> lock(m_);
    if (mutex->model_owner_ >= 0) return false;
  }
  // Token semantics: no other thread ran since the check, the mutex is
  // still free.
  CompleteAcquire(mutex);
  return true;
}

void Scheduler::CvWait(CondVar* cv, Mutex* mutex) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) {
    throw InvariantViolation{"invariant hook blocked on a condition variable"};
  }
  if (EnterRaw()) return;
  Op op;
  op.kind = OpKind::kCvWait;
  op.raw = cv;
  {
    std::lock_guard<std::mutex> lock(m_);
    op.object = ObjectIdLocked(cv);
  }
  SyncPoint(op);
  {
    std::unique_lock<std::mutex> lock(m_);
    if (mutex->model_owner_ != me->tid) {
      AbortLocked("cv wait without holding its mutex", /*deadlock=*/false,
                  /*prune=*/false);
      throw RunAborted{};
    }
    // Atomically release the mutex and block (the model cv has no
    // spurious wakeups: a lost notify is a hard deadlock, which is the
    // bug class this checker reports).
    mutex->model_owner_ = -1;
    for (auto it = me->held.rbegin(); it != me->held.rend(); ++it) {
      if (*it == mutex) {
        me->held.erase(std::next(it).base());
        break;
      }
    }
    me->state = WaitState::kBlockedCv;
    me->wait_cv = cv;
    me->reacquire = mutex;
    me->active = false;
    ScheduleNextLocked();
    me->parked.wait(lock, [&] {
      return me->active || abort_.load(std::memory_order_relaxed);
    });
    if (abort_.load(std::memory_order_relaxed)) throw RunAborted{};
    // Notified and then granted the mutex (the pending reacquisition op
    // installed by CvNotify was chosen while the mutex was free).
    me->state = WaitState::kRunning;
    me->wait_cv = nullptr;
    me->reacquire = nullptr;
  }
  CompleteAcquire(mutex);
}

void Scheduler::CvNotify(CondVar* cv, bool all) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) {
    throw InvariantViolation{"invariant hook notified a condition variable"};
  }
  if (EnterRaw()) return;
  Op op;
  op.kind = OpKind::kCvNotify;
  op.raw = cv;
  {
    std::lock_guard<std::mutex> lock(m_);
    op.object = ObjectIdLocked(cv);
  }
  SyncPoint(op);
  std::lock_guard<std::mutex> lock(m_);
  for (const auto& t : threads_) {
    if (t->state != WaitState::kBlockedCv || t->wait_cv != cv) continue;
    t->state = WaitState::kReady;
    Op reacquire;
    reacquire.kind = OpKind::kMutexLock;
    reacquire.object = ObjectIdLocked(t->reacquire);
    reacquire.raw = t->reacquire;
    t->pending = reacquire;
    if (!all) break;
  }
}

void Scheduler::AtomicPoint(OpKind kind, const void* object) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) return;  // Hooks read atomics raw.
  if (EnterRaw()) return;
  Op op;
  op.kind = kind;
  op.raw = object;
  {
    std::lock_guard<std::mutex> lock(m_);
    op.object = ObjectIdLocked(object);
  }
  SyncPoint(op);
}

int Scheduler::Spawn(std::function<void()> fn) {
  ThreadRec* me = tls_rec_;
  if (me->in_hook) throw InvariantViolation{"invariant hook spawned a thread"};
  if (EnterRaw()) return -1;
  Op op;
  op.kind = OpKind::kSpawn;
  SyncPoint(op);
  ThreadRec* rec = nullptr;
  {
    std::lock_guard<std::mutex> lock(m_);
    auto owned = std::make_unique<ThreadRec>();
    rec = owned.get();
    rec->sched = this;
    rec->tid = static_cast<int>(threads_.size());
    rec->state = WaitState::kReady;
    rec->pending = Op{};  // kThreadStart
    ++live_;
    threads_.push_back(std::move(owned));
  }
  rec->os_thread = std::thread(
      [this, rec, fn = std::move(fn)]() mutable { ThreadMain(rec, std::move(fn)); });
  return rec->tid;
}

void Scheduler::Join(int tid) {
  if (tid < 0) return;
  ThreadRec* me = tls_rec_;
  if (me->in_hook) throw InvariantViolation{"invariant hook joined a thread"};
  ThreadRec* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(m_);
    target = threads_[static_cast<std::size_t>(tid)].get();
  }
  if (EnterRaw()) {
    if (target->os_thread.joinable()) target->os_thread.join();
    return;
  }
  Op op;
  op.kind = OpKind::kJoin;
  op.target_tid = tid;
  SyncPoint(op);
  // Enabled implies the target's model state is kFinished; the OS join
  // only waits out its ThreadMain epilogue.
  if (target->os_thread.joinable()) target->os_thread.join();
}

void Scheduler::RegisterInvariant(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(m_);
  hooks_.push_back(std::move(hook));
}

}  // namespace pump::verify

#endif  // PUMP_VERIFY
