#include "verify/mutation.h"

#if defined(PUMP_VERIFY) && PUMP_VERIFY

#include <atomic>
#include <cstring>

namespace pump::verify {

namespace {
// One armed mutation at a time: the verifier runs mutant-kill passes
// serially, and a single slot keeps the check a pointer load on the
// (model-run-only) fast path.
std::atomic<const char*> armed{nullptr};
}  // namespace

void ArmMutation(const char* name) {
  armed.store(name, std::memory_order_release);
}

bool MutationArmed(const char* name) {
  const char* current = armed.load(std::memory_order_acquire);
  if (current == nullptr || name == nullptr) return false;
  return current == name || std::strcmp(current, name) == 0;
}

}  // namespace pump::verify

#endif  // PUMP_VERIFY
