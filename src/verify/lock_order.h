#ifndef PUMP_VERIFY_LOCK_ORDER_H_
#define PUMP_VERIFY_LOCK_ORDER_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace pump::verify {

/// Lock-order graph over lock *classes* (lockdep-style: every
/// verify::Mutex names a class; instances share a node). The scheduler
/// records an edge A -> B whenever a thread acquires a class-B mutex
/// while holding a class-A mutex, accumulated across every explored
/// schedule of every model. A cycle means two schedules exist whose
/// acquisition orders oppose each other — deadlock *potential* — and is
/// reported as a failure even if no explored schedule actually
/// deadlocked (the explorer's budget may simply not have reached the
/// losing interleaving).
///
/// Thread-safe; compiled in every build (the verifydump report and the
/// unit tests use it directly).
class LockOrderGraph {
 public:
  /// Ensures `name` appears as a node even if it never nests.
  void AddClass(const std::string& name);

  /// Records `held` -> `acquired` (deduplicated).
  void AddEdge(const std::string& held, const std::string& acquired);

  /// True when the directed graph has a cycle; `cycle` (optional)
  /// receives one offending class sequence, closing back on its first
  /// element.
  bool HasCycle(std::vector<std::string>* cycle = nullptr) const;

  std::size_t node_count() const;
  std::size_t edge_count() const;

  /// {"nodes":[...],"edges":[{"from":..,"to":..}],"acyclic":bool}
  std::string ToJson() const;

 private:
  bool CycleFrom(const std::string& node, std::map<std::string, int>* color,
                 std::vector<std::string>* stack,
                 std::vector<std::string>* cycle) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::set<std::string>> edges_;
};

}  // namespace pump::verify

#endif  // PUMP_VERIFY_LOCK_ORDER_H_
