#include "transfer/pipeline.h"

#include <algorithm>
#include <cmath>

namespace pump::transfer {

double PipelineMakespan(const std::vector<PipelineStage>& stages,
                        double total_bytes, double chunk_bytes) {
  if (total_bytes <= 0.0 || stages.empty()) return 0.0;
  chunk_bytes = std::min(chunk_bytes, total_bytes);
  const double chunks = std::ceil(total_bytes / chunk_bytes);
  // The final chunk may be smaller; modelling all chunks as equal-sized
  // keeps the expression closed-form and errs by less than one chunk.
  double fill = 0.0;
  double bottleneck = 0.0;
  for (const PipelineStage& stage : stages) {
    const double t = stage.ChunkTime(chunk_bytes);
    fill += t;
    bottleneck = std::max(bottleneck, t);
  }
  return fill + (chunks - 1.0) * bottleneck;
}

double PipelineSteadyStateRate(const std::vector<PipelineStage>& stages,
                               double chunk_bytes) {
  if (stages.empty() || chunk_bytes <= 0.0) return 0.0;
  double bottleneck = 0.0;
  for (const PipelineStage& stage : stages) {
    bottleneck = std::max(bottleneck, stage.ChunkTime(chunk_bytes));
  }
  return bottleneck <= 0.0 ? 0.0 : chunk_bytes / bottleneck;
}

}  // namespace pump::transfer
