#include "transfer/pipeline.h"

#include <algorithm>
#include <cmath>

namespace pump::transfer {

Seconds PipelineMakespan(const std::vector<PipelineStage>& stages,
                         Bytes total_bytes, Bytes chunk_bytes) {
  if (total_bytes <= Bytes(0.0) || stages.empty()) return Seconds(0.0);
  chunk_bytes = std::min(chunk_bytes, total_bytes);
  const double chunks = std::ceil(total_bytes / chunk_bytes);
  // The final chunk may be smaller; modelling all chunks as equal-sized
  // keeps the expression closed-form and errs by less than one chunk.
  Seconds fill;
  Seconds bottleneck;
  for (const PipelineStage& stage : stages) {
    const Seconds t = stage.ChunkTime(chunk_bytes);
    fill += t;
    bottleneck = std::max(bottleneck, t);
  }
  return fill + (chunks - 1.0) * bottleneck;
}

BytesPerSecond PipelineSteadyStateRate(const std::vector<PipelineStage>& stages,
                                       Bytes chunk_bytes) {
  if (stages.empty() || chunk_bytes <= Bytes(0.0)) return BytesPerSecond(0.0);
  Seconds bottleneck;
  for (const PipelineStage& stage : stages) {
    bottleneck = std::max(bottleneck, stage.ChunkTime(chunk_bytes));
  }
  return bottleneck <= Seconds(0.0) ? BytesPerSecond(0.0)
                                    : chunk_bytes / bottleneck;
}

}  // namespace pump::transfer
