#include "transfer/transfer_model.h"

#include <algorithm>
#include <string>

namespace pump::transfer {

namespace {

// Per-chunk overhead of issuing one pipelined copy + kernel launch.
constexpr Seconds kPerChunkOverhead = Seconds::Micros(12);

}  // namespace

TransferModel::TransferModel(const hw::SystemProfile* profile)
    : profile_(profile) {}

Status TransferModel::Validate(TransferMethod method, hw::DeviceId gpu,
                               hw::MemoryNodeId src,
                               memory::MemoryKind kind) const {
  const MethodTraits& traits = TraitsOf(method);
  PUMP_ASSIGN_OR_RETURN(
      bool coherent, profile_->topology.IsCacheCoherentPath(gpu, src));

  if (method == TransferMethod::kCoherence && !coherent) {
    // PCI-e 3.0 is non-cache-coherent; the Coherence method does not exist
    // there (Fig. 12 reports it as "Unsupported").
    return Status::Unsupported(
        "Coherence requires a cache-coherent interconnect path");
  }
  if (method == TransferMethod::kCoherence) {
    // Coherence works on any CPU memory, pageable or pinned (Sec. 4.2).
    return Status::OK();
  }
  if (kind != traits.required_memory) {
    return Status::InvalidArgument(
        std::string(traits.name) + " requires " +
        memory::MemoryKindToString(traits.required_memory) + " memory, got " +
        memory::MemoryKindToString(kind));
  }
  return Status::OK();
}

Result<std::vector<PipelineStage>> TransferModel::BuildPipeline(
    TransferMethod method, hw::DeviceId gpu, hw::MemoryNodeId src) const {
  const hw::Topology& topo = profile_->topology;
  PUMP_ASSIGN_OR_RETURN(sim::AccessPath path,
                        sim::ResolveAccessPath(topo, gpu, src));
  const hw::DeviceSpec& cpu = topo.device(src);
  const hw::MemorySpec& mem = topo.memory(src);
  const Bytes page = profile_->os_page;
  const Seconds kNoLatency;

  std::vector<PipelineStage> stages;
  switch (method) {
    case TransferMethod::kPageableCopy:
      // A single CPU thread drives MMIO writes to GPU memory.
      stages.push_back({"mmio-copy",
                        std::min(cpu.single_thread_copy_bw, path.seq_bw),
                        kPerChunkOverhead});
      break;
    case TransferMethod::kStagedCopy: {
      // N staging threads memcpy pageable -> pinned; the extra pass and the
      // concurrent DMA read triple the CPU-memory traffic per payload byte.
      const BytesPerSecond staging_rate =
          std::min(profile_->staging_threads * cpu.single_thread_copy_bw,
                   mem.duplex_bw / 3.0);
      stages.push_back({"stage-to-pinned", staging_rate, kNoLatency});
      stages.push_back({"dma", path.seq_bw, kPerChunkOverhead});
      break;
    }
    case TransferMethod::kDynamicPinning:
      // Page-lock each chunk ad hoc, then DMA it.
      stages.push_back(
          {"pin-pages", page / profile_->pin_page_latency, kNoLatency});
      stages.push_back({"dma", path.seq_bw, kPerChunkOverhead});
      break;
    case TransferMethod::kPinnedCopy:
      stages.push_back({"dma", path.seq_bw, kPerChunkOverhead});
      break;
    case TransferMethod::kUmPrefetch:
      stages.push_back(
          {"um-prefetch", profile_->um_prefetch_bw, kPerChunkOverhead});
      break;
    case TransferMethod::kUmMigration: {
      // Demand paging: each page pays a fault before moving at link rate.
      const Seconds per_page =
          profile_->um_page_fault + page / path.seq_bw;
      stages.push_back({"demand-paging", page / per_page, kNoLatency});
      break;
    }
    case TransferMethod::kZeroCopy:
    case TransferMethod::kCoherence:
      // Pull-based hardware access: the GPU reads at path bandwidth; no
      // software pipeline exists.
      stages.push_back({"direct-access", path.seq_bw, kNoLatency});
      break;
  }
  return stages;
}

Result<BytesPerSecond> TransferModel::IngestBandwidth(
    TransferMethod method, hw::DeviceId gpu, hw::MemoryNodeId src) const {
  PUMP_ASSIGN_OR_RETURN(std::vector<PipelineStage> stages,
                        BuildPipeline(method, gpu, src));
  return PipelineSteadyStateRate(stages, kDefaultChunkBytes);
}

Result<Seconds> TransferModel::TransferTime(TransferMethod method,
                                            hw::DeviceId gpu,
                                            hw::MemoryNodeId src, Bytes bytes,
                                            Bytes chunk_bytes) const {
  PUMP_ASSIGN_OR_RETURN(std::vector<PipelineStage> stages,
                        BuildPipeline(method, gpu, src));
  return PipelineMakespan(stages, bytes, chunk_bytes);
}

}  // namespace pump::transfer
