#ifndef PUMP_TRANSFER_EXECUTOR_H_
#define PUMP_TRANSFER_EXECUTOR_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "memory/buffer.h"
#include "memory/unified.h"
#include "transfer/method.h"

namespace pump::transfer {

/// Counters produced by a functional transfer execution.
struct TransferStats {
  /// Bytes copied into the destination (0 for pull-based direct access).
  std::uint64_t bytes_copied = 0;
  /// Number of pipeline chunks processed.
  std::uint64_t chunks = 0;
  /// Bytes that went through a pinned staging buffer (Staged Copy).
  std::uint64_t staged_bytes = 0;
  /// OS pages pinned ad hoc (Dynamic Pinning).
  std::uint64_t pages_pinned = 0;
  /// Unified Memory page migrations (UM Prefetch / Migration).
  std::uint64_t pages_migrated = 0;
  /// True when the GPU accessed the source directly (Zero-Copy/Coherence).
  bool direct_access = false;
  /// Chunk attempts repeated after an injected transient fault.
  std::uint64_t retries = 0;
  /// Transient faults observed at the `transfer.chunk` / `um.migrate`
  /// failpoints (each may be retried; see `retries`).
  std::uint64_t faults_injected = 0;
  /// Chunks that crossed the link while it was throttled
  /// (`link.degrade` failpoint): observability for the Li et al.-style
  /// asymmetric-degradation scenarios, not an error.
  std::uint64_t degraded_chunks = 0;
  /// Total modelled retry backoff charged by the policy, seconds.
  double modelled_backoff_s = 0.0;
};

/// Fault handling for a transfer: an optional injector queried at the
/// `transfer.chunk`, `um.migrate` and `link.degrade` failpoints, and the
/// retry policy applied per chunk. With a null injector the transfer is
/// fault-free and the policy is irrelevant.
struct TransferFaultOptions {
  fault::FaultInjector* injector = nullptr;
  fault::RetryPolicy retry;
};

/// Functionally executes a transfer: moves `src`'s bytes into `dst` (push
/// methods) or marks direct access (pull methods), chunk by chunk, calling
/// `on_chunk(offset, bytes)` after each chunk lands — this is where a
/// pipelined consumer (e.g. a join build) hooks in. Both buffers must be
/// materialized and the same size for push methods.
///
/// `um_region` must be non-null for the Unified Memory methods and records
/// page residency; `gpu_node` is the destination memory node used for the
/// residency bookkeeping.
///
/// When `faults.injector` is armed, each chunk is retried under
/// `faults.retry` on transient (`kUnavailable`) faults; `on_chunk` runs
/// only after the chunk finally lands, so consumers never observe a
/// retried chunk twice. An exhausted retry budget surfaces as
/// `kUnavailable` naming the failing offset; a non-retryable injected
/// fault surfaces with its own code.
Result<TransferStats> ExecuteTransfer(
    TransferMethod method, const memory::Buffer& src, memory::Buffer* dst,
    hw::MemoryNodeId gpu_node, std::uint64_t chunk_bytes,
    std::uint64_t os_page_bytes, memory::UnifiedRegion* um_region = nullptr,
    const std::function<void(std::uint64_t, std::uint64_t)>& on_chunk = {},
    const TransferFaultOptions& faults = {});

/// Stages `bytes` of host data into a device buffer on `gpu_node`: pinned
/// bounce buffer, then a chunk-wise kPinnedCopy with per-chunk retry —
/// the shared column-staging path of the engine's GPU-placed pipelines.
/// Accumulates the transfer counters into `*stats` when non-null. Fails
/// with InvalidArgument on an empty input (callers skip empty columns).
Result<memory::Buffer> StageToDevice(const void* host, std::uint64_t bytes,
                                     hw::MemoryNodeId gpu_node,
                                     std::uint64_t chunk_bytes,
                                     std::uint64_t os_page_bytes,
                                     const TransferFaultOptions& faults = {},
                                     TransferStats* stats = nullptr);

}  // namespace pump::transfer

#endif  // PUMP_TRANSFER_EXECUTOR_H_
