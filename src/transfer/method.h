#ifndef PUMP_TRANSFER_METHOD_H_
#define PUMP_TRANSFER_METHOD_H_

#include <array>
#include <cstdint>

#include "memory/buffer.h"

namespace pump::transfer {

/// The eight GPU transfer methods of the paper's Table 1.
enum class TransferMethod : std::uint8_t {
  kPageableCopy,    ///< cudaMemcpyAsync from pageable memory (MMIO).
  kStagedCopy,      ///< CPU threads stage into pinned buffers, then DMA.
  kDynamicPinning,  ///< Pin pages ad hoc, then DMA.
  kPinnedCopy,      ///< cudaMemcpyAsync from pinned memory (DMA engines).
  kUmPrefetch,      ///< cudaMemPrefetchAsync on Unified Memory.
  kUmMigration,     ///< Demand paging of Unified Memory.
  kZeroCopy,        ///< Unified Virtual Addressing access to pinned memory.
  kCoherence,       ///< Direct pageable access via cache-coherence (NVLink).
};

/// All methods, in Table-1 order.
inline constexpr std::array<TransferMethod, 8> kAllTransferMethods = {
    TransferMethod::kPageableCopy, TransferMethod::kStagedCopy,
    TransferMethod::kDynamicPinning, TransferMethod::kPinnedCopy,
    TransferMethod::kUmPrefetch,    TransferMethod::kUmMigration,
    TransferMethod::kZeroCopy,      TransferMethod::kCoherence,
};

/// Transfer semantics (Table 1): push methods run a CPU-driven pipeline to
/// GPU memory; pull methods let the GPU request data itself and can
/// therefore satisfy data-dependent (hashed) accesses (Sec. 4.2).
enum class Semantics : std::uint8_t { kPush, kPull };

/// Implementation level (Table 1).
enum class Level : std::uint8_t { kSoftware, kOs, kHardware };

/// Access granularity (Table 1).
enum class Granularity : std::uint8_t { kChunk, kPage, kByte };

/// Static properties of a transfer method (the columns of Table 1).
struct MethodTraits {
  const char* name;
  Semantics semantics;
  Level level;
  Granularity granularity;
  /// The memory kind the source data must be stored in.
  memory::MemoryKind required_memory;
};

/// Returns the Table-1 traits of `method`.
const MethodTraits& TraitsOf(TransferMethod method);

/// Returns the Table-1 display name.
inline const char* TransferMethodToString(TransferMethod method) {
  return TraitsOf(method).name;
}

}  // namespace pump::transfer

#endif  // PUMP_TRANSFER_METHOD_H_
