#ifndef PUMP_TRANSFER_TRANSFER_MODEL_H_
#define PUMP_TRANSFER_TRANSFER_MODEL_H_

#include <vector>

#include "common/status.h"
#include "hw/system_profile.h"
#include "memory/buffer.h"
#include "sim/access_path.h"
#include "transfer/method.h"
#include "transfer/pipeline.h"

namespace pump::transfer {

/// Performance model of the eight transfer methods (Sec. 4, Table 1) on a
/// given system profile. Push-based methods are modelled as chunked
/// software pipelines (Sec. 4.1); pull-based methods as direct access over
/// the resolved interconnect path (Sec. 4.2).
class TransferModel {
 public:
  /// Creates a model bound to `profile` (must outlive the model).
  explicit TransferModel(const hw::SystemProfile* profile);

  /// Checks whether `method` can move data of `kind` from `src` to the
  /// GPU `gpu` on this system: memory-kind compatibility (Table 1) and
  /// hardware capability (Coherence requires a cache-coherent path; it is
  /// unsupported on PCI-e 3.0, Sec. 7.2.1).
  Status Validate(TransferMethod method, hw::DeviceId gpu,
                  hw::MemoryNodeId src, memory::MemoryKind kind) const;

  /// The pipeline stages of a push-based method (for inspection and the
  /// chunk-size ablation bench). Pull-based methods yield a single stage.
  Result<std::vector<PipelineStage>> BuildPipeline(
      TransferMethod method, hw::DeviceId gpu, hw::MemoryNodeId src) const;

  /// Steady-state ingest bandwidth: the rate at which the GPU can consume
  /// data from `src` with `method`. This is what the join and scan cost
  /// models overlap with compute.
  Result<BytesPerSecond> IngestBandwidth(TransferMethod method,
                                         hw::DeviceId gpu,
                                         hw::MemoryNodeId src) const;

  /// Full transfer makespan for `bytes` with `chunk_bytes` chunks,
  /// excluding GPU compute.
  Result<Seconds> TransferTime(TransferMethod method, hw::DeviceId gpu,
                               hw::MemoryNodeId src, Bytes bytes,
                               Bytes chunk_bytes = kDefaultChunkBytes) const;

  /// True when the method pulls data (GPU-initiated): such methods can
  /// satisfy data-dependent accesses, e.g. hash-table operations in CPU
  /// memory (Sec. 4.2). Push-based methods cannot.
  static bool SupportsDataDependentAccess(TransferMethod method) {
    return TraitsOf(method).semantics == Semantics::kPull;
  }

  /// The bound system profile.
  const hw::SystemProfile& profile() const { return *profile_; }

 private:
  const hw::SystemProfile* profile_;
};

}  // namespace pump::transfer

#endif  // PUMP_TRANSFER_TRANSFER_MODEL_H_
