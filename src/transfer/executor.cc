#include "transfer/executor.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pump::transfer {

namespace {

bool IsPush(TransferMethod method) {
  return TraitsOf(method).semantics == Semantics::kPush;
}

struct TransferMetrics {
  obs::Counter& chunks;
  obs::Counter& bytes;
  obs::Counter& retries;
  obs::Counter& faults_injected;
  obs::Counter& degraded_chunks;
  obs::Histogram& chunk_bytes;
};

TransferMetrics& Metrics() {
  static TransferMetrics metrics{
      obs::MetricsRegistry::Instance().GetCounter("transfer.chunks"),
      obs::MetricsRegistry::Instance().GetCounter("transfer.bytes"),
      obs::MetricsRegistry::Instance().GetCounter("transfer.retries"),
      obs::MetricsRegistry::Instance().GetCounter(
          "transfer.faults_injected"),
      obs::MetricsRegistry::Instance().GetCounter(
          "transfer.degraded_chunks"),
      obs::MetricsRegistry::Instance().GetHistogram(
          "transfer.chunk_bytes")};
  return metrics;
}

/// Runs one chunk's `work` under the fault options: checks the
/// `link.degrade` failpoint (observability only), then retries the
/// `transfer.chunk` (and, for UM methods, `um.migrate`) failpoints plus
/// `work` per the policy. `work` only runs on attempts whose injected
/// checks pass, so a retried chunk is re-executed from scratch.
/// `len`/`node` only feed the chunk's trace span and registry metrics
/// (bytes moved, modelled destination node).
Status RunChunk(const TransferFaultOptions& faults, bool um_site,
                std::uint64_t offset, std::uint64_t len,
                hw::MemoryNodeId node, TransferStats* stats,
                const std::function<Status()>& work) {
  PUMP_TRACE_SPAN(obs::TraceCategory::kTransfer, "transfer.chunk",
                  static_cast<double>(len), static_cast<double>(node));
  Metrics().chunks.Add();
  Metrics().bytes.Add(len);
  Metrics().chunk_bytes.Record(len);
  if (faults.injector == nullptr) return work();
  if (!faults.injector->Check(fault::kLinkDegrade).ok()) {
    ++stats->degraded_chunks;
    Metrics().degraded_chunks.Add();
  }
  fault::RetryStats retry_stats;
  const Status status = fault::RunWithRetry(
      faults.retry,
      [&]() -> Status {
        Status injected = faults.injector->Check(fault::kTransferChunk);
        if (injected.ok() && um_site) {
          injected = faults.injector->Check(fault::kUmMigrate);
        }
        if (!injected.ok()) {
          ++stats->faults_injected;
          Metrics().faults_injected.Add();
          return injected;
        }
        return work();
      },
      &retry_stats);
  stats->retries += retry_stats.retries;
  Metrics().retries.Add(retry_stats.retries);
  stats->modelled_backoff_s += retry_stats.backoff_s;
  if (status.ok()) return status;
  if (status.code() == StatusCode::kUnavailable) {
    return Status::Unavailable("transfer chunk at offset " +
                               std::to_string(offset) + " failed after " +
                               std::to_string(retry_stats.attempts) +
                               " attempts: " + status.message());
  }
  return status;
}

}  // namespace

Result<TransferStats> ExecuteTransfer(
    TransferMethod method, const memory::Buffer& src, memory::Buffer* dst,
    hw::MemoryNodeId gpu_node, std::uint64_t chunk_bytes,
    std::uint64_t os_page_bytes, memory::UnifiedRegion* um_region,
    const std::function<void(std::uint64_t, std::uint64_t)>& on_chunk,
    const TransferFaultOptions& faults) {
  if (!src.materialized()) {
    return Status::InvalidArgument("source buffer is not materialized");
  }
  if (chunk_bytes == 0) {
    return Status::InvalidArgument("chunk size must be positive");
  }
  if (os_page_bytes == 0) {
    return Status::InvalidArgument("OS page size must be positive");
  }
  const bool uses_um = method == TransferMethod::kUmPrefetch ||
                       method == TransferMethod::kUmMigration;
  if (uses_um && um_region == nullptr) {
    return Status::InvalidArgument(
        "Unified Memory methods require a UnifiedRegion");
  }
  if (uses_um && um_region->size() != src.size()) {
    return Status::InvalidArgument("UnifiedRegion size mismatch");
  }

  TransferStats stats;

  if (!IsPush(method) && method != TransferMethod::kUmMigration) {
    // Zero-Copy / Coherence: the GPU dereferences CPU memory directly; no
    // bytes land in GPU memory. Consumers read `src` in place. Each chunk
    // of reads still crosses the interconnect, so the chunk failpoint
    // applies (a dropped read burst is retried transparently).
    stats.direct_access = true;
    for (std::uint64_t offset = 0; offset < src.size();
         offset += chunk_bytes) {
      const std::uint64_t len = std::min(chunk_bytes, src.size() - offset);
      PUMP_RETURN_NOT_OK(RunChunk(faults, /*um_site=*/false, offset, len,
                                  gpu_node, &stats,
                                  [] { return Status::OK(); }));
      ++stats.chunks;
      if (on_chunk) on_chunk(offset, len);
    }
    return stats;
  }

  if (method == TransferMethod::kUmMigration) {
    // Demand paging: every touched page migrates to the GPU node.
    for (std::uint64_t offset = 0; offset < src.size();
         offset += chunk_bytes) {
      const std::uint64_t len = std::min(chunk_bytes, src.size() - offset);
      PUMP_RETURN_NOT_OK(RunChunk(
          faults, /*um_site=*/true, offset, len, gpu_node, &stats,
          [&]() -> Status {
            for (std::uint64_t page_off = offset; page_off < offset + len;
                 page_off += os_page_bytes) {
              PUMP_ASSIGN_OR_RETURN(bool faulted,
                                    um_region->Touch(page_off, gpu_node));
              if (faulted) ++stats.pages_migrated;
            }
            return Status::OK();
          }));
      ++stats.chunks;
      if (on_chunk) on_chunk(offset, len);
    }
    stats.direct_access = true;
    return stats;
  }

  // Push-based methods copy into the destination buffer.
  if (dst == nullptr || !dst->materialized() || dst->size() < src.size()) {
    return Status::InvalidArgument(
        "push-based transfer requires a materialized destination of at "
        "least the source size");
  }

  std::vector<std::byte> staging;
  if (method == TransferMethod::kStagedCopy) staging.resize(chunk_bytes);

  for (std::uint64_t offset = 0; offset < src.size(); offset += chunk_bytes) {
    const std::uint64_t len = std::min(chunk_bytes, src.size() - offset);
    PUMP_RETURN_NOT_OK(RunChunk(
        faults, /*um_site=*/method == TransferMethod::kUmPrefetch, offset,
        len, gpu_node, &stats, [&]() -> Status {
          switch (method) {
            case TransferMethod::kStagedCopy:
              // Extra pass through the pinned staging buffer (Sec. 4.1).
              std::memcpy(staging.data(), src.data() + offset, len);
              std::memcpy(dst->data() + offset, staging.data(), len);
              stats.staged_bytes += len;
              break;
            case TransferMethod::kDynamicPinning:
              stats.pages_pinned += (len + os_page_bytes - 1) / os_page_bytes;
              std::memcpy(dst->data() + offset, src.data() + offset, len);
              break;
            case TransferMethod::kUmPrefetch: {
              PUMP_ASSIGN_OR_RETURN(std::uint64_t moved,
                                    um_region->Prefetch(offset, len,
                                                        gpu_node));
              stats.pages_migrated += moved;
              std::memcpy(dst->data() + offset, src.data() + offset, len);
              break;
            }
            case TransferMethod::kPageableCopy:
            case TransferMethod::kPinnedCopy:
              std::memcpy(dst->data() + offset, src.data() + offset, len);
              break;
            default:
              return Status::Internal("unexpected push method");
          }
          return Status::OK();
        }));
    stats.bytes_copied += len;
    ++stats.chunks;
    if (on_chunk) on_chunk(offset, len);
  }
  return stats;
}

Result<memory::Buffer> StageToDevice(const void* host, std::uint64_t bytes,
                                     hw::MemoryNodeId gpu_node,
                                     std::uint64_t chunk_bytes,
                                     std::uint64_t os_page_bytes,
                                     const TransferFaultOptions& faults,
                                     TransferStats* stats) {
  if (host == nullptr || bytes == 0) {
    return Status::InvalidArgument("nothing to stage");
  }
  memory::Buffer src(bytes, memory::MemoryKind::kPinned,
                     {memory::Extent{hw::kCpu0, bytes}});
  std::memcpy(src.data(), host, bytes);
  memory::Buffer dst(bytes, memory::MemoryKind::kDevice,
                     {memory::Extent{gpu_node, bytes}});
  PUMP_ASSIGN_OR_RETURN(
      TransferStats transfer_stats,
      ExecuteTransfer(TransferMethod::kPinnedCopy, src, &dst, gpu_node,
                      chunk_bytes, os_page_bytes, nullptr, {}, faults));
  if (stats != nullptr) {
    stats->bytes_copied += transfer_stats.bytes_copied;
    stats->chunks += transfer_stats.chunks;
    stats->staged_bytes += transfer_stats.staged_bytes;
    stats->retries += transfer_stats.retries;
    stats->faults_injected += transfer_stats.faults_injected;
    stats->degraded_chunks += transfer_stats.degraded_chunks;
    stats->modelled_backoff_s += transfer_stats.modelled_backoff_s;
  }
  return dst;
}

}  // namespace pump::transfer
