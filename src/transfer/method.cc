#include "transfer/method.h"

namespace pump::transfer {
namespace {

using memory::MemoryKind;

// Table 1 of the paper, verbatim.
constexpr MethodTraits kTraits[] = {
    {"Pageable Copy", Semantics::kPush, Level::kSoftware, Granularity::kChunk,
     MemoryKind::kPageable},
    {"Staged Copy", Semantics::kPush, Level::kSoftware, Granularity::kChunk,
     MemoryKind::kPageable},
    {"Dynamic Pinning", Semantics::kPush, Level::kSoftware,
     Granularity::kChunk, MemoryKind::kPageable},
    {"Pinned Copy", Semantics::kPush, Level::kSoftware, Granularity::kChunk,
     MemoryKind::kPinned},
    {"UM Prefetch", Semantics::kPush, Level::kSoftware, Granularity::kChunk,
     MemoryKind::kUnified},
    {"UM Migration", Semantics::kPull, Level::kOs, Granularity::kPage,
     MemoryKind::kUnified},
    {"Zero-Copy", Semantics::kPull, Level::kHardware, Granularity::kByte,
     MemoryKind::kPinned},
    {"Coherence", Semantics::kPull, Level::kHardware, Granularity::kByte,
     MemoryKind::kPageable},
};

}  // namespace

const MethodTraits& TraitsOf(TransferMethod method) {
  return kTraits[static_cast<std::size_t>(method)];
}

}  // namespace pump::transfer
