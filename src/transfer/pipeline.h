#ifndef PUMP_TRANSFER_PIPELINE_H_
#define PUMP_TRANSFER_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace pump::transfer {

/// One stage of a chunked software pipeline (Sec. 4.1): either a rate or a
/// fixed per-chunk latency, plus an optional per-chunk overhead (e.g. a
/// kernel launch).
struct PipelineStage {
  std::string name;
  /// Streaming rate of the stage; 0 for a pure-latency stage.
  BytesPerSecond rate;
  /// Fixed per-chunk overhead.
  Seconds per_chunk_latency;

  /// Time this stage needs for one chunk of `chunk_bytes`.
  Seconds ChunkTime(Bytes chunk_bytes) const {
    Seconds t = per_chunk_latency;
    if (rate > BytesPerSecond(0.0)) t += chunk_bytes / rate;
    return t;
  }
};

/// Analytic makespan of an in-order, fully overlapped k-stage pipeline
/// processing n equal chunks:
///   makespan = sum_i t_i + (n - 1) * max_i t_i
/// The first chunk fills the pipeline; afterwards the bottleneck stage
/// paces it. This is the standard pipelining model the paper's push-based
/// methods rely on (Sec. 4.1).
Seconds PipelineMakespan(const std::vector<PipelineStage>& stages,
                         Bytes total_bytes, Bytes chunk_bytes);

/// Steady-state throughput of the pipeline: the bottleneck stage's
/// effective rate. Ignores fill time, so it is an upper bound on
/// bytes/makespan, tight for many chunks.
BytesPerSecond PipelineSteadyStateRate(const std::vector<PipelineStage>& stages,
                                       Bytes chunk_bytes);

/// Default chunk size used by the push-based pipelines. The paper tunes
/// chunk sizes empirically; 8 MiB amortizes launch overheads while keeping
/// the pipeline fine-grained enough to overlap.
inline constexpr Bytes kDefaultChunkBytes = Bytes::MiB(8);

}  // namespace pump::transfer

#endif  // PUMP_TRANSFER_PIPELINE_H_
