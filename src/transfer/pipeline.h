#ifndef PUMP_TRANSFER_PIPELINE_H_
#define PUMP_TRANSFER_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pump::transfer {

/// One stage of a chunked software pipeline (Sec. 4.1): either a rate
/// (bytes/s) or a fixed per-chunk latency, plus an optional per-chunk
/// overhead (e.g. a kernel launch).
struct PipelineStage {
  std::string name;
  /// Streaming rate of the stage in bytes/s; 0 for a pure-latency stage.
  double rate = 0.0;
  /// Fixed per-chunk overhead in seconds.
  double per_chunk_latency_s = 0.0;

  /// Time this stage needs for one chunk of `chunk_bytes`.
  double ChunkTime(double chunk_bytes) const {
    double t = per_chunk_latency_s;
    if (rate > 0.0) t += chunk_bytes / rate;
    return t;
  }
};

/// Analytic makespan of an in-order, fully overlapped k-stage pipeline
/// processing n equal chunks:
///   makespan = sum_i t_i + (n - 1) * max_i t_i
/// The first chunk fills the pipeline; afterwards the bottleneck stage
/// paces it. This is the standard pipelining model the paper's push-based
/// methods rely on (Sec. 4.1).
double PipelineMakespan(const std::vector<PipelineStage>& stages,
                        double total_bytes, double chunk_bytes);

/// Steady-state throughput of the pipeline in bytes/s: the bottleneck
/// stage's effective rate. Ignores fill time, so it is an upper bound on
/// bytes/makespan, tight for many chunks.
double PipelineSteadyStateRate(const std::vector<PipelineStage>& stages,
                               double chunk_bytes);

/// Default chunk size used by the push-based pipelines. The paper tunes
/// chunk sizes empirically; 8 MiB amortizes launch overheads while keeping
/// the pipeline fine-grained enough to overlap.
inline constexpr double kDefaultChunkBytes = 8.0 * 1024 * 1024;

}  // namespace pump::transfer

#endif  // PUMP_TRANSFER_PIPELINE_H_
