#ifndef PUMP_OPS_Q6_MODEL_H_
#define PUMP_OPS_Q6_MODEL_H_

#include <cstdint>

#include "common/status.h"
#include "hw/system_profile.h"
#include "transfer/transfer_model.h"

namespace pump::ops {

/// Q6 scan variant (Sec. 7.2.4).
enum class Q6Variant : std::uint8_t { kBranching, kPredicated };

/// Returns "branching" or "predicated".
const char* Q6VariantToString(Q6Variant variant);

/// Modelled execution of Q6 at some scale factor.
struct Q6Timing {
  Seconds elapsed;
  double rows = 0.0;
  /// Paper metric: G Tuples/s over the scanned rows.
  PerSecond RowsPerSecond() const { return rows / elapsed; }
};

/// Aggregate scan-compute rates (rows/s) for the Q6 kernels. The CPU
/// predicated path is SIMD and effectively data-bound; the branching paths
/// are calibrated to Fig. 15 (CPU peaks near 7.5 G rows/s; the GPU's
/// divergent branching kernel sustains ~4.5 G rows/s).
struct Q6ComputeRates {
  double cpu_branching = 7.5e9;
  double cpu_predicated = 40e9;
  double gpu_branching = 4.5e9;
  double gpu_predicated = 20e9;
};

/// Analytic model of TPC-H Q6 on CPU or GPU (Sec. 7.2.4). Assumes lineitem
/// is shipdate-clustered (fact tables are loaded in date order), so the
/// branching variant skips contiguous ranges of the non-date columns:
/// only the date-qualifying fraction of those bytes crosses the
/// interconnect. Skipping requires byte-granular access; over
/// non-coherent PCI-e 3.0, DMA chunking transfers whole chunks anyway and
/// the divergent access pattern additionally wastes packet bandwidth
/// (Sec. 2.2.1), so branching does not pay off there — matching the
/// paper's measurement that PCI-e trails NVLink by ~9.8x.
class Q6Model {
 public:
  explicit Q6Model(const hw::SystemProfile* profile);

  /// Estimates a Q6 scan of `rows` lineitem rows on `device`, reading the
  /// columns from `location` with `method` (GPUs) or directly (CPUs).
  Result<Q6Timing> Estimate(hw::DeviceId device, hw::MemoryNodeId location,
                            transfer::TransferMethod method,
                            Q6Variant variant, double rows) const;

  /// Mutable calibration constants (ablation benches).
  Q6ComputeRates& rates() { return rates_; }

 private:
  const hw::SystemProfile* profile_;
  transfer::TransferModel transfer_model_;
  Q6ComputeRates rates_;
};

}  // namespace pump::ops

#endif  // PUMP_OPS_Q6_MODEL_H_
