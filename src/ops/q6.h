#ifndef PUMP_OPS_Q6_H_
#define PUMP_OPS_Q6_H_

#include <cstdint>

#include "data/tpch.h"

namespace pump::ops {

/// Result of TPC-H query 6: SELECT sum(l_extendedprice * l_discount)
/// FROM lineitem WHERE l_shipdate >= '1994-01-01' AND l_shipdate <
/// '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24.
/// Revenue is kept in integer cents x percent to stay exact.
struct Q6Result {
  std::int64_t revenue = 0;
  std::uint64_t qualifying_rows = 0;

  friend bool operator==(const Q6Result&, const Q6Result&) = default;
};

/// Branching variant: evaluates the shipdate predicate first and only
/// touches the remaining columns for qualifying rows. On a GPU with a fast
/// interconnect this skips transferring most of the input (Sec. 7.2.4).
Q6Result RunQ6Branching(const data::LineitemQ6& table);

/// Predicated variant: loads every column for every row and folds the
/// predicates into branch-free masks (SIMD-friendly), as the paper's CPU
/// implementation does.
Q6Result RunQ6Predicated(const data::LineitemQ6& table);

/// Morsel-parallel wrappers of the two variants.
Q6Result RunQ6BranchingParallel(const data::LineitemQ6& table,
                                std::size_t workers);
Q6Result RunQ6PredicatedParallel(const data::LineitemQ6& table,
                                 std::size_t workers);

}  // namespace pump::ops

#endif  // PUMP_OPS_Q6_H_
