#include "ops/q6_model.h"

#include <algorithm>

#include "data/tpch.h"
#include "sim/access_path.h"
#include "sim/overlap.h"

namespace pump::ops {

namespace {

// Column widths Q6 reads (shipdate, discount, quantity: 4 B; price: 8 B).
constexpr double kDateBytes = 4.0;
constexpr double kOtherBytes = 4.0 + 4.0 + 8.0;

// Bandwidth derating for the divergent, non-coherent branching pattern
// over PCI-e: small irregular reads waste packet payload (Sec. 2.2.1).
constexpr double kPcieDivergencePenalty = 0.75;

}  // namespace

const char* Q6VariantToString(Q6Variant variant) {
  return variant == Q6Variant::kBranching ? "branching" : "predicated";
}

Q6Model::Q6Model(const hw::SystemProfile* profile)
    : profile_(profile), transfer_model_(profile) {}

Result<Q6Timing> Q6Model::Estimate(hw::DeviceId device,
                                   hw::MemoryNodeId location,
                                   transfer::TransferMethod method,
                                   Q6Variant variant, double rows) const {
  const hw::Topology& topo = profile_->topology;
  const hw::DeviceSpec& dev = topo.device(device);
  const bool is_gpu = dev.kind == hw::DeviceKind::kGpu;

  // Ingest bandwidth for the column streams.
  BytesPerSecond ingest;
  bool coherent_path = true;
  if (!is_gpu || location == device) {
    ingest = sim::MustResolve(topo, device, location).seq_bw;
  } else {
    // The benchmark stores the columns in whatever memory kind the chosen
    // method requires (pinned for Zero-Copy, unified for the UM methods).
    const memory::MemoryKind kind = transfer::TraitsOf(method).required_memory;
    PUMP_RETURN_NOT_OK(transfer_model_.Validate(method, device, location,
                                                kind));
    PUMP_ASSIGN_OR_RETURN(ingest, transfer_model_.IngestBandwidth(
                                      method, device, location));
    PUMP_ASSIGN_OR_RETURN(coherent_path,
                          topo.IsCacheCoherentPath(device, location));
  }

  // Bytes per row that actually cross the data path.
  Bytes bytes_per_row = Bytes(kDateBytes + kOtherBytes);
  BytesPerSecond effective_ingest = ingest;
  const bool pull_based =
      transfer::TransferModel::SupportsDataDependentAccess(method);
  if (variant == Q6Variant::kBranching) {
    // Shipdate-clustered layout: the non-date columns are only needed for
    // the date-qualifying fraction, one contiguous range.
    const double date_sel = data::Q6DateSelectivity();
    const bool can_skip = !is_gpu || location == device ||
                          (pull_based && coherent_path);
    if (can_skip) {
      bytes_per_row = Bytes(kDateBytes + date_sel * kOtherBytes);
    } else if (is_gpu && pull_based) {
      // Non-coherent pull (PCI-e Zero-Copy): whole chunks transfer anyway
      // and the divergent pattern wastes packet payload.
      effective_ingest = ingest * kPcieDivergencePenalty;
    }
  }

  const Seconds data_s = rows * bytes_per_row / effective_ingest;

  double compute_rate;
  if (variant == Q6Variant::kBranching) {
    compute_rate = is_gpu ? rates_.gpu_branching : rates_.cpu_branching;
  } else {
    compute_rate = is_gpu ? rates_.gpu_predicated : rates_.cpu_predicated;
  }
  const Seconds compute_s = rows / PerSecond(compute_rate);

  const double p =
      is_gpu ? sim::kGpuOverlapExponent : sim::kCpuOverlapExponent;
  Q6Timing timing;
  timing.rows = rows;
  timing.elapsed =
      sim::OverlapTime({data_s, compute_s}, p) + dev.dispatch_latency;
  return timing;
}

}  // namespace pump::ops
