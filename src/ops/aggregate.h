#ifndef PUMP_OPS_AGGREGATE_H_
#define PUMP_OPS_AGGREGATE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/parallel.h"
#include "hash/hash_function.h"

namespace pump::ops {

/// One group's running aggregates (COUNT, SUM; MIN/MAX derivable).
struct GroupAggregate {
  std::int64_t key = 0;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
};

/// Hash-based group-by aggregation over a dense key domain [0, groups):
/// the perfect-hash analogue of the paper's join table, applied to the
/// aggregation operator GPU databases pair with it (cf. Karnagel et al.
/// [51], cited in Sec. 9). Thread-safe via per-slot atomics.
class DenseGroupBy {
 public:
  /// Creates an aggregation table for keys in [0, groups).
  explicit DenseGroupBy(std::size_t groups)
      : counts_(groups), sums_(groups) {}

  /// Accumulates one row. Returns InvalidArgument for out-of-domain keys.
  Status Accumulate(std::int64_t key, std::int64_t value) {
    if (key < 0 || static_cast<std::size_t>(key) >= counts_.size()) {
      return Status::InvalidArgument("group key outside domain");
    }
    counts_[key].fetch_add(1, std::memory_order_relaxed);
    sums_[key].fetch_add(value, std::memory_order_relaxed);
    return Status::OK();
  }

  /// Morsel-parallel accumulation of a column pair.
  Status AccumulateColumns(const std::vector<std::int64_t>& keys,
                           const std::vector<std::int64_t>& values,
                           std::size_t workers) {
    if (keys.size() != values.size()) {
      return Status::InvalidArgument("column length mismatch");
    }
    std::atomic<bool> failed{false};
    workers = std::max<std::size_t>(1, workers);
    const std::size_t chunk = (keys.size() + workers - 1) / workers;
    exec::ParallelFor(workers, [&](std::size_t w) {
      const std::size_t begin = std::min(keys.size(), w * chunk);
      const std::size_t end = std::min(keys.size(), begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        if (!Accumulate(keys[i], values[i]).ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
    if (failed.load()) return Status::InvalidArgument("key outside domain");
    return Status::OK();
  }

  /// Number of group slots.
  std::size_t groups() const { return counts_.size(); }

  /// Extracts the non-empty groups in key order.
  std::vector<GroupAggregate> Finalize() const {
    std::vector<GroupAggregate> result;
    for (std::size_t key = 0; key < counts_.size(); ++key) {
      const std::uint64_t count =
          counts_[key].load(std::memory_order_relaxed);
      if (count == 0) continue;
      result.push_back(GroupAggregate{
          static_cast<std::int64_t>(key), count,
          sums_[key].load(std::memory_order_relaxed)});
    }
    return result;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::vector<std::atomic<std::int64_t>> sums_;
};

}  // namespace pump::ops

#endif  // PUMP_OPS_AGGREGATE_H_
