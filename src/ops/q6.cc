#include "ops/q6.h"

#include <atomic>

#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"

namespace pump::ops {

namespace {

using data::kQ6DateHi;
using data::kQ6DateLo;
using data::kQ6DiscountHi;
using data::kQ6DiscountLo;
using data::kQ6QuantityLt;

Q6Result BranchingRange(const data::LineitemQ6& table, std::size_t begin,
                        std::size_t end) {
  Q6Result result;
  for (std::size_t i = begin; i < end; ++i) {
    const std::int32_t date = table.shipdate[i];
    if (date < kQ6DateLo || date >= kQ6DateHi) continue;
    const std::int32_t discount = table.discount[i];
    if (discount < kQ6DiscountLo || discount > kQ6DiscountHi) continue;
    if (table.quantity[i] >= kQ6QuantityLt) continue;
    result.revenue += table.extendedprice[i] * discount;
    ++result.qualifying_rows;
  }
  return result;
}

Q6Result PredicatedRange(const data::LineitemQ6& table, std::size_t begin,
                         std::size_t end) {
  Q6Result result;
  for (std::size_t i = begin; i < end; ++i) {
    const std::int32_t date = table.shipdate[i];
    const std::int32_t discount = table.discount[i];
    const std::int32_t quantity = table.quantity[i];
    // Branch-free predicate mask; the compiler vectorizes this loop.
    const std::int64_t qualifies =
        static_cast<std::int64_t>(date >= kQ6DateLo) &
        static_cast<std::int64_t>(date < kQ6DateHi) &
        static_cast<std::int64_t>(discount >= kQ6DiscountLo) &
        static_cast<std::int64_t>(discount <= kQ6DiscountHi) &
        static_cast<std::int64_t>(quantity < kQ6QuantityLt);
    result.revenue += qualifies * table.extendedprice[i] * discount;
    result.qualifying_rows += static_cast<std::uint64_t>(qualifies);
  }
  return result;
}

template <typename RangeFn>
Q6Result RunParallel(const data::LineitemQ6& table, std::size_t workers,
                     RangeFn range_fn) {
  exec::WorkStealingDispatcher dispatcher(
      table.size(), exec::kDefaultMorselTuples, workers);
  std::atomic<std::int64_t> revenue{0};
  std::atomic<std::uint64_t> rows{0};
  exec::ParallelFor(workers, [&](std::size_t w) {
    Q6Result local;
    while (auto morsel = dispatcher.Next(w)) {
      const Q6Result part = range_fn(table, morsel->begin, morsel->end);
      local.revenue += part.revenue;
      local.qualifying_rows += part.qualifying_rows;
    }
    revenue.fetch_add(local.revenue, std::memory_order_relaxed);
    rows.fetch_add(local.qualifying_rows, std::memory_order_relaxed);
  });
  return Q6Result{revenue.load(), rows.load()};
}

}  // namespace

Q6Result RunQ6Branching(const data::LineitemQ6& table) {
  return BranchingRange(table, 0, table.size());
}

Q6Result RunQ6Predicated(const data::LineitemQ6& table) {
  return PredicatedRange(table, 0, table.size());
}

Q6Result RunQ6BranchingParallel(const data::LineitemQ6& table,
                                std::size_t workers) {
  return RunParallel(table, workers, BranchingRange);
}

Q6Result RunQ6PredicatedParallel(const data::LineitemQ6& table,
                                 std::size_t workers) {
  return RunParallel(table, workers, PredicatedRange);
}

}  // namespace pump::ops
