#ifndef PUMP_OPS_SCAN_H_
#define PUMP_OPS_SCAN_H_

#include <cstdint>
#include <vector>

#include "exec/morsel.h"
#include "exec/parallel.h"

namespace pump::ops {

/// Comparison predicates for column scans.
enum class CompareOp : std::uint8_t { kLt, kLe, kEq, kGe, kGt, kNe };

/// Evaluates `value op bound`.
template <typename T>
constexpr bool Compare(CompareOp op, T value, T bound) {
  switch (op) {
    case CompareOp::kLt:
      return value < bound;
    case CompareOp::kLe:
      return value <= bound;
    case CompareOp::kEq:
      return value == bound;
    case CompareOp::kGe:
      return value >= bound;
    case CompareOp::kGt:
      return value > bound;
    case CompareOp::kNe:
      return value != bound;
  }
  return false;
}

/// A selection vector: indices of qualifying rows, the standard columnar
/// intermediate between scan stages.
using SelectionVector = std::vector<std::uint32_t>;

/// Scans `column` and returns the qualifying row indices (branching
/// implementation). The starting point of a scan pipeline.
template <typename T>
SelectionVector ScanColumn(const std::vector<T>& column, CompareOp op,
                           T bound) {
  SelectionVector selection;
  for (std::uint32_t i = 0; i < column.size(); ++i) {
    if (Compare(op, column[i], bound)) selection.push_back(i);
  }
  return selection;
}

/// Refines an existing selection against another column (the conjunctive
/// step of a multi-predicate scan, evaluated in selectivity order —
/// exactly what the branching Q6 variant does per column).
template <typename T>
SelectionVector RefineSelection(const SelectionVector& selection,
                                const std::vector<T>& column, CompareOp op,
                                T bound) {
  SelectionVector refined;
  refined.reserve(selection.size());
  for (std::uint32_t row : selection) {
    if (Compare(op, column[row], bound)) refined.push_back(row);
  }
  return refined;
}

/// Sums `column[row]` over the selection (the aggregation tail of a
/// selection-aggregation query).
template <typename T>
std::int64_t SumSelected(const SelectionVector& selection,
                         const std::vector<T>& column) {
  std::int64_t sum = 0;
  for (std::uint32_t row : selection) {
    sum += static_cast<std::int64_t>(column[row]);
  }
  return sum;
}

/// Morsel-parallel branching scan; deterministic output order (workers
/// write disjoint chunks that are concatenated in order).
template <typename T>
SelectionVector ScanColumnParallel(const std::vector<T>& column,
                                   CompareOp op, T bound,
                                   std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  const std::size_t chunk = (column.size() + workers - 1) / workers;
  std::vector<SelectionVector> partial(workers);
  exec::ParallelFor(workers, [&](std::size_t w) {
    const std::size_t begin = std::min(column.size(), w * chunk);
    const std::size_t end = std::min(column.size(), begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      if (Compare(op, column[i], bound)) {
        partial[w].push_back(static_cast<std::uint32_t>(i));
      }
    }
  });
  SelectionVector merged;
  for (const SelectionVector& part : partial) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  return merged;
}

}  // namespace pump::ops

#endif  // PUMP_OPS_SCAN_H_
