#ifndef PUMP_BENCH_SUPPORT_JSON_WRITER_H_
#define PUMP_BENCH_SUPPORT_JSON_WRITER_H_

#include <string>
#include <vector>

#include "common/statistics.h"

namespace pump::bench {

/// One measurement record of the machine-readable bench output: the
/// experiment name, a free-form configuration string (worker count, table
/// size, variant, ...), and the repeat statistics.
struct JsonRecord {
  std::string experiment;
  std::string config;
  double mean = 0.0;
  double stderr_ = 0.0;
  int runs = 0;
  /// Order statistics, present when the record was built from raw
  /// samples: the median and median absolute deviation are robust to
  /// the cold-cache outliers that inflate mean/stderr at small run
  /// counts. Serialized only when `has_distribution` is set, so records
  /// from aggregate-only sources keep their old shape.
  double median = 0.0;
  double mad = 0.0;
  bool has_distribution = false;
};

/// Collects bench measurements and writes them as a JSON array of
/// `{"experiment", "config", "mean", "stderr", "runs"}` objects — the
/// format scripts/bench_trajectory.sh merges into BENCH_micro.json so
/// perf trajectories stay diffable across commits.
///
/// A writer constructed without a path is inactive: Record() still
/// accumulates (for tests), but Write() is a no-op returning true.
class JsonWriter {
 public:
  JsonWriter() = default;
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  /// Extracts a `--json=<path>` argument from the command line (compacting
  /// argv so downstream flag parsing never sees it) and returns the
  /// corresponding writer.
  static JsonWriter FromArgs(int* argc, char** argv);

  /// Appends one record.
  void Record(const std::string& experiment, const std::string& config,
              const RunningStats& stats);
  void Record(const std::string& experiment, const std::string& config,
              double mean, double stderr_value, int runs);
  /// Appends one record from raw samples, additionally reporting
  /// median + MAD (see JsonRecord::has_distribution).
  void RecordSamples(const std::string& experiment, const std::string& config,
                     const std::vector<double>& samples);

  /// Serializes all records to the configured path. Returns false when a
  /// path is set but cannot be written. No-op (true) when inactive.
  bool Write() const;

  /// Serializes the records as a JSON array (exposed for tests).
  std::string ToJson() const;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  const std::vector<JsonRecord>& records() const { return records_; }

 private:
  std::string path_;
  std::vector<JsonRecord> records_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& text);

}  // namespace pump::bench

#endif  // PUMP_BENCH_SUPPORT_JSON_WRITER_H_
