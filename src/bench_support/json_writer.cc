#include "bench_support/json_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

namespace pump::bench {

namespace {

constexpr std::string_view kJsonFlag = "--json=";

/// Formats a double for JSON: plain decimal, enough digits to round-trip,
/// and never NaN/Inf (which JSON cannot represent) — those collapse to 0.
std::string JsonNumber(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter JsonWriter::FromArgs(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      path = std::string(arg.substr(kJsonFlag.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return JsonWriter(path);
}

void JsonWriter::Record(const std::string& experiment,
                        const std::string& config,
                        const RunningStats& stats) {
  Record(experiment, config, stats.mean(), stats.standard_error(),
         static_cast<int>(stats.count()));
}

void JsonWriter::Record(const std::string& experiment,
                        const std::string& config, double mean,
                        double stderr_value, int runs) {
  records_.push_back(
      JsonRecord{experiment, config, mean, stderr_value, runs});
}

void JsonWriter::RecordSamples(const std::string& experiment,
                               const std::string& config,
                               const std::vector<double>& samples) {
  RunningStats stats;
  for (const double sample : samples) stats.Add(sample);
  JsonRecord record{experiment, config, stats.mean(),
                    stats.standard_error(),
                    static_cast<int>(stats.count())};
  record.median = Median(samples);
  record.mad = MedianAbsoluteDeviation(samples);
  record.has_distribution = true;
  records_.push_back(std::move(record));
}

std::string JsonWriter::ToJson() const {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const JsonRecord& r = records_[i];
    out << "  {\"experiment\": \"" << JsonEscape(r.experiment)
        << "\", \"config\": \"" << JsonEscape(r.config)
        << "\", \"mean\": " << JsonNumber(r.mean)
        << ", \"stderr\": " << JsonNumber(r.stderr_)
        << ", \"runs\": " << r.runs;
    if (r.has_distribution) {
      out << ", \"median\": " << JsonNumber(r.median)
          << ", \"mad\": " << JsonNumber(r.mad);
    }
    out << "}";
    if (i + 1 < records_.size()) out << ",";
    out << "\n";
  }
  out << "]\n";
  return out.str();
}

bool JsonWriter::Write() const {
  if (!active()) return true;
  std::ofstream file(path_);
  if (!file) return false;
  file << ToJson();
  return file.good();
}

}  // namespace pump::bench
