#include "bench_support/harness.h"

#include <ostream>

#include "common/table_printer.h"

namespace pump::bench {

RunningStats Repeat(int runs, const std::function<double()>& sample) {
  RunningStats stats;
  for (int i = 0; i < runs; ++i) stats.Add(sample());
  return stats;
}

std::vector<double> RepeatSamples(int runs, int warmup,
                                  const std::function<double()>& sample) {
  for (int i = 0; i < warmup; ++i) (void)sample();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs > 0 ? runs : 0));
  for (int i = 0; i < runs; ++i) samples.push_back(sample());
  return samples;
}

void PrintBanner(std::ostream& os, const std::string& experiment,
                 const std::string& description) {
  os << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

std::string FormatMeanError(const RunningStats& stats, int precision) {
  std::string result = TablePrinter::FormatDouble(stats.mean(), precision);
  if (stats.count() > 1 && stats.standard_error() > 0.0) {
    result += " +- ";
    result += TablePrinter::FormatDouble(stats.standard_error(), precision);
  }
  return result;
}

}  // namespace pump::bench
