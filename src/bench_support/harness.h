#ifndef PUMP_BENCH_SUPPORT_HARNESS_H_
#define PUMP_BENCH_SUPPORT_HARNESS_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/statistics.h"

namespace pump::bench {

/// Runs `sample()` `runs` times and returns the collected statistics,
/// mirroring the paper's methodology of reporting mean and standard error
/// over 10 runs (Sec. 7.1). Analytic models are deterministic (zero
/// error); functional measurements are not.
RunningStats Repeat(int runs, const std::function<double()>& sample);

/// Runs `sample()` `warmup` times discarding the results (cold caches,
/// page faults, branch predictors and the first allocator growth all
/// land in the warmup), then `runs` recorded times. Returns the
/// recorded samples so callers can report order statistics (median,
/// MAD) alongside mean/stderr — the functional benches showed stderr
/// comparable to the mean without this.
std::vector<double> RepeatSamples(int runs, int warmup,
                                  const std::function<double()>& sample);

/// Number of repetitions matching the paper.
inline constexpr int kPaperRuns = 10;

/// Default warmup iterations for functional (timed) benches.
inline constexpr int kDefaultWarmup = 2;

/// Prints a figure banner: which paper figure/table the following output
/// regenerates and on which modelled system.
void PrintBanner(std::ostream& os, const std::string& experiment,
                 const std::string& description);

/// Formats "mean +- stderr" with the given precision.
std::string FormatMeanError(const RunningStats& stats, int precision = 2);

}  // namespace pump::bench

#endif  // PUMP_BENCH_SUPPORT_HARNESS_H_
