#ifndef PUMP_INDEX_BTREE_H_
#define PUMP_INDEX_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace pump::index {

/// A bulk-loaded, read-optimized B+-tree with an implicit array layout
/// (every level is one contiguous array, nodes are fixed-width key
/// groups). This is the "other" out-of-core GPU index the paper's related
/// work surveys (B-trees [7, 46, 87, 98], Sec. 9); the bench
/// `ext_btree_vs_hash` contrasts its multi-hop lookups with the
/// single-access perfect hash table when the index spills over a fast
/// interconnect.
///
/// The contiguous per-level arrays make placement modelling natural: the
/// top levels are tiny and cache/GPU-resident, the leaves dominate the
/// footprint — the tree analogue of the hybrid hash table's split.
template <typename K, typename V>
class BPlusTree {
 public:
  /// Keys per node; 16 keys x 8 B = one 128-byte cache line per node.
  static constexpr std::size_t kNodeKeys = 16;

  /// Bulk-loads from parallel key/value arrays. Keys must be strictly
  /// ascending (the caller sorts; dense join keys already are).
  static Result<BPlusTree> BulkLoad(std::vector<K> keys,
                                    std::vector<V> values) {
    if (keys.size() != values.size()) {
      return Status::InvalidArgument("key/value length mismatch");
    }
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i - 1] >= keys[i]) {
        return Status::InvalidArgument(
            "bulk load requires strictly ascending keys");
      }
    }
    BPlusTree tree;
    tree.leaf_keys_ = std::move(keys);
    tree.leaf_values_ = std::move(values);

    // Build inner levels bottom-up: every level stores the first key of
    // each child node of the level below.
    std::size_t level_size =
        (tree.leaf_keys_.size() + kNodeKeys - 1) / kNodeKeys;
    const std::vector<K>* child_keys = &tree.leaf_keys_;
    std::size_t child_stride = kNodeKeys;
    while (level_size > 1) {
      std::vector<K> level(level_size);
      for (std::size_t i = 0; i < level_size; ++i) {
        level[i] = (*child_keys)[std::min(i * child_stride,
                                          child_keys->size() - 1)];
      }
      tree.inner_levels_.push_back(std::move(level));
      child_keys = &tree.inner_levels_.back();
      child_stride = kNodeKeys;
      level_size = (level_size + kNodeKeys - 1) / kNodeKeys;
    }
    // Levels were built bottom-up; lookups descend top-down.
    std::reverse(tree.inner_levels_.begin(), tree.inner_levels_.end());
    return tree;
  }

  /// Point lookup; true and *value set on a hit.
  bool Lookup(K key, V* value) const {
    if (leaf_keys_.empty()) return false;
    // Descend the inner levels: at each level, refine the child range.
    std::size_t node = 0;  // Node index within the current level.
    for (const std::vector<K>& level : inner_levels_) {
      const std::size_t begin = node * kNodeKeys;
      const std::size_t end = std::min(begin + kNodeKeys, level.size());
      // Last separator <= key within this node.
      std::size_t child = begin;
      for (std::size_t i = begin; i < end && level[i] <= key; ++i) {
        child = i;
      }
      node = child;
    }
    // Leaf node scan.
    const std::size_t begin = node * kNodeKeys;
    const std::size_t end = std::min(begin + kNodeKeys, leaf_keys_.size());
    const auto it = std::lower_bound(leaf_keys_.begin() + begin,
                                     leaf_keys_.begin() + end, key);
    if (it == leaf_keys_.begin() + end || *it != key) return false;
    *value = leaf_values_[it - leaf_keys_.begin()];
    return true;
  }

  /// Inclusive range aggregation: count and value sum over
  /// [lo, hi] (the range-scan capability hash tables lack).
  void RangeSum(K lo, K hi, std::uint64_t* count, std::int64_t* sum) const {
    *count = 0;
    *sum = 0;
    auto it = std::lower_bound(leaf_keys_.begin(), leaf_keys_.end(), lo);
    for (; it != leaf_keys_.end() && *it <= hi; ++it) {
      ++*count;
      *sum += static_cast<std::int64_t>(
          leaf_values_[it - leaf_keys_.begin()]);
    }
  }

  /// Number of keys.
  std::size_t size() const { return leaf_keys_.size(); }
  /// Inner levels above the leaves (lookup touches depth() + 1 nodes).
  std::size_t depth() const { return inner_levels_.size(); }
  /// Total bytes: leaves plus inner separators.
  std::uint64_t bytes() const {
    std::uint64_t total = leaf_keys_.size() * (sizeof(K) + sizeof(V));
    for (const auto& level : inner_levels_) {
      total += level.size() * sizeof(K);
    }
    return total;
  }
  /// Bytes of the inner levels only (the "hot" part that fits caches or
  /// GPU memory when the leaves spill).
  std::uint64_t inner_bytes() const {
    std::uint64_t total = 0;
    for (const auto& level : inner_levels_) {
      total += level.size() * sizeof(K);
    }
    return total;
  }

 private:
  BPlusTree() = default;
  std::vector<std::vector<K>> inner_levels_;  // Top-down.
  std::vector<K> leaf_keys_;
  std::vector<V> leaf_values_;
};

}  // namespace pump::index

#endif  // PUMP_INDEX_BTREE_H_
