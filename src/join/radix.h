#ifndef PUMP_JOIN_RADIX_H_
#define PUMP_JOIN_RADIX_H_

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "data/relation.h"
#include "exec/parallel.h"
#include "hash/hash_table.h"
#include "join/nopa.h"
#include "join/swwc.h"

namespace pump::join {

/// Options of the radix-partitioned baseline join ("PRO" of Barthels et
/// al. [9]; with the perfect hash inside partitions it becomes the "PRA"
/// variant of Schuh et al. [86], Sec. 7.1). The paper tunes 12 radix bits
/// for its hardware.
struct RadixJoinOptions {
  int radix_bits = 12;
  std::size_t workers = 1;
};

/// Result of the parallel partitioning pass: tuples scattered into
/// partition-contiguous storage plus partition boundaries. The columns
/// are cache-line aligned so the write-combining scatter can flush
/// whole lines with aligned non-temporal stores.
template <typename K, typename V>
struct Partitioned {
  common::CacheAlignedVector<K> keys;
  common::CacheAlignedVector<V> payloads;
  /// partition p occupies [offsets[p], offsets[p + 1]).
  std::vector<std::size_t> offsets;
};

/// Radix-partitions a relation by the low `radix_bits` of the key using
/// the textbook two-pass scheme: parallel per-worker histograms, exclusive
/// prefix sum into per-(worker, partition) write cursors, parallel
/// scatter. Deterministic: output order depends only on worker count.
template <typename K, typename V>
Partitioned<K, V> RadixPartition(const data::Relation<K, V>& input,
                                 int radix_bits, std::size_t workers) {
  const std::size_t partitions = std::size_t{1} << radix_bits;
  const std::size_t mask = partitions - 1;
  const std::size_t n = input.size();
  workers = std::max<std::size_t>(1, workers);
  const std::size_t chunk = (n + workers - 1) / std::max<std::size_t>(1, workers);

  // Pass 1: per-worker histograms.
  std::vector<std::vector<std::size_t>> histograms(
      workers, std::vector<std::size_t>(partitions, 0));
  exec::ParallelFor(workers, [&](std::size_t w) {
    const std::size_t begin = std::min(n, w * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    auto& hist = histograms[w];
    for (std::size_t i = begin; i < end; ++i) {
      ++hist[static_cast<std::size_t>(input.keys[i]) & mask];
    }
  });

  // Exclusive prefix sum over (partition-major, worker-minor) order gives
  // each worker a private, contiguous write region per partition.
  Partitioned<K, V> out;
  out.keys.resize(n);
  out.payloads.resize(n);
  out.offsets.assign(partitions + 1, 0);
  std::vector<std::vector<std::size_t>> cursors(
      workers, std::vector<std::size_t>(partitions, 0));
  std::size_t running = 0;
  for (std::size_t p = 0; p < partitions; ++p) {
    out.offsets[p] = running;
    for (std::size_t w = 0; w < workers; ++w) {
      cursors[w][p] = running;
      running += histograms[w][p];
    }
  }
  out.offsets[partitions] = running;

  // Pass 2: scatter. With AVX2 dispatch active, int64 tuples go through
  // per-partition software write-combining buffers that flush whole
  // cache lines with non-temporal stores (join/swwc.h) instead of
  // scattering straight into `partitions` live output streams; slot
  // assignment is identical either way. The SWWC path is skipped when
  // the line buffers themselves would blow the cache (> 2^14
  // partitions = 2 MiB of scratch per worker).
  const bool use_swwc = [&] {
    if constexpr (std::is_same_v<K, std::int64_t> &&
                  std::is_same_v<V, std::int64_t>) {
      return swwc::StreamingActive() &&
             partitions <= (std::size_t{1} << 14);
    } else {
      return false;
    }
  }();
  exec::ParallelFor(workers, [&](std::size_t w) {
    const std::size_t begin = std::min(n, w * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    auto& cursor = cursors[w];
    if constexpr (std::is_same_v<K, std::int64_t> &&
                  std::is_same_v<V, std::int64_t>) {
      if (use_swwc) {
        swwc::ScatterSwwcInt64(input.keys.data(), input.payloads.data(),
                               begin, end, mask, cursor.data(), partitions,
                               out.keys.data(), out.payloads.data());
        return;
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t p = static_cast<std::size_t>(input.keys[i]) & mask;
      const std::size_t slot = cursor[p]++;
      out.keys[slot] = input.keys[i];
      out.payloads[slot] = input.payloads[i];
    }
  });
  return out;
}

/// End-to-end radix join: partition both relations, then join matching
/// partitions with per-partition linear-probing tables (cache-resident by
/// construction). Partitions are processed in parallel.
template <typename K, typename V>
Result<JoinAggregate> RunRadixJoin(const data::Relation<K, V>& inner,
                                   const data::Relation<K, V>& outer,
                                   const RadixJoinOptions& options = {}) {
  if (options.radix_bits < 0 || options.radix_bits > 24) {
    return Status::InvalidArgument("radix_bits must be in [0, 24]");
  }
  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  Partitioned<K, V> r = RadixPartition(inner, options.radix_bits, workers);
  Partitioned<K, V> s = RadixPartition(outer, options.radix_bits, workers);

  const std::size_t partitions = std::size_t{1} << options.radix_bits;
  std::atomic<std::uint64_t> matches{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> failed{false};

  exec::ParallelFor(workers, [&](std::size_t w) {
    std::uint64_t local_matches = 0;
    std::uint64_t local_sum = 0;
    for (std::size_t p = w; p < partitions; p += workers) {
      const std::size_t r_begin = r.offsets[p];
      const std::size_t r_end = r.offsets[p + 1];
      const std::size_t s_begin = s.offsets[p];
      const std::size_t s_end = s.offsets[p + 1];
      if (r_begin == r_end || s_begin == s_end) continue;

      hash::LinearProbingHashTable<K, V> table(r_end - r_begin);
      for (std::size_t i = r_begin; i < r_end; ++i) {
        if (!table.Insert(r.keys[i], r.payloads[i]).ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      // Interleaved-prefetch probe over the partition's S range (the
      // per-partition table may still exceed L1/L2, so group prefetching
      // pays off inside partitions too).
      ProbeRange<hash::LinearProbingHashTable<K, V>, K, V>(
          table, s.keys.data(), s_begin, s_end, &local_matches,
          &local_sum);
    }
    matches.fetch_add(local_matches, std::memory_order_relaxed);
    sum.fetch_add(local_sum, std::memory_order_relaxed);
  });

  if (failed.load()) {
    return Status::AlreadyExists("duplicate key during radix build");
  }
  return JoinAggregate{matches.load(), sum.load()};
}

}  // namespace pump::join

#endif  // PUMP_JOIN_RADIX_H_
