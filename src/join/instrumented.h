#ifndef PUMP_JOIN_INSTRUMENTED_H_
#define PUMP_JOIN_INSTRUMENTED_H_

#include <cstdint>
#include <map>

#include "data/relation.h"
#include "hash/hash_function.h"
#include "hash/hybrid_table.h"
#include "memory/buffer.h"
#include "sim/lru.h"

namespace pump::join {

/// Counters from an instrumented probe over a placed hash table: how many
/// slot accesses landed on each modelled memory node, and how many would
/// have hit a cache of a given size. These measurements validate the cost
/// model's inputs: the per-node access shares must match the placement
/// fractions (the A_GPU model of Sec. 5.3), and the cache hits must match
/// the analytic Zipf hit rate (Fig. 19's mechanism).
struct ProbeTrace {
  /// Memory accesses per node (keyed by node id); every probe issues one
  /// key-array access plus, on a match, one value-array access — the
  /// byte-level access distribution the A_GPU model predicts.
  std::map<hw::MemoryNodeId, std::uint64_t> accesses_per_node;
  /// Total memory accesses.
  std::uint64_t accesses = 0;
  /// Total probes.
  std::uint64_t probes = 0;
  /// Probe hits (key found).
  std::uint64_t matches = 0;
  /// Hits in the simulated cache (when cache_entries > 0).
  std::uint64_t cache_hits = 0;

  /// Fraction of memory accesses served by `node`.
  double NodeShare(hw::MemoryNodeId node) const {
    auto it = accesses_per_node.find(node);
    if (it == accesses_per_node.end() || accesses == 0) return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(accesses);
  }
  /// Measured cache hit rate.
  double CacheHitRate() const {
    return probes == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(probes);
  }
};

/// Probes `table` with `outer`'s keys, attributing every slot access to
/// the memory node that owns the slot's bytes (via the hybrid buffer's
/// extents) and running the accesses through an LRU cache of
/// `cache_entries` slots (0 disables the cache simulation).
template <typename K, typename V>
ProbeTrace InstrumentedProbe(const hash::HybridHashTable<K, V>& table,
                             const data::Relation<K, V>& outer,
                             std::size_t cache_entries = 0) {
  ProbeTrace trace;
  sim::LruCacheSim cache(cache_entries);
  const std::uint64_t values_base = table.capacity() * sizeof(K);
  for (K key : outer.keys) {
    ++trace.probes;
    const auto slot = static_cast<std::uint64_t>(hash::PerfectHash(key));
    // Key-array access.
    ++trace.accesses;
    ++trace.accesses_per_node[table.buffer().NodeOfByte(slot * sizeof(K))];
    if (cache_entries > 0 && cache.Access(slot)) ++trace.cache_hits;
    V value;
    if (table.table().Lookup(key, &value)) {
      ++trace.matches;
      // Value-array access (only matches load the value, Sec. 7.2.9).
      ++trace.accesses;
      ++trace.accesses_per_node[table.buffer().NodeOfByte(
          values_base + slot * sizeof(V))];
    }
  }
  return trace;
}

}  // namespace pump::join

#endif  // PUMP_JOIN_INSTRUMENTED_H_
