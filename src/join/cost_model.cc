#include "join/cost_model.h"

#include <algorithm>
#include <cmath>

#include "sim/access_path.h"
#include "sim/cache_model.h"
#include "sim/overlap.h"

namespace pump::join {

namespace {

// Probe-cost normalization for the selectivity model (Sec. 7.2.9): the
// paper's rates are measured at selectivity 1, where every probe loads the
// key line and the value line. At lower selectivity the value line is only
// loaded when one of the value-line's entries matches; with uniform
// matches the load probability is 1 - (1-sel)^(values per line).
double SelectivityAccessMultiplier(const data::WorkloadSpec& workload,
                                   Bytes line_bytes) {
  const double values_per_line = std::max(
      1.0, line_bytes / Bytes(static_cast<double>(workload.payload_bytes)));
  const double p_value_line =
      1.0 - std::pow(1.0 - workload.selectivity, values_per_line);
  return (1.0 + p_value_line) / 2.0;
}

// TLB derating (see DeviceSpec::tlb_reach).
PerSecond TlbDerate(const hw::DeviceSpec& device, Bytes region,
                    PerSecond rate) {
  if (device.tlb_reach <= Bytes(0.0) || region <= device.tlb_reach)
    return rate;
  const double miss_fraction = (region - device.tlb_reach) / region;
  return rate / (1.0 + device.tlb_miss_penalty * miss_fraction);
}

// GPU hash-table inserts are capped by the device's atomic-CAS
// throughput: the CAS serializes on the slot line and the value store
// doubles the write traffic. Calibrated against Fig. 18 (the build phase
// takes 71% of a 1:1 join even though lookups run at ~4.5 G/s) and
// Fig. 21b (memory-bound builds insert at the lookup rate).
constexpr PerSecond kGpuAtomicInsertRate = PerSecond::Giga(2.2);

// CPU probe compute-rate multiplier for the 8-wide AVX2 probe kernel
// (hash/simd_probe.h). The raw kernel measures 1.57x over the scalar
// loop on the out-of-cache linear table and 1.46x on the perfect table
// (BENCH_micro.json ht_probe_ns records), but the modelled testbed
// rates (DeviceSpec::tuple_compute_rate) were calibrated against the
// paper's measured end-to-end joins, which already amortize most of the
// hash arithmetic behind memory stalls — so the *effective*
// compute-side lift is small, and the Fig. 21 workload-B crossover (het
// must beat CPU-only, coprocess_test) caps it at ~1.15. 1.10 keeps a
// calibration margin. Applies to probes only — inserts are a scalar CAS
// claim-then-publish and keep the unscaled rate.
constexpr double kCpuSimdProbeSpeedup = 1.1;

// Partitioning compute factor relative to the NOPA compute rate: two
// passes per tuple (histogram, scatter), with the scatter staged through
// software write-combining buffers and streamed past the cache
// (join/swwc.h). Recalibrated from the BENCH_micro.json
// radix_partition_ms scatter-vs-swwc records: the measured 1.53x pass
// speedup lifts the old 0.5 direct-scatter factor to ~0.65 (0.5 x 1.53
// capped below the single-pass ceiling).
constexpr double kCpuSwwcPartitionFactor = 0.65;

}  // namespace

HashTablePlacement HashTablePlacement::Single(hw::MemoryNodeId node) {
  HashTablePlacement placement;
  placement.parts.push_back(Part{node, 1.0});
  return placement;
}

HashTablePlacement HashTablePlacement::Hybrid(hw::MemoryNodeId gpu_node,
                                              hw::MemoryNodeId cpu_node,
                                              double gpu_fraction) {
  gpu_fraction = std::clamp(gpu_fraction, 0.0, 1.0);
  HashTablePlacement placement;
  if (gpu_fraction > 0.0) {
    placement.parts.push_back(Part{gpu_node, gpu_fraction});
  }
  if (gpu_fraction < 1.0) {
    placement.parts.push_back(Part{cpu_node, 1.0 - gpu_fraction});
  }
  return placement;
}

HashTablePlacement HashTablePlacement::FromBuffer(
    const memory::Buffer& buffer) {
  HashTablePlacement placement;
  const double total = static_cast<double>(buffer.size());
  for (const memory::Extent& extent : buffer.extents()) {
    placement.parts.push_back(
        Part{extent.node, static_cast<double>(extent.bytes) / total});
  }
  return placement;
}

HashTablePlacement HashTablePlacement::SkewAware(hw::MemoryNodeId gpu_node,
                                                 hw::MemoryNodeId cpu_node,
                                                 double byte_fraction,
                                                 std::uint64_t r_tuples,
                                                 double zipf_exponent) {
  byte_fraction = std::clamp(byte_fraction, 0.0, 1.0);
  const auto hot_entries = static_cast<std::uint64_t>(
      byte_fraction * static_cast<double>(r_tuples));
  const double gpu_access_share =
      sim::ZipfHitRate(r_tuples, hot_entries, zipf_exponent);
  return Hybrid(gpu_node, cpu_node, gpu_access_share);
}

NopaJoinModel::NopaJoinModel(const hw::SystemProfile* profile)
    : profile_(profile), transfer_model_(profile) {}

// The cache serving `device`'s accesses to a table part: the device's LLC
// for local parts (or any part, for CPUs, whose LLC caches all coherent
// addresses); the GPU's per-SM L1 for remote parts (the memory-side L2
// cannot cache remote data, Sec. 7.2.3). Returns {rate, entries}; rate 0
// means no cache applies.
NopaJoinModel::CacheView NopaJoinModel::CacheFor(
    hw::DeviceId device, const HashTablePlacement::Part& part,
    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const hw::DeviceSpec& dev = topo.device(device);
  const hw::CacheSpec& llc = topo.cache(device);
  const double entry_bytes = static_cast<double>(workload.tuple_bytes());
  const bool local = part.node == device;
  if (local || !llc.memory_side) {
    return {llc.random_access_rate, llc.capacity.bytes() / entry_bytes};
  }
  if (dev.remote_cache > Bytes(0.0)) {
    return {dev.remote_cache_rate, dev.remote_cache.bytes() / entry_bytes};
  }
  return {PerSecond(0.0), 0.0};
}

double NopaJoinModel::CacheHitRate(hw::DeviceId device,
                                   const HashTablePlacement::Part& part,
                                   const data::WorkloadSpec& workload) const {
  const CacheView cache = CacheFor(device, part, workload);
  if (cache.rate <= PerSecond(0.0)) return 0.0;
  return sim::ZipfHitRate(workload.r_tuples,
                          static_cast<std::uint64_t>(cache.entries),
                          workload.zipf_exponent);
}

PerSecond NopaJoinModel::PartAccessRate(
    hw::DeviceId device, const HashTablePlacement::Part& part,
    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const hw::DeviceSpec& dev = topo.device(device);
  const sim::AccessPath path = sim::MustResolve(topo, device, part.node);
  const Bytes part_bytes =
      Bytes(static_cast<double>(workload.hash_table_bytes())) * part.fraction;

  PerSecond memory_rate = path.dependent_access_rate;
  if (part.node == device) {
    memory_rate = TlbDerate(dev, part_bytes, memory_rate);
  }

  const CacheView cache = CacheFor(device, part, workload);
  if (cache.rate <= PerSecond(0.0)) return memory_rate;
  const double hit = sim::ZipfHitRate(
      workload.r_tuples, static_cast<std::uint64_t>(cache.entries),
      workload.zipf_exponent);
  return PerSecond(sim::BlendedAccessRate(hit, cache.rate.per_second(),
                                          memory_rate.per_second()));
}

PerSecond NopaJoinModel::InsertRate(hw::DeviceId device,
                                    const HashTablePlacement& placement,
                                    const data::WorkloadSpec& workload) const {
  // Inserts blend the memory side with the *unscaled* compute rate: the
  // build path is a scalar CAS claim-then-publish, not the vectorized
  // probe kernel.
  const PerSecond memory_side_rate =
      MemorySideRate(device, placement, workload);
  const hw::DeviceSpec& dev = profile_->topology.device(device);
  const PerSecond compute = dev.tuple_compute_rate;
  const PerSecond rate =
      memory_side_rate * (compute / (memory_side_rate + compute));
  const bool is_gpu = dev.kind == hw::DeviceKind::kGpu;
  return is_gpu ? std::min(rate, kGpuAtomicInsertRate) : rate;
}

PerSecond NopaJoinModel::MemorySideRate(
    hw::DeviceId device, const HashTablePlacement& placement,
    const data::WorkloadSpec& workload) const {
  // Harmonic combination over the table parts, weighted by the expected
  // access fraction (A_GPU model of Sec. 5.3).
  Seconds per_access;
  for (const HashTablePlacement::Part& part : placement.parts) {
    const PerSecond rate = PartAccessRate(device, part, workload);
    per_access += part.fraction / rate;
  }
  return 1.0 / per_access;
}

PerSecond NopaJoinModel::HashTableAccessRate(
    hw::DeviceId device, const HashTablePlacement& placement,
    const data::WorkloadSpec& workload) const {
  const PerSecond memory_side_rate =
      MemorySideRate(device, placement, workload);
  // Hashing and comparison partially serialize with the memory access:
  // harmonic (back-to-back) combination of the two rates. CPU probes run
  // the 8-wide AVX2 kernel, which lifts the compute side (and only the
  // compute side — out-of-cache probes stay memory-limited).
  const hw::DeviceSpec& dev = profile_->topology.device(device);
  PerSecond compute = dev.tuple_compute_rate;
  if (dev.kind == hw::DeviceKind::kCpu) {
    compute = compute * kCpuSimdProbeSpeedup;
  }
  return memory_side_rate * (compute / (memory_side_rate + compute));
}

Result<BytesPerSecond> NopaJoinModel::IngestBandwidth(
    const NopaConfig& config, hw::MemoryNodeId location) const {
  const hw::Topology& topo = profile_->topology;
  if (location == config.device) {
    // Data is device-local; no transfer method involved.
    return sim::MustResolve(topo, config.device, location).seq_bw;
  }
  if (topo.device(config.device).kind == hw::DeviceKind::kCpu) {
    // CPUs pull over their coherent interconnect.
    return sim::MustResolve(topo, config.device, location).seq_bw;
  }
  PUMP_RETURN_NOT_OK(transfer_model_.Validate(
      config.method, config.device, location, config.relation_memory));
  return transfer_model_.IngestBandwidth(config.method, config.device,
                                         location);
}

Result<JoinTiming> NopaJoinModel::Estimate(
    const NopaConfig& config, const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const hw::DeviceSpec& dev = topo.device(config.device);
  const bool is_gpu = dev.kind == hw::DeviceKind::kGpu;
  const double overlap_p =
      is_gpu ? sim::kGpuOverlapExponent : sim::kCpuOverlapExponent;

  PUMP_ASSIGN_OR_RETURN(BytesPerSecond r_ingest,
                        IngestBandwidth(config, config.r_location));
  PUMP_ASSIGN_OR_RETURN(BytesPerSecond s_ingest,
                        IngestBandwidth(config, config.s_location));

  const PerSecond ht_rate =
      HashTableAccessRate(config.device, config.hash_table, workload);

  JoinTiming timing;
  // Build: stream R while inserting |R| tuples into the table.
  const Seconds r_stream =
      Bytes(static_cast<double>(workload.r_bytes())) / r_ingest;
  const Seconds inserts =
      static_cast<double>(workload.r_tuples) /
      InsertRate(config.device, config.hash_table, workload);
  timing.build_s = sim::OverlapTime({r_stream, inserts}, overlap_p);

  // Probe: stream S while performing |S| dependent lookups; lookups get
  // cheaper at low selectivity because value lines are skipped.
  const Bytes line_bytes =
      topo.memory(config.hash_table.parts.front().node).line_bytes;
  const double mult = SelectivityAccessMultiplier(workload, line_bytes);
  const Seconds s_stream =
      Bytes(static_cast<double>(workload.s_bytes())) / s_ingest;
  const Seconds lookups =
      static_cast<double>(workload.s_tuples) * mult / ht_rate;
  // Optional result materialization: matches write one
  // <key, payload, payload> row back to CPU memory. Writes stream at the
  // same path bandwidth as reads (links are full-duplex, Sec. 2.2, so
  // they overlap with the ingest stream rather than stealing from it).
  Seconds result_stream;
  if (config.materialize_result) {
    const Bytes result_bytes =
        Bytes(static_cast<double>(workload.s_tuples) * workload.selectivity *
              static_cast<double>(workload.key_bytes +
                                  2 * workload.payload_bytes));
    const sim::AccessPath out_path =
        sim::MustResolve(topo, config.device, config.r_location);
    result_stream = result_bytes / out_path.seq_bw;
  }
  timing.probe_s =
      sim::OverlapTime({s_stream, lookups, result_stream}, overlap_p);

  // Morsel-batch dispatch overhead (Sec. 6.1): one launch per batch.
  timing.probe_s += dev.dispatch_latency;
  timing.build_s += dev.dispatch_latency;
  return timing;
}

RadixJoinModel::RadixJoinModel(const hw::SystemProfile* profile)
    : profile_(profile) {}

JoinTiming RadixJoinModel::Estimate(hw::DeviceId cpu,
                                    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const hw::MemorySpec& mem = topo.memory(cpu);
  const hw::DeviceSpec& dev = topo.device(cpu);

  // Partitioning pass: every input byte is read and written once — the
  // software write-combining scatter (join/swwc.h) streams whole lines
  // with non-temporal stores, so writes cost no read-for-ownership.
  // Tuple-wise histogram + scatter compute runs at kCpuSwwcPartitionFactor
  // of the NOPA compute rate (two passes over each tuple, minus the
  // store-buffer stalls SWWC removed).
  const PerSecond partition_rate =
      dev.tuple_compute_rate * kCpuSwwcPartitionFactor;
  const double total_tuples = static_cast<double>(workload.total_tuples());
  const Bytes moved_bytes =
      Bytes(2.0 * static_cast<double>(workload.total_bytes()));
  const Seconds partition_s = sim::OverlapTime(
      {moved_bytes / mem.duplex_bw, total_tuples / partition_rate},
      sim::kCpuOverlapExponent);

  // Join pass: partitions are cache-resident, so build+probe run at the
  // compute rate blended with the LLC (PRA = perfect-hash radix join).
  const hw::CacheSpec& llc = topo.cache(cpu);
  const PerSecond join_rate =
      dev.tuple_compute_rate *
      (llc.random_access_rate /
       (dev.tuple_compute_rate + llc.random_access_rate));
  const Seconds join_read_s =
      Bytes(static_cast<double>(workload.total_bytes())) / mem.seq_bw;
  const Seconds join_s = sim::OverlapTime(
      {total_tuples / join_rate, join_read_s}, sim::kCpuOverlapExponent);

  JoinTiming timing;
  // Report partitioning as part of the build phase: both relations must be
  // fully partitioned before any partition is joined.
  timing.build_s = partition_s;
  timing.probe_s = join_s;
  return timing;
}

}  // namespace pump::join
