#ifndef PUMP_JOIN_STAR_H_
#define PUMP_JOIN_STAR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/star.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "hash/hash_table.h"
#include "join/nopa.h"

namespace pump::join {

/// Aggregated result of a star join: fact rows that matched every
/// dimension, and the sum of (measure * sum of dimension payloads) as an
/// order-independent checksum.
struct StarAggregate {
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;

  friend bool operator==(const StarAggregate&, const StarAggregate&) =
      default;
};

/// Functional multi-way star join (the Sec. 6.2 extension): builds one
/// perfect-hash table per dimension — optionally in parallel, the way the
/// paper suggests building each table on a different processor — then
/// probes all of them per fact row in one morsel-parallel pass.
class StarJoin {
 public:
  /// Builds the per-dimension tables; `parallel_builds` builds them
  /// concurrently (one worker per dimension).
  static Result<StarJoin> Build(const data::StarSchema& schema,
                                bool parallel_builds = false) {
    StarJoin join;
    join.tables_.reserve(schema.dimension_count());
    for (const data::Relation64& dim : schema.dimensions) {
      join.tables_.push_back(
          std::make_unique<hash::PerfectHashTable<std::int64_t,
                                                  std::int64_t>>(
              dim.size()));
    }
    std::atomic<bool> failed{false};
    auto build_one = [&](std::size_t d) {
      Status status =
          BuildPhase(join.tables_[d].get(), schema.dimensions[d], 1);
      if (!status.ok()) failed.store(true, std::memory_order_relaxed);
    };
    if (parallel_builds) {
      exec::ParallelFor(schema.dimension_count(),
                        [&](std::size_t d) { build_one(d); });
    } else {
      for (std::size_t d = 0; d < schema.dimension_count(); ++d) {
        build_one(d);
      }
    }
    if (failed.load()) {
      return Status::AlreadyExists("duplicate dimension key");
    }
    return join;
  }

  /// Probes every dimension per fact row; a row contributes only when all
  /// dimensions match (inner join semantics).
  StarAggregate Probe(const data::StarSchema& schema,
                      std::size_t workers = 1) const {
    exec::MorselDispatcher dispatcher(schema.fact_rows(),
                                      exec::kDefaultMorselTuples);
    std::atomic<std::uint64_t> matches{0};
    std::atomic<std::uint64_t> checksum{0};
    exec::ParallelFor(workers, [&](std::size_t) {
      std::uint64_t local_matches = 0, local_checksum = 0;
      while (auto morsel = dispatcher.Next()) {
        for (std::size_t i = morsel->begin; i < morsel->end; ++i) {
          std::uint64_t payload_sum = 0;
          bool all_match = true;
          for (std::size_t d = 0; d < tables_.size(); ++d) {
            std::int64_t payload;
            if (!tables_[d]->Lookup(schema.fact_keys[d][i], &payload)) {
              all_match = false;
              break;  // Short-circuit: later dimensions are skipped.
            }
            payload_sum += static_cast<std::uint64_t>(payload);
          }
          if (all_match) {
            ++local_matches;
            local_checksum +=
                static_cast<std::uint64_t>(schema.measures[i]) +
                payload_sum;
          }
        }
      }
      matches.fetch_add(local_matches, std::memory_order_relaxed);
      checksum.fetch_add(local_checksum, std::memory_order_relaxed);
    });
    return StarAggregate{matches.load(), checksum.load()};
  }

  /// Number of dimension tables.
  std::size_t dimension_count() const { return tables_.size(); }

 private:
  StarJoin() = default;
  std::vector<
      std::unique_ptr<hash::PerfectHashTable<std::int64_t, std::int64_t>>>
      tables_;
};

}  // namespace pump::join

#endif  // PUMP_JOIN_STAR_H_
