#ifndef PUMP_JOIN_STAR_H_
#define PUMP_JOIN_STAR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/star.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "hash/hash_table.h"
#include "join/nopa.h"

namespace pump::join {

/// Aggregated result of a star join: fact rows that matched every
/// dimension, and the sum of (measure * sum of dimension payloads) as an
/// order-independent checksum.
struct StarAggregate {
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;

  friend bool operator==(const StarAggregate&, const StarAggregate&) =
      default;
};

/// Functional multi-way star join (the Sec. 6.2 extension): builds one
/// perfect-hash table per dimension — optionally in parallel, the way the
/// paper suggests building each table on a different processor — then
/// probes all of them per fact row in one morsel-parallel pass.
class StarJoin {
 public:
  /// Builds the per-dimension tables; `parallel_builds` builds them
  /// concurrently (one worker per dimension).
  static Result<StarJoin> Build(const data::StarSchema& schema,
                                bool parallel_builds = false) {
    StarJoin join;
    join.tables_.reserve(schema.dimension_count());
    for (const data::Relation64& dim : schema.dimensions) {
      join.tables_.push_back(
          std::make_unique<hash::PerfectHashTable<std::int64_t,
                                                  std::int64_t>>(
              dim.size()));
    }
    std::atomic<bool> failed{false};
    auto build_one = [&](std::size_t d) {
      Status status =
          BuildPhase(join.tables_[d].get(), schema.dimensions[d], 1);
      if (!status.ok()) failed.store(true, std::memory_order_relaxed);
    };
    if (parallel_builds) {
      exec::ParallelFor(schema.dimension_count(),
                        [&](std::size_t d) { build_one(d); });
    } else {
      for (std::size_t d = 0; d < schema.dimension_count(); ++d) {
        build_one(d);
      }
    }
    if (failed.load()) {
      return Status::AlreadyExists("duplicate dimension key");
    }
    return join;
  }

  /// Probes every dimension per fact row; a row contributes only when all
  /// dimensions match (inner join semantics).
  StarAggregate Probe(const data::StarSchema& schema,
                      std::size_t workers = 1) const {
    exec::WorkStealingDispatcher dispatcher(
        schema.fact_rows(), exec::kDefaultMorselTuples, workers);
    std::atomic<std::uint64_t> matches{0};
    std::atomic<std::uint64_t> checksum{0};
    exec::ParallelFor(workers, [&](std::size_t w) {
      std::uint64_t local_matches = 0, local_checksum = 0;
      while (auto morsel = dispatcher.Next(w)) {
        ProbeMorsel(schema, morsel->begin, morsel->end, &local_matches,
                    &local_checksum);
      }
      matches.fetch_add(local_matches, std::memory_order_relaxed);
      checksum.fetch_add(local_checksum, std::memory_order_relaxed);
    });
    return StarAggregate{matches.load(), checksum.load()};
  }

  /// Number of dimension tables.
  std::size_t dimension_count() const { return tables_.size(); }

 private:
  StarJoin() = default;

  /// Batched multi-dimension probe of fact rows [begin, end): per block of
  /// kProbeBatchWidth rows, each dimension is probed with the interleaved
  /// ProbeBatch over the rows still alive, so every bucket address in a
  /// group is prefetched before any is dereferenced. Rows killed by an
  /// earlier dimension are not gathered for later ones — the same
  /// short-circuit semantics as the scalar loop, evaluated blockwise.
  void ProbeMorsel(const data::StarSchema& schema, std::size_t begin,
                   std::size_t end, std::uint64_t* matches,
                   std::uint64_t* checksum) const {
    std::int64_t keys[hash::kProbeBatchWidth];
    std::int64_t values[hash::kProbeBatchWidth];
    bool found[hash::kProbeBatchWidth];
    std::size_t rows[hash::kProbeBatchWidth];
    std::uint64_t sums[hash::kProbeBatchWidth];
    for (std::size_t base = begin; base < end;
         base += hash::kProbeBatchWidth) {
      const std::size_t block = std::min(hash::kProbeBatchWidth,
                                         end - base);
      std::size_t alive = 0;
      for (std::size_t i = 0; i < block; ++i) {
        rows[alive] = base + i;
        sums[alive] = 0;
        ++alive;
      }
      for (std::size_t d = 0; d < tables_.size() && alive > 0; ++d) {
        const std::int64_t* fact_keys = schema.fact_keys[d].data();
        for (std::size_t i = 0; i < alive; ++i) {
          keys[i] = fact_keys[rows[i]];
        }
        tables_[d]->ProbeBatch(keys, alive, values, found);
        std::size_t survivors = 0;
        for (std::size_t i = 0; i < alive; ++i) {
          if (!found[i]) continue;
          rows[survivors] = rows[i];
          sums[survivors] = sums[i] + static_cast<std::uint64_t>(values[i]);
          ++survivors;
        }
        alive = survivors;
      }
      *matches += alive;
      for (std::size_t i = 0; i < alive; ++i) {
        *checksum += static_cast<std::uint64_t>(schema.measures[rows[i]]) +
                     sums[i];
      }
    }
  }

  std::vector<
      std::unique_ptr<hash::PerfectHashTable<std::int64_t, std::int64_t>>>
      tables_;
};

}  // namespace pump::join

#endif  // PUMP_JOIN_STAR_H_
