#ifndef PUMP_JOIN_COPROCESS_H_
#define PUMP_JOIN_COPROCESS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"

namespace pump::join {

/// The execution strategies of Sec. 6 / Fig. 21.
enum class ExecutionStrategy : std::uint8_t {
  kCpuOnly,   ///< NOPA on one CPU socket.
  kHet,       ///< CPU+GPU share one hash table in CPU memory (Fig. 9a).
  kGpuHet,    ///< Build on GPU, broadcast table, probe on both (Fig. 9b).
  kGpuOnly,   ///< NOPA on the GPU (hybrid table if R exceeds GPU memory).
  kMultiGpu,  ///< Hash table interleaved over all GPUs (Sec. 6.3).
};

/// Display name ("CPU (NOPA)", "Het", "GPU + Het", "GPU", "Multi-GPU").
const char* StrategyName(ExecutionStrategy strategy);

/// Configuration shared by the co-processing strategies.
struct CoProcessConfig {
  hw::DeviceId cpu = hw::kInvalidDevice;
  hw::DeviceId gpu = hw::kInvalidDevice;
  /// Additional GPUs for kMultiGpu.
  std::vector<hw::DeviceId> extra_gpus;
  /// Where the base relations live (CPU memory in all Fig. 21 runs).
  hw::MemoryNodeId data_location = hw::kInvalidMemoryNode;
  transfer::TransferMethod method = transfer::TransferMethod::kCoherence;
  memory::MemoryKind relation_memory = memory::MemoryKind::kPageable;
  /// GPU memory reserved for non-hash-table state when deciding whether
  /// the table fits (Fig. 11 "large hash table?" branch).
  std::uint64_t gpu_reserve_bytes = 1ull << 30;
};

/// Fraction of the naive insert-rate sum that concurrent inserts into a
/// shared hash table retain: CAS contention and coherence-line ping-pong
/// between CPU and GPU make the Het build barely faster (often slower)
/// than a single processor. Calibrated against Fig. 21b's build times
/// (Het 2.15 s vs CPU-only 2.12 s on scaled workload C).
inline constexpr double kSharedBuildEfficiency = 0.35;

/// Scheduling efficiency of heterogeneous probe execution: morsel-batch
/// tails and dispatch latency keep the combined rate below the sum of the
/// per-device rates (Sec. 6.1).
inline constexpr double kHetProbeEfficiency = 0.75;

/// Synchronous broadcast of the built table (GPU+Het, step 2 of Fig. 9b)
/// achieves roughly half the link bandwidth (it is not pipelined).
inline constexpr double kBroadcastEfficiency = 0.5;

/// Analytic model of cooperative CPU+GPU join execution (Sec. 6). Combines
/// per-device NOPA rates with scheduling efficiency and a CPU-memory
/// bandwidth contention cap.
class CoProcessModel {
 public:
  explicit CoProcessModel(const hw::SystemProfile* profile);

  /// Estimates `workload` under `strategy`.
  Result<JoinTiming> Estimate(ExecutionStrategy strategy,
                              const CoProcessConfig& config,
                              const data::WorkloadSpec& workload) const;

  /// The hash-table placement the decision tree of Fig. 11 selects for the
  /// GPU-involving strategies.
  HashTablePlacement PlacementFor(ExecutionStrategy strategy,
                                  const CoProcessConfig& config,
                                  const data::WorkloadSpec& workload) const;

  /// Recommends a strategy per the decision tree of Fig. 11: cache-resident
  /// tables favour GPU+Het, large tables the hybrid-table GPU strategy or
  /// Het, large probe sides the GPU.
  ExecutionStrategy Decide(const CoProcessConfig& config,
                           const data::WorkloadSpec& workload) const;

 private:
  /// Steady probe rate (tuples/s) of one device given table placement,
  /// combining ingest and hash-table access bottlenecks.
  PerSecond DeviceProbeRate(hw::DeviceId device,
                            const HashTablePlacement& placement,
                            const CoProcessConfig& config,
                            const data::WorkloadSpec& workload) const;

  /// One probing device's contribution to the contention computation: its
  /// steady rate and the hash-table placement it probes.
  struct ProbeShare {
    hw::DeviceId device = hw::kInvalidDevice;
    PerSecond rate;
    HashTablePlacement placement;
  };

  /// Scales a combined rate down when the devices' aggregate traffic at
  /// the data node (streams plus cache-missing hash-table lines) exceeds
  /// its memory bandwidth.
  double MemoryContentionScale(const std::vector<ProbeShare>& shares,
                               const CoProcessConfig& config,
                               const data::WorkloadSpec& workload) const;

  const hw::SystemProfile* profile_;
  NopaJoinModel nopa_;
};

}  // namespace pump::join

#endif  // PUMP_JOIN_COPROCESS_H_
