#include "join/star_model.h"

#include <algorithm>

#include "sim/access_path.h"
#include "sim/overlap.h"

namespace pump::join {

StarJoinModel::StarJoinModel(const hw::SystemProfile* profile)
    : profile_(profile), nopa_(profile) {}

Result<StarTiming> StarJoinModel::Estimate(
    hw::DeviceId gpu, hw::MemoryNodeId data_location, double fact_tuples,
    std::vector<StarDimension> dimensions,
    bool parallel_build_on_cpu_and_gpu) const {
  const hw::Topology& topo = profile_->topology;
  StarTiming timing;

  // Probe dimensions in ascending selectivity so short-circuiting skips
  // as many later lookups as possible.
  std::sort(dimensions.begin(), dimensions.end(),
            [](const StarDimension& a, const StarDimension& b) {
              return a.selectivity < b.selectivity;
            });

  const HashTablePlacement gpu_local = HashTablePlacement::Single(gpu);

  // Build phase: each dimension's table builds like a NOPA build. With
  // parallel builds the two slowest processors overlap; serially they sum.
  std::vector<Seconds> build_times;
  Bytes broadcast_bytes;
  for (const StarDimension& dim : dimensions) {
    data::WorkloadSpec w;
    w.key_bytes = 8;
    w.payload_bytes = 8;
    w.r_tuples = dim.tuples;
    w.s_tuples = 1;  // Only the build side matters here.
    const PerSecond rate = nopa_.InsertRate(gpu, gpu_local, w);
    build_times.push_back(static_cast<double>(dim.tuples) / rate);
    broadcast_bytes += Bytes(static_cast<double>(w.hash_table_bytes()));
  }
  if (parallel_build_on_cpu_and_gpu) {
    // Tables build concurrently on different processors (Sec. 6.2): the
    // makespan is the slowest table, plus the broadcast of all tables.
    timing.build_s =
        *std::max_element(build_times.begin(), build_times.end());
    const sim::AccessPath link =
        sim::MustResolve(topo, gpu, data_location);
    timing.broadcast_s = broadcast_bytes / (link.seq_bw * 0.5);
  } else {
    for (Seconds t : build_times) timing.build_s += t;
  }

  // Probe phase: the fact stream carries one 8-byte key column per
  // dimension plus an 8-byte measure; lookups happen per surviving row.
  const sim::AccessPath stream_path =
      sim::MustResolve(topo, gpu, data_location);
  const Bytes fact_bytes = Bytes(
      fact_tuples * (8.0 * static_cast<double>(dimensions.size()) + 8.0));
  const Seconds stream_s = fact_bytes / stream_path.seq_bw;

  Seconds lookups;
  double surviving = 1.0;
  data::WorkloadSpec probe_w;
  probe_w.key_bytes = 8;
  probe_w.payload_bytes = 8;
  for (const StarDimension& dim : dimensions) {
    probe_w.r_tuples = std::max<std::uint64_t>(1, dim.tuples);
    const PerSecond rate = nopa_.HashTableAccessRate(gpu, gpu_local, probe_w);
    lookups += fact_tuples * surviving / rate;
    surviving *= dim.selectivity;
  }
  timing.probe_s = sim::OverlapTime({stream_s, lookups},
                                    sim::kGpuOverlapExponent);
  return timing;
}

}  // namespace pump::join
