#include "join/swwc.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/cpu_features.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PUMP_SWWC_X86 1
#endif

namespace pump::join::swwc {
namespace {

constexpr std::size_t kLineMask = kLineTuples - 1;

// Flushes buf[from, kLineTuples) to dst_line[from, kLineTuples). A full
// line (from == 0) with a 32-byte-aligned destination streams past the
// cache; partial lines — the head of a worker's cursor region, whose
// leading slots belong to the previous worker — use plain stores so a
// neighbour's bytes on the shared line are never written. Returns true
// when it streamed (caller fences once at the end).
inline bool FlushLine(std::int64_t* dst_line, const std::int64_t* buf,
                      std::size_t from) {
#ifdef PUMP_SWWC_X86
  if (from == 0 &&
      (reinterpret_cast<std::uintptr_t>(dst_line) & 31u) == 0) {
    _mm256_stream_si256(
        reinterpret_cast<__m256i*>(dst_line),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf)));
    _mm256_stream_si256(
        reinterpret_cast<__m256i*>(dst_line + 4),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf + 4)));
    return true;
  }
#endif
  for (std::size_t i = from; i < kLineTuples; ++i) {
    dst_line[i] = buf[i];
  }
  return false;
}

}  // namespace

bool StreamingActive() {
#ifdef PUMP_SWWC_X86
  return common::ActiveSimdDispatch() == common::SimdDispatch::kAvx2;
#else
  return false;
#endif
}

void ScatterSwwcInt64(const std::int64_t* keys, const std::int64_t* payloads,
                      std::size_t begin, std::size_t end, std::size_t mask,
                      std::size_t* cursors, std::size_t partitions,
                      std::int64_t* out_keys, std::int64_t* out_payloads) {
  // Per-partition line buffers: one 64-byte line of keys and one of
  // payloads. The buffer slot for output position `slot` is
  // `slot & kLineMask`, so a cursor region that starts mid-line fills
  // its line buffer from the matching offset and the head flush knows
  // which slots are real.
  std::vector<std::int64_t> key_lines(partitions * kLineTuples);
  std::vector<std::int64_t> payload_lines(partitions * kLineTuples);
  // Region starts: slots below these belong to the previous worker.
  std::vector<std::size_t> start(cursors, cursors + partitions);

  bool streamed = false;
  for (std::size_t i = begin; i < end; ++i) {
    const std::int64_t key = keys[i];
    const std::size_t p = static_cast<std::size_t>(key) & mask;
    const std::size_t slot = cursors[p]++;
    const std::size_t pos = slot & kLineMask;
    key_lines[p * kLineTuples + pos] = key;
    payload_lines[p * kLineTuples + pos] = payloads[i];
    if (pos == kLineMask) {
      const std::size_t line_begin = slot - kLineMask;
      const std::size_t from =
          start[p] > line_begin ? start[p] - line_begin : 0;
      streamed |= FlushLine(out_keys + line_begin,
                            key_lines.data() + p * kLineTuples, from);
      streamed |= FlushLine(out_payloads + line_begin,
                            payload_lines.data() + p * kLineTuples, from);
    }
  }

  // Drain the partial tail line of every partition with plain stores:
  // the slots past the cursor belong to the next worker's region.
  for (std::size_t p = 0; p < partitions; ++p) {
    const std::size_t cur = cursors[p];
    const std::size_t line_begin = cur & ~kLineMask;
    const std::size_t tail_from = std::max(start[p], line_begin);
    for (std::size_t slot = tail_from; slot < cur; ++slot) {
      out_keys[slot] = key_lines[p * kLineTuples + (slot & kLineMask)];
      out_payloads[slot] =
          payload_lines[p * kLineTuples + (slot & kLineMask)];
    }
  }

#ifdef PUMP_SWWC_X86
  // Publish the non-temporal stores before the ParallelFor join's
  // release edge: sfence orders streaming stores with subsequent
  // ordinary stores.
  if (streamed) _mm_sfence();
#else
  (void)streamed;
#endif
}

}  // namespace pump::join::swwc
