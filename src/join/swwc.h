#ifndef PUMP_JOIN_SWWC_H_
#define PUMP_JOIN_SWWC_H_

#include <cstddef>
#include <cstdint>

// Software write-combining scatter for the radix partition pass
// (join/radix.h). A direct scatter writes each tuple straight to its
// partition cursor: with P live output streams the store buffer and
// line-fill buffers thrash, and every partition line is read for
// ownership before being overwritten. The SWWC scatter instead stages
// tuples in per-partition cache-line-sized buffers (8 x 64-bit slots =
// one 64-byte line) and flushes a full line at a time with non-temporal
// _mm256_stream_si256 stores — one line leaves the core per flush, no
// read-for-ownership, no cache pollution — followed by one _mm_sfence
// per worker on finalize. The implementation lives in swwc.cc, compiled
// with -mavx2 (see src/CMakeLists.txt); a scalar fallback body keeps
// the symbol linkable everywhere.
//
// Slot assignment is bit-identical to the direct scatter: tuples land
// at exactly the cursor positions the prefix sum assigned, so the
// partition output (and the hb-claims ledger of any dispatcher driving
// the pass) is unchanged.

namespace pump::join::swwc {

/// Tuples per write-combining line: 8 x int64 = 64 bytes.
inline constexpr std::size_t kLineTuples = 8;

/// True when the streaming (non-temporal) flush path is active:
/// AVX2 dispatch selected and the kernels compiled in.
bool StreamingActive();

/// Scatters input[begin, end) into out_keys/out_payloads through
/// per-partition write-combining buffers. `cursors[p]` holds the
/// worker's next write slot for partition p (from the prefix sum) and
/// is advanced past the scattered tuples, exactly as the direct
/// scatter would. Partition of a tuple is `key & mask`.
///
/// Line flushes use non-temporal stores only for lines that lie fully
/// inside this worker's cursor region and start 32-byte aligned;
/// partial head/tail lines at region boundaries use plain stores, so
/// neighbouring workers' slots on a shared line are never touched.
/// Issues an _mm_sfence before returning when any streaming store was
/// used, so the caller's ParallelFor join publishes ordinary visibility.
void ScatterSwwcInt64(const std::int64_t* keys, const std::int64_t* payloads,
                      std::size_t begin, std::size_t end, std::size_t mask,
                      std::size_t* cursors, std::size_t partitions,
                      std::int64_t* out_keys, std::int64_t* out_payloads);

}  // namespace pump::join::swwc

#endif  // PUMP_JOIN_SWWC_H_
