#ifndef PUMP_JOIN_COST_MODEL_H_
#define PUMP_JOIN_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "memory/buffer.h"
#include "transfer/transfer_model.h"

namespace pump::join {

/// Where the hash table lives: one or more (node, fraction) parts. A single
/// part models ordinary placement; two parts model the hybrid hash table
/// of Sec. 5.3 (fraction == the expected GPU access share A_GPU).
struct HashTablePlacement {
  struct Part {
    hw::MemoryNodeId node = hw::kInvalidMemoryNode;
    double fraction = 1.0;
  };
  std::vector<Part> parts;

  /// Places the whole table on one node.
  static HashTablePlacement Single(hw::MemoryNodeId node);
  /// Splits the table `gpu_fraction` on `gpu_node`, rest on `cpu_node`.
  static HashTablePlacement Hybrid(hw::MemoryNodeId gpu_node,
                                   hw::MemoryNodeId cpu_node,
                                   double gpu_fraction);
  /// Derives the placement from a (hybrid) buffer's extents.
  static HashTablePlacement FromBuffer(const memory::Buffer& buffer);

  /// Skew-aware hybrid placement (an extension of Sec. 5.3): instead of
  /// splitting by address, the hottest `byte_fraction` of the key domain
  /// is placed in GPU memory, so under Zipf(`zipf_exponent`) probes the
  /// GPU part serves the Zipf mass of those hot entries — far more than
  /// its byte share. Part fractions here are *access* shares.
  static HashTablePlacement SkewAware(hw::MemoryNodeId gpu_node,
                                      hw::MemoryNodeId cpu_node,
                                      double byte_fraction,
                                      std::uint64_t r_tuples,
                                      double zipf_exponent);
};

/// The modelled execution of one join: per-phase times and derived
/// throughput in the paper's metric (|R|+|S|) / runtime (Sec. 7.1).
struct JoinTiming {
  Seconds build_s;
  Seconds probe_s;
  /// Extra serial step, e.g. the GPU+Het hash-table broadcast (Fig. 9b).
  Seconds extra_s;

  Seconds total_s() const { return build_s + probe_s + extra_s; }
  /// Throughput in tuples/s for a workload with `total_tuples` inputs.
  PerSecond Throughput(double total_tuples) const {
    return total_tuples / total_s();
  }
};

/// Configuration of a single-device NOPA join (Secs. 5.1/5.2).
struct NopaConfig {
  /// Executing device (CPU socket or GPU).
  hw::DeviceId device = hw::kInvalidDevice;
  /// Placement of the base relations.
  hw::MemoryNodeId r_location = hw::kInvalidMemoryNode;
  hw::MemoryNodeId s_location = hw::kInvalidMemoryNode;
  /// Hash-table placement.
  HashTablePlacement hash_table;
  /// Transfer method used to ingest the base relations when the executing
  /// device is a GPU (Fig. 12). Ignored for CPU devices.
  transfer::TransferMethod method = transfer::TransferMethod::kCoherence;
  /// Memory kind the base relations are stored in.
  memory::MemoryKind relation_memory = memory::MemoryKind::kPageable;
  /// When set, the probe materializes <key, payload, payload> result rows
  /// into CPU memory instead of aggregating (Sec. 5.1 mentions both emit
  /// strategies); the write stream is costed against the path back to
  /// `r_location`'s node.
  bool materialize_result = false;
};

/// Analytic performance model of the no-partitioning hash join on one
/// system. All rates derive from AccessPaths plus the cache/TLB models;
/// every constant is documented at its definition site.
class NopaJoinModel {
 public:
  /// Binds the model to a system profile (must outlive the model).
  explicit NopaJoinModel(const hw::SystemProfile* profile);

  /// Estimates build/probe times of `workload` under `config`.
  /// Returns Unsupported when the transfer method cannot run on this
  /// system (e.g. Coherence over PCI-e 3.0).
  Result<JoinTiming> Estimate(const NopaConfig& config,
                              const data::WorkloadSpec& workload) const;

  /// Effective hash-table access rate (dependent random accesses/s) seen
  /// by `device` for a table placed per `placement`, including cache hits
  /// (GPU L2 for local tables, GPU L1 for remote ones, CPU LLC), GPU TLB
  /// reach, and the probe-key skew of the workload. Exposed for tests and
  /// the hybrid-placement benches.
  PerSecond HashTableAccessRate(hw::DeviceId device,
                                const HashTablePlacement& placement,
                                const data::WorkloadSpec& workload) const;

  /// Rate at which `device` can ingest the base-relation stream from
  /// `location` with `method` (pull paths for CPUs, transfer pipelines for
  /// GPUs).
  Result<BytesPerSecond> IngestBandwidth(const NopaConfig& config,
                                         hw::MemoryNodeId location) const;

  /// Hash-table insert rate: the lookup rate capped by the GPU's atomic
  /// CAS throughput (inserts pay a CAS plus a value store per slot; CPU
  /// cores absorb the CAS in their store buffers).
  PerSecond InsertRate(hw::DeviceId device,
                       const HashTablePlacement& placement,
                       const data::WorkloadSpec& workload) const;

  /// Expected cache hit rate of `device`'s accesses into one table part,
  /// under the workload's key skew (used by the co-processing model to
  /// account only cache-missing traffic against memory bandwidth).
  double CacheHitRate(hw::DeviceId device,
                      const HashTablePlacement::Part& part,
                      const data::WorkloadSpec& workload) const;

  const hw::SystemProfile& profile() const { return *profile_; }

 private:
  struct CacheView {
    PerSecond rate;
    double entries = 0.0;
  };

  CacheView CacheFor(hw::DeviceId device,
                     const HashTablePlacement::Part& part,
                     const data::WorkloadSpec& workload) const;

  PerSecond PartAccessRate(hw::DeviceId device,
                           const HashTablePlacement::Part& part,
                           const data::WorkloadSpec& workload) const;

  /// The memory side of the access rate (harmonic blend over the table
  /// parts), before the compute term is folded in — probes and inserts
  /// blend it with different compute rates.
  PerSecond MemorySideRate(hw::DeviceId device,
                           const HashTablePlacement& placement,
                           const data::WorkloadSpec& workload) const;

  const hw::SystemProfile* profile_;
  transfer::TransferModel transfer_model_;
};

/// The radix-partitioned CPU baseline ("PRO" of Barthels et al. [9], made
/// "PRA" by the perfect hash, Sec. 7.1): partition passes at memory
/// bandwidth followed by cache-resident per-partition build/probe.
class RadixJoinModel {
 public:
  explicit RadixJoinModel(const hw::SystemProfile* profile);

  /// Estimates the PRA join on CPU socket `cpu` with both relations local.
  JoinTiming Estimate(hw::DeviceId cpu,
                      const data::WorkloadSpec& workload) const;

 private:
  const hw::SystemProfile* profile_;
};

}  // namespace pump::join

#endif  // PUMP_JOIN_COST_MODEL_H_
