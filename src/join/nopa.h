#ifndef PUMP_JOIN_NOPA_H_
#define PUMP_JOIN_NOPA_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/relation.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "hash/hash_table.h"

namespace pump::join {

/// Aggregated join output. The paper's joins emit an aggregate rather than
/// materializing the result (Sec. 5.1); summing the matched payloads makes
/// the result order-independent and arithmetically checkable
/// (payload == key + data::kPayloadOffset).
struct JoinAggregate {
  std::uint64_t matches = 0;
  std::uint64_t payload_sum = 0;

  friend bool operator==(const JoinAggregate&, const JoinAggregate&) =
      default;
};

/// Morsel-parallel build phase of the no-partitioning hash join (Sec. 2.1):
/// workers claim R morsels from a shared dispatcher and insert into the
/// shared table. The final thread join is the build barrier the tables'
/// insert contract requires. Fails on duplicate or out-of-domain keys.
template <typename Table, typename K, typename V>
Status BuildPhase(Table* table, const data::Relation<K, V>& inner,
                  std::size_t workers,
                  std::size_t morsel_tuples = exec::kDefaultMorselTuples) {
  exec::WorkStealingDispatcher dispatcher(inner.size(), morsel_tuples,
                                          workers);
  std::atomic<bool> failed{false};
  Status first_error;  // Written by at most one worker (guarded by CAS).
  std::atomic<bool> error_claimed{false};

  exec::ParallelFor(workers, [&](std::size_t w) {
    while (auto morsel = dispatcher.Next(w)) {
      if (failed.load(std::memory_order_relaxed)) return;
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) {
        Status status = table->Insert(inner.keys[i], inner.payloads[i]);
        if (!status.ok()) {
          bool expected = false;
          if (error_claimed.compare_exchange_strong(expected, true)) {
            first_error = std::move(status);
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  if (failed.load()) return first_error;
  return Status::OK();
}

/// Probes `keys[begin, end)` against `table`, adding matches and payload
/// sums to the accumulators. Tables exposing the interleaved ProbeBatch
/// interface (hash_table.h) are probed in groups of kProbeBatchWidth with
/// all bucket addresses prefetched before any is dereferenced; other
/// tables (e.g. instrumented wrappers) fall back to scalar Lookup.
template <typename Table, typename K, typename V>
void ProbeRange(const Table& table, const K* keys, std::size_t begin,
                std::size_t end, std::uint64_t* matches,
                std::uint64_t* sum) {
  if constexpr (requires(V* values, bool* found) {
                  table.ProbeBatch(keys, end - begin, values, found);
                }) {
    V values[hash::kProbeBatchWidth];
    bool found[hash::kProbeBatchWidth];
    for (std::size_t base = begin; base < end;
         base += hash::kProbeBatchWidth) {
      const std::size_t count =
          std::min(hash::kProbeBatchWidth, end - base);
      *matches += table.ProbeBatch(keys + base, count, values, found);
      for (std::size_t i = 0; i < count; ++i) {
        if (found[i]) *sum += static_cast<std::uint64_t>(values[i]);
      }
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      V payload;
      if (table.Lookup(keys[i], &payload)) {
        ++*matches;
        *sum += static_cast<std::uint64_t>(payload);
      }
    }
  }
}

/// Morsel-parallel probe phase: workers claim S morsels and probe the
/// shared (read-only) table, accumulating matches and payload sums
/// locally, then merging atomically.
template <typename Table, typename K, typename V>
JoinAggregate ProbePhase(const Table& table,
                         const data::Relation<K, V>& outer,
                         std::size_t workers,
                         std::size_t morsel_tuples =
                             exec::kDefaultMorselTuples) {
  exec::WorkStealingDispatcher dispatcher(outer.size(), morsel_tuples,
                                          workers);
  std::atomic<std::uint64_t> total_matches{0};
  std::atomic<std::uint64_t> total_sum{0};

  exec::ParallelFor(workers, [&](std::size_t w) {
    std::uint64_t matches = 0;
    std::uint64_t sum = 0;
    while (auto morsel = dispatcher.Next(w)) {
      ProbeRange<Table, K, V>(table, outer.keys.data(), morsel->begin,
                              morsel->end, &matches, &sum);
    }
    total_matches.fetch_add(matches, std::memory_order_relaxed);
    total_sum.fetch_add(sum, std::memory_order_relaxed);
  });
  return JoinAggregate{total_matches.load(), total_sum.load()};
}

/// A materialized join result row: <key, inner payload, outer payload>.
template <typename K, typename V>
struct JoinedTuple {
  K key;
  V inner_payload;
  V outer_payload;

  friend bool operator==(const JoinedTuple&, const JoinedTuple&) = default;
};

/// Morsel-parallel probe that materializes the joined tuples instead of
/// aggregating (the other emit strategy of Sec. 5.1). Workers append to
/// private buffers that are concatenated afterwards; the output multiset
/// is exact but its order depends on the work-stealing schedule.
template <typename Table, typename K, typename V>
std::vector<JoinedTuple<K, V>> ProbeMaterialize(
    const Table& table, const data::Relation<K, V>& outer,
    std::size_t workers,
    std::size_t morsel_tuples = exec::kDefaultMorselTuples) {
  workers = std::max<std::size_t>(1, workers);
  exec::WorkStealingDispatcher dispatcher(outer.size(), morsel_tuples,
                                          workers);
  std::vector<std::vector<JoinedTuple<K, V>>> partial(workers);
  exec::ParallelFor(workers, [&](std::size_t w) {
    auto& out = partial[w];
    while (auto morsel = dispatcher.Next(w)) {
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) {
        V payload;
        if (table.Lookup(outer.keys[i], &payload)) {
          out.push_back(JoinedTuple<K, V>{outer.keys[i], payload,
                                          outer.payloads[i]});
        }
      }
    }
  });
  std::vector<JoinedTuple<K, V>> result;
  for (auto& part : partial) {
    result.insert(result.end(), part.begin(), part.end());
  }
  return result;
}

/// End-to-end no-partitioning hash join over a perfect-hash table sized to
/// R's dense key domain [0, |R|). This is the functional counterpart of
/// the cost models: identical algorithm, host execution.
template <typename K, typename V>
Result<JoinAggregate> RunNopaJoin(const data::Relation<K, V>& inner,
                                  const data::Relation<K, V>& outer,
                                  std::size_t workers = 1) {
  hash::PerfectHashTable<K, V> table(inner.size());
  PUMP_RETURN_NOT_OK(BuildPhase(&table, inner, workers));
  return ProbePhase(table, outer, workers);
}

/// Variant over a caller-provided table (e.g. a HybridHashTable's view or
/// a LinearProbingHashTable for non-dense keys).
template <typename Table, typename K, typename V>
Result<JoinAggregate> RunNopaJoinOn(Table* table,
                                    const data::Relation<K, V>& inner,
                                    const data::Relation<K, V>& outer,
                                    std::size_t workers = 1) {
  PUMP_RETURN_NOT_OK(BuildPhase(table, inner, workers));
  return ProbePhase(*table, outer, workers);
}

}  // namespace pump::join

#endif  // PUMP_JOIN_NOPA_H_
