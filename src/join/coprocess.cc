#include "join/coprocess.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/access_path.h"
#include "sim/cache_model.h"
#include "sim/overlap.h"

namespace pump::join {

namespace {

// Probe tuple rate of a device limited by data ingest alone.
PerSecond IngestTupleRate(BytesPerSecond ingest_bw,
                          const data::WorkloadSpec& w) {
  return ingest_bw / Bytes(static_cast<double>(w.tuple_bytes()));
}

}  // namespace

const char* StrategyName(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kCpuOnly:
      return "CPU (NOPA)";
    case ExecutionStrategy::kHet:
      return "Het";
    case ExecutionStrategy::kGpuHet:
      return "GPU + Het";
    case ExecutionStrategy::kGpuOnly:
      return "GPU";
    case ExecutionStrategy::kMultiGpu:
      return "Multi-GPU";
  }
  return "Unknown";
}

CoProcessModel::CoProcessModel(const hw::SystemProfile* profile)
    : profile_(profile), nopa_(profile) {}

HashTablePlacement CoProcessModel::PlacementFor(
    ExecutionStrategy strategy, const CoProcessConfig& config,
    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  switch (strategy) {
    case ExecutionStrategy::kCpuOnly:
    case ExecutionStrategy::kHet:
      // Shared table in CPU memory: never slow the CPU down with remote
      // GPU-memory accesses (Sec. 6.2).
      return HashTablePlacement::Single(config.data_location);
    case ExecutionStrategy::kGpuHet:
      // Each processor probes its local copy; model the GPU's view here.
      return HashTablePlacement::Single(config.gpu);
    case ExecutionStrategy::kGpuOnly: {
      const std::uint64_t capacity =
          topo.memory(config.gpu).capacity.u64();
      const std::uint64_t usable =
          capacity > config.gpu_reserve_bytes
              ? capacity - config.gpu_reserve_bytes
              : 0;
      if (workload.hash_table_bytes() <= usable) {
        return HashTablePlacement::Single(config.gpu);
      }
      const double gpu_fraction =
          static_cast<double>(usable) /
          static_cast<double>(workload.hash_table_bytes());
      return HashTablePlacement::Hybrid(config.gpu, config.data_location,
                                        gpu_fraction);
    }
    case ExecutionStrategy::kMultiGpu: {
      // Pages interleaved round-robin over all GPUs (Sec. 6.3).
      HashTablePlacement placement;
      std::vector<hw::DeviceId> gpus = {config.gpu};
      gpus.insert(gpus.end(), config.extra_gpus.begin(),
                  config.extra_gpus.end());
      const double share = 1.0 / static_cast<double>(gpus.size());
      for (hw::DeviceId gpu : gpus) {
        placement.parts.push_back(HashTablePlacement::Part{gpu, share});
      }
      return placement;
    }
  }
  return HashTablePlacement::Single(config.data_location);
}

PerSecond CoProcessModel::DeviceProbeRate(
    hw::DeviceId device, const HashTablePlacement& placement,
    const CoProcessConfig& config, const data::WorkloadSpec& workload) const {
  NopaConfig nopa_config;
  nopa_config.device = device;
  nopa_config.r_location = config.data_location;
  nopa_config.s_location = config.data_location;
  nopa_config.hash_table = placement;
  nopa_config.method = config.method;
  nopa_config.relation_memory = config.relation_memory;

  const PerSecond ht_rate =
      nopa_.HashTableAccessRate(device, placement, workload);
  Result<BytesPerSecond> ingest =
      nopa_.IngestBandwidth(nopa_config, config.data_location);
  const PerSecond ingest_rate = ingest.ok()
                                    ? IngestTupleRate(ingest.value(), workload)
                                    : PerSecond(0.0);
  if (ingest_rate <= PerSecond(0.0)) return PerSecond(0.0);

  const bool is_gpu =
      profile_->topology.device(device).kind == hw::DeviceKind::kGpu;
  const double p = is_gpu ? sim::kGpuOverlapExponent
                          : sim::kCpuOverlapExponent;
  // Per-tuple time of the overlapped stream + lookup, inverted to a rate.
  const Seconds per_tuple =
      sim::OverlapTime({1.0 / ingest_rate, 1.0 / ht_rate}, p);
  return 1.0 / per_tuple;
}

double CoProcessModel::MemoryContentionScale(
    const std::vector<ProbeShare>& shares, const CoProcessConfig& config,
    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const hw::MemorySpec& data_mem = topo.memory(config.data_location);
  BytesPerSecond demand;  // aggregate traffic at the data node
  for (const ProbeShare& share : shares) {
    // Streaming the base relation.
    Bytes bytes_per_tuple = Bytes(static_cast<double>(workload.tuple_bytes()));
    // Hash-table lines served by the data node's DRAM: only cache-missing
    // accesses reach memory. Local CPU probes move a full line;
    // interconnect reads move the link's access granule.
    for (const HashTablePlacement::Part& part : share.placement.parts) {
      if (part.node != config.data_location) continue;
      const sim::AccessPath path =
          sim::MustResolve(topo, share.device, part.node);
      const double miss =
          1.0 - nopa_.CacheHitRate(share.device, part, workload);
      bytes_per_tuple += part.fraction * miss * path.granularity;
    }
    demand += share.rate * bytes_per_tuple;
  }
  if (demand <= data_mem.seq_bw) return 1.0;
  return data_mem.seq_bw / demand;
}

Result<JoinTiming> CoProcessModel::Estimate(
    ExecutionStrategy strategy, const CoProcessConfig& config,
    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const double r_tuples = static_cast<double>(workload.r_tuples);
  const double s_tuples = static_cast<double>(workload.s_tuples);

  // Single-device strategies delegate to the NOPA model directly.
  if (strategy == ExecutionStrategy::kCpuOnly ||
      strategy == ExecutionStrategy::kGpuOnly) {
    NopaConfig nopa_config;
    nopa_config.device = strategy == ExecutionStrategy::kCpuOnly
                             ? config.cpu
                             : config.gpu;
    nopa_config.r_location = config.data_location;
    nopa_config.s_location = config.data_location;
    nopa_config.hash_table = PlacementFor(strategy, config, workload);
    nopa_config.method = config.method;
    nopa_config.relation_memory = config.relation_memory;
    return nopa_.Estimate(nopa_config, workload);
  }

  if (strategy == ExecutionStrategy::kMultiGpu) {
    // Every GPU probes the interleaved table; S is split evenly and each
    // GPU streams its share over its own links.
    std::vector<hw::DeviceId> gpus = {config.gpu};
    gpus.insert(gpus.end(), config.extra_gpus.begin(),
                config.extra_gpus.end());
    const HashTablePlacement placement =
        PlacementFor(strategy, config, workload);
    PerSecond combined;
    for (hw::DeviceId gpu : gpus) {
      combined += DeviceProbeRate(gpu, placement, config, workload);
    }
    JoinTiming timing;
    // One GPU builds its local share; builds proceed in parallel.
    const PerSecond build_rate = std::max(combined, PerSecond(1.0));
    timing.build_s = r_tuples / build_rate;
    timing.probe_s = s_tuples / combined;
    return timing;
  }

  // Heterogeneous strategies: Het and GPU+Het.
  JoinTiming timing;
  if (strategy == ExecutionStrategy::kHet) {
    const HashTablePlacement shared =
        PlacementFor(strategy, config, workload);
    // Build: both devices insert into the shared table; contention keeps
    // the combined rate near a single device's (Fig. 21b).
    const PerSecond cpu_ins = nopa_.InsertRate(config.cpu, shared, workload);
    const PerSecond gpu_ins = nopa_.InsertRate(config.gpu, shared, workload);
    const PerSecond build_rate = (cpu_ins + gpu_ins) * kSharedBuildEfficiency;
    timing.build_s = r_tuples / build_rate;

    // Probe: morsel-dispatched shares at each device's rate.
    const PerSecond cpu_rate =
        DeviceProbeRate(config.cpu, shared, config, workload);
    const PerSecond gpu_rate =
        DeviceProbeRate(config.gpu, shared, config, workload);
    const double scale = MemoryContentionScale(
        {{config.cpu, cpu_rate, shared}, {config.gpu, gpu_rate, shared}},
        config, workload);
    timing.probe_s =
        s_tuples / ((cpu_rate + gpu_rate) * scale * kHetProbeEfficiency);
    return timing;
  }

  // GPU + Het (Fig. 9b): build on the GPU, broadcast, probe everywhere on
  // local copies.
  const HashTablePlacement gpu_local = HashTablePlacement::Single(config.gpu);
  const PerSecond gpu_ins = nopa_.InsertRate(config.gpu, gpu_local, workload);
  timing.build_s = r_tuples / gpu_ins;

  // Synchronous table broadcast to CPU memory.
  const sim::AccessPath link =
      sim::MustResolve(topo, config.gpu, config.data_location);
  timing.extra_s = Bytes(static_cast<double>(workload.hash_table_bytes())) /
                   (link.seq_bw * kBroadcastEfficiency);

  const HashTablePlacement cpu_local =
      HashTablePlacement::Single(config.data_location);
  const PerSecond gpu_rate =
      DeviceProbeRate(config.gpu, gpu_local, config, workload);
  const PerSecond cpu_rate =
      DeviceProbeRate(config.cpu, cpu_local, config, workload);
  const double scale = MemoryContentionScale(
      {{config.cpu, cpu_rate, cpu_local}, {config.gpu, gpu_rate, gpu_local}},
      config, workload);
  timing.probe_s =
      s_tuples / ((cpu_rate + gpu_rate) * scale * kHetProbeEfficiency);
  return timing;
}

ExecutionStrategy CoProcessModel::Decide(
    const CoProcessConfig& config, const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  // Fig. 11 decision tree.
  const hw::CacheSpec& cpu_llc = topo.cache(config.cpu);
  if (workload.hash_table_bytes() <= cpu_llc.capacity.u64()) {
    // Hash table fits the CPU cache: per-processor local copies win.
    return ExecutionStrategy::kGpuHet;
  }
  const std::uint64_t gpu_capacity =
      topo.memory(config.gpu).capacity.u64();
  const std::uint64_t usable =
      gpu_capacity > config.gpu_reserve_bytes
          ? gpu_capacity - config.gpu_reserve_bytes
          : 0;
  if (workload.hash_table_bytes() > usable) {
    // Large hash table: GPU with the hybrid table, or Het when the CPU is
    // fast; the model compares both.
    Result<JoinTiming> het =
        Estimate(ExecutionStrategy::kHet, config, workload);
    Result<JoinTiming> gpu =
        Estimate(ExecutionStrategy::kGpuOnly, config, workload);
    if (het.ok() && gpu.ok() &&
        het.value().total_s() < gpu.value().total_s()) {
      return ExecutionStrategy::kHet;
    }
    return ExecutionStrategy::kGpuOnly;
  }
  // In-GPU table, large probe side: GPU-only keeps the full NVLink
  // bandwidth for the probe stream.
  return ExecutionStrategy::kGpuOnly;
}

}  // namespace pump::join
