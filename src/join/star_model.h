#ifndef PUMP_JOIN_STAR_MODEL_H_
#define PUMP_JOIN_STAR_MODEL_H_

#include <vector>

#include "common/status.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"

namespace pump::join {

/// One dimension of a modelled star query.
struct StarDimension {
  std::uint64_t tuples = 0;
  /// Fraction of fact rows surviving this dimension's join (1 = all).
  double selectivity = 1.0;
};

/// Modelled star-query execution.
struct StarTiming {
  Seconds build_s;
  Seconds broadcast_s;
  Seconds probe_s;
  Seconds total_s() const { return build_s + broadcast_s + probe_s; }
};

/// Cost model of the Sec. 6.2 multi-way extension: "building hash tables
/// on a different processor in parallel, and then copying all hash tables
/// to all processors". Dimensions are probed in ascending-selectivity
/// order so later lookups are skipped for non-matching rows
/// (short-circuit), mirroring the functional StarJoin.
class StarJoinModel {
 public:
  explicit StarJoinModel(const hw::SystemProfile* profile);

  /// Estimates a star join of `fact_tuples` rows (16-byte key+measure per
  /// dimension column) against `dimensions`, executed on `gpu` with the
  /// dimension tables in GPU memory; data streams from `data_location`.
  /// When `parallel_build_on_cpu_and_gpu` is set, dimension tables build
  /// concurrently on both processors and are broadcast (GPU+Het style).
  Result<StarTiming> Estimate(hw::DeviceId gpu,
                              hw::MemoryNodeId data_location,
                              double fact_tuples,
                              std::vector<StarDimension> dimensions,
                              bool parallel_build_on_cpu_and_gpu) const;

 private:
  const hw::SystemProfile* profile_;
  NopaJoinModel nopa_;
};

}  // namespace pump::join

#endif  // PUMP_JOIN_STAR_MODEL_H_
