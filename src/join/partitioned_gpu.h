#ifndef PUMP_JOIN_PARTITIONED_GPU_H_
#define PUMP_JOIN_PARTITIONED_GPU_H_

#include "common/status.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"
#include "transfer/transfer_model.h"

namespace pump::join {

/// Cost model of the partitioning-based CPU+GPU join that pre-NVLink
/// systems use for out-of-core build sides (Sioulas et al. [89],
/// discussed in Secs. 3 and 5.2): the CPU radix-partitions both
/// relations so that each partition's hash table is GPU-cache-resident,
/// then streams partition pairs to the GPU, which joins them at compute
/// speed. This sidesteps random accesses over the interconnect — at the
/// price of two extra passes over all data on the CPU.
///
/// The ablation bench contrasts it with the paper's NOPA join: over
/// PCI-e 3.0 the partitioned join is the only viable out-of-core plan,
/// while NVLink 2.0 makes the partition passes pure overhead — the
/// paper's core argument for reconsidering no-partitioning joins
/// (Sec. 5.2).
class PartitionedGpuJoinModel {
 public:
  explicit PartitionedGpuJoinModel(const hw::SystemProfile* profile);

  /// Estimates the join: CPU `cpu` partitions from/to its local memory,
  /// GPU `gpu` consumes partition pairs with `method`.
  /// build_s carries the partition phase, probe_s the GPU join phase.
  Result<JoinTiming> Estimate(hw::DeviceId cpu, hw::DeviceId gpu,
                              transfer::TransferMethod method,
                              const data::WorkloadSpec& workload) const;

 private:
  const hw::SystemProfile* profile_;
  transfer::TransferModel transfer_model_;
};

/// Per-partition GPU join rate when the partition's hash table is
/// cache-resident (tuples/s): bounded by compute and the GPU L2, not by
/// HBM random access. Calibrated to the workload-B in-cache rate of
/// Fig. 13 divided by the partitioned join's extra bookkeeping.
inline constexpr double kGpuPartitionJoinRate = 10e9;

}  // namespace pump::join

#endif  // PUMP_JOIN_PARTITIONED_GPU_H_
