#include "join/partitioned_gpu.h"

#include "sim/overlap.h"

namespace pump::join {

PartitionedGpuJoinModel::PartitionedGpuJoinModel(
    const hw::SystemProfile* profile)
    : profile_(profile), transfer_model_(profile) {}

Result<JoinTiming> PartitionedGpuJoinModel::Estimate(
    hw::DeviceId cpu, hw::DeviceId gpu, transfer::TransferMethod method,
    const data::WorkloadSpec& workload) const {
  const hw::Topology& topo = profile_->topology;
  const hw::MemorySpec& mem = topo.memory(cpu);
  const hw::DeviceSpec& cpu_dev = topo.device(cpu);

  // Phase 1: CPU radix partitioning of both relations — every byte is
  // read and written once; tuple-wise histogram+scatter runs at half the
  // CPU's join compute rate (same model as the PRA baseline).
  const double total_tuples = static_cast<double>(workload.total_tuples());
  const Bytes total_bytes = Bytes(static_cast<double>(workload.total_bytes()));
  const Seconds partition_s = sim::OverlapTime(
      {2.0 * total_bytes / mem.duplex_bw,
       total_tuples / (cpu_dev.tuple_compute_rate * 0.5)},
      sim::kCpuOverlapExponent);

  // Phase 2: stream partition pairs to the GPU (partitions are written to
  // pinned staging, so push-based DMA works even on PCI-e) and join each
  // pair with a cache-resident hash table.
  const memory::MemoryKind kind = transfer::TraitsOf(method).required_memory;
  PUMP_RETURN_NOT_OK(transfer_model_.Validate(method, gpu, cpu, kind));
  PUMP_ASSIGN_OR_RETURN(const BytesPerSecond ingest,
                        transfer_model_.IngestBandwidth(method, gpu, cpu));
  const Seconds join_s = sim::OverlapTime(
      {total_bytes / ingest,
       total_tuples / PerSecond(kGpuPartitionJoinRate)},
      sim::kGpuOverlapExponent);

  JoinTiming timing;
  timing.build_s = partition_s;
  timing.probe_s = join_s;
  return timing;
}

}  // namespace pump::join
