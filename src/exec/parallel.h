#ifndef PUMP_EXEC_PARALLEL_H_
#define PUMP_EXEC_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace pump::exec {

/// Runs `fn(worker_id)` for every id in [0, workers) and joins; the
/// worker with id 0 runs on the calling thread. This is the fork-join
/// primitive beneath the functional joins' build and probe phases — the
/// join-all acts as the build/probe barrier the hash tables require.
/// Dispatches onto the process-wide persistent `Executor` (exec/executor.h)
/// rather than spawning threads per call, so a phase costs a worker
/// wake-up, not a thread creation.
void ParallelFor(std::size_t workers,
                 const std::function<void(std::size_t)>& fn);

/// A reasonable default worker count: the hardware concurrency, at least 1.
std::size_t DefaultWorkerCount();

}  // namespace pump::exec

#endif  // PUMP_EXEC_PARALLEL_H_
