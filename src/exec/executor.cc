#include "exec/executor.h"

#include <algorithm>
#include <utility>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/query_context.h"

namespace pump::exec {

namespace {

/// Process-wide mirrors of the per-executor counters: the registry view
/// aggregates every Executor instance (tests construct private pools),
/// while Executor::Stats() stays per-instance.
struct ExecMetrics {
  obs::Counter& dispatches;
  obs::Counter& tasks_run;
  obs::Counter& steals;
  obs::Counter& parks;
  obs::Counter& unparks;
};

ExecMetrics& Metrics() {
  static ExecMetrics metrics{
      obs::MetricsRegistry::Instance().GetCounter("exec.dispatches"),
      obs::MetricsRegistry::Instance().GetCounter("exec.tasks_run"),
      obs::MetricsRegistry::Instance().GetCounter("exec.steals"),
      obs::MetricsRegistry::Instance().GetCounter("exec.parks"),
      obs::MetricsRegistry::Instance().GetCounter("exec.unparks")};
  return metrics;
}

/// True on any thread currently inside a Run slot (pool thread or the
/// calling thread of an active dispatch). Nested Run calls observe it and
/// fall back to inline execution instead of deadlocking on the pool.
thread_local bool tls_in_run = false;

class ScopedInRun {
 public:
  ScopedInRun() { tls_in_run = true; }
  ~ScopedInRun() { tls_in_run = false; }
};

}  // namespace

Executor::Executor(std::size_t threads)
    : counters_(std::max<std::size_t>(1, threads)) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  threads_.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void Executor::WorkerLoop(std::size_t thread_index) {
  ScopedInRun in_run;  // Nested ParallelFor inside a slot runs inline.
  ThreadCounters& counters = counters_[thread_index];
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    while (!shutdown_ && generation_ == seen_generation) {
      counters.parks.fetch_add(1, std::memory_order_relaxed);
      Metrics().parks.Add();
      work_cv_.wait(lock);
    }
    if (shutdown_) return;
    seen_generation = generation_;
    counters.unparks.fetch_add(1, std::memory_order_relaxed);
    Metrics().unparks.Add();
    bool first_slot = true;
    while (next_worker_ < task_workers_) {
      const std::size_t id = next_worker_++;
      const std::function<void(std::size_t)>* task = task_;
      lock.unlock();
      try {
        (*task)(id);
      } catch (...) {
        std::exception_ptr error = std::current_exception();
        std::lock_guard<std::mutex> error_lock(mutex_);
        if (!first_exception_) first_exception_ = error;
      }
      lock.lock();
      counters.tasks_run.fetch_add(1, std::memory_order_relaxed);
      Metrics().tasks_run.Add();
      if (!first_slot) {
        counters.steals.fetch_add(1, std::memory_order_relaxed);
        Metrics().steals.Add();
      }
      first_slot = false;
      if (++completed_ == pool_slots_) done_cv_.notify_all();
    }
  }
}

void Executor::RunInline(std::size_t workers,
                         const std::function<void(std::size_t)>& fn) {
  for (std::size_t id = 0; id < workers; ++id) fn(id);
}

void Executor::Run(std::size_t workers,
                   const std::function<void(std::size_t)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  if (tls_in_run) {
    // Nested dispatch from inside a slot: the pool is busy running us, so
    // execute sequentially. Correct (same slots, same barrier), not
    // parallel — operators dispatch at the top level.
    RunInline(workers, fn);
    return;
  }
  ScopedInRun in_run;
  // Forward the dispatching thread's query context to every pool slot:
  // a slot records trace events under the query that forked the phase
  // (morsel workers, GPU batch slices, shard probes all dispatch here).
  // Only wrap when a context is installed, so untagged dispatches keep
  // the exact pre-context hot path.
  const obs::QueryContext context = obs::CurrentQueryContext();
  const bool tagged = context.query_id != 0 || context.shard >= 0;
  const std::function<void(std::size_t)> wrapped =
      tagged ? std::function<void(std::size_t)>(
                   [&fn, context](std::size_t id) {
                     obs::ScopedQueryContext scope(context);
                     fn(id);
                   })
             : nullptr;
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  Metrics().dispatches.Add();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = tagged ? &wrapped : &fn;
    task_workers_ = workers;
    next_worker_ = 1;  // Slot 0 belongs to the calling thread.
    completed_ = 0;
    pool_slots_ = workers - 1;
    first_exception_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  std::exception_ptr caller_exception;
  try {
    fn(0);
  } catch (...) {
    caller_exception = std::current_exception();
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return completed_ == pool_slots_; });
    task_ = nullptr;
    task_workers_ = 0;
    error = first_exception_ ? first_exception_ : caller_exception;
    first_exception_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

Status Executor::RunStatus(std::size_t workers,
                           const std::function<Status(std::size_t)>& fn) {
  std::mutex status_mutex;
  Status first_error;
  Run(workers, [&](std::size_t id) {
    Status status = fn(id);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex);
      if (first_error.ok()) first_error = std::move(status);
    }
  });
  return first_error;
}

std::vector<WorkerStats> Executor::Stats() const {
  std::vector<WorkerStats> stats(counters_.size());
  for (std::size_t t = 0; t < counters_.size(); ++t) {
    stats[t].tasks_run = counters_[t].tasks_run.load(std::memory_order_relaxed);
    stats[t].steals = counters_[t].steals.load(std::memory_order_relaxed);
    stats[t].parks = counters_[t].parks.load(std::memory_order_relaxed);
    stats[t].unparks = counters_[t].unparks.load(std::memory_order_relaxed);
  }
  return stats;
}

Executor& Executor::Default() {
  static Executor executor(DefaultWorkerCount());
  return executor;
}

}  // namespace pump::exec
