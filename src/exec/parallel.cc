#include "exec/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace pump::exec {

void ParallelFor(std::size_t workers,
                 const std::function<void(std::size_t)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t id = 1; id < workers; ++id) {
    threads.emplace_back([&fn, id] { fn(id); });
  }
  fn(0);
  for (std::thread& thread : threads) thread.join();
}

std::size_t DefaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace pump::exec
