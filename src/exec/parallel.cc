#include "exec/parallel.h"

#include <algorithm>
#include <thread>

#include "exec/executor.h"

namespace pump::exec {

void ParallelFor(std::size_t workers,
                 const std::function<void(std::size_t)>& fn) {
  Executor::Default().Run(workers, fn);
}

std::size_t DefaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace pump::exec
