#ifndef PUMP_EXEC_MORSEL_H_
#define PUMP_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/happens_before.h"
#include "verify/mutation.h"
#include "verify/sync.h"

namespace pump::exec {

/// A contiguous range of tuple indices [begin, end) handed to a worker.
struct Morsel {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Default morsel size, following the morsel-driven parallelism literature
/// [57]: large enough to amortize dispatch, small enough to balance load.
inline constexpr std::size_t kDefaultMorselTuples = 100'000;

/// Morsels per GPU batch: GPUs receive batches of morsels to amortize the
/// kernel launch latency over more data (Sec. 6.1, Fig. 10).
inline constexpr std::size_t kDefaultGpuBatchMorsels = 16;

/// The central dispatcher of morsel-driven execution: an atomic read
/// cursor over [0, total). Workers of any processor pull work at their own
/// rate, which automatically balances load between heterogeneous
/// processors (Sec. 6.1).
class MorselDispatcher {
 public:
  /// Creates a dispatcher over `total` tuples with the given morsel size.
  MorselDispatcher(std::size_t total, std::size_t morsel_tuples)
      : total_(total),
        morsel_tuples_(morsel_tuples == 0 ? 1 : morsel_tuples) {}

  /// Claims the next morsel; nullopt when the input is exhausted.
  /// Thread-safe and lock-free.
  std::optional<Morsel> Next() { return Claim(morsel_tuples_); }

  /// Claims a batch of `batch_morsels` morsels as one contiguous range
  /// (GPU dispatch, Fig. 10). The tail batch may be smaller.
  std::optional<Morsel> NextBatch(std::size_t batch_morsels) {
    return Claim(morsel_tuples_ * (batch_morsels == 0 ? 1 : batch_morsels));
  }

  /// Total tuples dispatched so far (monotonic, never exceeds `total`:
  /// the claim cursor saturates at drain, so a long-lived dispatcher
  /// polled by spinning workers cannot creep toward overflow).
  std::size_t dispatched() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Total input size.
  std::size_t total() const { return total_; }

  /// Successful claims so far (debug builds only; 0 in release). Used by
  /// the scheduler's exactly-once ledger assertion.
  std::uint64_t hb_claims() const { return hb_claims_.Load(); }

 private:
  std::optional<Morsel> Claim(std::size_t tuples) {
    // Happens-before probe: if any thread observed the dispatcher dry
    // before our claim, the cursor had already saturated at `total_` —
    // a successful claim after a drain observation means the cursor was
    // rewound or replaced.
    [[maybe_unused]] const std::uint64_t drains_before = hb_drains_.Load();
    // Saturating CAS claim: a drained dispatcher never modifies the
    // cursor, so spinning workers polling a dry dispatcher cannot creep
    // it toward overflow, and the cursor is exactly the dispatched count.
    std::size_t begin = cursor_.load(std::memory_order_relaxed);
    while (begin < total_) {
      // Seeded bug (verify builds, armed only): an unsaturated claim
      // hands out tuples past `total_` — the coverage invariant of the
      // dispatcher models catches the overrun.
      const std::size_t end = PUMP_VERIFY_MUTATE("exec.morsel.unsaturated_claim")
                                  ? begin + tuples
                                  : std::min(begin + tuples, total_);
      if (cursor_.compare_exchange_weak(begin, end,
                                        std::memory_order_relaxed)) {
        PUMP_HB_ASSERT(drains_before == 0,
                       "morsel claim succeeded after another worker "
                       "observed the dispatcher dry; the claim cursor "
                       "must be monotone");
        hb_claims_.Bump();
        return Morsel{begin, end};
      }
    }
    hb_drains_.Bump();
    return std::nullopt;
  }

  std::size_t total_;
  std::size_t morsel_tuples_;
  // verify::Atomic = std::atomic in normal builds; under PUMP_VERIFY the
  // model checker explores every interleaving of the claim CAS loop.
  verify::Atomic<std::size_t> cursor_{0};
  hb::EpochCounter hb_claims_;
  hb::EpochCounter hb_drains_;
};

}  // namespace pump::exec

#endif  // PUMP_EXEC_MORSEL_H_
