#ifndef PUMP_EXEC_MORSEL_H_
#define PUMP_EXEC_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <optional>

namespace pump::exec {

/// A contiguous range of tuple indices [begin, end) handed to a worker.
struct Morsel {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Default morsel size, following the morsel-driven parallelism literature
/// [57]: large enough to amortize dispatch, small enough to balance load.
inline constexpr std::size_t kDefaultMorselTuples = 100'000;

/// Morsels per GPU batch: GPUs receive batches of morsels to amortize the
/// kernel launch latency over more data (Sec. 6.1, Fig. 10).
inline constexpr std::size_t kDefaultGpuBatchMorsels = 16;

/// The central dispatcher of morsel-driven execution: an atomic read
/// cursor over [0, total). Workers of any processor pull work at their own
/// rate, which automatically balances load between heterogeneous
/// processors (Sec. 6.1).
class MorselDispatcher {
 public:
  /// Creates a dispatcher over `total` tuples with the given morsel size.
  MorselDispatcher(std::size_t total, std::size_t morsel_tuples)
      : total_(total),
        morsel_tuples_(morsel_tuples == 0 ? 1 : morsel_tuples) {}

  /// Claims the next morsel; nullopt when the input is exhausted.
  /// Thread-safe and lock-free.
  std::optional<Morsel> Next() { return Claim(morsel_tuples_); }

  /// Claims a batch of `batch_morsels` morsels as one contiguous range
  /// (GPU dispatch, Fig. 10). The tail batch may be smaller.
  std::optional<Morsel> NextBatch(std::size_t batch_morsels) {
    return Claim(morsel_tuples_ * (batch_morsels == 0 ? 1 : batch_morsels));
  }

  /// Total tuples dispatched so far (monotonic; may exceed `total` by at
  /// most one morsel's worth of rounding).
  std::size_t dispatched() const {
    return std::min(cursor_.load(std::memory_order_relaxed), total_);
  }

  /// Total input size.
  std::size_t total() const { return total_; }

 private:
  std::optional<Morsel> Claim(std::size_t tuples) {
    const std::size_t begin =
        cursor_.fetch_add(tuples, std::memory_order_relaxed);
    if (begin >= total_) return std::nullopt;
    return Morsel{begin, std::min(begin + tuples, total_)};
  }

  std::size_t total_;
  std::size_t morsel_tuples_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace pump::exec

#endif  // PUMP_EXEC_MORSEL_H_
