#ifndef PUMP_EXEC_WORK_STEALING_H_
#define PUMP_EXEC_WORK_STEALING_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/happens_before.h"
#include "exec/morsel.h"
#include "obs/metrics.h"
#include "verify/mutation.h"
#include "verify/sync.h"

namespace pump::exec {

namespace ws_internal {

/// Registry mirrors of the dispatcher's ledger counters, aggregated over
/// every dispatcher instance (dispatchers are per-query and short-lived,
/// so the process-wide registry is the only durable view).
struct WsMetrics {
  obs::Counter& chunk_claims;
  obs::Counter& steals;
  obs::Counter& drains;
};

inline WsMetrics& Metrics() {
  static WsMetrics metrics{
      obs::MetricsRegistry::Instance().GetCounter("exec.ws.chunk_claims"),
      obs::MetricsRegistry::Instance().GetCounter("exec.ws.steals"),
      obs::MetricsRegistry::Instance().GetCounter("exec.ws.drains")};
  return metrics;
}

}  // namespace ws_internal

/// Chunk factor of the hierarchical dispatcher: each worker claims
/// `kDefaultChunkMorsels` morsels' worth of tuples from the global cursor
/// in one shot and sub-slices them locally, cutting the shared-cursor
/// claim rate by the same factor.
inline constexpr std::size_t kDefaultChunkMorsels = 8;

/// Hierarchical morsel claiming with work-stealing (the executor-runtime
/// refinement of the flat MorselDispatcher): the input is cut into
/// immutable chunks of `chunk_morsels * morsel_tuples` tuples; a global
/// cursor hands out chunk *indices*; each worker slices its current chunk
/// into morsels through a private per-chunk cursor. Workers touch the
/// shared cursor once per chunk instead of once per morsel, and when the
/// global cursor runs dry they steal remaining morsels from other
/// workers' unfinished chunks, so the tail stays balanced.
///
/// Exactly-once coverage holds by construction: chunk ranges are disjoint
/// and immutable (derived from the chunk index, never stored), and every
/// per-chunk cursor is a saturating CAS claim — the same ledger discipline
/// as MorselDispatcher, whose `hb_claims`/`hb_drains` epochs this class
/// mirrors at morsel granularity. Note one deliberate relaxation: unlike
/// the flat dispatcher, a worker that observed a full drain may later
/// succeed again — a peer can install a chunk it claimed *before* the
/// global drain and have it stolen afterwards. That is work conservation,
/// not a rewind; no morsel is ever handed out twice.
class WorkStealingDispatcher {
 public:
  static constexpr std::size_t kNoChunk =
      std::numeric_limits<std::size_t>::max();

  /// Creates a dispatcher over `total` tuples for `workers` workers.
  WorkStealingDispatcher(std::size_t total, std::size_t morsel_tuples,
                         std::size_t workers,
                         std::size_t chunk_morsels = kDefaultChunkMorsels)
      : total_(total),
        morsel_tuples_(morsel_tuples == 0 ? 1 : morsel_tuples),
        chunk_tuples_(morsel_tuples_ *
                      (chunk_morsels == 0 ? 1 : chunk_morsels)),
        num_chunks_((total + chunk_tuples_ - 1) / chunk_tuples_),
        chunk_ids_(num_chunks_, 1),
        cursors_(num_chunks_),
        local_(std::max<std::size_t>(1, workers)) {
    for (std::size_t c = 0; c < num_chunks_; ++c) {
      cursors_[c].cursor.store(ChunkBegin(c), std::memory_order_relaxed);
    }
  }

  /// Claims the next morsel for `worker` (an id in [0, workers)); nullopt
  /// when the whole input is exhausted. Thread-safe; each worker id must
  /// be used by one thread at a time.
  std::optional<Morsel> Next(std::size_t worker) {
    if (num_chunks_ == 0) return std::nullopt;
    LocalState& me = local_[worker % local_.size()];
    // Fast path: slice the current chunk; refill from the global cursor.
    while (true) {
      const std::size_t chunk = me.chunk.load(std::memory_order_acquire);
      if (chunk != kNoChunk) {
        if (auto morsel = ClaimFrom(chunk)) return morsel;
        // Chunk drained: drop it so thieves stop scanning it.
        std::size_t expected = chunk;
        me.chunk.compare_exchange_strong(expected, kNoChunk,
                                         std::memory_order_acq_rel);
        continue;
      }
      if (auto id = chunk_ids_.Next()) {
        ws_internal::Metrics().chunk_claims.Add();
        me.chunk.store(id->begin, std::memory_order_release);
        continue;
      }
      break;  // Global cursor dry: steal.
    }
    // Drain phase: scan the other workers' unfinished chunks.
    for (std::size_t i = 1; i < local_.size(); ++i) {
      const std::size_t victim = (worker + i) % local_.size();
      const std::size_t chunk =
          local_[victim].chunk.load(std::memory_order_acquire);
      if (chunk == kNoChunk) continue;
      if (auto morsel = ClaimFrom(chunk)) {
        me.steals.fetch_add(1, std::memory_order_relaxed);
        ws_internal::Metrics().steals.Add();
        return morsel;
      }
    }
    hb_drains_.Bump();
    ws_internal::Metrics().drains.Add();
    return std::nullopt;
  }

  /// Total input size.
  std::size_t total() const { return total_; }
  /// Workers the dispatcher was sized for.
  std::size_t workers() const { return local_.size(); }

  /// Morsels `worker` stole from other workers' chunks.
  std::uint64_t steals(std::size_t worker) const {
    return local_[worker % local_.size()].steals.load(
        std::memory_order_relaxed);
  }
  /// Stolen morsels across all workers.
  std::uint64_t total_steals() const {
    std::uint64_t sum = 0;
    for (const LocalState& state : local_) {
      sum += state.steals.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Successful morsel claims (debug builds only; 0 in release) — the
  /// exactly-once ledger at morsel granularity.
  std::uint64_t hb_claims() const { return hb_claims_.Load(); }
  /// Full-drain observations (debug builds only; 0 in release).
  std::uint64_t hb_drains() const { return hb_drains_.Load(); }
  /// Chunk claims against the global cursor (debug builds only).
  std::uint64_t hb_chunk_claims() const { return chunk_ids_.hb_claims(); }

 private:
  struct alignas(64) ChunkCursor {
    verify::Atomic<std::size_t> cursor{0};
  };
  struct alignas(64) LocalState {
    verify::Atomic<std::size_t> chunk{kNoChunk};
    verify::Atomic<std::uint64_t> steals{0};
  };

  std::size_t ChunkBegin(std::size_t chunk) const {
    return chunk * chunk_tuples_;
  }
  std::size_t ChunkEnd(std::size_t chunk) const {
    return std::min(ChunkBegin(chunk) + chunk_tuples_, total_);
  }

  /// Saturating CAS claim of one morsel from `chunk`'s private cursor;
  /// identical discipline to MorselDispatcher::Claim.
  ///
  /// Memory-order audit (model-checked by the exec.ws verifier model):
  /// the initial read is `acquire` so a thief that found this chunk via
  /// the victim's `chunk` slot starts from a cursor value no older than
  /// the slot publication — a plain relaxed read could otherwise start
  /// the CAS loop from a stale pre-publication 0 on weakly-ordered
  /// hardware. The CAS itself may stay `relaxed`: claim correctness
  /// needs only RMW atomicity (each cursor value is won by exactly one
  /// thread), and the morsel *bounds* derive from the chunk index alone
  /// (immutable arithmetic on `chunk_tuples_`/`total_`), so no claimed
  /// range ever depends on data ordered by the cursor write.
  std::optional<Morsel> ClaimFrom(std::size_t chunk) {
    verify::Atomic<std::size_t>& cursor = cursors_[chunk].cursor;
    // Seeded bug (verify builds, armed only): the tail chunk's end is
    // not clamped to `total_`, so its claims overrun the input — the
    // dispatcher models' coverage invariant catches it.
    const std::size_t end = PUMP_VERIFY_MUTATE("exec.ws.tail_overrun")
                                ? ChunkBegin(chunk) + chunk_tuples_
                                : ChunkEnd(chunk);
    std::size_t begin = cursor.load(std::memory_order_acquire);
    while (begin < end) {
      const std::size_t next = std::min(begin + morsel_tuples_, end);
      if (cursor.compare_exchange_weak(begin, next,
                                       std::memory_order_relaxed)) {
        PUMP_HB_ASSERT(begin >= ChunkBegin(chunk) && next <= end,
                       "hierarchical morsel claim escaped its chunk's "
                       "immutable range");
        hb_claims_.Bump();
        return Morsel{begin, next};
      }
    }
    return std::nullopt;
  }

  std::size_t total_;
  std::size_t morsel_tuples_;
  std::size_t chunk_tuples_;
  std::size_t num_chunks_;
  MorselDispatcher chunk_ids_;  // Global cursor over chunk indices.
  std::vector<ChunkCursor> cursors_;
  std::vector<LocalState> local_;
  hb::EpochCounter hb_claims_;
  hb::EpochCounter hb_drains_;
};

}  // namespace pump::exec

#endif  // PUMP_EXEC_WORK_STEALING_H_
