#include "exec/het_scheduler.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <thread>

namespace pump::exec {

namespace {

/// Morsel batches whose claiming group died before processing them. The
/// surviving groups drain this queue after (and interleaved with) the main
/// dispatcher, so a mid-run group failure never loses tuples.
class OrphanQueue {
 public:
  void Push(const Morsel& morsel) {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans_.push_back(morsel);
  }

  std::optional<Morsel> Pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (orphans_.empty()) return std::nullopt;
    Morsel morsel = orphans_.back();
    orphans_.pop_back();
    return morsel;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return orphans_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Morsel> orphans_;
};

}  // namespace

std::vector<GroupStats> RunHeterogeneous(std::size_t total,
                                         std::size_t morsel_tuples,
                                         std::vector<ProcessorGroup> groups,
                                         fault::FaultInjector* injector) {
  MorselDispatcher dispatcher(total, morsel_tuples);

  std::vector<GroupStats> stats(groups.size());
  std::vector<std::atomic<std::size_t>> tuples(groups.size());
  std::vector<std::atomic<std::size_t>> dispatches(groups.size());
  std::vector<std::atomic<std::size_t>> failover_tuples(groups.size());
  std::vector<std::atomic<std::size_t>> failover_dispatches(groups.size());
  std::vector<std::atomic<bool>> failed(groups.size());
  for (auto& flag : failed) flag.store(false);

  OrphanQueue orphans;
  // Workers currently holding a claimed batch. A worker may only exit when
  // the dispatcher is dry, no orphans are queued, AND nothing is in
  // flight — an in-flight batch can still be orphaned by a dying group.
  std::atomic<std::size_t> in_flight{0};

  std::vector<std::thread> threads;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    stats[g].name = groups[g].name;
    for (std::size_t w = 0; w < groups[g].workers; ++w) {
      threads.emplace_back([&, g] {
        const ProcessorGroup& group = groups[g];
        while (!failed[g].load(std::memory_order_acquire)) {
          in_flight.fetch_add(1, std::memory_order_acq_rel);
          bool from_orphan = false;
          std::optional<Morsel> batch =
              dispatcher.NextBatch(group.batch_morsels);
          if (!batch) {
            batch = orphans.Pop();
            from_orphan = batch.has_value();
          }
          if (!batch) {
            // Nothing claimable right now. Safe to exit only once no other
            // worker holds a batch (it could die and orphan it) and the
            // orphan queue stayed empty after that observation.
            const std::size_t others =
                in_flight.fetch_sub(1, std::memory_order_acq_rel) - 1;
            if (others == 0 && orphans.Empty()) break;
            std::this_thread::yield();
            continue;
          }
          if (injector != nullptr &&
              !injector->Check(fault::kSchedWorkerStall, group.name).ok()) {
            // The group stalls/dies: orphan the claimed batch for the
            // survivors, then stop the whole group. Push before releasing
            // in_flight so waiting workers re-observe the queue.
            failed[g].store(true, std::memory_order_release);
            orphans.Push(*batch);
            in_flight.fetch_sub(1, std::memory_order_acq_rel);
            break;
          }
          group.process(batch->begin, batch->end);
          tuples[g].fetch_add(batch->size(), std::memory_order_relaxed);
          dispatches[g].fetch_add(1, std::memory_order_relaxed);
          if (from_orphan) {
            failover_tuples[g].fetch_add(batch->size(),
                                         std::memory_order_relaxed);
            failover_dispatches[g].fetch_add(1, std::memory_order_relaxed);
          }
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
      });
    }
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t g = 0; g < groups.size(); ++g) {
    stats[g].tuples = tuples[g].load();
    stats[g].dispatches = dispatches[g].load();
    stats[g].failed = failed[g].load();
    stats[g].failover_tuples = failover_tuples[g].load();
    stats[g].failover_dispatches = failover_dispatches[g].load();
  }
  return stats;
}

}  // namespace pump::exec
