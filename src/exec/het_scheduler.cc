#include "exec/het_scheduler.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/happens_before.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pump::exec {

namespace {

struct HetMetrics {
  obs::Counter& batches;
  obs::Counter& orphaned_batches;
  obs::Counter& failover_batches;
  obs::Counter& group_stalls;
};

HetMetrics& Metrics() {
  static HetMetrics metrics{
      obs::MetricsRegistry::Instance().GetCounter("exec.het.batches"),
      obs::MetricsRegistry::Instance().GetCounter(
          "exec.het.orphaned_batches"),
      obs::MetricsRegistry::Instance().GetCounter(
          "exec.het.failover_batches"),
      obs::MetricsRegistry::Instance().GetCounter("exec.het.group_stalls")};
  return metrics;
}

/// Morsel batches whose claiming group died before processing them. The
/// surviving groups drain this queue after (and interleaved with) the main
/// dispatcher, so a mid-run group failure never loses tuples.
class OrphanQueue {
 public:
  void Push(const Morsel& morsel) {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans_.push_back(morsel);
    hb_pushes_.Bump();
  }

  std::optional<Morsel> Pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (orphans_.empty()) return std::nullopt;
    Morsel morsel = orphans_.back();
    orphans_.pop_back();
    hb_pops_.Bump();
    return morsel;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return orphans_.empty();
  }

  /// Orphaned / adopted batch epochs (debug builds only; 0 in release).
  std::uint64_t hb_pushes() const { return hb_pushes_.Load(); }
  std::uint64_t hb_pops() const { return hb_pops_.Load(); }

 private:
  mutable std::mutex mutex_;
  std::vector<Morsel> orphans_;
  hb::EpochCounter hb_pushes_;
  hb::EpochCounter hb_pops_;
};

}  // namespace

std::vector<GroupStats> RunHeterogeneous(std::size_t total,
                                         std::size_t morsel_tuples,
                                         std::vector<ProcessorGroup> groups,
                                         fault::FaultInjector* injector,
                                         const CancelToken* cancel) {
  MorselDispatcher dispatcher(total, morsel_tuples);

  std::vector<GroupStats> stats(groups.size());
  std::vector<std::atomic<std::size_t>> tuples(groups.size());
  std::vector<std::atomic<std::size_t>> dispatches(groups.size());
  std::vector<std::atomic<std::size_t>> failover_tuples(groups.size());
  std::vector<std::atomic<std::size_t>> failover_dispatches(groups.size());
  std::vector<std::atomic<bool>> failed(groups.size());
  for (auto& flag : failed) flag.store(false);

  OrphanQueue orphans;
  // Workers currently holding a claimed batch. A worker may only exit when
  // the dispatcher is dry, no orphans are queued, AND nothing is in
  // flight — an in-flight batch can still be orphaned by a dying group.
  std::atomic<std::size_t> in_flight{0};

  // Flatten the groups' workers into executor slots: slot -> group. The
  // persistent pool replaces the former per-call std::thread spawning; the
  // fork-join barrier of Run is the same join-all the threads provided.
  std::vector<std::size_t> slot_group;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    stats[g].name = groups[g].name;
    for (std::size_t w = 0; w < groups[g].workers; ++w) {
      slot_group.push_back(g);
    }
  }
  if (!slot_group.empty()) {
    Executor::Default().Run(slot_group.size(), [&](std::size_t slot) {
      const std::size_t g = slot_group[slot];
      const ProcessorGroup& group = groups[g];
      // The cancel poll sits before the claim, so a cancelled query's
      // worker exits holding nothing: at most the one batch it was
      // already processing finishes after the token fires.
      while (!failed[g].load(std::memory_order_acquire) &&
             !(cancel != nullptr && cancel->Cancelled())) {
        in_flight.fetch_add(1, std::memory_order_acq_rel);
        bool from_orphan = false;
        std::optional<Morsel> batch =
            dispatcher.NextBatch(group.batch_morsels);
        if (!batch) {
          batch = orphans.Pop();
          from_orphan = batch.has_value();
        }
        if (!batch) {
          // Nothing claimable right now. Safe to exit only once no other
          // worker holds a batch (it could die and orphan it) and the
          // orphan queue stayed empty after that observation.
          const std::size_t others =
              in_flight.fetch_sub(1, std::memory_order_acq_rel) - 1;
          if (others == 0 && orphans.Empty()) {
            // Happens-before: every orphan Push precedes its worker's
            // in_flight release, so with no batch in flight and the
            // queue empty, every orphaned batch has been adopted.
            PUMP_HB_ASSERT(orphans.hb_pushes() == orphans.hb_pops(),
                           "worker exiting while an orphaned batch is "
                           "still unadopted; Push must happen before "
                           "the dying worker releases in_flight");
            break;
          }
          std::this_thread::yield();
          continue;
        }
        if (injector != nullptr &&
            !injector->Check(fault::kSchedWorkerStall, group.name).ok()) {
          // The group stalls/dies: orphan the claimed batch for the
          // survivors, then stop the whole group. Push before releasing
          // in_flight so waiting workers re-observe the queue.
          failed[g].store(true, std::memory_order_release);
          Metrics().group_stalls.Add();
          Metrics().orphaned_batches.Add();
          PUMP_TRACE_INSTANT(obs::TraceCategory::kExec, "het.group_stall",
                             static_cast<double>(g),
                             static_cast<double>(batch->size()));
          // Happens-before: this worker's claim still holds its
          // in_flight slot; orphaning after the release would let every
          // peer exit and strand the batch.
          PUMP_HB_ASSERT(in_flight.load(std::memory_order_acquire) >= 1,
                         "dying worker orphaned its batch after "
                         "releasing its in-flight slot");
          orphans.Push(*batch);
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
          break;
        }
        {
          PUMP_TRACE_SPAN(obs::TraceCategory::kExec, "het.batch",
                          static_cast<double>(g),
                          static_cast<double>(batch->size()));
          group.process(batch->begin, batch->end);
        }
        Metrics().batches.Add();
        tuples[g].fetch_add(batch->size(), std::memory_order_relaxed);
        dispatches[g].fetch_add(1, std::memory_order_relaxed);
        if (from_orphan) {
          Metrics().failover_batches.Add();
          failover_tuples[g].fetch_add(batch->size(),
                                       std::memory_order_relaxed);
          failover_dispatches[g].fetch_add(1, std::memory_order_relaxed);
        }
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }

  // Exactly-once ledger (debug builds): every batch claimed from the
  // dispatcher or adopted from the orphan queue was either processed or
  // re-orphaned, so processed = claims + adoptions - orphanings.
  PUMP_HB_ASSERT(orphans.hb_pops() <= orphans.hb_pushes(),
                 "more orphan batches adopted than were ever orphaned");
#if PUMP_HB_ASSERTIONS
  std::uint64_t processed_batches = 0;
  for (const auto& count : dispatches) processed_batches += count.load();
  PUMP_HB_ASSERT(processed_batches ==
                     dispatcher.hb_claims() + orphans.hb_pops() -
                         orphans.hb_pushes(),
                 "processed batch count does not balance the "
                 "claim/orphan/adopt ledger; a batch was lost or "
                 "double-processed across the failover path");
#endif

  for (std::size_t g = 0; g < groups.size(); ++g) {
    stats[g].tuples = tuples[g].load();
    stats[g].dispatches = dispatches[g].load();
    stats[g].failed = failed[g].load();
    stats[g].failover_tuples = failover_tuples[g].load();
    stats[g].failover_dispatches = failover_dispatches[g].load();
  }
  return stats;
}

}  // namespace pump::exec
