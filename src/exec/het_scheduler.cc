#include "exec/het_scheduler.h"

#include <atomic>
#include <thread>

namespace pump::exec {

std::vector<GroupStats> RunHeterogeneous(
    std::size_t total, std::size_t morsel_tuples,
    std::vector<ProcessorGroup> groups) {
  MorselDispatcher dispatcher(total, morsel_tuples);

  std::vector<GroupStats> stats(groups.size());
  std::vector<std::atomic<std::size_t>> tuples(groups.size());
  std::vector<std::atomic<std::size_t>> dispatches(groups.size());

  std::vector<std::thread> threads;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    stats[g].name = groups[g].name;
    for (std::size_t w = 0; w < groups[g].workers; ++w) {
      threads.emplace_back([&dispatcher, &groups, &tuples, &dispatches, g] {
        const ProcessorGroup& group = groups[g];
        while (auto batch = dispatcher.NextBatch(group.batch_morsels)) {
          group.process(batch->begin, batch->end);
          tuples[g].fetch_add(batch->size(), std::memory_order_relaxed);
          dispatches[g].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t g = 0; g < groups.size(); ++g) {
    stats[g].tuples = tuples[g].load();
    stats[g].dispatches = dispatches[g].load();
  }
  return stats;
}

}  // namespace pump::exec
