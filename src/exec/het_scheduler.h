#ifndef PUMP_EXEC_HET_SCHEDULER_H_
#define PUMP_EXEC_HET_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "fault/fault_injector.h"

namespace pump::exec {

/// One heterogeneous processor in the scheduling scheme of Sec. 6.1 /
/// Fig. 10: CPU cores pull one morsel at a time; a GPU pulls batches of
/// morsels to amortize its dispatch latency.
struct ProcessorGroup {
  std::string name;
  /// Worker threads this group contributes (CPU cores; 1 for a GPU proxy).
  std::size_t workers = 1;
  /// Morsels claimed per dispatch (1 for CPUs, >1 for GPUs).
  std::size_t batch_morsels = 1;
  /// The work function: processes tuple range [begin, end) and is called
  /// once per claimed batch, from this group's worker threads.
  std::function<void(std::size_t begin, std::size_t end)> process;
};

/// Per-group accounting returned by RunHeterogeneous.
struct GroupStats {
  std::string name;
  std::size_t tuples = 0;
  std::size_t dispatches = 0;
  /// True when the group stalled/died mid-run (`sched.worker_stall`
  /// failpoint fired for it) and stopped claiming work.
  bool failed = false;
  /// Tuples this group adopted from batches orphaned by failed groups.
  std::size_t failover_tuples = 0;
  /// Dispatches of adopted orphan batches.
  std::size_t failover_dispatches = 0;
};

/// Runs `total` tuples through a shared morsel dispatcher across all
/// processor groups concurrently. Every group advances at its own rate,
/// which is exactly the skew-avoidance property the paper's heterogeneous
/// scheduler targets (requirement (b) of Sec. 6). Returns per-group
/// work counts (their sum covers every tuple exactly once).
///
/// When `injector` is non-null, each group probes the
/// `sched.worker_stall` failpoint (scoped by group name, so schedules are
/// deterministic per group regardless of thread interleaving) before
/// processing each claimed batch. A fired failpoint kills the group: the
/// claimed-but-unprocessed batch is orphaned and redistributed to the
/// surviving groups, preserving exactly-once coverage. Only if *every*
/// group dies do tuples go unprocessed — detectable by the caller as
/// sum(tuples) < total.
///
/// When `cancel` is non-null, every worker polls it before claiming its
/// next batch: a cancelled run stops claiming within one batch per
/// worker and returns with sum(tuples) < total (the caller distinguishes
/// cancellation from group death by checking the token). Exactly-once
/// accounting still holds for every batch that *was* claimed.
std::vector<GroupStats> RunHeterogeneous(
    std::size_t total, std::size_t morsel_tuples,
    std::vector<ProcessorGroup> groups,
    fault::FaultInjector* injector = nullptr,
    const CancelToken* cancel = nullptr);

}  // namespace pump::exec

#endif  // PUMP_EXEC_HET_SCHEDULER_H_
