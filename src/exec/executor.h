#ifndef PUMP_EXEC_EXECUTOR_H_
#define PUMP_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pump::exec {

/// Per-pool-thread counters, exposed for the micro benches: how many
/// logical worker slots a thread executed, how many of those were claimed
/// beyond its first slot of a dispatch (slot steals — the thread soaked up
/// work another thread never started), and how often it parked on /
/// unparked from the dispatch condition variable.
struct WorkerStats {
  std::uint64_t tasks_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
};

/// A persistent fork-join thread pool: the execution runtime beneath every
/// morsel-parallel operator. Workers are spawned once and parked on a
/// condition variable between phases, so a build/probe phase pays a
/// wake-up instead of a thread spawn — the cheap-dispatch assumption of
/// morsel-driven scheduling (Sec. 6.1) that spawn-per-phase fork-join
/// violates by an order of magnitude (bench/micro_parallel.cc).
///
/// Run(workers, fn) is a drop-in replacement for the old spawn-per-call
/// ParallelFor: fn(0) runs on the calling thread, fn(1..workers-1) on pool
/// threads, and Run returns only when every slot finished (the join is the
/// build/probe barrier the hash tables require). When `workers - 1`
/// exceeds the pool size, pool threads execute multiple slots; slots never
/// run twice. Nested Run calls (from inside a slot) degrade to inline
/// sequential execution, and concurrent Run calls from distinct external
/// threads are serialized — the pool is one process-wide resource.
class Executor {
 public:
  /// Spawns `threads` parked worker threads (at least 1).
  explicit Executor(std::size_t threads);
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  /// Unparks and joins every worker.
  ~Executor();

  /// Runs `fn(worker_id)` for every id in [0, workers); id 0 on the
  /// calling thread. Blocks until all slots completed. An exception thrown
  /// by any slot is rethrown here (first one wins; the remaining slots
  /// still run to completion so the barrier stays intact).
  void Run(std::size_t workers, const std::function<void(std::size_t)>& fn);

  /// Run variant for Status-returning slot bodies: returns the first
  /// non-OK Status (every slot still runs; morsel loops should check a
  /// shared failed flag to cut work short, as BuildPhase does).
  Status RunStatus(std::size_t workers,
                   const std::function<Status(std::size_t)>& fn);

  /// Number of pool threads.
  std::size_t thread_count() const { return threads_.size(); }

  /// Snapshot of the per-thread counters.
  std::vector<WorkerStats> Stats() const;

  /// Fork-join dispatches issued so far (Run calls that engaged the pool).
  std::uint64_t dispatches() const {
    return dispatches_.load(std::memory_order_relaxed);
  }

  /// The process-wide executor used by ParallelFor and every operator;
  /// sized to DefaultWorkerCount(), created on first use.
  static Executor& Default();

 private:
  struct alignas(64) ThreadCounters {
    std::atomic<std::uint64_t> tasks_run{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> unparks{0};
  };

  void WorkerLoop(std::size_t thread_index);
  /// Runs fn(0..workers-1) sequentially on the calling thread (nested /
  /// degenerate dispatch).
  static void RunInline(std::size_t workers,
                        const std::function<void(std::size_t)>& fn);

  // Dispatch state, all guarded by mutex_. Claiming a slot takes the
  // mutex: dispatches hand out at most `workers` coarse slots, so the
  // claim rate is tiny next to the per-morsel work inside a slot (the
  // fine-grained claiming lives in MorselDispatcher/WorkStealingDispatcher).
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t task_workers_ = 0;
  std::size_t next_worker_ = 0;
  std::size_t completed_ = 0;
  std::size_t pool_slots_ = 0;
  std::exception_ptr first_exception_;
  bool shutdown_ = false;

  /// Serializes external Run calls; never taken by pool threads.
  std::mutex run_mutex_;
  std::atomic<std::uint64_t> dispatches_{0};

  std::vector<ThreadCounters> counters_;
  std::vector<std::thread> threads_;
};

}  // namespace pump::exec

#endif  // PUMP_EXEC_EXECUTOR_H_
