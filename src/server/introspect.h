#ifndef PUMP_SERVER_INTROSPECT_H_
#define PUMP_SERVER_INTROSPECT_H_

#include <string>

#include "engine/executor.h"
#include "server/query_engine.h"

namespace pump::server {

/// Renders an EngineSnapshot as a single JSON object — the machine-
/// readable face of `pumpstat` and the soak harness's assertion surface.
std::string ToJson(const EngineSnapshot& snapshot);

/// Renders an EngineSnapshot in the Prometheus text exposition format
/// (one `pump_*` family per gauge/counter, labels for per-device and
/// per-route breakdowns) — `pumpstat --prom`.
std::string ToPrometheus(const EngineSnapshot& snapshot);

/// Serializes an ExecReport (summary + per-pipeline + per-shard outcome
/// rows) as a JSON object. The serving layer composes this into flight-
/// recorder incidents: obs sits below the engine types, so the artifact
/// carries the report pre-serialized.
std::string ReportJson(const engine::ExecReport& report);

}  // namespace pump::server

#endif  // PUMP_SERVER_INTROSPECT_H_
