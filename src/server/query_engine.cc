#include "server/query_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/query_context.h"
#include "obs/trace.h"
#include "plan/dump.h"
#include "plan/executor.h"
#include "server/introspect.h"
#include "verify/mutation.h"

namespace pump::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

struct ServerMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& shed;
  obs::Counter& cancelled;
  obs::Counter& deadline_exceeded;
  obs::Counter& degraded_to_cpu;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Histogram& queue_depth;
  obs::Histogram& queue_wait_us;
  obs::Histogram& query_latency_us;
};

ServerMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Instance();
  static ServerMetrics metrics{
      registry.GetCounter("server.submitted"),
      registry.GetCounter("server.admitted"),
      registry.GetCounter("server.shed"),
      registry.GetCounter("server.cancelled"),
      registry.GetCounter("server.deadline_exceeded"),
      registry.GetCounter("server.degraded_to_cpu"),
      registry.GetCounter("server.completed"),
      registry.GetCounter("server.failed"),
      registry.GetHistogram("server.queue_depth"),
      registry.GetHistogram("server.queue_wait_us"),
      registry.GetHistogram("server.query_latency_us")};
  return metrics;
}

}  // namespace

QueryState QueryHandle::state() const {
  std::lock_guard<verify::Mutex> lock(mutex_);
  return state_;
}

const Result<engine::ExecReport>& QueryHandle::Wait() {
  std::unique_lock<verify::Mutex> lock(mutex_);
  cv_.wait(lock, [this] { return state_ == QueryState::kDone; });
  return result_;
}

void QueryHandle::MarkRunning() {
  std::lock_guard<verify::Mutex> lock(mutex_);
  state_ = QueryState::kRunning;
}

void QueryHandle::Resolve(Result<engine::ExecReport> result) {
  if (PUMP_VERIFY_MUTATE("server.handle.notify_before_done")) {
    // Seeded bug: broadcast before the terminal state is visible. A
    // client that decided to wait but has not blocked yet misses the
    // only notify — lost wakeup, reported by the checker as a deadlock.
    cv_.notify_all();
    std::lock_guard<verify::Mutex> lock(mutex_);
    result_ = std::move(result);
    state_ = QueryState::kDone;
    return;
  }
  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    result_ = std::move(result);
    state_ = QueryState::kDone;
  }
  cv_.notify_all();
}

/// One admitted query: the engine owns a copy of the query struct (so
/// the plan's internal pointer stays valid whatever the caller does with
/// its copy) plus the plan compiled against it under admission-time
/// GPU pressure.
struct QueryEngine::Task {
  std::shared_ptr<QueryHandle> handle;
  engine::Query query;
  plan::PhysicalPlan plan;
  SubmitOptions options;
  std::uint64_t footprint_bytes = 0;
  /// The footprint split per device — the exact bytes each per-device
  /// pool was charged at admission and must release on resolution.
  std::map<hw::DeviceId, std::uint64_t> footprint_per_device;
  Clock::time_point submitted_at;
};

QueryEngine::QueryEngine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity_bytes),
      flight_recorder_(options_.incident_capacity,
                       options_.incident_trace_tail),
      latency_window_(static_cast<std::uint64_t>(
          std::max(1e-3, options_.window_s) * 1e9)) {
  verify::NamedMutex(&mutex_, "server.engine.mutex");
  const std::size_t threads =
      std::max<std::size_t>(1, options_.session_threads);
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { SchedulerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  // Under PUMP_VERIFY an aborted model run may deliver RunAborted at any
  // of Shutdown's sequence points (lock, notify, join); a destructor
  // must not leak it (noexcept → std::terminate). After the swallow the
  // raw-mode shims make the remaining member teardown safe, and in
  // normal builds Shutdown does not throw at all.
  try {
    Shutdown();
  } catch (...) {
  }
}

Result<std::shared_ptr<QueryHandle>> QueryEngine::Submit(
    const engine::Query& query, const SubmitOptions& options) {
  Metrics().submitted.Add();
  auto task = std::make_unique<Task>();
  task->query = query;
  task->options = options;
  task->submitted_at = Clock::now();

  std::shared_ptr<QueryHandle> handle;
  {
    std::unique_lock<verify::Mutex> lock(mutex_);
    ++stats_.submitted;
    if (shutdown_) {
      return Status::Unavailable("query engine is shutting down");
    }
    if (options_.injector != nullptr) {
      Status admission =
          options_.injector->Check(fault::kServerAdmission, options.tag);
      if (!admission.ok()) {
        ++stats_.shed;
        Metrics().shed.Add();
        return admission;
      }
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.shed;
      Metrics().shed.Add();
      PUMP_TRACE_INSTANT(obs::TraceCategory::kPlan, "server.shed",
                         static_cast<double>(queue_.size()));
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.queue_capacity) + " queued); query shed");
    }

    // Compile under the admission lock so the in-flight GPU pressure the
    // plan sees is exactly the pressure its own footprint will join.
    plan::CompileOptions compile_options;
    compile_options.policy = options_.policy;
    compile_options.gpu_budget_bytes = options_.gpu_budget_bytes;
    compile_options.gpu_budget_in_use_bytes = gpu_inflight_bytes_;
    compile_options.profile = options_.profile;
    compile_options.shard_devices = options_.shard_devices;
    compile_options.device_budget_in_use = &device_inflight_bytes_;
    Result<plan::PhysicalPlan> compiled =
        plan::Compile(task->query, compile_options);
    if (!compiled.ok()) {
      ++stats_.compile_rejected;
      return compiled.status();
    }
    task->plan = std::move(compiled).value();
    if (task->plan.forced_cpu_by_pressure) {
      ++stats_.degraded_to_cpu;
      Metrics().degraded_to_cpu.Add();
      PUMP_TRACE_INSTANT(obs::TraceCategory::kPlan, "server.degrade",
                         static_cast<double>(gpu_inflight_bytes_));
    }
    task->footprint_bytes = plan::EstimatedGpuFootprintBytes(task->plan);
    task->footprint_per_device =
        plan::EstimatedGpuFootprintPerDevice(task->plan);
    gpu_inflight_bytes_ += task->footprint_bytes;
    for (const auto& [device, bytes] : task->footprint_per_device) {
      device_inflight_bytes_[device] += bytes;
    }

    handle = std::shared_ptr<QueryHandle>(new QueryHandle(next_id_++));
    if (options.deadline_s > 0.0) {
      handle->token_.SetDeadlineAfter(options.deadline_s);
    }
    task->handle = handle;
    active_.emplace(handle->id(),
                    ActiveQuery{QueryState::kQueued, options.tag,
                                task->submitted_at});
    ++stats_.admitted;
    Metrics().admitted.Add();
    queue_.push_back(std::move(task));
    hb_admitted_.Bump();
    Metrics().queue_depth.Record(queue_.size());
  }
  queue_cv_.notify_one();
  return handle;
}

void QueryEngine::Pause() {
  std::lock_guard<verify::Mutex> lock(mutex_);
  paused_ = true;
}

void QueryEngine::Resume() {
  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void QueryEngine::Shutdown() {
  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    shutdown_ = true;
    // Draining beats pausing: a paused engine that shuts down must still
    // resolve every queued handle.
    paused_ = false;
  }
  queue_cv_.notify_all();
  for (verify::Thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<verify::Mutex> lock(mutex_);
  EngineStats snapshot = stats_;
  snapshot.queue_depth = queue_.size();
  snapshot.gpu_inflight_bytes = gpu_inflight_bytes_;
  snapshot.device_inflight_bytes = device_inflight_bytes_;
  return snapshot;
}

EngineSnapshot QueryEngine::Snapshot() const {
  EngineSnapshot snapshot;
  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    snapshot.stats = stats_;
    snapshot.stats.queue_depth = queue_.size();
    snapshot.stats.gpu_inflight_bytes = gpu_inflight_bytes_;
    snapshot.stats.device_inflight_bytes = device_inflight_bytes_;
    const Clock::time_point now = Clock::now();
    snapshot.queries.reserve(active_.size());
    for (const auto& [id, active] : active_) {
      QueryRow row;
      row.id = id;
      row.state = active.state;
      row.tag = active.tag;
      row.age_s =
          std::chrono::duration<double>(now - active.submitted_at).count();
      snapshot.queries.push_back(std::move(row));
    }
  }
  snapshot.cache = cache_.stats();
  snapshot.cache_contents = cache_.Contents();
  const double lookups = static_cast<double>(snapshot.cache.hits) +
                         static_cast<double>(snapshot.cache.misses);
  snapshot.cache_hit_ratio =
      lookups > 0.0 ? static_cast<double>(snapshot.cache.hits) / lookups
                    : 0.0;
  snapshot.latency_us = latency_window_.Aggregated();
  // The per-route exchange gauges live in the process-wide registry as
  // dynamically named counters; scan them out by prefix.
  static constexpr char kRoutePrefix[] = "plan.exchange.route.";
  static constexpr char kBytesSuffix[] = ".bytes";
  for (const auto& [name, value] :
       obs::MetricsRegistry::Instance().Counters()) {
    if (name.rfind(kRoutePrefix, 0) != 0) continue;
    std::string route = name.substr(sizeof(kRoutePrefix) - 1);
    const std::size_t suffix_len = sizeof(kBytesSuffix) - 1;
    if (route.size() > suffix_len &&
        route.compare(route.size() - suffix_len, suffix_len,
                      kBytesSuffix) == 0) {
      route.resize(route.size() - suffix_len);
    }
    snapshot.exchange_route_bytes.emplace_back(std::move(route), value);
  }
  snapshot.incidents = flight_recorder_.stats();
  snapshot.slo_p99_us = options_.slo_p99_us;
  snapshot.slo_min_qps = options_.slo_min_qps;
  snapshot.slo_configured =
      options_.slo_p99_us > 0.0 || options_.slo_min_qps > 0.0;
  // SLO verdict over the window. An empty window is vacuously healthy —
  // a watchdog scraping an idle engine must not page anyone.
  if (snapshot.slo_configured && snapshot.latency_us.count > 0) {
    if (options_.slo_p99_us > 0.0 &&
        static_cast<double>(snapshot.latency_us.p99) >
            options_.slo_p99_us) {
      snapshot.slo_ok = false;
      snapshot.slo_violation =
          "windowed p99 " + std::to_string(snapshot.latency_us.p99) +
          "us exceeds slo_p99_us " + std::to_string(options_.slo_p99_us);
    } else if (options_.slo_min_qps > 0.0 &&
               snapshot.latency_us.rate_per_s < options_.slo_min_qps) {
      snapshot.slo_ok = false;
      snapshot.slo_violation =
          "windowed qps " + std::to_string(snapshot.latency_us.rate_per_s) +
          " below slo_min_qps " + std::to_string(options_.slo_min_qps);
    }
  }
  return snapshot;
}

void QueryEngine::SchedulerLoop() {
  for (;;) {
    std::unique_ptr<Task> task;
    {
      std::unique_lock<verify::Mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      hb_dequeued_.Bump();
      // Admission enqueue -> scheduler dequeue edge: a dequeue without a
      // preceding admission means the queue was corrupted (both epochs
      // bump under mutex_, so the ledger comparison is exact).
      PUMP_HB_ASSERT(hb_dequeued_.Load() <= hb_admitted_.Load(),
                     "scheduler dequeued a task that was never admitted");
      auto active = active_.find(task->handle->id());
      if (active != active_.end()) {
        active->second.state = QueryState::kRunning;
      }
      ++stats_.running;
    }
    RunTask(std::move(task));
    {
      std::lock_guard<verify::Mutex> lock(mutex_);
      --stats_.running;
    }
  }
}

void QueryEngine::RunTask(std::unique_ptr<Task> task) {
  QueryHandle& handle = *task->handle;
  // Tag this scheduler thread (and, transitively, every pool worker the
  // execution forks — exec::Executor::Run forwards the context) with the
  // query id, so all spans/instants below carry it.
  obs::ScopedQueryContext query_scope(
      obs::QueryContext{handle.id(), -1});
  handle.MarkRunning();
  const std::uint64_t queue_wait_us = MicrosSince(task->submitted_at);
  Metrics().queue_wait_us.Record(queue_wait_us);

  // Deterministic cancellation pressure: the engine injector may cancel
  // the query here exactly as a client calling handle.Cancel() would.
  if (options_.injector != nullptr &&
      !options_.injector->Check(fault::kServerCancel, task->options.tag)
           .ok()) {
    handle.token_.Cancel();
  }

  engine::ExecOptions exec;
  exec.workers = task->options.workers;
  exec.gpu_plan = task->plan.UsesGpu();
  exec.injector = task->options.injector != nullptr
                      ? task->options.injector
                      : options_.injector;
  // Decorrelate concurrent retry streams: identical base policies would
  // otherwise back off in lockstep (see RetryPolicy::Salted).
  exec.retry = options_.retry.Salted(handle.id());
  exec.morsel_tuples = task->options.morsel_tuples;
  exec.cancel = &handle.token_;
  exec.build_cache = &cache_;
  exec.query_id = handle.id();
  // The mirror keeps the failed attempt's pipeline rows for the flight
  // recorder — the Result return path drops the report on errors.
  engine::ExecReport partial;
  exec.partial_report = &partial;

  // Counter baseline for the incident's metrics delta. Cheap (one sorted
  // copy of a few dozen counters) relative to running a query.
  const auto counters_before = obs::MetricsRegistry::Instance().Counters();

  Result<engine::ExecReport> result = [&] {
    // The per-query umbrella span: tracedump's per-query coverage is the
    // fraction of this span covered by the query's plan.execute span.
    PUMP_TRACE_SPAN(obs::TraceCategory::kEngine, "server.query",
                    static_cast<double>(handle.id()), 0.0);
    return options_.runner_for_test
               ? options_.runner_for_test(task->plan, exec)
               : plan::ExecutePlan(task->plan, exec);
  }();
  const std::uint64_t latency_us = MicrosSince(task->submitted_at);
  Metrics().query_latency_us.Record(latency_us);
  latency_window_.Record(latency_us);

  {
    std::lock_guard<verify::Mutex> lock(mutex_);
    active_.erase(handle.id());
    gpu_inflight_bytes_ -= task->footprint_bytes;
    bool first_device = true;
    for (const auto& [device, bytes] : task->footprint_per_device) {
      if (first_device &&
          PUMP_VERIFY_MUTATE("server.budget.leak_on_release")) {
        // Seeded bug: the first device's pool is never drained, so its
        // in-flight bytes leak and eventually saturate admission — the
        // budget model kills this by checking all pools return to zero.
        first_device = false;
        continue;
      }
      first_device = false;
      device_inflight_bytes_[device] -= bytes;
    }
    if (result.ok()) {
      ++stats_.completed;
      Metrics().completed.Add();
    } else {
      switch (result.status().code()) {
        case StatusCode::kCancelled:
          ++stats_.cancelled;
          Metrics().cancelled.Add();
          break;
        case StatusCode::kDeadlineExceeded:
          ++stats_.deadline_exceeded;
          Metrics().deadline_exceeded.Add();
          break;
        default:
          // Contained failure: the fault ladder exhausted inside this
          // query; its handle carries the error, shared state does not.
          ++stats_.failed;
          Metrics().failed.Add();
          break;
      }
    }
  }
  if (!result.ok()) {
    // Flight-recorder capture, outside the engine lock (serializing the
    // plan and diffing counters must not stall admission). Every abnormal
    // resolution leaves exactly one bounded, self-contained artifact.
    obs::Incident incident;
    incident.query_id = handle.id();
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        incident.kind = "cancelled";
        break;
      case StatusCode::kDeadlineExceeded:
        incident.kind = "deadline_expired";
        break;
      default:
        incident.kind = "fault_ladder_exhausted";
        break;
    }
    incident.status = result.status().ToString();
    incident.tag = task->options.tag;
    incident.plan_json = plan::ToJson(
        task->plan,
        task->options.tag.empty() ? "query" : task->options.tag);
    incident.report_json = ReportJson(partial);
    const auto counters_after = obs::MetricsRegistry::Instance().Counters();
    // Counters() is sorted by name and counters are never removed, so
    // the baseline is a (not necessarily contiguous) subsequence.
    std::size_t before_index = 0;
    for (const auto& [name, value] : counters_after) {
      std::uint64_t base = 0;
      while (before_index < counters_before.size() &&
             counters_before[before_index].first < name) {
        ++before_index;
      }
      if (before_index < counters_before.size() &&
          counters_before[before_index].first == name) {
        base = counters_before[before_index].second;
      }
      if (value != base) {
        incident.metrics_delta.emplace_back(
            name, static_cast<std::int64_t>(value - base));
      }
    }
    incident.latency_us = latency_us;
    incident.queue_wait_us = queue_wait_us;
    flight_recorder_.Capture(std::move(incident));
  }
  // Resolve outside the engine lock: a waiter woken by Resolve must
  // never contend with the scheduler's bookkeeping.
  hb_resolved_.Bump();
  PUMP_HB_ASSERT(hb_resolved_.Load() <= hb_dequeued_.Load(),
                 "scheduler resolved a query it never dequeued");
  handle.Resolve(std::move(result));
}

}  // namespace pump::server
