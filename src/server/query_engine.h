#ifndef PUMP_SERVER_QUERY_ENGINE_H_
#define PUMP_SERVER_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/happens_before.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "exec/morsel.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "obs/flight_recorder.h"
#include "obs/window.h"
#include "plan/build_cache.h"
#include "plan/compiler.h"
#include "plan/plan.h"
#include "verify/sync.h"

namespace pump::server {

/// Lifecycle of a submitted query: admitted into the bounded queue,
/// picked up by a scheduler thread, resolved. (A shed query never gets a
/// handle — Submit returns kResourceExhausted instead.)
enum class QueryState : std::uint8_t { kQueued, kRunning, kDone };

const char* ToString(QueryState state);

/// The client's view of one admitted query. Handles are shared between
/// the caller and the engine's scheduler; they outlive either side.
/// Every admitted handle resolves — to a result, kCancelled,
/// kDeadlineExceeded, or a contained failure — even across engine
/// shutdown, so a waiting client can never hang forever.
class QueryHandle {
 public:
  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  std::uint64_t id() const { return id_; }

  /// Requests cooperative cancellation. Idempotent; a query that already
  /// finished (or whose deadline fired first) is unaffected. A running
  /// query stops claiming work within one morsel per worker.
  void Cancel() { token_.Cancel(); }

  QueryState state() const;
  bool Done() const { return state() == QueryState::kDone; }

  /// Blocks until the query resolves and returns the terminal result.
  /// The reference stays valid for the handle's lifetime (the result is
  /// immutable once resolved).
  const Result<engine::ExecReport>& Wait();

 private:
  friend class QueryEngine;

  explicit QueryHandle(std::uint64_t id) : id_(id) {
    verify::NamedMutex(&mutex_, "server.handle");
  }

  void MarkRunning();
  void Resolve(Result<engine::ExecReport> result);

  const std::uint64_t id_;
  CancelToken token_;
  // verify:: primitives = plain std:: in normal builds; under
  // PUMP_VERIFY the model checker explores the resolve/wait handoff.
  mutable verify::Mutex mutex_;
  verify::CondVar cv_;
  QueryState state_ = QueryState::kQueued;
  Result<engine::ExecReport> result_{
      Status::Internal("query not resolved")};
};

/// Engine-wide configuration, fixed at construction.
struct EngineOptions {
  /// Scheduler threads executing admitted queries. Each runs one query
  /// at a time through plan::ExecutePlan; the queries share the
  /// process-wide persistent exec::Executor pool, which serializes their
  /// fork-join phases — concurrent plans interleave at phase granularity
  /// rather than oversubscribing the machine.
  std::size_t session_threads = 2;
  /// Bound on admitted-but-not-started queries. A Submit that finds the
  /// queue full is shed with kResourceExhausted — load is rejected at
  /// the edge, the queue never grows without bound.
  std::size_t queue_capacity = 8;
  /// GPU hash-table budget handed to the plan compiler; 0 derives the
  /// default from the AC922 profile. The modelled footprints of all
  /// in-flight queries are charged against it: a saturated budget forces
  /// new plans onto the CPU (graceful degradation) instead of queueing
  /// behind device memory.
  std::uint64_t gpu_budget_bytes = 0;
  /// Capacity of the process-wide dimension-table build cache shared by
  /// every query (plan/build_cache.h). 0 disables residency.
  std::uint64_t cache_capacity_bytes = 512ull << 20;
  /// Placement policy requested for submitted queries.
  plan::PlacementPolicy policy = plan::PlacementPolicy::kGpuPreferred;
  /// System profile submitted queries compile against; null uses the
  /// default AC922 testbed. Must outlive the engine (mesh profiles come
  /// from hw::NvlinkRingProfile & friends).
  const hw::SystemProfile* profile = nullptr;
  /// Candidate GPU devices to shard submitted plans across (see
  /// plan::CompileOptions::shard_devices). Empty keeps the classic
  /// single-device layout. Each candidate draws from its own per-device
  /// budget pool; a saturated device is dropped from a new plan's shard
  /// set before the whole plan degrades to CPU.
  plan::DeviceSet shard_devices;
  /// Engine-level injector probing the `server.admission` failpoint on
  /// Submit and `server.cancel` before each query starts (scoped by the
  /// submit tag). Distinct from SubmitOptions::injector, which is
  /// threaded into the query's own execution.
  fault::FaultInjector* injector = nullptr;
  /// Base retry policy. Each query executes under
  /// `retry.Salted(query id)` so concurrent retry streams are
  /// decorrelated yet deterministic for a fixed engine history.
  fault::RetryPolicy retry;
  /// Test/model seam: when set, the scheduler calls this instead of
  /// plan::ExecutePlan. The concurrency-verifier models drive the
  /// admission queue, budget accounting and handle resolution through a
  /// stub runner so explored schedules never entangle the process-wide
  /// persistent executor pool.
  std::function<Result<engine::ExecReport>(const plan::PhysicalPlan&,
                                           const engine::ExecOptions&)>
      runner_for_test;
  /// Incidents retained by the flight recorder (oldest evicted beyond
  /// this bound) and the trace-tail length captured per incident.
  std::size_t incident_capacity = 32;
  std::size_t incident_trace_tail = 256;
  /// Width of the sliding latency/qps window behind Snapshot()'s p50/
  /// p99/qps gauges and the SLO evaluation.
  double window_s = 60.0;
  /// SLO targets evaluated over the window (0 = not configured): the
  /// windowed p99 latency ceiling and the windowed throughput floor.
  /// Snapshot() reports the verdict; servebench's --slo-* flags turn a
  /// violation into a nonzero exit.
  double slo_p99_us = 0.0;
  double slo_min_qps = 0.0;
};

/// Per-query knobs.
struct SubmitOptions {
  /// CPU probe workers for this query.
  std::size_t workers = 2;
  /// Wall-clock deadline measured from Submit (queue wait counts against
  /// it, like any SLO). 0 = none. An expired deadline cancels the query
  /// cooperatively and resolves the handle with kDeadlineExceeded.
  double deadline_s = 0.0;
  /// Fault injector for this query's execution (transfer chunks, device
  /// allocation, scheduler groups, plan pipelines). Null uses the
  /// engine's injector. Per-query injectors keep one query's fault
  /// schedule independent of its siblings'.
  fault::FaultInjector* injector = nullptr;
  /// Scope string for the engine's server.admission / server.cancel
  /// failpoint streams (deterministic per-tag schedules).
  std::string tag;
  /// Morsel granularity of the probe pipelines.
  std::size_t morsel_tuples = exec::kDefaultMorselTuples;
};

/// Point-in-time engine statistics (single-engine scope; the obs
/// registry carries the process-wide `server.*` mirrors).
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  /// Rejected at admission: queue full or server.admission fired.
  std::uint64_t shed = 0;
  /// Rejected synchronously because the query failed to compile
  /// (invalid shape). Not a shed — the queue had room.
  std::uint64_t compile_rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  /// Plans forced onto the CPU because in-flight footprints saturated
  /// the GPU budget.
  std::uint64_t degraded_to_cpu = 0;
  std::uint64_t completed = 0;
  /// Contained failures: the query's fault ladder exhausted, its handle
  /// resolved with the error, nothing shared was poisoned.
  std::uint64_t failed = 0;
  /// Modelled GPU bytes charged by queued + running queries (the sum of
  /// the per-device pools below).
  std::uint64_t gpu_inflight_bytes = 0;
  /// The same bytes split per device: each shard of a sharded plan
  /// charges only its own device's pool, so one busy device never blocks
  /// admission onto its idle peers.
  std::map<hw::DeviceId, std::uint64_t> device_inflight_bytes;
  std::size_t queue_depth = 0;
  std::size_t running = 0;
};

/// One live (queued or running) query in an engine snapshot.
struct QueryRow {
  std::uint64_t id = 0;
  QueryState state = QueryState::kQueued;
  std::string tag;
  /// Seconds since Submit.
  double age_s = 0.0;
};

/// Point-in-time introspection of a live engine: everything `pumpstat`
/// exposes (see server/introspect.h for the JSON / Prometheus
/// renderings). Cheap to take — a handful of mutex-held copies, no
/// query-path stalls.
struct EngineSnapshot {
  EngineStats stats;
  /// Queued + running queries (resolved queries leave the table).
  std::vector<QueryRow> queries;
  plan::BuildCache::Stats cache;
  /// Resident cache entries, most recently used first.
  std::vector<plan::BuildCache::ContentsEntry> cache_contents;
  /// hits / (hits + misses); 0 when no lookups yet.
  double cache_hit_ratio = 0.0;
  /// Windowed latency distribution (us) and qps over the engine's
  /// sliding window.
  obs::SlidingWindow::Aggregate latency_us;
  /// Per-exchange-route byte gauges ("d<src>_d<dst>" -> bytes moved),
  /// from the process-wide plan.exchange.route.* counters.
  std::vector<std::pair<std::string, std::uint64_t>> exchange_route_bytes;
  obs::FlightRecorder::Stats incidents;
  /// SLO verdict over the window; slo_ok stays true when no target is
  /// configured.
  bool slo_configured = false;
  bool slo_ok = true;
  std::string slo_violation;
  double slo_p99_us = 0.0;
  double slo_min_qps = 0.0;
};

/// A long-running serving front end over the plan IR: Submit admits a
/// query into a bounded queue (or sheds it), scheduler threads compile-
/// time-placed plans through plan::ExecutePlan on the shared persistent
/// executor, and every admitted query resolves exactly once.
///
/// Robustness contract (DESIGN.md Sec. 12):
///  * Bounded admission — a full queue sheds with kResourceExhausted.
///  * Graceful degradation — in-flight GPU footprints feed back into
///    compilation; saturation forces CPU placement, never an unbounded
///    wait for device memory.
///  * Cooperative cancellation — Cancel / deadlines stop a running
///    query within one morsel per worker and release its threads.
///  * Crash containment — a query whose fault ladder exhausts resolves
///    its own handle with the error; the executor pool, the shared
///    build cache and sibling queries are untouched, and completed
///    siblings return results bit-identical to solo execution.
///
/// The fact and dimension tables referenced by a submitted query must
/// outlive its handle's resolution (the query struct itself is copied).
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits `query` or rejects it: kResourceExhausted when the queue is
  /// full (shed), the injected status when `server.admission` fires, a
  /// compile error for an invalid query, kUnavailable after Shutdown.
  /// On success the returned handle resolves asynchronously.
  Result<std::shared_ptr<QueryHandle>> Submit(
      const engine::Query& query, const SubmitOptions& options = {});

  /// Stops the schedulers from starting new queries (running ones
  /// finish). Tests use Pause/Resume to fill the admission queue
  /// deterministically. Shutdown overrides a pause so draining cannot
  /// hang.
  void Pause();
  void Resume();

  /// Rejects further submissions, drains every queued query (each still
  /// resolves — possibly with its deadline or cancellation status) and
  /// joins the scheduler threads. Idempotent; the destructor calls it.
  void Shutdown();

  EngineStats stats() const;
  /// Full introspection snapshot (queue, per-query states, pools, cache
  /// contents, windowed latency/qps, exchange routes, incidents, SLO
  /// verdict) — the data behind tools/pumpstat.
  EngineSnapshot Snapshot() const;
  plan::BuildCache& build_cache() { return cache_; }
  /// The engine's incident ring: one bounded artifact per abnormal
  /// resolution (fault-ladder exhaustion, deadline, cancellation).
  const obs::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }

 private:
  struct Task;

  void SchedulerLoop();
  void RunTask(std::unique_ptr<Task> task);

  const EngineOptions options_;
  plan::BuildCache cache_;
  obs::FlightRecorder flight_recorder_;
  obs::SlidingWindow latency_window_;

  mutable verify::Mutex mutex_;
  verify::CondVar queue_cv_;
  std::deque<std::unique_ptr<Task>> queue_;
  EngineStats stats_;
  /// Live queries by id (inserted at admission, state flipped when the
  /// scheduler picks the task up, erased at resolution) — the per-query
  /// rows of Snapshot().
  struct ActiveQuery {
    QueryState state = QueryState::kQueued;
    std::string tag;
    std::chrono::steady_clock::time_point submitted_at;
  };
  std::map<std::uint64_t, ActiveQuery> active_;
  std::uint64_t next_id_ = 1;
  /// Aggregate in-flight footprint (always the sum of the per-device
  /// pools; kept separately so the single-pool saturation signal is O(1)).
  std::uint64_t gpu_inflight_bytes_ = 0;
  /// Per-device in-flight pools, charged at admission and released when
  /// the task resolves. Fed into compilation so new plans shed saturated
  /// devices shard-by-shard.
  std::map<hw::DeviceId, std::uint64_t> device_inflight_bytes_;
  bool paused_ = false;
  bool shutdown_ = false;

  /// Happens-before ledger of the admission path (debug builds only):
  /// every dequeue must follow an admission, every resolution a
  /// dequeue — a scheduler running a task that was never admitted (or
  /// resolving one it never dequeued) trips the epoch asserts.
  hb::EpochCounter hb_admitted_;
  hb::EpochCounter hb_dequeued_;
  hb::EpochCounter hb_resolved_;

  std::vector<verify::Thread> threads_;
};

inline const char* ToString(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDone:
      return "done";
  }
  return "?";
}

}  // namespace pump::server

#endif  // PUMP_SERVER_QUERY_ENGINE_H_
