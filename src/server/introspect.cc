#include "server/introspect.h"

#include <sstream>

#include "bench_support/json_writer.h"

namespace pump::server {

namespace {

void AppendPipelineRows(
    std::ostringstream& out,
    const std::vector<engine::PipelineOutcome>& rows) {
  out << "[";
  bool first = true;
  for (const engine::PipelineOutcome& row : rows) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << bench::JsonEscape(row.name) << "\",\"kind\":\""
        << bench::JsonEscape(row.kind) << "\",\"placement_planned\":\""
        << bench::JsonEscape(row.placement_planned)
        << "\",\"placement_used\":\"" << bench::JsonEscape(row.placement_used)
        << "\",\"attempts\":" << row.attempts
        << ",\"retries\":" << row.retries
        << ",\"faults_injected\":" << row.faults_injected
        << ",\"measured_s\":" << row.measured_s
        << ",\"predicted_s\":" << row.predicted_s << "}";
  }
  out << "]";
}

}  // namespace

std::string ReportJson(const engine::ExecReport& report) {
  std::ostringstream out;
  out << "{\"used_gpu\":" << (report.used_gpu ? "true" : "false")
      << ",\"degraded\":" << (report.degraded ? "true" : "false")
      << ",\"degradation_reason\":\""
      << bench::JsonEscape(report.degradation_reason)
      << "\",\"hybrid_gpu_fraction\":" << report.hybrid_gpu_fraction
      << ",\"transfer_retries\":" << report.transfer_retries
      << ",\"faults_injected\":" << report.faults_injected
      << ",\"dim_tables_built\":" << report.dim_tables_built
      << ",\"dim_tables_reused\":" << report.dim_tables_reused
      << ",\"shards_replaced\":" << report.shards_replaced
      << ",\"pipelines\":";
  AppendPipelineRows(out, report.pipelines);
  out << ",\"shards\":";
  AppendPipelineRows(out, report.shards);
  out << "}";
  return out.str();
}

std::string ToJson(const EngineSnapshot& snapshot) {
  std::ostringstream out;
  const EngineStats& stats = snapshot.stats;
  out << "{\"stats\":{\"submitted\":" << stats.submitted
      << ",\"admitted\":" << stats.admitted << ",\"shed\":" << stats.shed
      << ",\"compile_rejected\":" << stats.compile_rejected
      << ",\"cancelled\":" << stats.cancelled
      << ",\"deadline_exceeded\":" << stats.deadline_exceeded
      << ",\"degraded_to_cpu\":" << stats.degraded_to_cpu
      << ",\"completed\":" << stats.completed
      << ",\"failed\":" << stats.failed
      << ",\"queue_depth\":" << stats.queue_depth
      << ",\"running\":" << stats.running
      << ",\"gpu_inflight_bytes\":" << stats.gpu_inflight_bytes
      << ",\"device_inflight_bytes\":{";
  bool first = true;
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    if (!first) out << ",";
    first = false;
    out << "\"" << static_cast<int>(device) << "\":" << bytes;
  }
  out << "}},\"queries\":[";
  first = true;
  for (const QueryRow& row : snapshot.queries) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << row.id << ",\"state\":\"" << ToString(row.state)
        << "\",\"tag\":\"" << bench::JsonEscape(row.tag)
        << "\",\"age_s\":" << row.age_s << "}";
  }
  out << "],\"cache\":{\"hits\":" << snapshot.cache.hits
      << ",\"misses\":" << snapshot.cache.misses
      << ",\"evictions\":" << snapshot.cache.evictions
      << ",\"single_flight_waits\":" << snapshot.cache.single_flight_waits
      << ",\"resident_bytes\":" << snapshot.cache.resident_bytes
      << ",\"entries\":" << snapshot.cache.entries
      << ",\"hit_ratio\":" << snapshot.cache_hit_ratio << ",\"contents\":[";
  first = true;
  for (const auto& entry : snapshot.cache_contents) {
    if (!first) out << ",";
    first = false;
    out << "{\"key\":\"" << bench::JsonEscape(entry.key)
        << "\",\"bytes\":" << entry.bytes << "}";
  }
  const obs::SlidingWindow::Aggregate& window = snapshot.latency_us;
  out << "]},\"window\":{\"count\":" << window.count
      << ",\"sum_us\":" << window.sum << ",\"p50_us\":" << window.p50
      << ",\"p99_us\":" << window.p99 << ",\"qps\":" << window.rate_per_s
      << ",\"window_s\":" << static_cast<double>(window.window_ns) / 1e9
      << "},\"exchange_routes\":{";
  first = true;
  for (const auto& [route, bytes] : snapshot.exchange_route_bytes) {
    if (!first) out << ",";
    first = false;
    out << "\"" << bench::JsonEscape(route) << "\":" << bytes;
  }
  out << "},\"incidents\":{\"captured\":" << snapshot.incidents.captured
      << ",\"evicted\":" << snapshot.incidents.evicted << ",\"by_kind\":{";
  first = true;
  for (const auto& [kind, count] : snapshot.incidents.captured_by_kind) {
    if (!first) out << ",";
    first = false;
    out << "\"" << bench::JsonEscape(kind) << "\":" << count;
  }
  out << "}},\"slo\":{\"configured\":"
      << (snapshot.slo_configured ? "true" : "false")
      << ",\"ok\":" << (snapshot.slo_ok ? "true" : "false")
      << ",\"violation\":\"" << bench::JsonEscape(snapshot.slo_violation)
      << "\",\"p99_us\":" << snapshot.slo_p99_us
      << ",\"min_qps\":" << snapshot.slo_min_qps << "}}";
  return out.str();
}

std::string ToPrometheus(const EngineSnapshot& snapshot) {
  std::ostringstream out;
  const EngineStats& stats = snapshot.stats;
  auto counter = [&out](const char* name, std::uint64_t value) {
    out << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
  };
  auto gauge = [&out](const char* name, double value) {
    out << "# TYPE " << name << " gauge\n" << name << " " << value << "\n";
  };
  counter("pump_server_submitted", stats.submitted);
  counter("pump_server_admitted", stats.admitted);
  counter("pump_server_shed", stats.shed);
  counter("pump_server_compile_rejected", stats.compile_rejected);
  counter("pump_server_cancelled", stats.cancelled);
  counter("pump_server_deadline_exceeded", stats.deadline_exceeded);
  counter("pump_server_degraded_to_cpu", stats.degraded_to_cpu);
  counter("pump_server_completed", stats.completed);
  counter("pump_server_failed", stats.failed);
  gauge("pump_server_queue_depth", static_cast<double>(stats.queue_depth));
  gauge("pump_server_running", static_cast<double>(stats.running));
  gauge("pump_server_gpu_inflight_bytes",
        static_cast<double>(stats.gpu_inflight_bytes));
  out << "# TYPE pump_server_device_inflight_bytes gauge\n";
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    out << "pump_server_device_inflight_bytes{device=\""
        << static_cast<int>(device) << "\"} " << bytes << "\n";
  }
  gauge("pump_server_active_queries",
        static_cast<double>(snapshot.queries.size()));
  counter("pump_cache_hits", snapshot.cache.hits);
  counter("pump_cache_misses", snapshot.cache.misses);
  counter("pump_cache_evictions", snapshot.cache.evictions);
  counter("pump_cache_single_flight_waits",
          snapshot.cache.single_flight_waits);
  gauge("pump_cache_resident_bytes",
        static_cast<double>(snapshot.cache.resident_bytes));
  gauge("pump_cache_entries", static_cast<double>(snapshot.cache.entries));
  gauge("pump_cache_hit_ratio", snapshot.cache_hit_ratio);
  const obs::SlidingWindow::Aggregate& window = snapshot.latency_us;
  gauge("pump_window_count", static_cast<double>(window.count));
  gauge("pump_window_latency_p50_us", static_cast<double>(window.p50));
  gauge("pump_window_latency_p99_us", static_cast<double>(window.p99));
  gauge("pump_window_qps", window.rate_per_s);
  out << "# TYPE pump_exchange_route_bytes counter\n";
  for (const auto& [route, bytes] : snapshot.exchange_route_bytes) {
    out << "pump_exchange_route_bytes{route=\"" << route << "\"} " << bytes
        << "\n";
  }
  counter("pump_incidents_captured", snapshot.incidents.captured);
  counter("pump_incidents_evicted", snapshot.incidents.evicted);
  out << "# TYPE pump_incidents_by_kind counter\n";
  for (const auto& [kind, count] : snapshot.incidents.captured_by_kind) {
    out << "pump_incidents_by_kind{kind=\"" << kind << "\"} " << count
        << "\n";
  }
  gauge("pump_slo_ok", snapshot.slo_ok ? 1.0 : 0.0);
  return out.str();
}

}  // namespace pump::server
