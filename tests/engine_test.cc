#include <cstdint>

#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "engine/table.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "common/rng.h"
#include "ops/scan.h"

namespace pump::engine {
namespace {

// Reference evaluation of a query by row-at-a-time interpretation.
QueryResult BruteForce(const Query& query) {
  QueryResult expected;
  const Table& fact = *query.fact;
  const auto* measure = fact.Column(query.measure_column).value();
  for (std::size_t i = 0; i < fact.rows(); ++i) {
    bool ok = true;
    for (const Filter& filter : query.filters) {
      const auto* column = fact.Column(filter.column).value();
      if (!ops::Compare(filter.op, (*column)[i], filter.literal)) {
        ok = false;
        break;
      }
    }
    for (const JoinClause& join : query.joins) {
      if (!ok) break;
      const auto* keys = fact.Column(join.fact_key_column).value();
      const auto* dim_keys =
          join.dimension->Column(join.dim_key_column).value();
      const std::vector<std::int64_t>* dim_filter_column =
          join.has_dim_filter
              ? join.dimension->Column(join.dim_filter.column).value()
              : nullptr;
      bool matched = false;
      for (std::size_t d = 0; d < dim_keys->size(); ++d) {
        if ((*dim_keys)[d] != (*keys)[i]) continue;
        if (dim_filter_column != nullptr &&
            !ops::Compare(join.dim_filter.op, (*dim_filter_column)[d],
                          join.dim_filter.literal)) {
          continue;
        }
        matched = true;
        break;
      }
      ok = matched;
    }
    if (ok) {
      ++expected.rows;
      expected.sum += (*measure)[i];
    }
  }
  return expected;
}

TEST(TableTest, ColumnManagement) {
  Table table;
  ASSERT_TRUE(table.AddColumn("a", {1, 2, 3}).ok());
  ASSERT_TRUE(table.AddColumn("b", {4, 5, 6}).ok());
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.column_count(), 2u);
  EXPECT_TRUE(table.HasColumn("a"));
  EXPECT_FALSE(table.HasColumn("c"));
  EXPECT_EQ((*table.Column("b").value())[1], 5);
  EXPECT_EQ(table.bytes(), 48u);
}

TEST(TableTest, RejectsDuplicatesAndLengthMismatch) {
  Table table;
  ASSERT_TRUE(table.AddColumn("a", {1, 2}).ok());
  EXPECT_EQ(table.AddColumn("a", {3, 4}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table.AddColumn("b", {1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Column("zz").status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, FilterOnlyQuery) {
  Table fact;
  ASSERT_TRUE(fact.AddColumn("x", {1, 5, 3, 8, 2}).ok());
  ASSERT_TRUE(fact.AddColumn("m", {10, 20, 30, 40, 50}).ok());
  Query query;
  query.fact = &fact;
  query.filters = {{"x", ops::CompareOp::kLt, 5}};
  query.measure_column = "m";
  Result<QueryResult> result = Executor::Run(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 3u);
  EXPECT_EQ(result.value().sum, 90);
}

TEST(ExecutorTest, ValidatesQuery) {
  Table fact;
  ASSERT_TRUE(fact.AddColumn("m", {1}).ok());
  Query query;
  query.measure_column = "m";
  EXPECT_FALSE(Executor::Run(query).ok());  // No fact table.
  query.fact = &fact;
  query.filters = {{"missing", ops::CompareOp::kEq, 0}};
  EXPECT_FALSE(Executor::Run(query).ok());  // Missing filter column.
  query.filters.clear();
  query.measure_column = "nope";
  EXPECT_FALSE(Executor::Run(query).ok());  // Missing measure.
}

TEST(ExecutorTest, SsbQ1MatchesBruteForce) {
  const SsbDatabase db = SsbDatabase::Generate(50'000, 7);
  const Query query = SsbQ1(db);
  Result<QueryResult> result = Executor::Run(query, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), BruteForce(query));
  EXPECT_GT(result.value().rows, 0u);
  // Q1's selectivity: 3/11 discounts x 24/50 quantities x ~1/7 years.
  const double selectivity =
      static_cast<double>(result.value().rows) / 50'000.0;
  EXPECT_NEAR(selectivity, (3.0 / 11.0) * (24.0 / 50.0) / 7.0, 0.01);
}

TEST(ExecutorTest, SsbQ2MatchesBruteForce) {
  const SsbDatabase db = SsbDatabase::Generate(30'000, 9);
  const Query query = SsbQ2(db);
  Result<QueryResult> result = Executor::Run(query, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), BruteForce(query));
  // Two 1/5-region semi-joins keep ~4% of rows.
  const double selectivity =
      static_cast<double>(result.value().rows) / 30'000.0;
  EXPECT_NEAR(selectivity, 1.0 / 25.0, 0.01);
}

TEST(ExecutorTest, WorkerCountInvariant) {
  const SsbDatabase db = SsbDatabase::Generate(40'000, 11);
  const Query query = SsbQ1(db);
  const QueryResult reference = Executor::Run(query, 1).value();
  for (std::size_t workers : {2u, 4u, 8u}) {
    EXPECT_EQ(Executor::Run(query, workers).value(), reference);
  }
}

class AdvisorTest : public ::testing::Test {
 protected:
  hw::SystemProfile ibm_ = hw::Ac922Profile();
  hw::SystemProfile intel_ = hw::XeonProfile();
};

TEST_F(AdvisorTest, StatsFromQueryCountsTouchedColumns) {
  const SsbDatabase db = SsbDatabase::Generate(10'000, 3);
  const Query q1 = SsbQ1(db);
  const QueryStats stats = StatsFromQuery(q1, /*scale=*/100.0);
  EXPECT_DOUBLE_EQ(stats.fact_rows, 1'000'000.0);
  // 3 filters + 1 join key + 1 measure = 5 columns x 8 B.
  EXPECT_DOUBLE_EQ(stats.fact_bytes_per_row, 40.0);
  ASSERT_EQ(stats.dimension_rows.size(), 1u);
}

TEST_F(AdvisorTest, PrefersGpuOnNvlinkForLargeScans) {
  const Advisor advisor(&ibm_);
  QueryStats stats;
  stats.fact_rows = 2e9;
  stats.fact_bytes_per_row = 16;
  stats.dimension_rows = {1 << 22};
  Result<PlanChoice> plan = advisor.Recommend(stats, hw::kCpu0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ibm_.topology.device(plan.value().device).kind,
            hw::DeviceKind::kGpu);
  EXPECT_EQ(plan.value().method, transfer::TransferMethod::kCoherence);
  EXPECT_GT(plan.value().predicted_seconds.seconds(), 0.0);
}

TEST_F(AdvisorTest, PicksZeroCopyOnPcie) {
  const Advisor advisor(&intel_);
  QueryStats stats;
  stats.fact_rows = 2e9;
  stats.fact_bytes_per_row = 16;
  stats.dimension_rows = {1 << 22};
  Result<PlanChoice> plan = advisor.Recommend(stats, hw::kCpu0);
  ASSERT_TRUE(plan.ok());
  if (intel_.topology.device(plan.value().device).kind ==
      hw::DeviceKind::kGpu) {
    EXPECT_EQ(plan.value().method, transfer::TransferMethod::kZeroCopy);
  }
}

TEST_F(AdvisorTest, HugeDimensionSpillsToHybrid) {
  const Advisor advisor(&ibm_);
  QueryStats stats;
  stats.fact_rows = 4e9;
  stats.fact_bytes_per_row = 16;
  stats.dimension_rows = {2e9};  // 32 GiB hash table: exceeds GPU memory.
  std::vector<join::HashTablePlacement> placements;
  Result<Seconds> predicted =
      advisor.Predict(stats, hw::kGpu0,
                      transfer::TransferMethod::kCoherence, hw::kCpu0,
                      &placements);
  ASSERT_TRUE(predicted.ok());
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].parts.size(), 2u);  // Hybrid split.
}

TEST_F(AdvisorTest, PredictionMonotoneInFactSize) {
  const Advisor advisor(&ibm_);
  QueryStats stats;
  stats.fact_bytes_per_row = 24;
  stats.dimension_rows = {1 << 20};
  Seconds previous;
  for (double rows : {1e8, 1e9, 4e9}) {
    stats.fact_rows = rows;
    Result<Seconds> predicted = advisor.Predict(
        stats, hw::kGpu0, transfer::TransferMethod::kCoherence, hw::kCpu0);
    ASSERT_TRUE(predicted.ok());
    EXPECT_GT(predicted.value(), previous);
    previous = predicted.value();
  }
}

// Randomized differential testing: generate random star queries over a
// random database and compare the executor against the brute-force
// interpreter for every seed.
class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, ExecutorMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const SsbDatabase db =
      SsbDatabase::Generate(2'000 + rng.NextBounded(20'000), seed);

  Query query;
  query.fact = &db.lineorder;
  query.measure_column = "lo_revenue";

  // Random fact filters (0-3).
  const char* filter_columns[] = {"lo_quantity", "lo_discount",
                                  "lo_extendedprice"};
  const std::int64_t filter_bounds[] = {50, 11, 210'000};
  const std::size_t filter_count = rng.NextBounded(4);
  for (std::size_t f = 0; f < filter_count; ++f) {
    const std::size_t c = rng.NextBounded(3);
    query.filters.push_back(
        {filter_columns[c],
         static_cast<ops::CompareOp>(rng.NextBounded(6)),
         static_cast<std::int64_t>(rng.NextBounded(filter_bounds[c]))});
  }

  // Random joins (0-3) with optional dimension filters.
  struct DimChoice {
    const char* fact_key;
    const Table* dim;
    const char* dim_key;
    const char* dim_attr;
    std::int64_t attr_bound;
  };
  const DimChoice choices[] = {
      {"lo_orderdate", &db.date, "d_datekey", "d_year",
       kFirstYear + kYearCount},
      {"lo_custkey", &db.customer, "c_custkey", "c_region", kRegionCount},
      {"lo_suppkey", &db.supplier, "s_suppkey", "s_region", kRegionCount},
  };
  const std::size_t join_count = rng.NextBounded(4);
  for (std::size_t j = 0; j < join_count && j < 3; ++j) {
    const DimChoice& choice = choices[j];
    JoinClause join;
    join.fact_key_column = choice.fact_key;
    join.dimension = choice.dim;
    join.dim_key_column = choice.dim_key;
    if (rng.NextBounded(2) == 1) {
      join.dim_filter = {
          choice.dim_attr, static_cast<ops::CompareOp>(rng.NextBounded(6)),
          static_cast<std::int64_t>(rng.NextBounded(choice.attr_bound))};
      join.has_dim_filter = true;
    }
    query.joins.push_back(join);
  }

  Result<QueryResult> result =
      Executor::Run(query, 1 + rng.NextBounded(4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value(), BruteForce(query)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace pump::engine
