// Tests of the physical-plan IR: the golden equivalence suite (every SSB
// query and TPC-H Q6 must be bit-identical through the preserved fused
// path and through the plan IR, across worker counts and under injected
// faults), the compiler's hash-table/placement choices, compile-time
// validation with query-shape diagnostics, the structural plan
// self-check, build-pipeline caching across the degradation ladder, and
// the JSON dump.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/tpch.h"
#include "engine/executor.h"
#include "engine/legacy_fused.h"
#include "engine/ssb.h"
#include "engine/table.h"
#include "fault/fault_injector.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "hw/topology.h"
#include "ops/q6.h"
#include "plan/compiler.h"
#include "plan/dump.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "plan/q6_bridge.h"

namespace pump::plan {
namespace {

// ---------------------------------------------------------------------
// Golden equivalence: legacy fused path vs plan IR.

/// One fault scenario of the golden suite. `Arm` configures a fresh
/// injector; both paths get their own injector with the same seed, so
/// they observe the identical deterministic fault schedule.
struct FaultScenario {
  const char* name;
  std::uint64_t seed;  // 0 = no injector.
  void (*arm)(fault::FaultInjector*);
  void (*tune)(engine::ExecOptions*);
};

void ArmTransientTransfer(fault::FaultInjector* injector) {
  fault::FaultSpec spec;
  spec.probability = 0.2;
  injector->Arm(fault::kTransferChunk, spec);
}

void TuneTransientTransfer(engine::ExecOptions* options) {
  options->chunk_bytes = 8 * 1024;
  options->retry.max_attempts = 30;
}

void ArmDeviceOom(fault::FaultInjector* injector) {
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kResourceExhausted;
  injector->Arm(fault::kAllocDevice, spec);
}

void ArmGroupStall(fault::FaultInjector* injector) {
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.after_hits = 2;
  spec.max_fires = 1;
  injector->Arm(fault::kSchedWorkerStall, spec);
}

void TuneGroupStall(engine::ExecOptions* options) {
  options->morsel_tuples = 500;
}

const FaultScenario kScenarios[] = {
    {"fault_free", 0, nullptr, nullptr},
    {"transient_transfer", 51, ArmTransientTransfer, TuneTransientTransfer},
    {"device_oom", 52, ArmDeviceOom, nullptr},
    {"group_stall", 53, ArmGroupStall, TuneGroupStall},
};

class GoldenEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new engine::SsbDatabase(engine::SsbDatabase::Generate(20'000, 17));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static const engine::SsbDatabase* db_;
};

const engine::SsbDatabase* GoldenEquivalenceTest::db_ = nullptr;

TEST_F(GoldenEquivalenceTest, SsbSuiteMatchesAcrossPathsWorkersAndFaults) {
  for (const engine::NamedQuery& named : engine::SsbSuite(*db_)) {
    const engine::QueryResult reference =
        engine::Executor::Run(named.query, 2).value();
    for (const std::size_t workers : {1u, 2u, 4u}) {
      for (const FaultScenario& scenario : kScenarios) {
        SCOPED_TRACE(std::string(named.name) +
                     " workers=" + std::to_string(workers) + " " +
                     scenario.name);
        engine::ExecOptions options;
        options.workers = workers;
        options.morsel_tuples = 1'000;
        if (scenario.tune != nullptr) scenario.tune(&options);

        fault::FaultInjector legacy_injector(scenario.seed);
        engine::ExecOptions legacy_options = options;
        legacy_options.legacy_fused_for_test = true;
        if (scenario.arm != nullptr) {
          scenario.arm(&legacy_injector);
          legacy_options.injector = &legacy_injector;
        }
        auto legacy =
            engine::Executor::RunResilient(named.query, legacy_options);
        ASSERT_TRUE(legacy.ok()) << legacy.status();

        fault::FaultInjector plan_injector(scenario.seed);
        engine::ExecOptions plan_options = options;
        if (scenario.arm != nullptr) {
          scenario.arm(&plan_injector);
          plan_options.injector = &plan_injector;
        }
        auto via_plan =
            engine::Executor::RunResilient(named.query, plan_options);
        ASSERT_TRUE(via_plan.ok()) << via_plan.status();

        // Bit-identical results, and the same ladder outcome.
        EXPECT_EQ(via_plan.value().result, legacy.value().result);
        EXPECT_EQ(via_plan.value().result, reference);
        EXPECT_EQ(via_plan.value().used_gpu, legacy.value().used_gpu);
        EXPECT_EQ(via_plan.value().degraded, legacy.value().degraded);
      }
    }
  }
}

TEST_F(GoldenEquivalenceTest, PlainRunMatchesLegacyFused) {
  for (const engine::NamedQuery& named : engine::SsbSuite(*db_)) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(named.name) +
                   " workers=" + std::to_string(workers));
      const auto fused = engine::legacy::RunFused(named.query, workers);
      ASSERT_TRUE(fused.ok()) << fused.status();
      const auto via_plan = engine::Executor::Run(named.query, workers);
      ASSERT_TRUE(via_plan.ok()) << via_plan.status();
      EXPECT_EQ(via_plan.value(), fused.value());
    }
  }
}

TEST(Q6EquivalenceTest, PlanPathMatchesEveryQ6Kernel) {
  const data::LineitemQ6 lineitem = data::GenerateLineitemQ6(50'000, 7);
  const ops::Q6Result branching = ops::RunQ6Branching(lineitem);
  const ops::Q6Result predicated = ops::RunQ6Predicated(lineitem);
  ASSERT_EQ(branching, predicated);

  const Q6PlanInput input = Q6PlanInput::From(lineitem);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto via_plan = RunQ6Plan(input, workers);
    ASSERT_TRUE(via_plan.ok()) << via_plan.status();
    EXPECT_EQ(via_plan.value(), branching);
    EXPECT_EQ(via_plan.value(),
              ops::RunQ6BranchingParallel(lineitem, workers));
  }
}

// ---------------------------------------------------------------------
// Compiler: hash-table selection and placements.

class CompilerTest : public ::testing::Test {
 protected:
  // The compiled plan holds a pointer to its query, so the queries must
  // outlive every plan a test compiles — they live in the fixture.
  void SetUp() override {
    db_ = engine::SsbDatabase::Generate(5'000, 3);
    q1_ = engine::SsbQ1(db_);
    q2_ = engine::SsbQ2(db_);
    q3_ = engine::SsbQ3(db_);
  }

  engine::SsbDatabase db_;
  engine::Query q1_;
  engine::Query q2_;
  engine::Query q3_;
};

TEST_F(CompilerTest, DenseKeyDimensionSelectsPerfectHashTable) {
  CompileOptions options;
  options.policy = PlacementPolicy::kGpuPreferred;
  const auto plan = Compile(q1_, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().builds.size(), 1u);
  const BuildPipeline& build = plan.value().builds[0];
  // d_datekey is a dense [0, 2555) domain.
  EXPECT_EQ(build.table_kind, HashTableKind::kPerfect);
  EXPECT_GE(build.keys.density, 0.5);
  EXPECT_EQ(build.placement, PipelinePlacement::kGpu);
  EXPECT_EQ(plan.value().probe.placement,
            PipelinePlacement::kHeterogeneous);
  EXPECT_GT(build.table_bytes, 0u);
}

TEST_F(CompilerTest, DenseKeysBeyondGpuBudgetSelectHybrid) {
  CompileOptions options;
  options.policy = PlacementPolicy::kGpuPreferred;
  options.gpu_budget_bytes = 1024;  // Far below any date table.
  const auto plan = Compile(q1_, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().builds.size(), 1u);
  EXPECT_EQ(plan.value().builds[0].table_kind, HashTableKind::kHybrid);
}

TEST_F(CompilerTest, SparseKeyDimensionSelectsLinearProbing) {
  engine::Table fact;
  ASSERT_TRUE(fact.AddColumn("f_key", {10, 900'000, 10, 7}).ok());
  ASSERT_TRUE(fact.AddColumn("f_measure", {1, 2, 3, 4}).ok());
  engine::Table dim;
  ASSERT_TRUE(dim.AddColumn("d_key", {10, 900'000}).ok());

  engine::Query query;
  query.fact = &fact;
  query.measure_column = "f_measure";
  engine::JoinClause join;
  join.fact_key_column = "f_key";
  join.dimension = &dim;
  join.dim_key_column = "d_key";
  query.joins.push_back(join);

  CompileOptions options;
  options.policy = PlacementPolicy::kGpuPreferred;
  const auto plan = Compile(query, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().builds.size(), 1u);
  EXPECT_EQ(plan.value().builds[0].table_kind,
            HashTableKind::kLinearProbing);
  EXPECT_LT(plan.value().builds[0].keys.density, 0.5);

  // The sparse plan still executes correctly (rows 10, 10, and the
  // 900'000 match; 7 does not).
  const auto result = engine::Executor::Run(query, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows, 3u);
  EXPECT_EQ(result.value().sum, 1 + 2 + 3);
}

TEST_F(CompilerTest, CpuOnlyPolicyPlacesEveryPipelineOnCpu) {
  const auto plan = Compile(q3_);  // Default: kCpuOnly.
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan.value().UsesGpu());
  EXPECT_EQ(plan.value().probe.placement, PipelinePlacement::kCpu);
  for (const BuildPipeline& build : plan.value().builds) {
    EXPECT_EQ(build.placement, PipelinePlacement::kCpu);
  }
}

TEST_F(CompilerTest, CostModelPolicyRecordsRationaleAndCosts) {
  CompileOptions options;
  options.policy = PlacementPolicy::kCostModel;
  options.scale = 100.0;  // Paper-scale cardinalities for the model.
  const auto plan = Compile(q2_, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan.value().rationale.empty());
  EXPECT_GT(plan.value().probe.modelled_cost_s, 0.0);
  for (const BuildPipeline& build : plan.value().builds) {
    EXPECT_GT(build.modelled_cost_s, 0.0);
  }
  // Whatever the model picked must execute to the reference result.
  const auto report = ExecutePlan(plan.value(), {});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().result,
            engine::Executor::Run(engine::SsbQ2(db_), 2).value());
}

TEST_F(CompilerTest, ProbeOperatorsAreFiltersThenProbesThenAggregate) {
  const auto plan = Compile(q3_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const std::vector<Operator>& ops = plan.value().probe.ops;
  // Q3: one fact filter, three joins, one aggregate.
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].kind, OpKind::kScanFilter);
  EXPECT_EQ(ops[1].kind, OpKind::kProbe);
  EXPECT_EQ(ops[2].kind, OpKind::kProbe);
  EXPECT_EQ(ops[3].kind, OpKind::kProbe);
  EXPECT_EQ(ops[4].kind, OpKind::kAggregate);
  EXPECT_EQ(ops[1].build_index, 0u);
  EXPECT_EQ(ops[2].build_index, 1u);
  EXPECT_EQ(ops[3].build_index, 2u);
}

// ---------------------------------------------------------------------
// Validation: exactly once, at compile time, with the query shape.

TEST_F(CompilerTest, ValidationErrorCarriesQueryShape) {
  engine::Query query = engine::SsbQ1(db_);
  query.measure_column = "no_such_column";
  const auto plan = Compile(query);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
  EXPECT_NE(plan.status().ToString().find("query shape:"),
            std::string::npos);
  EXPECT_NE(plan.status().ToString().find("filters=3"), std::string::npos)
      << plan.status().ToString();

  // The facade surfaces the same compile-time error (not masked by any
  // fallback), shape included.
  engine::ExecOptions options;
  options.workers = 2;
  const auto report = engine::Executor::RunResilient(query, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
  EXPECT_NE(report.status().ToString().find("query shape:"),
            std::string::npos);
}

TEST_F(CompilerTest, NullFactTableFailsCompilation) {
  engine::Query query;
  query.measure_column = "m";
  const auto plan = Compile(query);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// ValidatePlan: structural self-check.

TEST_F(CompilerTest, ValidatePlanAcceptsCompiledPlans) {
  for (const engine::NamedQuery& named : engine::SsbSuite(db_)) {
    CompileOptions options;
    options.policy = PlacementPolicy::kGpuPreferred;
    const auto plan = Compile(named.query, options);
    ASSERT_TRUE(plan.ok()) << named.name << ": " << plan.status();
    EXPECT_TRUE(ValidatePlan(plan.value()).ok()) << named.name;
  }
}

TEST_F(CompilerTest, ValidatePlanRejectsStructuralCorruption) {
  const auto compiled = Compile(q1_);
  ASSERT_TRUE(compiled.ok());

  {  // Missing aggregate.
    PhysicalPlan plan = compiled.value();
    plan.probe.ops.pop_back();
    EXPECT_FALSE(ValidatePlan(plan).ok());
  }
  {  // Probe referencing a nonexistent build pipeline.
    PhysicalPlan plan = compiled.value();
    for (Operator& op : plan.probe.ops) {
      if (op.kind == OpKind::kProbe) op.build_index = 99;
    }
    EXPECT_FALSE(ValidatePlan(plan).ok());
  }
  {  // Perfect hash table over sparse keys.
    PhysicalPlan plan = compiled.value();
    plan.builds[0].keys.density = 0.1;
    plan.builds[0].table_kind = HashTableKind::kPerfect;
    EXPECT_FALSE(ValidatePlan(plan).ok());
  }
  {  // Operator stage ordering violated (aggregate before a probe).
    PhysicalPlan plan = compiled.value();
    std::swap(plan.probe.ops.front(), plan.probe.ops.back());
    EXPECT_FALSE(ValidatePlan(plan).ok());
  }
  {  // Build pipeline count out of sync with the query's joins.
    PhysicalPlan plan = compiled.value();
    plan.builds.clear();
    EXPECT_FALSE(ValidatePlan(plan).ok());
  }
}

// ---------------------------------------------------------------------
// Build caching across the degradation ladder.

TEST_F(CompilerTest, ProbeFailureReusesCachedBuildsInsteadOfRebuilding) {
  const engine::Query query = engine::SsbQ3(db_);  // Three joins.
  const engine::QueryResult reference =
      engine::Executor::Run(query, 2).value();

  fault::FaultInjector injector(61);
  fault::FaultSpec spec;
  spec.probability = 1.0;  // Every pipeline's GPU stage fails.
  injector.Arm(fault::kPlanPipeline, spec);

  engine::ExecOptions options;
  options.workers = 2;
  options.morsel_tuples = 1'000;
  options.injector = &injector;
  const auto report = engine::Executor::RunResilient(query, options);
  ASSERT_TRUE(report.ok()) << report.status();

  // The probe pipeline lost its GPU placement, but the three dimension
  // hash tables were built exactly once and reused by the CPU
  // re-placement — the seed rebuilt them from scratch.
  EXPECT_FALSE(report.value().used_gpu);
  EXPECT_TRUE(report.value().degraded);
  EXPECT_EQ(report.value().dim_tables_built, 3u);
  EXPECT_EQ(report.value().dim_tables_reused, 3u);
  EXPECT_NE(report.value().degradation_reason.find("fell back to CPU"),
            std::string::npos);
  EXPECT_EQ(report.value().result, reference);
}

TEST_F(CompilerTest, GpuOomSpillDoesNotDiscardBuilds) {
  const engine::Query query = engine::SsbQ2(db_);  // Two joins.
  fault::FaultInjector injector(62);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(fault::kAllocDevice, spec);

  engine::ExecOptions options;
  options.workers = 2;
  options.injector = &injector;
  const auto report = engine::Executor::RunResilient(query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().used_gpu);  // Spill, not fallback.
  EXPECT_EQ(report.value().dim_tables_built, 2u);
  EXPECT_EQ(report.value().dim_tables_reused, 0u);
  EXPECT_EQ(report.value().result,
            engine::Executor::Run(query, 2).value());
}

// ---------------------------------------------------------------------
// JSON dump.

TEST_F(CompilerTest, ToJsonDescribesPipelinesAndChoices) {
  CompileOptions options;
  options.policy = PlacementPolicy::kGpuPreferred;
  const auto plan = Compile(q1_, options);
  ASSERT_TRUE(plan.ok());
  const std::string json = ToJson(plan.value(), "ssb-q1");
  EXPECT_NE(json.find("\"query\":\"ssb-q1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_table\":\"perfect\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"placement\":\"heterogeneous\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"op\":\"aggregate\""), std::string::npos) << json;

  options.gpu_budget_bytes = 1024;
  const auto hybrid_plan = Compile(q1_, options);
  ASSERT_TRUE(hybrid_plan.ok());
  EXPECT_NE(ToJson(hybrid_plan.value(), "ssb-q1")
                .find("\"hash_table\":\"hybrid\""),
            std::string::npos);
}

TEST_F(CompilerTest, SaturatedDevicePoolDroppedFromShardSet) {
  const hw::SystemProfile ring = hw::NvlinkRingProfile(4);
  CompileOptions options;
  options.policy = PlacementPolicy::kGpuPreferred;
  options.profile = &ring;
  options.shard_devices = ring.topology.DevicesOfKind(hw::DeviceKind::kGpu);
  options.gpu_budget_bytes = 1ull << 20;

  // Device 3's pool already holds more than the whole budget: it must be
  // dropped from the shard set; the other three shards proceed.
  std::map<hw::DeviceId, std::uint64_t> in_use{{3, 2ull << 20}};
  options.device_budget_in_use = &in_use;
  const auto plan = Compile(q2_, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().shard.devices, (DeviceSet{1, 2, 4}));
  EXPECT_NE(plan.value().rationale.find("dropped from shard set"),
            std::string::npos)
      << plan.value().rationale;

  // Every pool saturated: the whole plan degrades to CPU.
  for (const hw::DeviceId device : options.shard_devices) {
    in_use[device] = 2ull << 20;
  }
  const auto cpu_plan = Compile(q2_, options);
  ASSERT_TRUE(cpu_plan.ok()) << cpu_plan.status();
  EXPECT_FALSE(cpu_plan.value().UsesGpu());
  EXPECT_TRUE(cpu_plan.value().shard.devices.empty());
}

// ---------------------------------------------------------------------
// Sharded execution over N-GPU meshes: every sharded plan must stay
// bit-identical to the single-device plan, across mesh shapes, worker
// counts, and shard-level device loss.

class ShardedMeshTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new engine::SsbDatabase(engine::SsbDatabase::Generate(20'000, 17));
    ring4_ = new hw::SystemProfile(hw::NvlinkRingProfile(4));
    crossbar8_ = new hw::SystemProfile(hw::NvSwitchCrossbarProfile(8));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete ring4_;
    delete crossbar8_;
    db_ = nullptr;
    ring4_ = nullptr;
    crossbar8_ = nullptr;
  }

  static CompileOptions ShardedOptions(const hw::SystemProfile* profile) {
    CompileOptions options;
    options.policy = PlacementPolicy::kGpuPreferred;
    if (profile != nullptr) {
      options.profile = profile;
      options.shard_devices =
          profile->topology.DevicesOfKind(hw::DeviceKind::kGpu);
    }
    return options;
  }

  static const engine::SsbDatabase* db_;
  static const hw::SystemProfile* ring4_;
  static const hw::SystemProfile* crossbar8_;
};

const engine::SsbDatabase* ShardedMeshTest::db_ = nullptr;
const hw::SystemProfile* ShardedMeshTest::ring4_ = nullptr;
const hw::SystemProfile* ShardedMeshTest::crossbar8_ = nullptr;

TEST_F(ShardedMeshTest, ShardedPlansMatchSingleDeviceAcrossMeshesAndWorkers) {
  const data::LineitemQ6 lineitem = data::GenerateLineitemQ6(20'000, 7);
  const Q6PlanInput q6_input = Q6PlanInput::From(lineitem);
  std::vector<std::pair<std::string, engine::Query>> queries;
  for (const engine::NamedQuery& named : engine::SsbSuite(*db_)) {
    queries.emplace_back(named.name, named.query);
  }
  queries.emplace_back("q6", q6_input.MakeQuery());

  struct Mesh {
    const char* name;
    const hw::SystemProfile* profile;
    std::size_t shards;
  };
  const Mesh meshes[] = {{"single", nullptr, 1},
                         {"ring-4", ring4_, 4},
                         {"crossbar-8", crossbar8_, 8}};

  for (const auto& [name, query] : queries) {
    const auto reference_plan = Compile(query, ShardedOptions(nullptr));
    ASSERT_TRUE(reference_plan.ok()) << name << ": "
                                     << reference_plan.status();
    engine::ExecOptions reference_exec;
    reference_exec.workers = 2;
    const auto reference = ExecutePlan(reference_plan.value(),
                                       reference_exec);
    ASSERT_TRUE(reference.ok()) << name << ": " << reference.status();

    for (const Mesh& mesh : meshes) {
      const auto plan = Compile(query, ShardedOptions(mesh.profile));
      ASSERT_TRUE(plan.ok()) << name << ": " << plan.status();
      if (mesh.profile != nullptr) {
        ASSERT_EQ(plan.value().shard.shard_count(), mesh.shards);
        EXPECT_TRUE(plan.value().shard.active());
      }
      for (const std::size_t workers : {1u, 2u, 4u}) {
        SCOPED_TRACE(name + std::string(" mesh=") + mesh.name +
                     " workers=" + std::to_string(workers));
        engine::ExecOptions exec;
        exec.workers = workers;
        const auto sharded = ExecutePlan(plan.value(), exec);
        ASSERT_TRUE(sharded.ok()) << sharded.status();
        EXPECT_EQ(sharded.value().result, reference.value().result);
        EXPECT_EQ(sharded.value().shards_replaced, 0u);
        EXPECT_TRUE(sharded.value().used_gpu);
        if (mesh.profile != nullptr) {
          // One exchange row plus one probe row per shard.
          EXPECT_EQ(sharded.value().shards.size(), mesh.shards + 1);
        }
      }
    }
  }
}

TEST_F(ShardedMeshTest, DeviceOomOnOneShardDegradesOnlyThatShard) {
  const data::LineitemQ6 lineitem = data::GenerateLineitemQ6(20'000, 7);
  const Q6PlanInput q6_input = Q6PlanInput::From(lineitem);
  const engine::Query query = q6_input.MakeQuery();

  const auto reference_plan = Compile(query, ShardedOptions(nullptr));
  ASSERT_TRUE(reference_plan.ok()) << reference_plan.status();
  engine::ExecOptions reference_exec;
  reference_exec.workers = 2;
  const auto reference = ExecutePlan(reference_plan.value(),
                                     reference_exec);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (const hw::SystemProfile* profile : {ring4_, crossbar8_}) {
    SCOPED_TRACE(profile->name);
    const auto plan = Compile(query, ShardedOptions(profile));
    ASSERT_TRUE(plan.ok()) << plan.status();

    // Q6 has no build pipelines, so the plan.pipeline site sees one
    // "probe" hit then one "shard" hit per shard; after_hits=1 with one
    // allowed fire OOMs exactly the second shard's device admission.
    fault::FaultInjector injector(11);
    fault::FaultSpec spec;
    spec.probability = 1.0;
    spec.after_hits = 1;
    spec.max_fires = 1;
    spec.code = StatusCode::kResourceExhausted;
    injector.Arm(fault::kPlanPipeline, spec);

    engine::ExecOptions exec;
    exec.workers = 2;
    exec.injector = &injector;
    const auto sharded = ExecutePlan(plan.value(), exec);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_EQ(sharded.value().result, reference.value().result);
    EXPECT_EQ(sharded.value().shards_replaced, 1u);
    EXPECT_TRUE(sharded.value().used_gpu);
    EXPECT_TRUE(sharded.value().degraded);

    std::size_t cpu_shards = 0;
    for (const engine::PipelineOutcome& row : sharded.value().shards) {
      if (row.kind == "probe" && row.placement_used == "cpu") ++cpu_shards;
    }
    EXPECT_EQ(cpu_shards, 1u);
  }
}

TEST_F(ShardedMeshTest, ProbeFaultOnShardedPlanDescendsToCpu) {
  const data::LineitemQ6 lineitem = data::GenerateLineitemQ6(20'000, 7);
  const Q6PlanInput q6_input = Q6PlanInput::From(lineitem);
  const engine::Query query = q6_input.MakeQuery();

  const auto plan = Compile(query, ShardedOptions(ring4_));
  ASSERT_TRUE(plan.ok()) << plan.status();

  fault::FaultInjector injector(13);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 1;
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(fault::kPlanPipeline, spec);

  engine::ExecOptions exec;
  exec.workers = 2;
  exec.injector = &injector;
  const auto sharded = ExecutePlan(plan.value(), exec);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_FALSE(sharded.value().used_gpu);

  engine::ExecOptions clean_exec;
  clean_exec.workers = 2;
  const auto reference = ExecutePlan(plan.value(), clean_exec);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(sharded.value().result, reference.value().result);
}

TEST_F(ShardedMeshTest, ShardedDumpCarriesDeviceSetsAndExchange) {
  const engine::Query q2 = engine::SsbQ2(*db_);
  const auto plan = Compile(q2, ShardedOptions(ring4_));
  ASSERT_TRUE(plan.ok()) << plan.status();
  const std::string json = ToJson(plan.value(), "ssb-q2");
  EXPECT_NE(json.find("\"device_set\":[1,2,3,4]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shard\":{\"devices\":[1,2,3,4],\"partitions\":4}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"exchange\":{\"modelled_cost_s\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bottleneck_gib_s\":"), std::string::npos) << json;
  // 4 devices exchange over all 12 ordered pairs.
  std::size_t routes = 0;
  for (std::size_t pos = json.find("\"src\":"); pos != std::string::npos;
       pos = json.find("\"src\":", pos + 1)) {
    ++routes;
  }
  EXPECT_EQ(routes, 12u);

  // A single-device plan still records its one device; the shard
  // descriptor stays inactive (one partition, no exchange routes).
  const auto single = Compile(q2, ShardedOptions(nullptr));
  ASSERT_TRUE(single.ok());
  const std::string single_json = ToJson(single.value(), "ssb-q2");
  EXPECT_NE(single_json.find("\"shard\":{\"devices\":[2],\"partitions\":1}"),
            std::string::npos)
      << single_json;
  EXPECT_NE(single_json.find("\"routes\":[]"), std::string::npos)
      << single_json;
}

}  // namespace
}  // namespace pump::plan
