#include <cstdint>
#include <numeric>

#include "data/tpch.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "join/partitioned_gpu.h"
#include "ops/aggregate.h"
#include "ops/q6.h"
#include "ops/scan.h"

namespace pump::ops {
namespace {

TEST(CompareTest, AllOperators) {
  EXPECT_TRUE(Compare(CompareOp::kLt, 1, 2));
  EXPECT_FALSE(Compare(CompareOp::kLt, 2, 2));
  EXPECT_TRUE(Compare(CompareOp::kLe, 2, 2));
  EXPECT_TRUE(Compare(CompareOp::kEq, 2, 2));
  EXPECT_FALSE(Compare(CompareOp::kEq, 1, 2));
  EXPECT_TRUE(Compare(CompareOp::kGe, 2, 2));
  EXPECT_TRUE(Compare(CompareOp::kGt, 3, 2));
  EXPECT_TRUE(Compare(CompareOp::kNe, 1, 2));
}

TEST(ScanTest, SelectsMatchingRows) {
  const std::vector<std::int32_t> column = {5, 1, 9, 3, 7, 2};
  const SelectionVector selection =
      ScanColumn(column, CompareOp::kLt, 5);
  EXPECT_EQ(selection, (SelectionVector{1, 3, 5}));
}

TEST(ScanTest, EmptyColumn) {
  const std::vector<std::int32_t> column;
  EXPECT_TRUE(ScanColumn(column, CompareOp::kGt, 0).empty());
}

TEST(ScanTest, RefineIsConjunctive) {
  const std::vector<std::int32_t> a = {1, 5, 3, 8, 2};
  const std::vector<std::int32_t> b = {9, 1, 9, 9, 1};
  SelectionVector selection = ScanColumn(a, CompareOp::kLt, 6);  // 0,1,2,4
  selection = RefineSelection(selection, b, CompareOp::kGt, 5);  // 0,2
  EXPECT_EQ(selection, (SelectionVector{0, 2}));
}

TEST(ScanTest, SumSelected) {
  const std::vector<std::int64_t> values = {10, 20, 30, 40};
  EXPECT_EQ(SumSelected({1, 3}, values), 60);
  EXPECT_EQ(SumSelected({}, values), 0);
}

TEST(ScanTest, ParallelMatchesSerial) {
  std::vector<std::int32_t> column(100'000);
  for (std::size_t i = 0; i < column.size(); ++i) {
    column[i] = static_cast<std::int32_t>((i * 37) % 1000);
  }
  const SelectionVector serial = ScanColumn(column, CompareOp::kGe, 500);
  for (std::size_t workers : {1u, 2u, 4u, 7u}) {
    EXPECT_EQ(ScanColumnParallel(column, CompareOp::kGe, 500, workers),
              serial)
        << workers << " workers";
  }
}

TEST(ScanTest, Q6AsScanPipeline) {
  // Build Q6 from the generic scan primitives and cross-check against the
  // dedicated kernel — an integration test across ops modules.
  const data::LineitemQ6 table = data::GenerateLineitemQ6(50'000, 41);
  SelectionVector sel =
      ScanColumn(table.shipdate, CompareOp::kGe, data::kQ6DateLo);
  sel = RefineSelection(sel, table.shipdate, CompareOp::kLt,
                        data::kQ6DateHi);
  sel = RefineSelection(sel, table.discount, CompareOp::kGe,
                        data::kQ6DiscountLo);
  sel = RefineSelection(sel, table.discount, CompareOp::kLe,
                        data::kQ6DiscountHi);
  sel = RefineSelection(sel, table.quantity, CompareOp::kLt,
                        data::kQ6QuantityLt);

  std::int64_t revenue = 0;
  for (std::uint32_t row : sel) {
    revenue += table.extendedprice[row] * table.discount[row];
  }
  const Q6Result direct = RunQ6Branching(table);
  EXPECT_EQ(revenue, direct.revenue);
  EXPECT_EQ(sel.size(), direct.qualifying_rows);
}

TEST(GroupByTest, BasicAggregation) {
  DenseGroupBy agg(4);
  ASSERT_TRUE(agg.Accumulate(1, 10).ok());
  ASSERT_TRUE(agg.Accumulate(1, 20).ok());
  ASSERT_TRUE(agg.Accumulate(3, 5).ok());
  const auto groups = agg.Finalize();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key, 1);
  EXPECT_EQ(groups[0].count, 2u);
  EXPECT_EQ(groups[0].sum, 30);
  EXPECT_EQ(groups[1].key, 3);
  EXPECT_EQ(groups[1].sum, 5);
}

TEST(GroupByTest, RejectsOutOfDomain) {
  DenseGroupBy agg(4);
  EXPECT_FALSE(agg.Accumulate(4, 1).ok());
  EXPECT_FALSE(agg.Accumulate(-1, 1).ok());
}

TEST(GroupByTest, ParallelAccumulationExact) {
  constexpr std::size_t kRows = 200'000;
  constexpr std::size_t kGroups = 64;
  std::vector<std::int64_t> keys(kRows), values(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    keys[i] = static_cast<std::int64_t>(i % kGroups);
    values[i] = static_cast<std::int64_t>(i);
  }
  DenseGroupBy agg(kGroups);
  ASSERT_TRUE(agg.AccumulateColumns(keys, values, 4).ok());
  const auto groups = agg.Finalize();
  ASSERT_EQ(groups.size(), kGroups);
  std::uint64_t total_count = 0;
  std::int64_t total_sum = 0;
  for (const GroupAggregate& group : groups) {
    total_count += group.count;
    total_sum += group.sum;
  }
  EXPECT_EQ(total_count, kRows);
  EXPECT_EQ(total_sum,
            static_cast<std::int64_t>(kRows) * (kRows - 1) / 2);
}

TEST(GroupByTest, ColumnLengthMismatch) {
  DenseGroupBy agg(4);
  EXPECT_FALSE(agg.AccumulateColumns({1, 2}, {1}, 1).ok());
}

}  // namespace
}  // namespace pump::ops

namespace pump::join {
namespace {

TEST(PartitionedGpuModelTest, PcieOutOfCorePrefersPartitioning) {
  // The historical motivation (Sec. 5.2): with a 24 GiB hash table on
  // PCI-e, the partitioned join must beat the NOPA join by a wide margin.
  hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel nopa(&intel);
  const PartitionedGpuJoinModel partitioned(&intel);
  const data::WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);
  const double total = static_cast<double>(big.total_tuples());

  NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = HashTablePlacement::Single(hw::kCpu0);
  config.method = transfer::TransferMethod::kZeroCopy;
  config.relation_memory = memory::MemoryKind::kPinned;
  const double nopa_tput =
      nopa.Estimate(config, big).value().Throughput(total).per_second();

  const double part_tput =
      partitioned
          .Estimate(hw::kCpu0, hw::kGpu0,
                    transfer::TransferMethod::kPinnedCopy, big)
          .value()
          .Throughput(total)
          .per_second();
  EXPECT_GT(part_tput, 5.0 * nopa_tput);
}

TEST(PartitionedGpuModelTest, NvlinkPrefersNopa) {
  // With a fast interconnect the partition passes are pure overhead: the
  // hybrid-table NOPA join wins (the paper's argument for NP-HJ).
  hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel nopa(&ibm);
  const PartitionedGpuJoinModel partitioned(&ibm);
  const data::WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);
  const double total = static_cast<double>(big.total_tuples());

  NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0,
                                                 15.0 / 24.0);
  const double nopa_tput =
      nopa.Estimate(config, big).value().Throughput(total).per_second();
  const double part_tput =
      partitioned
          .Estimate(hw::kCpu0, hw::kGpu0,
                    transfer::TransferMethod::kPinnedCopy, big)
          .value()
          .Throughput(total)
          .per_second();
  EXPECT_GT(nopa_tput, part_tput);
}

TEST(PartitionedGpuModelTest, InCoreNopaWinsOnBothSystems) {
  // Small build sides: NOPA's single pass beats partitioning everywhere.
  const data::WorkloadSpec small =
      data::WorkloadC16(128ull << 20, 1024ull << 20);
  for (bool ibm_system : {true, false}) {
    hw::SystemProfile profile =
        ibm_system ? hw::Ac922Profile() : hw::XeonProfile();
    const NopaJoinModel nopa(&profile);
    const PartitionedGpuJoinModel partitioned(&profile);
    const double total = static_cast<double>(small.total_tuples());

    NopaConfig config;
    config.device = hw::kGpu0;
    config.r_location = hw::kCpu0;
    config.s_location = hw::kCpu0;
    config.hash_table = HashTablePlacement::Single(hw::kGpu0);
    config.method = ibm_system ? transfer::TransferMethod::kCoherence
                               : transfer::TransferMethod::kZeroCopy;
    config.relation_memory = ibm_system ? memory::MemoryKind::kPageable
                                        : memory::MemoryKind::kPinned;
    const double nopa_tput =
        nopa.Estimate(config, small).value().Throughput(total).per_second();
    const double part_tput =
        partitioned
            .Estimate(hw::kCpu0, hw::kGpu0,
                      transfer::TransferMethod::kPinnedCopy, small)
            .value()
            .Throughput(total)
            .per_second();
    EXPECT_GT(nopa_tput, part_tput) << (ibm_system ? "IBM" : "Intel");
  }
}

}  // namespace
}  // namespace pump::join
