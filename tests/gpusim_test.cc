#include "common/units.h"
#include "gpusim/occupancy.h"
#include "gtest/gtest.h"
#include "hw/device.h"
#include "hw/memory_spec.h"
#include "hw/topology.h"
#include "sim/access_path.h"

namespace pump::gpusim {
namespace {

TEST(OccupancyTest, FullOccupancySimpleKernel) {
  OccupancyModel model;
  KernelConfig kernel;
  kernel.threads_per_block = 256;
  kernel.registers_per_thread = 32;
  // 2048 threads / 256 = 8 blocks, 65536 regs / (32*256) = 8 blocks:
  // full occupancy, 64 warps.
  EXPECT_EQ(model.WarpsPerSm(kernel), 64);
}

TEST(OccupancyTest, RegisterPressureLimitsWarps) {
  OccupancyModel model;
  KernelConfig heavy;
  heavy.threads_per_block = 256;
  heavy.registers_per_thread = 128;
  // 65536 / (128*256) = 2 blocks = 16 warps.
  EXPECT_EQ(model.WarpsPerSm(heavy), 16);
}

TEST(OccupancyTest, SharedMemoryLimitsWarps) {
  OccupancyModel model;
  KernelConfig shared_heavy;
  shared_heavy.threads_per_block = 256;
  shared_heavy.registers_per_thread = 32;
  shared_heavy.shared_memory_per_block = 48 * 1024;
  // 96 KiB / 48 KiB = 2 blocks = 16 warps.
  EXPECT_EQ(model.WarpsPerSm(shared_heavy), 16);
}

TEST(OccupancyTest, BlockSlotLimit) {
  OccupancyModel model;
  KernelConfig tiny_blocks;
  tiny_blocks.threads_per_block = 32;
  tiny_blocks.registers_per_thread = 16;
  // 2048/32 = 64 blocks but only 32 slots -> 32 warps.
  EXPECT_EQ(model.WarpsPerSm(tiny_blocks), 32);
}

TEST(OccupancyTest, OutstandingTrafficScalesWithOccupancy) {
  OccupancyModel model;
  KernelConfig full;
  full.threads_per_block = 256;
  full.registers_per_thread = 32;
  KernelConfig half = full;
  half.registers_per_thread = 64;  // Halves the resident blocks.
  EXPECT_NEAR(model.OutstandingBytes(full) / model.OutstandingBytes(half),
              2.0, 1e-9);
}

TEST(OccupancyTest, FullOccupancySaturatesNvlink) {
  // The scientific point of Sec. 3: a fully occupied V100 keeps enough
  // loads in flight to saturate NVLink 2.0 (63 GiB/s at 434 ns) and even
  // its own HBM2 (729 GiB/s at 282 ns).
  OccupancyModel model;
  KernelConfig kernel;
  kernel.threads_per_block = 256;
  kernel.registers_per_thread = 32;
  EXPECT_GT(model.AchievableBandwidth(kernel, Nanoseconds(434)).value(),
            GiBPerSecond(63.0).value());
  EXPECT_GT(model.AchievableBandwidth(kernel, Nanoseconds(282)).value(),
            GiBPerSecond(729.0).value());
}

TEST(OccupancyTest, FewWarpsSufficeForNvlink) {
  // Latency hiding is cheap: only a handful of warps per SM are needed to
  // saturate the interconnect — the rest hide the hash-table latency.
  OccupancyModel model;
  const double warps =
      model.WarpsNeededFor(GiBPerSecond(63.0), Nanoseconds(434));
  EXPECT_LT(warps, 4.0);
  EXPECT_GT(warps, 0.5);
}

TEST(OccupancyTest, DerivedMlpCoversDeviceSpec) {
  // Cross-validation: the effective outstanding-traffic constants in the
  // calibrated DeviceSpec must not exceed what the occupancy model says
  // the architecture can theoretically sustain.
  OccupancyModel model;
  KernelConfig kernel;
  kernel.threads_per_block = 256;
  kernel.registers_per_thread = 32;
  const hw::DeviceSpec v100 = hw::TeslaV100();
  EXPECT_GE(model.OutstandingBytes(kernel).bytes(),
            v100.max_outstanding.bytes());
  EXPECT_GE(model.OutstandingRequests(kernel),
            v100.max_outstanding_requests);
}

TEST(OccupancyTest, CpuCannotHideThatLatency) {
  // Contrast: the POWER9's outstanding traffic (DeviceSpec) cannot
  // saturate even one NVLink direction at GPU-memory latency — the
  // architectural reason the paper keeps hash tables away from GPU
  // memory for CPU probes (Sec. 6.2).
  const hw::DeviceSpec p9 = hw::Power9();
  const Seconds latency = Nanoseconds(282 + 366);
  EXPECT_LT((p9.max_outstanding / latency).value(),
            GiBPerSecond(63.0).value());
}

TEST(OccupancyTest, LaunchOverheadLinear) {
  GpuArch arch;
  EXPECT_DOUBLE_EQ(LaunchOverhead(arch, 0).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(LaunchOverhead(arch, 100).seconds(),
                   100 * arch.launch_latency.seconds());
}

TEST(OccupancyTest, ZeroLatencyGuards) {
  OccupancyModel model;
  KernelConfig kernel;
  EXPECT_DOUBLE_EQ(
      model.AchievableBandwidth(kernel, Seconds(0.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      model.AchievableAccessRate(kernel, Seconds(0.0)).value(), 0.0);
}

}  // namespace
}  // namespace pump::gpusim
