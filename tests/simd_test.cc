// SIMD-vs-scalar golden equivalence suite for the runtime-dispatched
// probe kernels (hash/simd_probe.h) and the software write-combining
// radix scatter (join/swwc.h).
//
// The dispatch contract is bit-identity: for any input, ProbeBatch under
// AVX2 dispatch must produce exactly the found/values streams and match
// count of the interleaved path, which in turn must match a scalar
// Lookup loop. Every test therefore runs its workload under BOTH
// dispatch modes (auto and ScopedForceScalar) and memcmps the outputs
// against a scalar reference. On hosts without usable AVX2 the two
// modes collapse to the same interleaved path and the suite degenerates
// to (still useful) self-consistency checks.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "data/generator.h"
#include "exec/work_stealing.h"
#include "gtest/gtest.h"
#include "hash/hash_table.h"
#include "hash/hybrid_table.h"
#include "hw/topology.h"
#include "join/nopa.h"
#include "join/radix.h"
#include "join/swwc.h"
#include "memory/allocator.h"

namespace pump {
namespace {

using hash::LinearProbingHashTable;
using hash::PerfectHashTable;

struct ProbeOutput {
  std::size_t matches = 0;
  std::vector<std::int64_t> values;
  std::vector<char> found;

  friend bool operator==(const ProbeOutput&, const ProbeOutput&) = default;
};

/// Scalar-reference probe: one Lookup per key, the semantics every
/// batched variant must reproduce exactly.
template <typename Table>
ProbeOutput ScalarReference(const Table& table,
                            const std::vector<std::int64_t>& keys) {
  ProbeOutput out;
  out.values.assign(keys.size(), 0);
  out.found.assign(keys.size(), 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::int64_t value = 0;
    if (table.Lookup(keys[i], &value)) {
      out.values[i] = value;
      out.found[i] = 1;
      ++out.matches;
    }
  }
  return out;
}

/// Runs ProbeBatch under the current dispatch mode.
template <typename Table>
ProbeOutput RunBatch(const Table& table,
                     const std::vector<std::int64_t>& keys) {
  ProbeOutput out;
  out.values.assign(keys.size(), 0);
  out.found.assign(keys.size(), 0);
  out.matches = table.ProbeBatch(
      keys.data(), keys.size(), out.values.data(),
      reinterpret_cast<bool*>(out.found.data()));
  for (char& f : out.found) f = f ? 1 : 0;
  return out;
}

/// The golden check: scalar reference == forced-scalar ProbeBatch ==
/// auto-dispatch ProbeBatch, all three streams bit-identical.
template <typename Table>
void ExpectDispatchEquivalence(const Table& table,
                               const std::vector<std::int64_t>& keys,
                               const std::string& label) {
  const ProbeOutput reference = ScalarReference(table, keys);
  ProbeOutput interleaved;
  {
    common::ScopedForceScalar force;
    interleaved = RunBatch(table, keys);
  }
  const ProbeOutput dispatched = RunBatch(table, keys);
  EXPECT_EQ(reference, interleaved) << label << ": interleaved != scalar";
  EXPECT_EQ(reference, dispatched) << label << ": dispatched != scalar";
}

TEST(CpuFeaturesTest, ParseForceScalarEnv) {
  EXPECT_FALSE(common::ParseForceScalarEnv(nullptr));
  EXPECT_FALSE(common::ParseForceScalarEnv(""));
  EXPECT_FALSE(common::ParseForceScalarEnv("0"));
  EXPECT_TRUE(common::ParseForceScalarEnv("1"));
  EXPECT_TRUE(common::ParseForceScalarEnv("true"));
  EXPECT_TRUE(common::ParseForceScalarEnv("yes"));
}

TEST(CpuFeaturesTest, ForceScalarOverridesDispatch) {
  const bool avx2_host = common::Avx2KernelsCompiledIn() &&
                         common::DetectCpuFeatures().avx2_usable;
  // The ambient flag may already be set (PUMP_FORCE_SCALAR=1 lane).
  const bool ambient_force = common::ForceScalar();
  {
    common::ScopedForceScalar force;
    EXPECT_EQ(common::ActiveSimdDispatch(), common::SimdDispatch::kScalar);
  }
  // Restored on scope exit: dispatch reflects host + ambient flag again.
  EXPECT_EQ(common::ForceScalar(), ambient_force);
  EXPECT_EQ(common::ActiveSimdDispatch() == common::SimdDispatch::kAvx2,
            avx2_host && !ambient_force);
}

TEST(CpuFeaturesTest, DispatchNameRoundTrips) {
  EXPECT_STREQ(common::SimdDispatchName(common::SimdDispatch::kScalar),
               "scalar");
  EXPECT_STREQ(common::SimdDispatchName(common::SimdDispatch::kAvx2),
               "avx2");
}

TEST(CpuFeaturesTest, UsableImpliesReported) {
  const common::CpuFeatures features = common::DetectCpuFeatures();
  if (features.avx2_usable) {
    EXPECT_TRUE(features.avx2);
    EXPECT_TRUE(features.osxsave);
  }
}

class SimdProbeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kEntries = 1 << 12;

  PerfectHashTable<std::int64_t, std::int64_t> MakePerfect() {
    PerfectHashTable<std::int64_t, std::int64_t> table(kEntries);
    for (std::int64_t key = 0; key < static_cast<std::int64_t>(kEntries);
         ++key) {
      EXPECT_TRUE(table.Insert(key, key * 3 + 1).ok());
    }
    return table;
  }

  LinearProbingHashTable<std::int64_t, std::int64_t> MakeLinear(
      double load_factor = 0.5) {
    LinearProbingHashTable<std::int64_t, std::int64_t> table(kEntries,
                                                             load_factor);
    for (std::int64_t key = 0; key < static_cast<std::int64_t>(kEntries);
         ++key) {
      EXPECT_TRUE(table.Insert(key * 7 + 1, key - 5).ok());
    }
    return table;
  }
};

TEST_F(SimdProbeTest, PerfectUniform) {
  const auto table = MakePerfect();
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 14, kEntries, 3);
  ExpectDispatchEquivalence(table, outer.keys, "perfect/uniform");
}

TEST_F(SimdProbeTest, PerfectMissHeavy) {
  const auto table = MakePerfect();
  // Selectivity 0: every probe misses (keys shifted out of the domain).
  const auto outer =
      data::GenerateOuterSelective<std::int64_t, std::int64_t>(
          1 << 13, kEntries, 0.0, 5);
  ExpectDispatchEquivalence(table, outer.keys, "perfect/miss-heavy");
}

TEST_F(SimdProbeTest, PerfectOutOfDomainAndNegative) {
  const auto table = MakePerfect();
  std::vector<std::int64_t> keys;
  Rng rng(11);
  for (int i = 0; i < 4096; ++i) {
    switch (i & 3) {
      case 0:
        keys.push_back(static_cast<std::int64_t>(rng.Next64() % kEntries));
        break;
      case 1:  // Above the domain: must miss without faulting.
        keys.push_back(static_cast<std::int64_t>(
            kEntries + rng.Next64() % (1 << 20)));
        break;
      case 2:  // Negative, including the empty sentinel -1.
        keys.push_back(-1 - static_cast<std::int64_t>(rng.Next64() % 3));
        break;
      default:  // INT64 extremes exercise the lane-mask edge cases.
        keys.push_back((i & 4) ? std::numeric_limits<std::int64_t>::max()
                               : std::numeric_limits<std::int64_t>::min());
        break;
    }
  }
  ExpectDispatchEquivalence(table, keys, "perfect/out-of-domain");
}

TEST_F(SimdProbeTest, PerfectUnalignedCountsAndTails) {
  const auto table = MakePerfect();
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      64, kEntries, 7);
  // Every count in [0, 33) exercises all tail lengths of the 8-wide and
  // 4-wide loops, including the empty batch.
  for (std::size_t count = 0; count < 33; ++count) {
    std::vector<std::int64_t> keys(outer.keys.begin(),
                                   outer.keys.begin() + count);
    ExpectDispatchEquivalence(table, keys,
                              "perfect/count=" + std::to_string(count));
  }
}

TEST_F(SimdProbeTest, LinearUniform) {
  const auto table = MakeLinear();
  std::vector<std::int64_t> keys;
  Rng rng(13);
  for (int i = 0; i < (1 << 14); ++i) {
    // ~half present (key = 7k+1), ~half absent.
    keys.push_back(static_cast<std::int64_t>(rng.Next64() % (kEntries * 7)));
  }
  ExpectDispatchEquivalence(table, keys, "linear/uniform");
}

TEST_F(SimdProbeTest, LinearZipf) {
  const auto table = MakeLinear();
  const auto outer = data::GenerateOuterZipf<std::int64_t, std::int64_t>(
      1 << 14, kEntries, 1.25, 17);
  // Zipf keys land in [0, kEntries); remap onto the 7k+1 key domain so
  // the skew hits resident keys.
  std::vector<std::int64_t> keys = outer.keys;
  for (std::int64_t& key : keys) key = key * 7 + 1;
  ExpectDispatchEquivalence(table, keys, "linear/zipf");
}

TEST_F(SimdProbeTest, LinearCollisionHeavy) {
  // Load factor 0.85 in a small table: long probe chains, so the vector
  // kernel's scalar collision fallback does real work.
  LinearProbingHashTable<std::int64_t, std::int64_t> table(1 << 8, 0.85);
  for (std::int64_t key = 0; key < (1 << 8); ++key) {
    ASSERT_TRUE(table.Insert(key * 33, key).ok());
  }
  std::vector<std::int64_t> keys;
  for (std::int64_t key = 0; key < (1 << 10); ++key) {
    keys.push_back(key * 11);
  }
  ExpectDispatchEquivalence(table, keys, "linear/collision-heavy");
}

TEST_F(SimdProbeTest, LinearEmptySentinelProbe) {
  // Probing key -1 (the empty-slot sentinel) must miss: the scalar chain
  // reports "empty slot -> absent" before the key compare, and the
  // vector kernel must order its masks the same way.
  const auto table = MakeLinear();
  std::vector<std::int64_t> keys(64, -1);
  keys.push_back(1);  // present (k=0)
  keys.push_back(8);  // present (k=1)
  ExpectDispatchEquivalence(table, keys, "linear/empty-sentinel");
}

TEST_F(SimdProbeTest, LinearUnalignedCountsAndTails) {
  const auto table = MakeLinear();
  Rng rng(19);
  std::vector<std::int64_t> pool;
  for (int i = 0; i < 40; ++i) {
    pool.push_back(static_cast<std::int64_t>(rng.Next64() % (kEntries * 8)));
  }
  for (std::size_t count = 0; count < 33; ++count) {
    std::vector<std::int64_t> keys(pool.begin(), pool.begin() + count);
    ExpectDispatchEquivalence(table, keys,
                              "linear/count=" + std::to_string(count));
  }
}

TEST(SimdHybridTest, HybridSpillProbeBitIdentical) {
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/true);
  const std::uint64_t gpu_capacity = topo.memory(hw::kGpu0).capacity.u64();
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, 4096,
      /*gpu_reserve_bytes=*/gpu_capacity - 16 * 1024);
  ASSERT_TRUE(table.ok());
  ASSERT_LT(table.value().gpu_fraction(), 1.0);  // actually spilled
  for (std::int64_t key = 0; key < 4096; key += 3) {
    ASSERT_TRUE(table.value().table().Insert(key, key + 100).ok());
  }
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 13, 4096, 23);
  ExpectDispatchEquivalence(table.value(), outer.keys, "hybrid/spill");
}

// --- SWWC radix partition equivalence ------------------------------------

using Partitioned64 = join::Partitioned<std::int64_t, std::int64_t>;

void ExpectSamePartitioning(const Partitioned64& a, const Partitioned64& b,
                            const std::string& label) {
  ASSERT_EQ(a.offsets, b.offsets) << label;
  ASSERT_EQ(a.keys.size(), b.keys.size()) << label;
  EXPECT_TRUE(std::equal(a.keys.begin(), a.keys.end(), b.keys.begin()))
      << label << ": keys differ";
  EXPECT_TRUE(
      std::equal(a.payloads.begin(), a.payloads.end(), b.payloads.begin()))
      << label << ": payloads differ";
}

TEST(SwwcPartitionTest, MatchesDirectScatter) {
  const auto input = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      /*m=*/50'000, /*n=*/50'000, 29);
  for (int radix_bits : {0, 3, 8}) {
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      Partitioned64 reference;
      {
        common::ScopedForceScalar force;
        reference = join::RadixPartition(input, radix_bits, workers);
      }
      const Partitioned64 combined =
          join::RadixPartition(input, radix_bits, workers);
      ExpectSamePartitioning(reference, combined,
                             "bits=" + std::to_string(radix_bits) +
                                 " workers=" + std::to_string(workers));
    }
  }
}

TEST(SwwcPartitionTest, RaggedRegionBoundaries) {
  // Worker-region sizes that are not multiples of the 8-tuple line force
  // partial head/tail lines at every region boundary — the stores that
  // must NOT be streamed (they would clobber a neighbour's slots).
  const auto input = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      /*m=*/1021, /*n=*/1021, 31);  // prime size: every chunk ragged
  for (std::size_t workers = 1; workers <= 5; ++workers) {
    Partitioned64 reference;
    {
      common::ScopedForceScalar force;
      reference = join::RadixPartition(input, /*radix_bits=*/4, workers);
    }
    const Partitioned64 combined =
        join::RadixPartition(input, /*radix_bits=*/4, workers);
    ExpectSamePartitioning(reference, combined,
                           "ragged workers=" + std::to_string(workers));
  }
}

TEST(SwwcPartitionTest, RadixJoinBitIdenticalAcrossDispatch) {
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(
      1 << 12, 37);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 14, 1 << 12, 41);
  join::RadixJoinOptions options;
  options.radix_bits = 6;
  options.workers = 2;
  const auto dispatched = join::RunRadixJoin(inner, outer, options);
  ASSERT_TRUE(dispatched.ok());
  common::ScopedForceScalar force;
  const auto scalar = join::RunRadixJoin(inner, outer, options);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(dispatched.value().matches, scalar.value().matches);
  EXPECT_EQ(dispatched.value().payload_sum, scalar.value().payload_sum);
}

TEST(SwwcPartitionTest, MorselLedgerPreservedAcrossDispatch) {
  // The SWWC scatter changes how stores reach memory, not the morsel
  // structure above it: a work-stealing probe over the partitioned output
  // must still claim every morsel exactly once (the hb-claims ledger; 0
  // in release builds where the epoch counters compile out).
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(
      1 << 10, 43);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 13, 1 << 10, 47);
  PerfectHashTable<std::int64_t, std::int64_t> table(1 << 10);
  ASSERT_TRUE(join::BuildPhase(&table, inner, 2).ok());

  for (const bool force_scalar : {false, true}) {
    common::ScopedForceScalar force(force_scalar);
    constexpr std::size_t kMorsel = 256;
    exec::WorkStealingDispatcher dispatcher(outer.size(), kMorsel, 2);
    std::uint64_t matches = 0;
    std::uint64_t sum = 0;
    std::size_t morsels = 0;
    while (auto morsel = dispatcher.Next(0)) {
      ++morsels;
      join::ProbeRange<PerfectHashTable<std::int64_t, std::int64_t>,
                       std::int64_t, std::int64_t>(
          table, outer.keys.data(), morsel->begin, morsel->end, &matches,
          &sum);
    }
    EXPECT_EQ(morsels, (outer.size() + kMorsel - 1) / kMorsel);
    const std::uint64_t claims = dispatcher.hb_claims();
    EXPECT_TRUE(claims == 0 || claims == morsels)
        << "ledger " << claims << " != " << morsels;
  }
}

}  // namespace
}  // namespace pump
