#include <algorithm>
#include <set>

#include "common/units.h"
#include "data/generator.h"
#include "data/relation.h"
#include "data/tpch.h"
#include "data/workloads.h"
#include "data/zipf.h"
#include "gtest/gtest.h"
#include "sim/cache_model.h"

namespace pump::data {
namespace {

TEST(WorkloadTest, Table2WorkloadA) {
  const WorkloadSpec a = WorkloadA();
  EXPECT_EQ(a.r_tuples, 1ull << 27);
  EXPECT_EQ(a.s_tuples, 1ull << 31);
  EXPECT_EQ(a.tuple_bytes(), 16u);
  EXPECT_EQ(a.r_bytes(), 2 * kGiB);
  EXPECT_EQ(a.s_bytes(), 32 * kGiB);
  EXPECT_EQ(a.total_bytes(), 34 * kGiB);
}

TEST(WorkloadTest, Table2WorkloadB) {
  const WorkloadSpec b = WorkloadB();
  EXPECT_EQ(b.r_tuples, 1ull << 18);
  EXPECT_EQ(b.r_bytes(), 4 * kMiB);
  EXPECT_EQ(b.s_bytes(), 32 * kGiB);
}

TEST(WorkloadTest, Table2WorkloadC) {
  const WorkloadSpec c = WorkloadC();
  EXPECT_EQ(c.r_tuples, 1024ull * 1000 * 1000);
  EXPECT_EQ(c.tuple_bytes(), 8u);
  // Table 2: 7.6 GiB per relation.
  EXPECT_NEAR(static_cast<double>(c.r_bytes()) / kGiB, 7.6, 0.05);
}

TEST(WorkloadTest, HashTableBytesAtLoadFactorOne) {
  // Fig. 17: 2048 M tuples x 16 B = 32 GiB = 2x GPU memory.
  const WorkloadSpec c16 = WorkloadC16(2048ull << 20, 2048ull << 20);
  EXPECT_EQ(c16.hash_table_bytes(), c16.r_tuples * 16);
}

TEST(WorkloadTest, ScaleToBytesPreservesRatio) {
  const WorkloadSpec a = WorkloadA();
  const WorkloadSpec scaled = ScaleToBytes(a, 13 * kGiB);
  EXPECT_NEAR(static_cast<double>(scaled.total_bytes()) / kGiB, 13.0, 0.01);
  const double ratio_before =
      static_cast<double>(a.s_tuples) / static_cast<double>(a.r_tuples);
  const double ratio_after = static_cast<double>(scaled.s_tuples) /
                             static_cast<double>(scaled.r_tuples);
  EXPECT_NEAR(ratio_after / ratio_before, 1.0, 1e-6);
}

TEST(WorkloadTest, ScaleCardinalitiesNeverZero) {
  const WorkloadSpec tiny = ScaleCardinalities(WorkloadA(), 1e-12);
  EXPECT_GE(tiny.r_tuples, 1u);
  EXPECT_GE(tiny.s_tuples, 1u);
}

TEST(GeneratorTest, InnerKeysAreDensePermutation) {
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(1000, 42);
  ASSERT_EQ(inner.size(), 1000u);
  std::set<std::int64_t> keys(inner.keys.begin(), inner.keys.end());
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_EQ(*keys.begin(), 0);
  EXPECT_EQ(*keys.rbegin(), 999);
}

TEST(GeneratorTest, InnerIsShuffled) {
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(1000, 42);
  bool sorted = std::is_sorted(inner.keys.begin(), inner.keys.end());
  EXPECT_FALSE(sorted);
}

TEST(GeneratorTest, PayloadDerivedFromKey) {
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(100, 1);
  for (std::size_t i = 0; i < inner.size(); ++i) {
    EXPECT_EQ(inner.payloads[i], inner.keys[i] + kPayloadOffset);
  }
}

TEST(GeneratorTest, Deterministic) {
  const auto a = GenerateInner<std::int64_t, std::int64_t>(500, 7);
  const auto b = GenerateInner<std::int64_t, std::int64_t>(500, 7);
  EXPECT_EQ(a.keys, b.keys);
  const auto c = GenerateInner<std::int64_t, std::int64_t>(500, 8);
  EXPECT_NE(a.keys, c.keys);
}

TEST(GeneratorTest, OuterUniformInDomain) {
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(10000, 256, 3);
  ASSERT_EQ(outer.size(), 10000u);
  for (std::int64_t key : outer.keys) {
    ASSERT_GE(key, 0);
    ASSERT_LT(key, 256);
  }
  // Every key of a small domain should appear.
  std::set<std::int64_t> seen(outer.keys.begin(), outer.keys.end());
  EXPECT_EQ(seen.size(), 256u);
}

TEST(GeneratorTest, OuterZipfSkewsTowardsHotKeys) {
  const std::size_t n = 1u << 16;
  const auto skewed =
      GenerateOuterZipf<std::int64_t, std::int64_t>(50000, n, 1.5, 9);
  std::size_t hot = 0;
  for (std::int64_t key : skewed.keys) {
    ASSERT_GE(key, 0);
    ASSERT_LT(key, static_cast<std::int64_t>(n));
    if (key < 1000) ++hot;
  }
  // Sec. 7.2.8: ~97.5% of accesses hit the top-1000 keys at z = 1.5.
  EXPECT_GT(static_cast<double>(hot) / 50000.0, 0.93);
}

TEST(GeneratorTest, ZipfZeroIsRoughlyUniform) {
  const std::size_t n = 1024;
  const auto flat =
      GenerateOuterZipf<std::int64_t, std::int64_t>(100000, n, 0.0, 5);
  std::size_t hot = 0;
  for (std::int64_t key : flat.keys) {
    if (key < 102) ++hot;  // ~10% of the domain.
  }
  EXPECT_NEAR(static_cast<double>(hot) / 100000.0, 0.1, 0.02);
}

TEST(GeneratorTest, SelectiveMatchesFraction) {
  const std::size_t n = 4096;
  for (double sel : {0.0, 0.25, 0.5, 1.0}) {
    const auto outer = GenerateOuterSelective<std::int64_t, std::int64_t>(
        40000, n, sel, 17);
    std::size_t matching = 0;
    for (std::int64_t key : outer.keys) {
      if (key < static_cast<std::int64_t>(n)) ++matching;
    }
    EXPECT_NEAR(static_cast<double>(matching) / 40000.0, sel, 0.01)
        << "sel=" << sel;
  }
}

TEST(ZipfTest, RanksWithinDomain) {
  ZipfGenerator zipf(100, 1.0);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t rank = zipf.Next(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
  }
}

TEST(ZipfTest, RankOneIsHottest) {
  ZipfGenerator zipf(1000, 1.2);
  Rng rng(21);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t rank = zipf.Next(rng);
    if (rank <= 10) ++counts[rank];
  }
  // Monotonically decreasing counts over the first ranks.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
  EXPECT_GT(counts[4], counts[8]);
}

TEST(ZipfTest, FrequenciesMatchTheory) {
  const double s = 1.0;
  const std::uint64_t n = 1u << 20;
  ZipfGenerator zipf(n, s);
  Rng rng(31);
  const int samples = 200000;
  int rank1 = 0;
  for (int i = 0; i < samples; ++i) rank1 += (zipf.Next(rng) == 1);
  const double expected = 1.0 / sim::GeneralizedHarmonic(n, s);
  EXPECT_NEAR(static_cast<double>(rank1) / samples, expected,
              expected * 0.1);
}

TEST(ZipfTest, HandlesExponentNearOne) {
  ZipfGenerator zipf(1000, 1.0 + 1e-12);
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t rank = zipf.Next(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 1000u);
  }
}

TEST(TpchTest, GeneratorBounds) {
  const LineitemQ6 table = GenerateLineitemQ6(20000, 11);
  ASSERT_EQ(table.size(), 20000u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    ASSERT_GE(table.quantity[i], 1);
    ASSERT_LE(table.quantity[i], 50);
    ASSERT_GE(table.discount[i], 0);
    ASSERT_LE(table.discount[i], 10);
    ASSERT_GE(table.shipdate[i], 0);
    ASSERT_LT(table.shipdate[i], 2526);
    ASSERT_GT(table.extendedprice[i], 0);
  }
}

TEST(TpchTest, SelectivityIsLow) {
  // Q6 is a low-selectivity query (paper quotes 1.3%; our marginals give
  // ~1.8%).
  EXPECT_GT(Q6Selectivity(), 0.005);
  EXPECT_LT(Q6Selectivity(), 0.03);
  EXPECT_NEAR(Q6DateSelectivity(), 0.1445, 0.001);
}

TEST(TpchTest, EmpiricalSelectivityMatchesAnalytic) {
  const LineitemQ6 table = GenerateLineitemQ6(200000, 19);
  std::size_t qualifying = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.shipdate[i] >= kQ6DateLo && table.shipdate[i] < kQ6DateHi &&
        table.discount[i] >= kQ6DiscountLo &&
        table.discount[i] <= kQ6DiscountHi &&
        table.quantity[i] < kQ6QuantityLt) {
      ++qualifying;
    }
  }
  EXPECT_NEAR(static_cast<double>(qualifying) / 200000.0, Q6Selectivity(),
              0.004);
}

TEST(TpchTest, ClusterByShipdateSortsAllColumns) {
  LineitemQ6 table = GenerateLineitemQ6(5000, 23);
  const LineitemQ6 original = table;
  ClusterByShipdate(&table);
  EXPECT_TRUE(std::is_sorted(table.shipdate.begin(), table.shipdate.end()));
  // Row integrity: the multiset of (price, discount) pairs is unchanged.
  std::multiset<std::int64_t> before, after;
  for (std::size_t i = 0; i < original.size(); ++i) {
    before.insert(original.extendedprice[i] * 100 + original.discount[i]);
    after.insert(table.extendedprice[i] * 100 + table.discount[i]);
  }
  EXPECT_EQ(before, after);
}

TEST(RelationTest, SizesAndBytes) {
  Relation64 relation;
  relation.Reserve(3);
  relation.Append(1, 2);
  relation.Append(3, 4);
  EXPECT_EQ(relation.size(), 2u);
  EXPECT_FALSE(relation.empty());
  EXPECT_EQ(Relation64::tuple_bytes(), 16u);
  EXPECT_EQ(Relation32::tuple_bytes(), 8u);
  EXPECT_EQ(relation.total_bytes(), 32u);
}

}  // namespace
}  // namespace pump::data
