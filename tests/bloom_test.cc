#include <cstdint>

#include "data/generator.h"
#include "gtest/gtest.h"
#include "hash/bloom.h"

namespace pump::hash {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BlockedBloomFilter<std::int64_t> filter(10'000);
  for (std::int64_t key = 0; key < 10'000; ++key) filter.Insert(key * 7);
  for (std::int64_t key = 0; key < 10'000; ++key) {
    ASSERT_TRUE(filter.MayContain(key * 7)) << key;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearEstimate) {
  const std::size_t n = 1 << 18;
  BlockedBloomFilter<std::int64_t> filter(n);
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 1);
  for (std::int64_t key : inner.keys) filter.Insert(key);

  // Probe keys disjoint from the inserted domain.
  std::uint64_t false_positives = 0;
  const std::size_t probes = 200'000;
  for (std::size_t i = 0; i < probes; ++i) {
    false_positives +=
        filter.MayContain(static_cast<std::int64_t>(n + i));
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  const double estimated = filter.EstimatedFalsePositiveRate();
  EXPECT_LT(measured, 0.05);  // 12 bits/key with 4 probes is well under 5%.
  EXPECT_NEAR(measured, estimated, 0.02);
}

TEST(BloomFilterTest, FillRatioGrowsWithInserts) {
  BlockedBloomFilter<std::int64_t> filter(1000);
  EXPECT_DOUBLE_EQ(filter.FillRatio(), 0.0);
  for (std::int64_t key = 0; key < 500; ++key) filter.Insert(key);
  const double half = filter.FillRatio();
  for (std::int64_t key = 500; key < 1000; ++key) filter.Insert(key);
  EXPECT_GT(filter.FillRatio(), half);
  EXPECT_LT(filter.FillRatio(), 0.5);  // 12 bits/key keeps it sparse.
}

TEST(BloomFilterTest, MoreBitsPerKeyFewerFalsePositives) {
  const std::size_t n = 1 << 16;
  BlockedBloomFilter<std::int64_t> tight(n, 6.0);
  BlockedBloomFilter<std::int64_t> roomy(n, 16.0);
  for (std::int64_t key = 0; key < static_cast<std::int64_t>(n); ++key) {
    tight.Insert(key);
    roomy.Insert(key);
  }
  std::uint64_t tight_fp = 0, roomy_fp = 0;
  for (std::int64_t key = 0; key < 100'000; ++key) {
    tight_fp += tight.MayContain(static_cast<std::int64_t>(n) + key);
    roomy_fp += roomy.MayContain(static_cast<std::int64_t>(n) + key);
  }
  EXPECT_LT(roomy_fp * 2, tight_fp);
}

TEST(BloomFilterTest, SizeScalesWithKeys) {
  BlockedBloomFilter<std::int64_t> small(1 << 10);
  BlockedBloomFilter<std::int64_t> large(1 << 20);
  EXPECT_GT(large.bytes(), 100 * small.bytes());
}

TEST(BloomFilterTest, Int32Keys) {
  BlockedBloomFilter<std::int32_t> filter(1000);
  for (std::int32_t key = 0; key < 1000; ++key) filter.Insert(key);
  for (std::int32_t key = 0; key < 1000; ++key) {
    ASSERT_TRUE(filter.MayContain(key));
  }
}

}  // namespace
}  // namespace pump::hash
